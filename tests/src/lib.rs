//! Cross-crate integration tests for the Spider reproduction live in this
//! crate's `tests/` directory. The library itself only hosts shared test
//! helpers.

#![forbid(unsafe_code)]

use spider_core::{ExperimentConfig, SchemeConfig, TopologyConfig};
use spider_sim::{SimConfig, SizeDistribution, WorkloadConfig};
use spider_types::SimDuration;

/// A small but non-trivial ISP experiment that finishes in well under a
/// second per scheme.
pub fn small_isp_experiment(seed: u64, capacity_xrp: u64) -> ExperimentConfig {
    ExperimentConfig {
        topology: TopologyConfig::Isp { capacity_xrp },
        workload: WorkloadConfig {
            count: 1_500,
            rate_per_sec: 500.0,
            size: SizeDistribution::RippleIsp,
            sender_skew_scale: 8.0,
        },
        sim: SimConfig {
            horizon: SimDuration::from_secs(5),
            ..SimConfig::default()
        },
        scheme: SchemeConfig::SpiderWaterfilling { paths: 4 },
        dynamics: None,
        faults: None,
        overload: None,
        seed,
    }
}
