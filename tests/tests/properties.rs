//! Property-based tests (proptest) on the core invariants across crates.

use proptest::prelude::*;
use spider_lp::fluid::{FluidProblem, PathSelection};
use spider_lp::simplex::{ConstraintOp, LinearProgram};
use spider_paygraph::decompose::{decompose, is_dag};
use spider_paygraph::PaymentGraph;
use spider_topology::{gen, io};
use spider_types::{Amount, NodeId};

proptest! {
    /// split_mtu always conserves the total and respects the MTU bound.
    #[test]
    fn split_mtu_conserves(total in 0u64..10_000_000, mtu in 1u64..1_000_000) {
        let amount = Amount::from_drops(total);
        let parts = amount.split_mtu(Amount::from_drops(mtu));
        prop_assert_eq!(parts.iter().copied().sum::<Amount>(), amount);
        prop_assert!(parts.iter().all(|p| p.drops() <= mtu && p.drops() > 0));
    }

    /// Circulation/DAG decomposition: parts sum to the whole, the
    /// circulation is balanced, and the residue is acyclic.
    #[test]
    fn decomposition_invariants(edges in proptest::collection::vec(
        (0u32..8, 0u32..8, 1u64..50), 1..24,
    )) {
        let mut g = PaymentGraph::new(8);
        for (s, d, r) in edges {
            if s != d {
                g.add_demand(NodeId(s), NodeId(d), r as f64);
            }
        }
        let dec = decompose(&g, 1.0);
        prop_assert!(dec.optimal);
        // Sum back.
        let mut sum = dec.circulation.clone();
        for e in dec.dag.edges() {
            sum.add_demand(e.src, e.dst, e.rate);
        }
        prop_assert!(g.l1_distance(&sum) < 1e-9);
        prop_assert!(dec.circulation.is_circulation(1e-9));
        prop_assert!(is_dag(&dec.dag));
        // Value bounded by total demand.
        prop_assert!(dec.circulation_value <= g.total_demand() + 1e-9);
    }

    /// The simplex solution of a random all-≤ LP with non-negative
    /// coefficients is feasible and no worse than the zero solution.
    #[test]
    fn simplex_feasibility(
        objective in proptest::collection::vec(-1.0f64..2.0, 3),
        rows in proptest::collection::vec(
            (proptest::collection::vec(0.0f64..1.0, 3), 0.5f64..5.0), 1..6,
        ),
    ) {
        let mut lp = LinearProgram::new(3);
        for (v, c) in objective.iter().enumerate() {
            lp.set_objective(v, *c);
        }
        // Ensure boundedness: cap every variable.
        for v in 0..3 {
            lp.constraint(&[(v, 1.0)], ConstraintOp::Le, 10.0);
        }
        let mut checks = Vec::new();
        for (coeffs, rhs) in rows {
            let sparse: Vec<(usize, f64)> =
                coeffs.iter().enumerate().map(|(v, c)| (v, *c)).collect();
            lp.constraint(&sparse, ConstraintOp::Le, rhs);
            checks.push((coeffs, rhs));
        }
        let sol = lp.solve().expect("feasible and bounded");
        for (coeffs, rhs) in checks {
            let lhs: f64 = coeffs.iter().zip(&sol.x).map(|(c, x)| c * x).sum();
            prop_assert!(lhs <= rhs + 1e-6);
        }
        prop_assert!(sol.x.iter().all(|&x| x >= -1e-9));
        prop_assert!(sol.objective >= -1e-9); // x = 0 scores 0
    }

    /// Topology text serialization round-trips.
    #[test]
    fn topology_io_round_trip(
        n in 2usize..12,
        edges in proptest::collection::vec((0u32..12, 0u32..12, 0u64..1_000), 0..30),
    ) {
        let mut b = spider_topology::Topology::builder(n);
        for (u, v, cap) in edges {
            let (u, v) = (u % n as u32, v % n as u32);
            if u != v && !b.has_channel(NodeId(u), NodeId(v)) {
                b.channel(NodeId(u), NodeId(v), Amount::from_drops(cap)).unwrap();
            }
        }
        let t = b.build();
        let back = io::from_text(&io::to_text(&t)).expect("parses");
        prop_assert_eq!(t, back);
    }

    /// Balanced-LP throughput never exceeds the circulation bound
    /// (Proposition 1) on random demand over a cycle topology.
    #[test]
    fn prop1_upper_bound(edges in proptest::collection::vec(
        (0u32..6, 0u32..6, 1u64..10), 1..14,
    )) {
        let mut g = PaymentGraph::new(6);
        for (s, d, r) in edges {
            if s != d {
                g.add_demand(NodeId(s), NodeId(d), r as f64);
            }
        }
        let topo = gen::cycle(6, Amount::from_xrp(1_000_000));
        let nu = decompose(&g, 1e-6).circulation_value;
        let lp = FluidProblem::new(&topo, &g, 0.5, PathSelection::KShortest(3))
            .solve_balanced()
            .expect("LP solves")
            .throughput;
        prop_assert!(lp <= nu + 1e-4 * g.total_demand().max(1.0),
            "LP {lp} exceeded circulation bound {nu}");
    }

    /// `PathCache::prefill` is purely a throughput change: over random
    /// topologies, seeds, and every `PathPolicy`, prefilling a pair list
    /// and then reading it back yields exactly the `PathId` sets the
    /// purely lazy cache produces for the same get order, each path is
    /// interned exactly once (table sizes match, and a second prefill or
    /// the subsequent gets intern nothing new), and degenerate
    /// `src == dst` pairs resolve to empty candidate sets.
    #[test]
    fn prefill_matches_lazy_path_cache(
        seed in 0u64..400,
        nodes in 4usize..24,
        m in 1usize..3,
        policy_idx in 0usize..3,
        k in 1usize..5,
        n_pairs in 1usize..24,
    ) {
        use spider_routing::{PathCache, PathPolicy};
        use spider_sim::PathTable;
        let mut rng = spider_types::DetRng::new(seed);
        let topo = gen::barabasi_albert(nodes, m, Amount::from_xrp(100), &mut rng);
        let policy = match policy_idx {
            0 => PathPolicy::EdgeDisjoint(k),
            1 => PathPolicy::KShortest(k),
            _ => PathPolicy::Shortest,
        };
        // Random pairs, duplicates and self-pairs included.
        let pairs: Vec<(NodeId, NodeId)> = (0..n_pairs)
            .map(|_| {
                (
                    NodeId(rng.index(topo.node_count()) as u32),
                    NodeId(rng.index(topo.node_count()) as u32),
                )
            })
            .collect();

        let lazy_table = PathTable::new();
        let mut lazy = PathCache::new(policy);
        let lazy_ids: Vec<Vec<_>> = pairs
            .iter()
            .map(|&(s, d)| lazy.get(&topo, &lazy_table, s, d).to_vec())
            .collect();

        let table = PathTable::new();
        let mut warm = PathCache::new(policy);
        warm.prefill(&topo, &table, &pairs);
        let interned_after_prefill = table.len();
        prop_assert_eq!(interned_after_prefill, lazy_table.len(), "same distinct paths");
        // Idempotent: nothing new to compute or intern.
        warm.prefill(&topo, &table, &pairs);
        prop_assert_eq!(table.len(), interned_after_prefill);
        for (&(s, d), want) in pairs.iter().zip(&lazy_ids) {
            let got = warm.get(&topo, &table, s, d).to_vec();
            prop_assert_eq!(&got, want, "pair {}->{}", s, d);
            // Equal ids from two independently-interned tables do not by
            // themselves prove equal paths — resolve and compare.
            for (&g, &w) in got.iter().zip(want) {
                let ge = table.entry(g);
                let we = lazy_table.entry(w);
                prop_assert_eq!(ge.nodes(), we.nodes(), "pair {}->{}", s, d);
            }
            if s == d && policy != PathPolicy::Shortest {
                prop_assert!(got.is_empty(), "degenerate pair has no candidates");
            }
        }
        prop_assert_eq!(table.len(), interned_after_prefill, "gets are pure lookups");
    }

    /// Yen's paths are simple, ordered by length, and within k.
    #[test]
    fn yen_path_invariants(seed in 0u64..500, k in 1usize..6) {
        let mut rng = spider_types::DetRng::new(seed);
        let topo = gen::erdos_renyi(10, 0.4, Amount::from_xrp(1), &mut rng);
        let paths = spider_lp::paths::k_shortest_paths(&topo, NodeId(0), NodeId(9), k);
        prop_assert!(paths.len() <= k);
        for w in paths.windows(2) {
            prop_assert!(w[0].hop_count() <= w[1].hop_count());
        }
        for p in &paths {
            let mut s = p.nodes.clone();
            s.sort_unstable();
            s.dedup();
            prop_assert_eq!(s.len(), p.nodes.len(), "loop in path");
        }
    }
}
