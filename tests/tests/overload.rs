//! Overload integration tests: full simulations under the adversarial
//! load plan (flash crowd, hot pairs, drain flows, griefing holds) must
//! stay deterministic and conserving for every scheme — with the
//! protections (shedding, admission control) on and off — a
//! zero-intensity plan must be observationally invisible, and the
//! per-reason drop breakdown must partition the total drop count under
//! any mix of overload, faults and churn.

use proptest::prelude::*;
use spider_core::{run_sweep, ExperimentConfig, SchemeConfig, SweepJob, TopologyConfig};
use spider_dynamics::DynamicsConfig;
use spider_faults::FaultConfig;
use spider_overload::{OverloadConfig, OverloadPlan};
use spider_sim::{AdmissionConfig, QueueConfig, QueueingMode, SimConfig, WorkloadConfig};
use spider_topology::gen;
use spider_types::{Amount, DetRng, SimDuration};

/// A small ISP experiment with the full adversarial plan (every
/// sub-attack enabled at its default weight) scaled by `intensity`.
/// `protected` turns on deadline-aware shedding and sender-side
/// admission control over a tight per-channel queue.
fn overload_experiment(
    scheme: SchemeConfig,
    seed: u64,
    intensity: f64,
    protected: bool,
) -> ExperimentConfig {
    let mut sim = SimConfig {
        horizon: SimDuration::from_secs(5),
        queueing: QueueingMode::PerChannelFifo(QueueConfig {
            max_queue_units: 64,
            ..QueueConfig::default()
        }),
        ..SimConfig::default()
    };
    if protected {
        sim.shedding = true;
        sim.admission = Some(AdmissionConfig {
            rate_per_sec: 150.0,
            ..AdmissionConfig::default()
        });
    }
    ExperimentConfig {
        topology: TopologyConfig::Isp {
            capacity_xrp: 2_000,
        },
        workload: WorkloadConfig::small(500, 150.0),
        sim,
        scheme,
        dynamics: None,
        faults: None,
        overload: (intensity > 0.0).then(|| {
            OverloadConfig {
                horizon_secs: 5.0,
                flash_crowd: self::flash_inside_horizon(),
                ..OverloadConfig::default()
            }
            .scaled(intensity)
        }),
        seed,
    }
}

/// A flash window that lands inside the 5 s test horizon (the crate
/// default starts at 5 s, which would warp nothing here).
fn flash_inside_horizon() -> Option<spider_overload::FlashCrowdConfig> {
    Some(spider_overload::FlashCrowdConfig {
        start_secs: 1.0,
        duration_secs: 1.0,
        rate_multiplier: 3.0,
    })
}

/// Every registered scheme survives an overload-heavy run — protections
/// on — with conservation intact (checked inside `run()`), and the same
/// seed reproduces the same report bit for bit, including the shed and
/// admission counters.
#[test]
fn all_schemes_deterministic_and_conserving_under_overload() {
    let schemes = SchemeConfig::extended_lineup();
    let jobs: Vec<SweepJob> = schemes
        .iter()
        .flat_map(|&s| {
            [
                SweepJob::Scheme(overload_experiment(s, 17, 2.0, true)),
                SweepJob::Scheme(overload_experiment(s, 17, 2.0, true)),
            ]
        })
        .collect();
    let reports = run_sweep(&jobs).expect("sweep runs");
    for pair in reports.chunks(2) {
        let (a, b) = (&pair[0], &pair[1]);
        assert_eq!(a.completed_payments, b.completed_payments, "{}", a.scheme);
        assert_eq!(a.delivered_volume, b.delivered_volume, "{}", a.scheme);
        assert_eq!(a.completed_volume, b.completed_volume, "{}", a.scheme);
        assert_eq!(a.units_locked, b.units_locked, "{}", a.scheme);
        assert_eq!(a.units_dropped, b.units_dropped, "{}", a.scheme);
        assert_eq!(a.drops_by_reason, b.drops_by_reason, "{}", a.scheme);
    }
}

/// A zero-intensity overload plan is observationally identical to no
/// plan at all: scaling the config to nothing redirects no pair, griefs
/// no payment and warps no arrival, so the engine must draw nothing from
/// the overload RNG stream.
#[test]
fn zero_intensity_overload_changes_nothing() {
    let scheme = SchemeConfig::ShortestPath;
    let mut cfg = overload_experiment(scheme, 5, 0.0, false);
    cfg.overload = Some(
        OverloadConfig {
            horizon_secs: 5.0,
            flash_crowd: None, // any window would still warp arrival times
            ..OverloadConfig::default()
        }
        .scaled(0.0),
    );
    let with_empty_plan = cfg.run().expect("runs");
    let without = overload_experiment(scheme, 5, 0.0, false)
        .run()
        .expect("runs");
    assert_eq!(
        with_empty_plan.completed_payments,
        without.completed_payments
    );
    assert_eq!(with_empty_plan.delivered_volume, without.delivered_volume);
    assert_eq!(with_empty_plan.units_locked, without.units_locked);
    assert_eq!(with_empty_plan.units_dropped, without.units_dropped);
    assert_eq!(with_empty_plan.drops_by_reason, without.drops_by_reason);
}

/// The generated plan itself is a pure function of (topology, config,
/// seed) — the piece `same seed ⇒ same report` rests on.
#[test]
fn overload_plan_generation_is_seed_deterministic() {
    let topo = gen::isp_topology(Amount::from_xrp(100));
    let cfg = OverloadConfig::default();
    let a = OverloadPlan::generate(&topo, &cfg, &mut DetRng::new(42)).unwrap();
    let b = OverloadPlan::generate(&topo, &cfg, &mut DetRng::new(42)).unwrap();
    assert_eq!(a, b);
    assert!(!a.is_quiet(), "default plan must attack something");
}

/// Protections engage under pressure: with the arrival rate pushed past
/// the admission gate, the protected run must actually reject payments
/// and the rejection must be visible in the drop breakdown.
#[test]
fn admission_control_rejects_under_pressure() {
    let mut cfg = overload_experiment(SchemeConfig::ShortestPath, 9, 2.0, true);
    cfg.workload = WorkloadConfig::small(1_500, 450.0); // 3x the gate
    let r = cfg.run().expect("runs");
    assert!(
        r.drops_by_reason.admission_rejected > 0,
        "3x the admitted rate must trip the token bucket"
    );
    assert!(r.completed_payments > 0, "the gate must not starve the run");
}

proptest! {
    /// The drop-reason conservation law under the full adversarial mix:
    /// for any combination of overload, fault and churn intensity — and
    /// either protection posture — the per-reason breakdown partitions
    /// `units_dropped` exactly (every drop has exactly one reason), the
    /// shed and admission counters only move when the protections are
    /// on, and the run stays seed-deterministic.
    #[test]
    fn drop_reasons_partition_units_dropped(
        seed in 0u64..500,
        scheme_idx in 0usize..3,
        overload_tenths in 0u32..25,
        fault_tenths in 0u32..15,
        churn_tenths in 0u32..10,
        protected_coin in 0u32..2,
    ) {
        let protected = protected_coin == 1;
        let scheme = [
            SchemeConfig::ShortestPath,
            SchemeConfig::SpiderWaterfilling { paths: 4 },
            SchemeConfig::spider_protocol(4),
        ][scheme_idx];
        let cfg = || {
            let mut c = overload_experiment(
                scheme, seed, overload_tenths as f64 / 10.0, protected,
            );
            c.workload = WorkloadConfig::small(150, 150.0);
            c.sim.horizon = SimDuration::from_secs(2);
            c.overload = c.overload.map(|o| OverloadConfig { horizon_secs: 2.0, ..o });
            if fault_tenths > 0 {
                c.faults = Some(FaultConfig {
                    horizon_secs: 2.0,
                    ..FaultConfig::default()
                }.scaled(fault_tenths as f64 / 10.0));
            }
            if churn_tenths > 0 {
                c.dynamics = Some(DynamicsConfig {
                    horizon_secs: 2.0,
                    ..DynamicsConfig::default()
                }.scaled(churn_tenths as f64 / 10.0));
            }
            c
        };
        let a = cfg().run().expect("runs");
        let b = cfg().run().expect("runs");
        prop_assert_eq!(a.drops_by_reason.total(), a.units_dropped);
        if !protected {
            prop_assert_eq!(a.drops_by_reason.shed, 0);
            prop_assert_eq!(a.drops_by_reason.admission_rejected, 0);
        }
        prop_assert_eq!(a.units_dropped, b.units_dropped);
        prop_assert_eq!(&a.drops_by_reason, &b.drops_by_reason);
        prop_assert_eq!(a.completed_payments, b.completed_payments);
        prop_assert_eq!(a.completed_volume, b.completed_volume);
    }
}
