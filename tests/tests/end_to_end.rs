//! End-to-end integration: the full stack (topology → workload → scheme →
//! simulator → report) for every scheme in the paper's lineup.

use spider_core::{ExperimentConfig, SchemeConfig, TopologyConfig};
use spider_sim::{SimConfig, WorkloadConfig};
use spider_tests::small_isp_experiment;
use spider_types::SimDuration;

#[test]
fn every_paper_scheme_runs_and_reports_sanely() {
    let cfg = small_isp_experiment(1, 10_000);
    let reports = cfg
        .run_schemes(&SchemeConfig::paper_lineup())
        .expect("all schemes run");
    assert_eq!(reports.len(), 6);
    for r in &reports {
        assert_eq!(r.attempted_payments, 1_500, "{}", r.scheme);
        assert!(r.completed_payments <= r.attempted_payments, "{}", r.scheme);
        assert!(r.delivered_volume <= r.attempted_volume, "{}", r.scheme);
        assert!(r.success_ratio() > 0.0, "{} delivered nothing", r.scheme);
        // Completion takes at least the confirmation delay.
        if let Some(t) = r.avg_completion_time() {
            assert!(t >= 0.5 - 1e-9, "{}: completion {t} below Δ", r.scheme);
        }
    }
}

#[test]
fn identical_workload_across_schemes() {
    let cfg = small_isp_experiment(3, 30_000);
    let reports = cfg
        .run_schemes(&[SchemeConfig::ShortestPath, SchemeConfig::MaxFlow])
        .expect("schemes run");
    assert_eq!(reports[0].attempted_volume, reports[1].attempted_volume);
    assert_eq!(reports[0].attempted_payments, reports[1].attempted_payments);
}

#[test]
fn full_experiment_is_deterministic() {
    let cfg = small_isp_experiment(7, 20_000);
    let a = cfg.run().expect("runs");
    let b = cfg.run().expect("runs");
    assert_eq!(a.completed_payments, b.completed_payments);
    assert_eq!(a.delivered_volume, b.delivered_volume);
    assert_eq!(a.units_locked, b.units_locked);
    assert_eq!(a.retries, b.retries);
}

#[test]
fn atomic_schemes_never_partially_deliver() {
    // With an atomic scheme, delivered volume must equal the summed value
    // of *completed* payments exactly — nothing in between.
    let mut cfg = small_isp_experiment(11, 4_000);
    cfg.scheme = SchemeConfig::SilentWhispers { landmarks: 3 };
    let r = cfg.run().expect("runs");
    assert!(
        r.completed_payments < r.attempted_payments,
        "need some failures for the test"
    );
    // Re-run and cross-check volumes through a second scheme-independent
    // accounting: success_volume × attempted == delivered.
    let reconstructed = r.attempted_volume.mul_f64(r.success_volume());
    let diff = reconstructed.drops().abs_diff(r.delivered_volume.drops());
    assert!(diff <= 1, "volume accounting inconsistent");
}

#[test]
fn more_capacity_never_hurts_spider() {
    let lo = {
        let cfg = small_isp_experiment(13, 5_000);
        cfg.run().expect("runs")
    };
    let hi = {
        let cfg = small_isp_experiment(13, 50_000);
        cfg.run().expect("runs")
    };
    assert!(hi.success_ratio() >= lo.success_ratio());
    assert!(hi.delivered_volume >= lo.delivered_volume);
}

#[test]
fn waterfilling_beats_or_matches_shortest_path_under_pressure() {
    // The paper's core comparative claim, at a constrained capacity.
    let cfg = small_isp_experiment(17, 5_000);
    let reports = cfg
        .run_schemes(&[
            SchemeConfig::SpiderWaterfilling { paths: 4 },
            SchemeConfig::ShortestPath,
        ])
        .expect("schemes run");
    assert!(
        reports[0].success_volume() >= reports[1].success_volume() - 0.02,
        "waterfilling {} vs shortest-path {}",
        reports[0].success_volume(),
        reports[1].success_volume()
    );
}

#[test]
fn paper_example_topology_runs_all_schemes() {
    let cfg = ExperimentConfig {
        topology: TopologyConfig::PaperExample { capacity_xrp: 500 },
        workload: WorkloadConfig::small(400, 200.0),
        sim: SimConfig {
            horizon: SimDuration::from_secs(4),
            ..SimConfig::default()
        },
        scheme: SchemeConfig::ShortestPath,
        dynamics: None,
        faults: None,
        overload: None,
        seed: 23,
    };
    for r in cfg
        .run_schemes(&SchemeConfig::paper_lineup())
        .expect("schemes run")
    {
        assert!(r.success_ratio() > 0.0, "{} delivered nothing", r.scheme);
    }
}

#[test]
fn ripple_like_topology_runs() {
    let cfg = ExperimentConfig {
        topology: TopologyConfig::RippleLike {
            nodes: 120,
            capacity_xrp: 10_000,
        },
        workload: WorkloadConfig::small(800, 400.0),
        sim: SimConfig {
            horizon: SimDuration::from_secs(4),
            ..SimConfig::default()
        },
        scheme: SchemeConfig::SpiderWaterfilling { paths: 4 },
        dynamics: None,
        faults: None,
        overload: None,
        seed: 29,
    };
    let r = cfg.run().expect("runs");
    assert!(r.success_ratio() > 0.3, "ratio {}", r.success_ratio());
}
