//! Drop-forensics flight recorder: golden JSONL for a fault-injected
//! fixed-seed run, and the partition law tying the recorder's
//! reason×channel root-cause table to the report's `DropBreakdown`.
//!
//! Forensics is an *observation* layer like tracing: for a fixed seed the
//! recorded drops (and both rendered JSONL artifacts) must be
//! byte-identical across runs, and recording must never perturb the
//! simulation. Regenerate the goldens with `UPDATE_GOLDENS=1` after an
//! *intentional* schema change.

use proptest::prelude::*;
use spider_core::{ExperimentConfig, SchemeConfig, TopologyConfig};
use spider_sim::{
    DropRecord, FlightRecorder, SimConfig, SizeDistribution, WorkloadConfig, FORENSICS_HEADER,
    ROOTCAUSE_HEADER,
};
use spider_types::{DropReason, SimDuration};
use std::path::PathBuf;

/// The trace-golden tiny run with the same heavy fault plan as
/// `fault_injected_trace_is_reproducible_and_matches_golden`: losses,
/// stuck units, and a crash-prone plan drive drops through every fault
/// reason, which is what a drop recorder exists to capture.
fn faulted_tiny_experiment(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        topology: TopologyConfig::PaperExample { capacity_xrp: 200 },
        workload: WorkloadConfig {
            count: 12,
            rate_per_sec: 10.0,
            size: SizeDistribution::Constant { xrp: 40.0 },
            sender_skew_scale: 4.0,
        },
        sim: SimConfig {
            horizon: SimDuration::from_secs(4),
            ..SimConfig::default()
        },
        scheme: SchemeConfig::ShortestPath,
        dynamics: None,
        faults: Some(spider_faults::FaultConfig {
            message_loss_prob: 0.2,
            ack_loss_prob: 0.1,
            stuck_unit_prob: 0.05,
            jitter_range_ms: None,
            spike_prob: 0.0,
            spike_ms: 0.0,
            hop_timeout_secs: 0.25,
            crash: Some(spider_faults::CrashConfig {
                rate_per_sec: 1.5,
                recovery_mean_secs: Some(1.0),
            }),
            horizon_secs: 4.0,
        }),
        overload: None,
        seed,
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(name)
}

/// Compares `content` against the pinned golden (or rewrites it when
/// `UPDATE_GOLDENS` is set).
fn check_golden(name: &str, content: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir goldens");
        std::fs::write(&path, content).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); record it with UPDATE_GOLDENS=1",
            path.display()
        )
    });
    if content != want {
        for (i, (got, exp)) in content.lines().zip(want.lines()).enumerate() {
            assert_eq!(got, exp, "{name}: first divergence at line {}", i + 1);
        }
        assert_eq!(
            content.lines().count(),
            want.lines().count(),
            "{name}: line counts differ"
        );
        panic!("{name}: artifacts differ only in trailing whitespace?");
    }
}

#[test]
fn fault_injected_forensics_is_reproducible_and_matches_golden() {
    let cfg = faulted_tiny_experiment(11);
    let (r1, f1) = cfg.run_forensics().expect("runs");
    let (r2, f2) = cfg.run_forensics().expect("runs");
    assert_eq!(r1.units_dropped, r2.units_dropped);
    assert_eq!(
        f1.to_jsonl(),
        f2.to_jsonl(),
        "forensics is not bit-reproducible"
    );
    assert_eq!(
        f1.root_cause_to_jsonl(),
        f2.root_cause_to_jsonl(),
        "root-cause table is not bit-reproducible"
    );
    assert!(
        r1.units_dropped_fault > 0,
        "no unit lost to a fault; golden is vacuous"
    );
    assert!(f1.evicted() == 0, "tiny run must fit the default ring");
    assert_eq!(
        f1.len() as u64,
        r1.units_dropped,
        "one record per dropped unit"
    );

    // Forensics must observe without perturbing: the same config run
    // without the recorder produces identical outcomes.
    let bare = cfg.run().expect("bare run");
    assert_eq!(bare.units_dropped, r1.units_dropped);
    assert_eq!(bare.completed_payments, r1.completed_payments);
    assert_eq!(bare.delivered_volume, r1.delivered_volume);

    // Every JSONL line parses and carries exactly the header's fields.
    for line in f1.to_jsonl().lines() {
        let v = serde_json::parse(line).expect("record line is valid JSON");
        for col in FORENSICS_HEADER.split(',') {
            assert!(
                line.contains(&format!("\"{col}\":")),
                "missing {col} in {line}"
            );
        }
        v["t_us"].as_u64().expect("t_us is unsigned");
    }
    for line in f1.root_cause_to_jsonl().lines() {
        let v = serde_json::parse(line).expect("root-cause line is valid JSON");
        for col in ROOTCAUSE_HEADER.split(',') {
            assert!(
                line.contains(&format!("\"{col}\":")),
                "missing {col} in {line}"
            );
        }
        assert!(v["count"].as_u64().expect("count is unsigned") > 0);
    }

    check_golden("forensics_faulted_records.jsonl", &f1.to_jsonl());
    check_golden(
        "forensics_faulted_rootcause.jsonl",
        &f1.root_cause_to_jsonl(),
    );
}

/// The recorder's per-reason totals partition the report's
/// `DropBreakdown` exactly on a real fault-injected run: every dropped
/// unit is forensically recorded with the same reason the metrics saw.
#[test]
fn recorder_totals_partition_the_report_breakdown() {
    let cfg = faulted_tiny_experiment(11);
    let (r, f) = cfg.run_forensics().expect("runs");
    let d = &r.drops_by_reason;
    assert_eq!(f.reason_total(DropReason::QueueTimeout), d.queue_timeout);
    assert_eq!(f.reason_total(DropReason::QueueOverflow), d.queue_overflow);
    assert_eq!(f.reason_total(DropReason::Expired), d.expired);
    assert_eq!(f.reason_total(DropReason::ChannelClosed), d.channel_closed);
    assert_eq!(f.reason_total(DropReason::MessageLost), d.message_lost);
    assert_eq!(f.reason_total(DropReason::HopTimeout), d.hop_timeout);
    assert_eq!(f.reason_total(DropReason::NodeCrashed), d.node_crashed);
    let table_total: u64 = f.root_cause_rows().iter().map(|row| row.count).sum();
    assert_eq!(table_total, d.total());
    assert_eq!(table_total, r.units_dropped);
}

const ALL_REASONS: [DropReason; 7] = [
    DropReason::QueueTimeout,
    DropReason::QueueOverflow,
    DropReason::Expired,
    DropReason::ChannelClosed,
    DropReason::MessageLost,
    DropReason::HopTimeout,
    DropReason::NodeCrashed,
];

proptest! {
    /// For any drop sequence and any ring capacity, the root-cause table
    /// partitions the drops exactly — per-reason totals match an exact
    /// tally, rows sum to the total, and eviction never loses counts.
    #[test]
    fn root_cause_table_partitions_any_drop_sequence(
        capacity in 1usize..8,
        drops in proptest::collection::vec(
            // Channel 5 encodes "no failing hop" (`channel: None`).
            (0usize..7, 0u32..6, 0u64..1_000), 0..64,
        ),
    ) {
        let mut f = FlightRecorder::new(capacity);
        let mut tally = [0u64; 7];
        for (i, &(ri, ch, t_us)) in drops.iter().enumerate() {
            let channel = (ch < 5).then_some(ch);
            tally[ri] += 1;
            f.record(DropRecord {
                t_us,
                payment: i as u64,
                path: 0,
                channel,
                bal_fwd_drops: 10,
                bal_rev_drops: 20,
                retries: 0,
                reason: ALL_REASONS[ri],
            });
        }
        for (ri, &reason) in ALL_REASONS.iter().enumerate() {
            prop_assert_eq!(f.reason_total(reason), tally[ri]);
        }
        let rows = f.root_cause_rows();
        let table_total: u64 = rows.iter().map(|row| row.count).sum();
        prop_assert_eq!(table_total, drops.len() as u64);
        prop_assert_eq!(f.len() as u64 + f.evicted(), drops.len() as u64);
        prop_assert!(f.len() <= f.capacity());
        // Rendered lines track the retained ring and the table rows.
        prop_assert_eq!(f.to_jsonl().lines().count(), f.len());
        prop_assert_eq!(f.root_cause_to_jsonl().lines().count(), rows.len());
    }
}
