//! Integration tests for the §5 decentralized protocol: router queues,
//! price marking, and per-path source rate control (`spider-protocol`).

use spider_core::congestion::{WindowConfig, Windowed};
use spider_core::SchemeConfig;
use spider_routing::ShortestPath;
use spider_sim::{QueueConfig, QueueingMode, SimReport};
use spider_tests::small_isp_experiment;

#[test]
fn protocol_scheme_runs_end_to_end() {
    let mut cfg = small_isp_experiment(21, 8_000);
    cfg.scheme = SchemeConfig::spider_protocol(4);
    let r = cfg.run().expect("runs");
    assert_eq!(r.scheme, "spider-protocol");
    assert!(r.success_ratio() > 0.3, "ratio {}", r.success_ratio());
    assert!(r.success_volume() > 0.3, "volume {}", r.success_volume());
}

#[test]
fn protocol_selection_auto_enables_queueing() {
    let mut cfg = small_isp_experiment(21, 8_000);
    cfg.scheme = SchemeConfig::spider_protocol(4);
    assert!(
        matches!(cfg.sim.queueing, QueueingMode::Lockstep),
        "user left the default"
    );
    assert!(matches!(
        cfg.effective_sim().queueing,
        QueueingMode::PerChannelFifo(_)
    ));
    // Other schemes keep whatever the user configured.
    cfg.scheme = SchemeConfig::ShortestPath;
    assert!(matches!(
        cfg.effective_sim().queueing,
        QueueingMode::Lockstep
    ));
}

#[test]
fn protocol_runs_are_bit_reproducible_per_seed() {
    let mut cfg = small_isp_experiment(33, 6_000);
    cfg.scheme = SchemeConfig::spider_protocol(4);
    let a = cfg.run().expect("runs");
    let b = cfg.run().expect("runs");
    assert_eq!(a.completed_payments, b.completed_payments);
    assert_eq!(a.delivered_volume, b.delivered_volume);
    assert_eq!(a.units_locked, b.units_locked);
    assert_eq!(a.units_marked, b.units_marked);
    assert_eq!(a.units_dropped, b.units_dropped);
    assert_eq!(a.units_queued, b.units_queued);
    assert_eq!(a.completion_times, b.completion_times);
}

#[test]
fn constrained_capacity_produces_queueing_and_marking() {
    // Scarce capacity: queues must form and price marking must fire.
    let mut cfg = small_isp_experiment(29, 1_500);
    cfg.scheme = SchemeConfig::spider_protocol(4);
    let r = cfg.run().expect("runs");
    assert!(r.units_queued > 0, "queues never formed");
    assert!(r.units_marked > 0, "marking never fired");
    assert!(r.marking_rate() > 0.0 && r.marking_rate() <= 1.0);
    assert!(!r.queue_occupancy_series().is_empty());
}

/// The acceptance bar: with queueing enabled on the fig6-style topology,
/// the §5 protocol extracts at least the success-volume of the coarse
/// per-pair AIMD window (the `spider-core::congestion` wrapper it
/// replaces, over the packet-switched shortest-path baseline), at the
/// same seeds and in the same queueing mode.
#[test]
fn protocol_matches_or_beats_windowed_aimd_baseline() {
    for seed in [5, 17, 31] {
        let mut cfg = small_isp_experiment(seed, 4_000);
        cfg.scheme = SchemeConfig::spider_protocol(4);
        cfg.sim.queueing = QueueingMode::PerChannelFifo(QueueConfig::default());
        let protocol = cfg.run().expect("protocol runs");
        let windowed: SimReport = cfg
            .run_with_router(Box::new(Windowed::new(
                ShortestPath::new(),
                WindowConfig::default(),
            )))
            .expect("baseline runs");
        assert!(
            protocol.success_volume() >= windowed.success_volume(),
            "seed {seed}: protocol {:.4} < windowed {:.4}",
            protocol.success_volume(),
            windowed.success_volume()
        );
    }
}
