//! Fund-conservation and accounting invariants, checked by driving the
//! simulator directly (not through the declarative API) so channel state
//! stays inspectable.

use spider_core::experiment::demand_graph;
use spider_core::SchemeConfig;
use spider_sim::{SimConfig, Simulation, SizeDistribution, Workload, WorkloadConfig};
use spider_topology::gen;
use spider_types::{Amount, DetRng, Direction, SimDuration};

fn run_and_check(scheme: SchemeConfig, seed: u64, capacity: Amount) {
    let topo = gen::isp_topology(capacity);
    let mut rng = DetRng::new(seed);
    let workload = Workload::generate(
        topo.node_count(),
        &WorkloadConfig {
            count: 1_200,
            rate_per_sec: 600.0,
            size: SizeDistribution::RippleIsp,
            sender_skew_scale: 8.0,
        },
        &mut rng,
    );
    let demands = demand_graph(&workload, topo.node_count());
    let router = scheme.build(&topo, &demands, 0.5);
    let total_before: Amount = topo.channels().map(|(_, c)| c.capacity).sum();
    let sim_config = SimConfig {
        horizon: SimDuration::from_secs(4),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(topo, workload, router, sim_config).expect("builds");
    let report = sim.run();

    // Per-channel conservation (available + in-flight == escrow).
    sim.check_conservation();
    // Global conservation.
    let total_after: Amount = sim.channel_states().iter().map(|c| c.total()).sum();
    assert_eq!(
        total_before, total_after,
        "{}: money created or destroyed",
        report.scheme
    );
    // No negative balances can exist by construction (Amount is unsigned),
    // but in-flight must have fully drained or be accounted: available
    // across the network plus inflight equals escrow, already checked.
    // Sanity on metrics.
    assert!(report.delivered_volume <= report.attempted_volume);
}

#[test]
fn conservation_spider_waterfilling() {
    run_and_check(
        SchemeConfig::SpiderWaterfilling { paths: 4 },
        1,
        Amount::from_xrp(8_000),
    );
}

#[test]
fn conservation_spider_lp() {
    run_and_check(
        SchemeConfig::SpiderLp {
            paths: 4,
            solver: spider_core::scheme::LpSolver::Auto,
        },
        2,
        Amount::from_xrp(8_000),
    );
}

#[test]
fn conservation_shortest_path() {
    run_and_check(SchemeConfig::ShortestPath, 3, Amount::from_xrp(8_000));
}

#[test]
fn conservation_max_flow() {
    run_and_check(SchemeConfig::MaxFlow, 4, Amount::from_xrp(8_000));
}

#[test]
fn conservation_silentwhispers() {
    run_and_check(
        SchemeConfig::SilentWhispers { landmarks: 3 },
        5,
        Amount::from_xrp(8_000),
    );
}

#[test]
fn conservation_speedymurmurs() {
    run_and_check(
        SchemeConfig::SpeedyMurmurs { trees: 3 },
        6,
        Amount::from_xrp(8_000),
    );
}

#[test]
fn conservation_under_extreme_scarcity() {
    // Almost-empty channels: nearly everything fails, and still no drop is
    // lost anywhere.
    run_and_check(
        SchemeConfig::SpiderWaterfilling { paths: 4 },
        7,
        Amount::from_xrp(50),
    );
}

#[test]
fn one_way_traffic_ends_fully_imbalanced_but_conserved() {
    // A 2-node network with traffic in one direction only: the channel
    // must end with all spendable funds on the receiver side.
    let capacity = Amount::from_xrp(100);
    let topo = gen::line(2, capacity);
    let txns: Vec<spider_sim::TxnSpec> = (0..10)
        .map(|i| spider_sim::TxnSpec {
            time: spider_types::SimTime::from_secs(i),
            src: spider_types::NodeId(0),
            dst: spider_types::NodeId(1),
            amount: Amount::from_xrp(5),
        })
        .collect();
    let demands = spider_paygraph::PaymentGraph::new(2);
    let router = SchemeConfig::ShortestPath.build(&topo, &demands, 0.5);
    let cfg = SimConfig {
        horizon: SimDuration::from_secs(30),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(topo, Workload { txns }, router, cfg).expect("builds");
    let report = sim.run();
    sim.check_conservation();
    assert_eq!(report.completed_payments, 10);
    let ch = &sim.channel_states()[0];
    assert_eq!(ch.available(Direction::Forward), Amount::ZERO);
    assert_eq!(ch.available(Direction::Backward), capacity);
}
