//! Integration tests for the extension features: Spider (Pricing), the
//! AIMD congestion-control wrapper, on-chain rebalancing, and imbalance
//! telemetry.

use spider_core::congestion::{WindowConfig, Windowed};
use spider_core::experiment::demand_graph;
use spider_core::SchemeConfig;
use spider_routing::SpiderWaterfilling;
use spider_sim::config::RebalancingConfig;
use spider_sim::{SimConfig, Simulation, SizeDistribution, Workload, WorkloadConfig};
use spider_tests::small_isp_experiment;
use spider_topology::gen;
use spider_types::{Amount, DetRng, SimDuration};

#[test]
fn spider_pricing_runs_end_to_end() {
    let mut cfg = small_isp_experiment(31, 8_000);
    cfg.scheme = SchemeConfig::SpiderPricing { paths: 4 };
    let r = cfg.run().expect("runs");
    assert_eq!(r.scheme, "spider-pricing");
    assert!(r.success_ratio() > 0.3, "ratio {}", r.success_ratio());
}

#[test]
fn extended_lineup_includes_pricing_and_protocol() {
    let lineup = SchemeConfig::extended_lineup();
    assert_eq!(lineup.len(), 8);
    assert!(lineup.iter().any(|s| s.name() == "spider-pricing"));
    assert!(lineup.iter().any(|s| s.name() == "spider-protocol"));
}

#[test]
fn pricing_extracts_more_volume_per_unit_imbalance() {
    // Raw final imbalance is confounded by delivered volume (every
    // settled one-way unit skews a channel), so the meaningful comparison
    // is volume delivered per unit of imbalance incurred: imbalance-aware
    // routing should extract at least as much.
    let mut base = small_isp_experiment(37, 6_000);
    base.workload.count = 3_000;
    base.workload.sender_skew_scale = 4.0;
    let reports = base
        .run_schemes(&[
            SchemeConfig::SpiderPricing { paths: 4 },
            SchemeConfig::ShortestPath,
        ])
        .expect("schemes run");
    let efficiency = |r: &spider_sim::SimReport| {
        let imb = *r.imbalance_series().last().expect("sampled");
        r.delivered_volume.as_xrp() / imb.max(1e-6)
    };
    let pricing = efficiency(&reports[0]);
    let shortest = efficiency(&reports[1]);
    assert!(
        pricing >= shortest * 0.9,
        "pricing volume/imbalance {pricing:.0} vs shortest-path {shortest:.0}"
    );
    // And in absolute terms it must deliver at least as much value.
    assert!(reports[0].delivered_volume >= reports[1].delivered_volume);
}

#[test]
fn imbalance_series_is_sampled_and_bounded() {
    let cfg = small_isp_experiment(41, 10_000);
    let r = cfg.run().expect("runs");
    assert!(
        r.imbalance_series().len() >= 4,
        "one sample per second expected"
    );
    assert!(r.imbalance_series().iter().all(|x| (0.0..=1.0).contains(x)));
    // Channels start perfectly balanced.
    assert!(
        r.imbalance_series()[0] < 0.05,
        "first sample {}",
        r.imbalance_series()[0]
    );
}

#[test]
fn windowed_wrapper_runs_in_simulation() {
    let topo = gen::isp_topology(Amount::from_xrp(8_000));
    let mut rng = DetRng::new(43);
    let workload = Workload::generate(
        topo.node_count(),
        &WorkloadConfig {
            count: 1_000,
            rate_per_sec: 500.0,
            size: SizeDistribution::RippleIsp,
            sender_skew_scale: 8.0,
        },
        &mut rng,
    );
    let demands = demand_graph(&workload, topo.node_count());
    let _ = &demands;
    let router = Windowed::new(SpiderWaterfilling::new(4), WindowConfig::default());
    let cfg = SimConfig {
        horizon: SimDuration::from_secs(4),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(topo, workload, Box::new(router), cfg).expect("builds");
    let r = sim.run();
    sim.check_conservation();
    assert!(r.success_ratio() > 0.2, "ratio {}", r.success_ratio());
    assert_eq!(r.scheme, "spider-waterfilling"); // wrapper is transparent
}

#[test]
fn rebalancing_improves_skewed_workload_end_to_end() {
    let mut cfg = small_isp_experiment(47, 3_000);
    cfg.workload.sender_skew_scale = 2.0; // heavily DAG demand
    let plain = cfg.run().expect("runs");
    cfg.sim.rebalancing = Some(RebalancingConfig {
        check_interval: SimDuration::from_millis(300),
        trigger_fraction: 0.1,
        target_fraction: 0.5,
        confirmation_delay: SimDuration::from_secs(1),
    });
    let rebalanced = cfg.run().expect("runs");
    assert!(rebalanced.rebalance_ops > 0);
    assert!(
        rebalanced.success_volume() > plain.success_volume(),
        "rebalanced {} vs plain {}",
        rebalanced.success_volume(),
        plain.success_volume()
    );
}

#[test]
fn rebalancing_config_serializes() {
    let cfg = SimConfig {
        rebalancing: Some(RebalancingConfig::default()),
        ..SimConfig::default()
    };
    let json = serde_json::to_string(&cfg).expect("serializes");
    let back: SimConfig = serde_json::from_str(&json).expect("parses");
    assert!(back.rebalancing.is_some());
}
