//! Golden payment-lifecycle traces: exact JSONL output recorded for tiny
//! fixed-seed runs in each engine operating mode (lockstep, Windowed AIMD,
//! and the queueing §5 protocol).
//!
//! The trace is an *observation* layer: it must be bit-reproducible for a
//! fixed seed (same `(time, seq)` event order every run) and must never
//! perturb the simulation itself. Each test renders the trace twice from
//! independent runs and compares byte-for-byte, then checks the pinned
//! golden under `tests/goldens/`. Regenerate with `UPDATE_GOLDENS=1` after
//! an *intentional* trace-schema change.

use spider_core::congestion::{WindowConfig, Windowed};
use spider_core::{ExperimentConfig, SchemeConfig, TopologyConfig};
use spider_routing::ShortestPath;
use spider_sim::{QueueConfig, QueueingMode, SimConfig, SizeDistribution, Trace, WorkloadConfig};
use spider_types::SimDuration;
use std::path::PathBuf;

/// A run small enough that its golden stays a few KB: the 5-node §5.1
/// example topology, a dozen constant-size payments, a short horizon.
fn tiny_experiment(seed: u64, scheme: SchemeConfig) -> ExperimentConfig {
    ExperimentConfig {
        topology: TopologyConfig::PaperExample { capacity_xrp: 200 },
        workload: WorkloadConfig {
            count: 12,
            rate_per_sec: 10.0,
            size: SizeDistribution::Constant { xrp: 40.0 },
            sender_skew_scale: 4.0,
        },
        sim: SimConfig {
            horizon: SimDuration::from_secs(4),
            ..SimConfig::default()
        },
        scheme,
        dynamics: None,
        faults: None,
        overload: None,
        seed,
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(name)
}

/// Compares `jsonl` against the pinned golden (or rewrites it when
/// `UPDATE_GOLDENS` is set), and checks the Chrome render is valid JSON.
fn check_golden(name: &str, trace: &Trace) {
    let jsonl = trace.to_jsonl();
    assert!(!jsonl.is_empty(), "{name}: trace rendered empty");
    serde_json::parse(&trace.to_chrome_trace())
        .unwrap_or_else(|e| panic!("{name}: chrome trace is not valid JSON: {e}"));

    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir goldens");
        std::fs::write(&path, &jsonl).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); record it with UPDATE_GOLDENS=1",
            path.display()
        )
    });
    if jsonl != want {
        // A full assert_eq! on multi-KB strings is unreadable; report the
        // first diverging line instead.
        for (i, (got, exp)) in jsonl.lines().zip(want.lines()).enumerate() {
            assert_eq!(got, exp, "{name}: first divergence at line {}", i + 1);
        }
        assert_eq!(
            jsonl.lines().count(),
            want.lines().count(),
            "{name}: line counts differ"
        );
        panic!("{name}: traces differ only in trailing whitespace?");
    }
}

#[test]
fn lockstep_shortest_path_trace_is_reproducible_and_matches_golden() {
    let cfg = tiny_experiment(11, SchemeConfig::ShortestPath);
    let (r1, t1) = cfg.run_traced().expect("runs");
    let (r2, t2) = cfg.run_traced().expect("runs");
    assert_eq!(r1.completed_payments, r2.completed_payments);
    assert_eq!(
        t1.to_jsonl(),
        t2.to_jsonl(),
        "trace is not bit-reproducible"
    );
    assert!(
        r1.completed_payments > 0,
        "nothing completed; golden is vacuous"
    );
    check_golden("trace_lockstep_shortest.jsonl", &t1);
}

#[test]
fn windowed_aimd_trace_is_reproducible_and_matches_golden() {
    let cfg = tiny_experiment(11, SchemeConfig::ShortestPath);
    // A window smaller than the 40-XRP payments forces the AIMD gate to
    // stagger injects, so this golden pins behavior the bare lockstep
    // golden cannot reach (it must NOT be byte-identical to it).
    let wcfg = WindowConfig {
        initial: spider_types::Amount::from_xrp(20),
        ..WindowConfig::default()
    };
    let windowed = || Box::new(Windowed::new(ShortestPath::new(), wcfg.clone()));
    let (r1, t1) = cfg.run_with_router_traced(windowed()).expect("runs");
    let (_, t2) = cfg.run_with_router_traced(windowed()).expect("runs");
    assert_eq!(
        t1.to_jsonl(),
        t2.to_jsonl(),
        "trace is not bit-reproducible"
    );
    assert!(
        r1.completed_payments > 0,
        "nothing completed; golden is vacuous"
    );
    let lockstep = std::fs::read_to_string(golden_path("trace_lockstep_shortest.jsonl"));
    if let Ok(lockstep) = lockstep {
        assert_ne!(
            t1.to_jsonl(),
            lockstep,
            "window gating never engaged; golden duplicates the lockstep one"
        );
    }
    check_golden("trace_windowed_shortest.jsonl", &t1);
}

#[test]
fn fault_injected_trace_is_reproducible_and_matches_golden() {
    let mut cfg = tiny_experiment(11, SchemeConfig::ShortestPath);
    // Heavy loss plus a crash-prone plan: the golden pins the `fault`
    // (crash/recover) and `refund` (fault-refunded unit) event kinds and
    // the fault `DropReason` spellings that zero-fault goldens never emit.
    cfg.faults = Some(spider_faults::FaultConfig {
        message_loss_prob: 0.2,
        ack_loss_prob: 0.1,
        stuck_unit_prob: 0.05,
        jitter_range_ms: None,
        spike_prob: 0.0,
        spike_ms: 0.0,
        hop_timeout_secs: 0.25,
        crash: Some(spider_faults::CrashConfig {
            rate_per_sec: 1.5,
            recovery_mean_secs: Some(1.0),
        }),
        horizon_secs: 4.0,
    });
    let (r1, t1) = cfg.run_traced().expect("runs");
    let (r2, t2) = cfg.run_traced().expect("runs");
    assert_eq!(r1.faults_injected, r2.faults_injected);
    assert_eq!(
        t1.to_jsonl(),
        t2.to_jsonl(),
        "trace is not bit-reproducible"
    );
    assert!(
        r1.units_dropped_fault > 0,
        "no unit lost to a fault; golden is vacuous"
    );
    assert!(
        r1.fault_events > 0,
        "no crash/recovery fired; golden is vacuous"
    );
    assert!(
        r1.completed_payments > 0,
        "nothing completed; golden only shows failures"
    );
    check_golden("trace_faulted_shortest.jsonl", &t1);
}

#[test]
fn spider_protocol_trace_is_reproducible_and_matches_golden() {
    let mut cfg = tiny_experiment(11, SchemeConfig::spider_protocol(4));
    cfg.sim.queueing = QueueingMode::PerChannelFifo(QueueConfig::default());
    let (r1, t1) = cfg.run_traced().expect("runs");
    let (_, t2) = cfg.run_traced().expect("runs");
    assert_eq!(
        t1.to_jsonl(),
        t2.to_jsonl(),
        "trace is not bit-reproducible"
    );
    assert!(
        r1.completed_payments > 0,
        "nothing completed; golden is vacuous"
    );
    assert!(
        r1.units_queued > 0 || r1.units_acked > 0,
        "protocol machinery never engaged; golden is vacuous"
    );
    check_golden("trace_spider_protocol.jsonl", &t1);
}
