//! Fault-injection integration tests: full simulations under injected
//! message loss, stuck units and node crashes must stay deterministic and
//! conserving for every scheme (alone and combined with topology churn),
//! a zero-intensity plan must be observationally invisible, and the
//! expired-unit refund path must behave the same way in both queueing
//! modes.

use proptest::prelude::*;
use spider_core::{run_sweep, ExperimentConfig, SchemeConfig, SweepJob, TopologyConfig};
use spider_dynamics::DynamicsConfig;
use spider_faults::{FaultConfig, FaultPlan};
use spider_sim::{QueueConfig, QueueingMode, SimConfig, WorkloadConfig};
use spider_topology::gen;
use spider_types::{Amount, DetRng, SimDuration};

fn fault_experiment(scheme: SchemeConfig, seed: u64, intensity: f64) -> ExperimentConfig {
    ExperimentConfig {
        topology: TopologyConfig::Isp {
            capacity_xrp: 2_000,
        },
        workload: WorkloadConfig::small(500, 150.0),
        sim: SimConfig {
            horizon: SimDuration::from_secs(5),
            ..SimConfig::default()
        },
        scheme,
        dynamics: None,
        faults: (intensity > 0.0).then(|| {
            FaultConfig {
                horizon_secs: 5.0,
                ..FaultConfig::default()
            }
            .scaled(intensity)
        }),
        overload: None,
        seed,
    }
}

/// Every registered scheme survives a fault-heavy run with conservation
/// intact (checked inside `run()`), and the same seed reproduces the
/// same report bit for bit — including every fault counter.
#[test]
fn all_schemes_deterministic_and_conserving_under_faults() {
    let schemes = SchemeConfig::extended_lineup();
    // Two identical jobs per scheme, fanned across cores in one sweep
    // (every job seeds independently, so scheduling cannot leak in).
    let jobs: Vec<SweepJob> = schemes
        .iter()
        .flat_map(|&s| {
            [
                SweepJob::Scheme(fault_experiment(s, 11, 2.0)),
                SweepJob::Scheme(fault_experiment(s, 11, 2.0)),
            ]
        })
        .collect();
    let reports = run_sweep(&jobs).expect("sweep runs");
    for pair in reports.chunks(2) {
        let (a, b) = (&pair[0], &pair[1]);
        assert_eq!(a.completed_payments, b.completed_payments, "{}", a.scheme);
        assert_eq!(a.delivered_volume, b.delivered_volume, "{}", a.scheme);
        assert_eq!(a.units_locked, b.units_locked, "{}", a.scheme);
        assert_eq!(a.faults_injected, b.faults_injected, "{}", a.scheme);
        assert_eq!(a.fault_events, b.fault_events, "{}", a.scheme);
        assert_eq!(a.units_dropped_fault, b.units_dropped_fault, "{}", a.scheme);
        assert_eq!(
            a.drops_by_reason.message_lost, b.drops_by_reason.message_lost,
            "{}",
            a.scheme
        );
        assert_eq!(
            a.drops_by_reason.hop_timeout, b.drops_by_reason.hop_timeout,
            "{}",
            a.scheme
        );
        assert_eq!(
            a.drops_by_reason.node_crashed, b.drops_by_reason.node_crashed,
            "{}",
            a.scheme
        );
        assert!(
            a.faults_injected > 0,
            "{}: faults must actually fire",
            a.scheme
        );
        assert!(
            a.attempted_payments == 500,
            "{}: full workload attempted",
            a.scheme
        );
    }
}

/// Every scheme also stays deterministic and conserving with fault
/// injection and live topology churn active *simultaneously* — the two
/// schedules fork independent RNG streams, so neither may perturb the
/// other's reproducibility.
#[test]
fn all_schemes_deterministic_under_combined_faults_and_churn() {
    let combined = |scheme, seed| {
        let mut c = fault_experiment(scheme, seed, 1.5);
        c.dynamics = Some(
            DynamicsConfig {
                horizon_secs: 5.0,
                ..DynamicsConfig::default()
            }
            .scaled(0.75),
        );
        c
    };
    let jobs: Vec<SweepJob> = SchemeConfig::extended_lineup()
        .iter()
        .flat_map(|&s| {
            [
                SweepJob::Scheme(combined(s, 23)),
                SweepJob::Scheme(combined(s, 23)),
            ]
        })
        .collect();
    let reports = run_sweep(&jobs).expect("sweep runs");
    for pair in reports.chunks(2) {
        let (a, b) = (&pair[0], &pair[1]);
        assert_eq!(a.completed_payments, b.completed_payments, "{}", a.scheme);
        assert_eq!(a.delivered_volume, b.delivered_volume, "{}", a.scheme);
        assert_eq!(a.units_locked, b.units_locked, "{}", a.scheme);
        assert_eq!(a.faults_injected, b.faults_injected, "{}", a.scheme);
        assert_eq!(a.units_dropped_fault, b.units_dropped_fault, "{}", a.scheme);
        assert_eq!(a.units_dropped_churn, b.units_dropped_churn, "{}", a.scheme);
        assert_eq!(a.topology_events, b.topology_events, "{}", a.scheme);
        assert_eq!(a.fault_events, b.fault_events, "{}", a.scheme);
        assert!(a.faults_injected > 0, "{}: faults must fire", a.scheme);
        assert!(a.topology_events > 0, "{}: churn must fire", a.scheme);
    }
}

proptest! {
    /// Randomized (seed, scheme, fault intensity, churn intensity)
    /// combinations stay deterministic and conserving under the combined
    /// schedules. Restricted to the cache-repairing schemes so the 64
    /// fixed cases stay fast; the offline/atomic schemes get the same
    /// check at a pinned point in the sweep test above.
    #[test]
    fn random_combined_schedules_stay_deterministic(
        seed in 0u64..1_000,
        scheme_idx in 0usize..4,
        fault_tenths in 5u32..30,
        churn_tenths in 2u32..15,
    ) {
        let scheme = [
            SchemeConfig::ShortestPath,
            SchemeConfig::SpiderWaterfilling { paths: 4 },
            SchemeConfig::SpiderPricing { paths: 4 },
            SchemeConfig::spider_protocol(4),
        ][scheme_idx];
        let cfg = || {
            let mut c = fault_experiment(scheme, seed, fault_tenths as f64 / 10.0);
            c.workload = WorkloadConfig::small(120, 150.0);
            c.sim.horizon = SimDuration::from_secs(2);
            c.faults = c.faults.map(|f| FaultConfig {
                horizon_secs: 2.0,
                ..f
            });
            c.dynamics = Some(DynamicsConfig {
                horizon_secs: 2.0,
                ..DynamicsConfig::default()
            }.scaled(churn_tenths as f64 / 10.0));
            c
        };
        let a = cfg().run().expect("runs");
        let b = cfg().run().expect("runs");
        prop_assert_eq!(a.completed_payments, b.completed_payments);
        prop_assert_eq!(a.delivered_volume, b.delivered_volume);
        prop_assert_eq!(a.units_locked, b.units_locked);
        prop_assert_eq!(a.faults_injected, b.faults_injected);
        prop_assert_eq!(a.units_dropped_fault, b.units_dropped_fault);
        prop_assert_eq!(a.units_dropped_churn, b.units_dropped_churn);
        prop_assert_eq!(a.topology_events, b.topology_events);
        prop_assert_eq!(a.fault_events, b.fault_events);
    }
}

/// Faults hurt but do not zero out a retrying scheme: with the default
/// 1× plan, waterfilling still delivers most of what the clean run does
/// (the backoff layer steers units around cooled paths).
#[test]
fn backoff_scheme_retains_most_throughput_under_faults() {
    let scheme = SchemeConfig::SpiderWaterfilling { paths: 4 };
    let faulty = fault_experiment(scheme, 3, 1.0).run().expect("runs");
    let clean = fault_experiment(scheme, 3, 0.0).run().expect("runs");
    assert!(faulty.faults_injected > 0, "plan must actually inject");
    assert!(
        faulty.success_volume() > 0.5 * clean.success_volume(),
        "faulty {:.3} vs clean {:.3}",
        faulty.success_volume(),
        clean.success_volume()
    );
}

/// A zero-intensity fault plan is observationally identical to no plan at
/// all (the bit-identity regression the determinism goldens also pin).
#[test]
fn zero_intensity_faults_changes_nothing() {
    let scheme = SchemeConfig::ShortestPath;
    let mut cfg = fault_experiment(scheme, 5, 0.0);
    cfg.faults = Some(
        FaultConfig {
            horizon_secs: 5.0,
            ..FaultConfig::default()
        }
        .scaled(0.0),
    );
    let with_empty_plan = cfg.run().expect("runs");
    let without = fault_experiment(scheme, 5, 0.0).run().expect("runs");
    assert_eq!(
        with_empty_plan.completed_payments,
        without.completed_payments
    );
    assert_eq!(with_empty_plan.delivered_volume, without.delivered_volume);
    assert_eq!(with_empty_plan.units_locked, without.units_locked);
    assert_eq!(with_empty_plan.faults_injected, 0);
    assert_eq!(with_empty_plan.fault_events, 0);
    assert_eq!(with_empty_plan.units_dropped_fault, 0);
}

/// The generated plan itself is a pure function of (topology, config,
/// seed) — the piece `same seed ⇒ same report` rests on.
#[test]
fn fault_plan_generation_is_seed_deterministic() {
    let topo = gen::isp_topology(Amount::from_xrp(100));
    let cfg = FaultConfig {
        horizon_secs: 20.0,
        // One crash per second in expectation: the chance of an empty
        // 20 s plan is e^-20, i.e. none, for any seed.
        crash: Some(spider_faults::CrashConfig {
            rate_per_sec: 1.0,
            recovery_mean_secs: Some(2.0),
        }),
        ..FaultConfig::default()
    };
    let a = FaultPlan::generate(&topo, &cfg, &mut DetRng::new(42)).unwrap();
    let b = FaultPlan::generate(&topo, &cfg, &mut DetRng::new(42)).unwrap();
    assert_eq!(a, b);
    assert!(!a.events.is_empty(), "crash plan must schedule events");
}

/// Satellite regression for the expired-unit refund path: a payment whose
/// deadline passes after its units lock must refund every hop — counted
/// as `Expired` drops — in *both* queueing modes. The deadline here (5 ms)
/// is shorter than one hop delay (10 ms) and far shorter than the lockstep
/// confirmation delay (500 ms), so every locked unit expires in flight
/// and the run completes nothing; conservation is asserted inside `run()`.
#[test]
fn expired_units_refund_identically_in_both_queueing_modes() {
    let base = || {
        let mut c = fault_experiment(SchemeConfig::ShortestPath, 7, 0.0);
        c.workload = WorkloadConfig::small(200, 150.0);
        c.sim.deadline = Some(SimDuration::from_millis(5));
        c
    };

    let mut lockstep = base();
    lockstep.sim.queueing = QueueingMode::Lockstep;
    let ls = lockstep.run().expect("lockstep runs");

    let mut queueing = base();
    queueing.sim.queueing = QueueingMode::PerChannelFifo(QueueConfig::default());
    let qs = queueing.run().expect("queueing runs");

    for (mode, r) in [("lockstep", &ls), ("queueing", &qs)] {
        assert_eq!(r.completed_payments, 0, "{mode}: nothing can settle");
        assert!(
            r.units_locked > 0,
            "{mode}: units must lock before expiring"
        );
        assert!(
            r.drops_by_reason.expired > 0,
            "{mode}: in-flight expiry must be counted"
        );
        assert!(r.delivered_volume.is_zero(), "{mode}: no volume delivered");
    }
    // In lockstep every locked unit holds its whole path until the settle
    // fires, so each one must show up as exactly one expired refund.
    assert_eq!(ls.drops_by_reason.expired, ls.units_locked);
}
