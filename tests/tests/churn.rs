//! Topology-churn integration tests: incremental `PathCache` repair must
//! be indistinguishable from a cold rebuild on the final topology, and
//! full simulations under churn must stay deterministic and conserving
//! for every scheme.

use proptest::prelude::*;
use spider_core::{run_sweep, ExperimentConfig, SchemeConfig, SweepJob, TopologyConfig};
use spider_dynamics::{ChurnSchedule, DynamicsConfig};
use spider_routing::{PathCache, PathPolicy};
use spider_sim::{PathTable, SimConfig, TopologyUpdate, WorkloadConfig};
use spider_topology::{gen, Topology};
use spider_types::{Amount, ChannelId, DetRng, NodeId, SimDuration};

/// Resolve a cache's candidate sets to node sequences (PathIds differ
/// between caches whose interning orders differ; node sequences must not).
fn resolved(
    cache: &mut PathCache,
    topo: &Topology,
    table: &PathTable,
    pairs: &[(NodeId, NodeId)],
) -> Vec<Vec<Vec<NodeId>>> {
    pairs
        .iter()
        .map(|&(s, d)| {
            cache
                .get(topo, table, s, d)
                .iter()
                .map(|&id| table.entry(id).nodes().to_vec())
                .collect()
        })
        .collect()
}

/// One churn step: close / open / (ignored-by-cache) resize over a channel.
#[derive(Debug, Clone, Copy)]
enum Step {
    Close(usize),
    Open(usize),
    Resize(usize),
}

fn apply_step(
    step: Step,
    live: &mut [bool],
    topo: &Topology,
    table: &PathTable,
    cache: &mut PathCache,
) {
    let m = topo.channel_count();
    let update = match step {
        Step::Close(i) if live[i % m] => {
            live[i % m] = false;
            TopologyUpdate {
                closed: vec![ChannelId::from_index(i % m)],
                ..Default::default()
            }
        }
        Step::Open(i) if !live[i % m] => {
            live[i % m] = true;
            TopologyUpdate {
                opened: vec![ChannelId::from_index(i % m)],
                ..Default::default()
            }
        }
        Step::Resize(i) => TopologyUpdate {
            resized: vec![ChannelId::from_index(i % m)],
            ..Default::default()
        },
        // Idempotent no-op: the engine would not emit an update at all.
        _ => return,
    };
    cache.on_topology_change(topo, table, &update);
}

proptest! {
    /// After an arbitrary churn sequence, the incrementally-repaired
    /// cache's candidate sets (resolved to node sequences) are
    /// bit-identical to a cold cache prewarmed on the final topology —
    /// across every `PathPolicy` variant.
    #[test]
    fn incremental_repair_equals_cold_rebuild(
        seed in 0u64..1_000,
        steps in proptest::collection::vec(
            (0usize..3, 0usize..64), 1..12,
        ),
        policy_idx in 0usize..3,
    ) {
        let policy = [
            PathPolicy::EdgeDisjoint(4),
            PathPolicy::KShortest(3),
            PathPolicy::Shortest,
        ][policy_idx];
        let mut rng = DetRng::new(seed);
        let topo = gen::barabasi_albert(60, 2, Amount::from_xrp(100), &mut rng);
        let mut pairs = Vec::new();
        for _ in 0..24 {
            let s = NodeId(rng.index(topo.node_count()) as u32);
            let d = NodeId(rng.index(topo.node_count()) as u32);
            if s != d {
                pairs.push((s, d));
            }
        }
        let table = PathTable::new();
        let mut warm = PathCache::new(policy);
        warm.prefill(&topo, &table, &pairs);
        let mut live = vec![true; topo.channel_count()];
        for &(kind, i) in &steps {
            let step = match kind {
                0 => Step::Close(i),
                1 => Step::Open(i),
                _ => Step::Resize(i),
            };
            apply_step(step, &mut live, &topo, &table, &mut warm);
        }
        // Cold cache: tell it the final mask in one update, then prewarm.
        let closed: Vec<ChannelId> = live
            .iter()
            .enumerate()
            .filter(|(_, &l)| !l)
            .map(|(i, _)| ChannelId::from_index(i))
            .collect();
        let cold_table = PathTable::new();
        let mut cold = PathCache::new(policy);
        if !closed.is_empty() {
            cold.on_topology_change(&topo, &cold_table, &TopologyUpdate {
                closed,
                ..Default::default()
            });
        }
        cold.prefill(&topo, &cold_table, &pairs);
        prop_assert_eq!(
            resolved(&mut warm, &topo, &table, &pairs),
            resolved(&mut cold, &topo, &cold_table, &pairs),
            "policy {:?}, steps {:?}", policy, steps
        );
        // No surviving candidate traverses a closed channel.
        for &(s, d) in &pairs {
            for &id in warm.get(&topo, &table, s, d) {
                for &(c, _) in table.entry(id).hops() {
                    prop_assert!(live[c.index()], "candidate over closed channel");
                }
            }
        }
    }
}

fn churn_experiment(scheme: SchemeConfig, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        topology: TopologyConfig::Isp {
            capacity_xrp: 2_000,
        },
        workload: WorkloadConfig::small(500, 150.0),
        sim: SimConfig {
            horizon: SimDuration::from_secs(5),
            ..SimConfig::default()
        },
        scheme,
        dynamics: Some(DynamicsConfig {
            close_rate_per_sec: 1.0,
            reopen_mean_secs: Some(1.5),
            resize_rate_per_sec: 0.5,
            node_leave_rate_per_sec: 0.2,
            spawn_fraction: 0.05,
            flap_channels: 2,
            flap_period_secs: 2.0,
            horizon_secs: 5.0,
            ..DynamicsConfig::default()
        }),
        faults: None,
        overload: None,
        seed,
    }
}

/// Every registered scheme survives a churn-heavy run with conservation
/// intact (checked inside `run()`), and the same seed reproduces the
/// same report bit for bit.
#[test]
fn all_schemes_deterministic_and_conserving_under_churn() {
    let schemes = SchemeConfig::extended_lineup();
    // Two identical jobs per scheme, fanned across cores in one sweep
    // (every job seeds independently, so scheduling cannot leak in).
    let jobs: Vec<SweepJob> = schemes
        .iter()
        .flat_map(|&s| {
            [
                SweepJob::Scheme(churn_experiment(s, 11)),
                SweepJob::Scheme(churn_experiment(s, 11)),
            ]
        })
        .collect();
    let reports = run_sweep(&jobs).expect("sweep runs");
    for pair in reports.chunks(2) {
        let (a, b) = (&pair[0], &pair[1]);
        assert_eq!(a.completed_payments, b.completed_payments, "{}", a.scheme);
        assert_eq!(a.delivered_volume, b.delivered_volume, "{}", a.scheme);
        assert_eq!(a.units_locked, b.units_locked, "{}", a.scheme);
        assert_eq!(a.units_dropped_churn, b.units_dropped_churn, "{}", a.scheme);
        assert_eq!(a.topology_events, b.topology_events, "{}", a.scheme);
        assert_eq!(
            a.topology_event_times_s, b.topology_event_times_s,
            "{}",
            a.scheme
        );
        assert!(
            a.topology_events > 0,
            "{}: churn must actually fire",
            a.scheme
        );
        assert!(
            a.attempted_payments == 500,
            "{}: full workload attempted",
            a.scheme
        );
    }
}

/// Churn hurts but does not zero out a repairing scheme: with moderate
/// churn, waterfilling still delivers most of what the static run does.
#[test]
fn repairing_scheme_retains_most_throughput_under_churn() {
    let scheme = SchemeConfig::SpiderWaterfilling { paths: 4 };
    let churned = churn_experiment(scheme, 3).run().expect("runs");
    let mut static_cfg = churn_experiment(scheme, 3);
    static_cfg.dynamics = None;
    let quiet = static_cfg.run().expect("runs");
    assert!(churned.delivered_volume <= quiet.delivered_volume);
    assert!(
        churned.success_volume() > 0.4 * quiet.success_volume(),
        "churned {:.3} vs quiet {:.3}",
        churned.success_volume(),
        quiet.success_volume()
    );
}

/// An empty churn schedule is observationally identical to no schedule at
/// all (the static-topology regression the determinism goldens also pin).
#[test]
fn zero_intensity_dynamics_changes_nothing() {
    let scheme = SchemeConfig::ShortestPath;
    let mut cfg = churn_experiment(scheme, 5);
    cfg.dynamics = Some(DynamicsConfig::default().scaled(0.0));
    let with_empty_schedule = cfg.run().expect("runs");
    let mut cfg = churn_experiment(scheme, 5);
    cfg.dynamics = None;
    let without = cfg.run().expect("runs");
    assert_eq!(
        with_empty_schedule.completed_payments,
        without.completed_payments
    );
    assert_eq!(
        with_empty_schedule.delivered_volume,
        without.delivered_volume
    );
    assert_eq!(with_empty_schedule.units_locked, without.units_locked);
    assert_eq!(with_empty_schedule.topology_events, 0);
}

/// The generated schedule itself is a pure function of (topology, config,
/// seed) — the piece `same seed ⇒ same report` rests on.
#[test]
fn schedule_generation_is_seed_deterministic() {
    let topo = gen::isp_topology(Amount::from_xrp(100));
    let cfg = DynamicsConfig::default();
    let a = ChurnSchedule::generate(&topo, &cfg, &mut DetRng::new(42)).unwrap();
    let b = ChurnSchedule::generate(&topo, &cfg, &mut DetRng::new(42)).unwrap();
    assert_eq!(a, b);
    assert!(a.midrun_events() > 0);
}
