//! Golden determinism tests: exact `SimReport` outcomes recorded on the
//! pre-interner engine (PR 1 tree) for fixed seeds.
//!
//! The hot-path overhaul (path interning, slab recycling, analytic
//! waterfilling, cached shortest paths) must be *bit-identical* in its
//! observable outcomes: it changes how fast decisions are computed, never
//! which decisions are made. Any drift in these numbers means a semantic
//! change snuck into the refactor.

use spider_core::{ExperimentConfig, SchemeConfig, TopologyConfig};
use spider_sim::{SimConfig, SizeDistribution, WorkloadConfig};
use spider_types::SimDuration;

/// The capacity-constrained small ISP experiment the goldens were recorded
/// on (heavy retry pressure exercises every hot path).
fn golden_experiment(seed: u64, scheme: SchemeConfig) -> ExperimentConfig {
    ExperimentConfig {
        topology: TopologyConfig::Isp {
            capacity_xrp: 4_000,
        },
        workload: WorkloadConfig {
            count: 1_500,
            rate_per_sec: 500.0,
            size: SizeDistribution::RippleIsp,
            sender_skew_scale: 8.0,
        },
        sim: SimConfig {
            horizon: SimDuration::from_secs(5),
            ..SimConfig::default()
        },
        scheme,
        dynamics: None,
        faults: None,
        overload: None,
        seed,
    }
}

/// One recorded outcome.
struct Golden {
    seed: u64,
    completed: u64,
    delivered_drops: u64,
    units_locked: u64,
    units_failed: u64,
    retries: u64,
    units_acked: u64,
    units_marked: u64,
    units_dropped: u64,
    units_queued: u64,
}

fn check(scheme: SchemeConfig, golden: &[Golden]) {
    for g in golden {
        let r = golden_experiment(g.seed, scheme).run().expect("runs");
        assert_eq!(r.completed_payments, g.completed, "seed {}", g.seed);
        assert_eq!(
            r.delivered_volume.drops(),
            g.delivered_drops,
            "seed {}",
            g.seed
        );
        assert_eq!(r.units_locked, g.units_locked, "seed {}", g.seed);
        assert_eq!(r.units_failed, g.units_failed, "seed {}", g.seed);
        assert_eq!(r.retries, g.retries, "seed {}", g.seed);
        assert_eq!(r.units_acked, g.units_acked, "seed {}", g.seed);
        assert_eq!(r.units_marked, g.units_marked, "seed {}", g.seed);
        assert_eq!(r.units_dropped, g.units_dropped, "seed {}", g.seed);
        assert_eq!(r.units_queued, g.units_queued, "seed {}", g.seed);
    }
}

#[test]
fn shortest_path_outcomes_match_pre_refactor_goldens() {
    check(
        SchemeConfig::ShortestPath,
        &[
            Golden {
                seed: 7,
                completed: 1271,
                delivered_drops: 192_064_151_469,
                units_locked: 19_900,
                units_failed: 166_992,
                retries: 7_628,
                units_acked: 0,
                units_marked: 0,
                units_dropped: 0,
                units_queued: 0,
            },
            Golden {
                seed: 23,
                completed: 1210,
                delivered_drops: 179_990_858_251,
                units_locked: 18_695,
                units_failed: 228_159,
                retries: 10_377,
                units_acked: 0,
                units_marked: 0,
                units_dropped: 0,
                units_queued: 0,
            },
        ],
    );
}

#[test]
fn waterfilling_outcomes_match_pre_refactor_goldens() {
    check(
        SchemeConfig::SpiderWaterfilling { paths: 4 },
        &[
            Golden {
                seed: 7,
                completed: 1447,
                delivered_drops: 230_675_270_516,
                units_locked: 23_810,
                units_failed: 0,
                retries: 1_545,
                units_acked: 0,
                units_marked: 0,
                units_dropped: 0,
                units_queued: 0,
            },
            Golden {
                seed: 23,
                completed: 1378,
                delivered_drops: 213_391_219_630,
                units_locked: 22_100,
                units_failed: 0,
                retries: 4_062,
                units_acked: 0,
                units_marked: 0,
                units_dropped: 0,
                units_queued: 0,
            },
        ],
    );
}

#[test]
fn spider_protocol_outcomes_match_pre_refactor_goldens() {
    check(
        SchemeConfig::spider_protocol(4),
        &[
            Golden {
                seed: 7,
                completed: 1325,
                delivered_drops: 218_127_445_565,
                units_locked: 22_861,
                units_failed: 2_355,
                retries: 1_586,
                units_acked: 24_959,
                units_marked: 8_369,
                units_dropped: 2_355,
                units_queued: 2_988,
            },
            Golden {
                seed: 23,
                completed: 1239,
                delivered_drops: 207_952_059_002,
                units_locked: 21_593,
                units_failed: 3_726,
                retries: 2_742,
                units_acked: 25_239,
                units_marked: 9_484,
                units_dropped: 3_726,
                units_queued: 2_193,
            },
        ],
    );
}

/// The Ripple-like family golden: recorded on the PR 2 tree (whose
/// equivalence to the pre-interner engine was established by the seed-42
/// full-scale baseline in `crates/bench/baselines/` and the ISP goldens
/// above), pinning the scale-free-topology code paths — generator,
/// largest-component extraction, per-source BFS trees, edge-disjoint
/// oracles — that the ISP goldens cannot reach.
fn ripple_golden_experiment(seed: u64, scheme: SchemeConfig) -> ExperimentConfig {
    ExperimentConfig {
        topology: TopologyConfig::RippleLike {
            nodes: 1_200,
            capacity_xrp: 1_000,
        },
        workload: WorkloadConfig {
            count: 2_000,
            rate_per_sec: 400.0,
            size: SizeDistribution::RippleFull,
            sender_skew_scale: 150.0,
        },
        sim: SimConfig {
            horizon: SimDuration::from_secs(6),
            ..SimConfig::default()
        },
        scheme,
        dynamics: None,
        faults: None,
        overload: None,
        seed,
    }
}

#[test]
fn ripple_like_outcomes_match_recorded_goldens() {
    for (scheme, g) in [
        (
            SchemeConfig::ShortestPath,
            Golden {
                seed: 13,
                completed: 925,
                delivered_drops: 253_841_755_436,
                units_locked: 26_312,
                units_failed: 1_266_798,
                retries: 33_942,
                units_acked: 0,
                units_marked: 0,
                units_dropped: 0,
                units_queued: 0,
            },
        ),
        (
            SchemeConfig::spider_protocol(4),
            Golden {
                seed: 13,
                completed: 1_156,
                delivered_drops: 393_073_297_703,
                units_locked: 41_155,
                units_failed: 15_935,
                retries: 7_985,
                units_acked: 55_938,
                units_marked: 34_493,
                units_dropped: 15_951,
                units_queued: 9_421,
            },
        ),
    ] {
        let r = ripple_golden_experiment(g.seed, scheme)
            .run()
            .expect("runs");
        assert_eq!(r.completed_payments, g.completed, "{scheme:?}");
        assert_eq!(r.delivered_volume.drops(), g.delivered_drops, "{scheme:?}");
        assert_eq!(r.units_locked, g.units_locked, "{scheme:?}");
        assert_eq!(r.units_failed, g.units_failed, "{scheme:?}");
        assert_eq!(r.retries, g.retries, "{scheme:?}");
        assert_eq!(r.units_acked, g.units_acked, "{scheme:?}");
        assert_eq!(r.units_marked, g.units_marked, "{scheme:?}");
        assert_eq!(r.units_dropped, g.units_dropped, "{scheme:?}");
        assert_eq!(r.units_queued, g.units_queued, "{scheme:?}");
    }
}
