//! Extending Spider: plugging in a custom routing scheme.
//!
//! ```sh
//! cargo run --release --example custom_scheme
//! ```
//!
//! Implements a deliberately naive scheme — "greedy hot potato": always
//! send the full remainder along the single path whose *first hop* has the
//! most funds — directly against the [`spider_sim::Router`] trait, then
//! races it against Spider (Waterfilling) on identical workloads. Use this
//! as the template for experimenting with your own algorithms.

use spider_core::experiment::demand_graph;
use spider_core::{ExperimentConfig, SchemeConfig, TopologyConfig};
use spider_lp::paths::k_edge_disjoint_paths;
use spider_sim::{
    NetworkView, RouteProposal, RouteRequest, Router, SimConfig, Simulation, SizeDistribution,
    Workload, WorkloadConfig,
};
use spider_types::{DetRng, SimDuration};

/// Pick, among 4 edge-disjoint paths, the one whose first hop currently
/// holds the most spendable funds; shove everything onto it.
struct HotPotato;

impl Router for HotPotato {
    fn name(&self) -> &'static str {
        "hot-potato"
    }

    fn route(&mut self, req: &RouteRequest, view: &NetworkView<'_>) -> Vec<RouteProposal> {
        let paths = k_edge_disjoint_paths(view.topo, req.src, req.dst, 4);
        let best = paths.into_iter().max_by_key(|p| {
            let first_hop = view
                .topo
                .channel_between(p.nodes[0], p.nodes[1])
                .expect("adjacent");
            let dir = view.topo.channel(first_hop).direction_from(p.nodes[0]);
            view.available(first_hop, dir)
        });
        match best {
            Some(p) => vec![RouteProposal {
                path: view.intern(&p.nodes),
                amount: req.remaining,
            }],
            None => Vec::new(),
        }
    }
}

fn main() {
    let cfg = ExperimentConfig {
        topology: TopologyConfig::Isp {
            capacity_xrp: 4_000,
        },
        workload: WorkloadConfig {
            count: 12_000,
            rate_per_sec: 1_000.0,
            size: SizeDistribution::RippleIsp,
            sender_skew_scale: 8.0,
        },
        sim: SimConfig {
            horizon: SimDuration::from_secs(13),
            ..SimConfig::default()
        },
        scheme: SchemeConfig::SpiderWaterfilling { paths: 4 },
        dynamics: None,
        faults: None,
        overload: None,
        seed: 3,
    };

    // The built-in scheme goes through the declarative API…
    let waterfilling = cfg.run().expect("experiment runs");

    // …the custom one drives the simulator directly.
    let rng = DetRng::new(cfg.seed);
    let topo = cfg.topology.build(&rng).expect("topology builds");
    let mut wrng = rng.fork("workload");
    let workload = Workload::generate(topo.node_count(), &cfg.workload, &mut wrng);
    let _demands = demand_graph(&workload, topo.node_count()); // available if your scheme needs it
    let mut sim = Simulation::new(topo, workload, Box::new(HotPotato), cfg.sim.clone())
        .expect("simulation builds");
    let hot_potato = sim.run();
    sim.check_conservation();

    println!("{}", waterfilling.summary());
    println!("{}", hot_potato.summary());
    println!(
        "\nwaterfilling's bottleneck-aware, multi-path splitting beats first-hop greed by {:.1} percentage points of success ratio.",
        100.0 * (waterfilling.success_ratio() - hot_potato.success_ratio())
    );
}
