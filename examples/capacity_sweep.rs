//! Mini capacity sweep (Fig. 7 in miniature).
//!
//! ```sh
//! cargo run --release --example capacity_sweep
//! ```
//!
//! Sweeps per-channel capacity on the ISP topology for Spider
//! (Waterfilling) vs the shortest-path baseline and prints how much less
//! capital the imbalance-aware scheme needs for the same success rate —
//! the economic argument of §1 ("funds deposited into payment channels
//! cannot be used for other economic activities").

use spider_core::{ExperimentConfig, SchemeConfig, TopologyConfig};
use spider_sim::{SimConfig, SizeDistribution, WorkloadConfig};
use spider_types::SimDuration;

fn main() {
    let schemes = [
        SchemeConfig::SpiderWaterfilling { paths: 4 },
        SchemeConfig::ShortestPath,
    ];
    println!(
        "{:>14} {:>24} {:>18}",
        "capacity (XRP)", "spider-waterfilling (%)", "shortest-path (%)"
    );
    for capacity_xrp in [5_000, 10_000, 20_000, 40_000] {
        let cfg = ExperimentConfig {
            topology: TopologyConfig::Isp { capacity_xrp },
            workload: WorkloadConfig {
                count: 5_000,
                rate_per_sec: 1_000.0,
                size: SizeDistribution::RippleIsp,
                sender_skew_scale: 8.0,
            },
            sim: SimConfig {
                horizon: SimDuration::from_secs(6),
                ..SimConfig::default()
            },
            scheme: schemes[0],
            dynamics: None,
            faults: None,
            overload: None,
            seed: 7,
        };
        let reports = cfg.run_schemes(&schemes).expect("experiments run");
        println!(
            "{:>14} {:>24.2} {:>18.2}",
            capacity_xrp,
            100.0 * reports[0].success_ratio(),
            100.0 * reports[1].success_ratio(),
        );
    }
    println!("\nwaterfilling reaches any success target with less escrowed capital —");
    println!("the capacity-efficiency argument of Fig. 7.");
}
