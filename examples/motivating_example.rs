//! The §5.1 motivating example, as a guided tour of the fluid-model API.
//!
//! ```sh
//! cargo run --release --example motivating_example
//! ```
//!
//! Walks through the paper's Fig. 4/5 narrative: why shortest-path
//! balanced routing caps at 5 units/s while imbalance-aware multipath
//! routing reaches 8, and why 8 is fundamental (Proposition 1).

use spider_lp::fluid::{FluidProblem, PathSelection};
use spider_paygraph::decompose::decompose;
use spider_paygraph::examples::paper_example_demands;
use spider_topology::gen::paper_example_topology;
use spider_types::Amount;

fn main() {
    let topo = paper_example_topology(Amount::from_xrp(1_000_000));
    let demands = paper_example_demands();

    println!("== The payment graph (Fig. 4a) ==");
    for e in demands.edges() {
        println!(
            "  node {} wants to pay node {} at {} unit/s",
            e.src.0 + 1,
            e.dst.0 + 1,
            e.rate
        );
    }
    println!("  total demand: {} units/s", demands.total_demand());

    println!("\n== Shortest-path balanced routing (Fig. 4b) ==");
    let sp = FluidProblem::new(&topo, &demands, 0.5, PathSelection::ShortestOnly)
        .solve_balanced()
        .expect("LP solves");
    println!("  throughput: {} units/s", sp.throughput);
    println!("  (any higher rate would unbalance some channel and drain it)");

    println!("\n== Imbalance-aware multipath routing (Fig. 4c) ==");
    let multi = FluidProblem::new(&topo, &demands, 0.5, PathSelection::KShortest(4))
        .solve_balanced()
        .expect("LP solves");
    println!("  throughput: {} units/s", multi.throughput);
    for f in &multi.flows {
        let hops: Vec<String> = f.path.nodes.iter().map(|n| (n.0 + 1).to_string()).collect();
        println!(
            "    {} → {}: {:.1} unit/s via {}",
            f.src.0 + 1,
            f.dst.0 + 1,
            f.rate,
            hops.join("→")
        );
    }
    println!("  note demand 2→4 splitting over 2→4 and 2→3→4: the detour");
    println!("  counterbalances demands 3→2 and 4→3 on channels 2-3 and 3-4.");

    println!("\n== Why 8 is fundamental (Prop. 1, Fig. 5) ==");
    let dec = decompose(&demands, 1e-6);
    println!(
        "  max circulation ν(C*) = {} units/s",
        dec.circulation_value
    );
    println!(
        "  DAG residue           = {} units/s (unroutable without on-chain rebalancing)",
        dec.dag.total_demand()
    );
    for e in dec.dag.edges() {
        println!(
            "    stranded: {} → {} at {} unit/s",
            e.src.0 + 1,
            e.dst.0 + 1,
            e.rate
        );
    }

    assert_eq!(sp.throughput.round() as i64, 5);
    assert_eq!(multi.throughput.round() as i64, 8);
    println!("\nshortest-path = 5, optimal balanced = 8 — exactly the paper's numbers ✓");
}
