//! A Ripple-scale simulation with demand-structure analysis.
//!
//! ```sh
//! cargo run --release --example ripple_simulation
//! ```
//!
//! Builds a Ripple-like scale-free network, inspects its demand matrix's
//! circulation/DAG split (the quantity that fundamentally bounds balanced
//! throughput, §5.2.2), then compares Spider (Waterfilling) with
//! SpeedyMurmurs on the same workload.

use spider_core::experiment::demand_graph;
use spider_core::{ExperimentConfig, SchemeConfig, TopologyConfig};
use spider_paygraph::decompose::decompose;
use spider_sim::{SimConfig, SizeDistribution, Workload, WorkloadConfig};
use spider_types::{DetRng, SimDuration};

fn main() {
    let nodes = 300;
    let cfg = ExperimentConfig {
        topology: TopologyConfig::RippleLike {
            nodes,
            capacity_xrp: 6_000,
        },
        workload: WorkloadConfig {
            count: 12_000,
            rate_per_sec: 700.0,
            size: SizeDistribution::RippleFull,
            sender_skew_scale: nodes as f64 / 8.0,
        },
        sim: SimConfig {
            horizon: SimDuration::from_secs(19),
            ..SimConfig::default()
        },
        scheme: SchemeConfig::SpiderWaterfilling { paths: 4 },
        dynamics: None,
        faults: None,
        overload: None,
        seed: 11,
    };

    // Inspect the workload's demand structure first.
    let rng = DetRng::new(cfg.seed);
    let topo = cfg.topology.build(&rng).expect("topology builds");
    let mut wrng = rng.fork("workload");
    let workload = Workload::generate(topo.node_count(), &cfg.workload, &mut wrng);
    let demands = demand_graph(&workload, topo.node_count());
    let dec = decompose(&demands, 1e-6);
    println!(
        "network: {} nodes, {} channels (largest component of a scale-free graph)",
        topo.node_count(),
        topo.channel_count()
    );
    println!(
        "demand: {:.0} XRP/s over {} pairs; circulation {:.0} XRP/s ({:.1} %), DAG {:.0} XRP/s",
        demands.total_demand(),
        demands.edge_count(),
        dec.circulation_value,
        100.0 * dec.circulation_value / demands.total_demand(),
        dec.dag.total_demand(),
    );
    println!("→ no perfectly balanced scheme can deliver more than the circulation share\n  forever; extra capacity only buffers the difference for a while (§5.2.2).\n");

    for scheme in [
        SchemeConfig::SpiderWaterfilling { paths: 4 },
        SchemeConfig::SpeedyMurmurs { trees: 3 },
    ] {
        let mut c = cfg.clone();
        c.scheme = scheme;
        let r = c.run().expect("experiment runs");
        println!("{}", r.summary());
    }
}
