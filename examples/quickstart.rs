//! Quickstart: simulate Spider (Waterfilling) on the paper's ISP topology.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the 32-node ISP network with 30,000 XRP channels, generates a
//! 5,000-transaction workload with the paper's size/sender distributions,
//! routes it with Spider (Waterfilling), and prints the two §6 metrics.

use spider_core::{ExperimentConfig, SchemeConfig, TopologyConfig};
use spider_sim::{SimConfig, SizeDistribution, WorkloadConfig};
use spider_types::SimDuration;

fn main() {
    let config = ExperimentConfig {
        topology: TopologyConfig::Isp {
            capacity_xrp: 30_000,
        },
        workload: WorkloadConfig {
            count: 5_000,
            rate_per_sec: 1_000.0,
            size: SizeDistribution::RippleIsp,
            sender_skew_scale: 8.0,
        },
        sim: SimConfig {
            horizon: SimDuration::from_secs(6),
            ..SimConfig::default()
        },
        scheme: SchemeConfig::SpiderWaterfilling { paths: 4 },
        dynamics: None,
        faults: None,
        overload: None,
        seed: 42,
    };

    println!(
        "simulating {} transactions on the ISP topology…",
        config.workload.count
    );
    let report = config.run().expect("experiment runs");

    println!("\n{}", report.summary());
    println!("\ndetail:");
    println!(
        "  success ratio        {:.2} %",
        100.0 * report.success_ratio()
    );
    println!(
        "  success volume       {:.2} %",
        100.0 * report.success_volume()
    );
    println!(
        "  avg completion time  {:.3} s",
        report.avg_completion_time().unwrap_or(f64::NAN)
    );
    println!(
        "  avg path length      {:.2} hops",
        report.avg_path_length().unwrap_or(f64::NAN)
    );
    println!(
        "  unit lock rate       {:.2} %",
        100.0 * report.unit_lock_rate()
    );
    println!("  queue retries        {}", report.retries);
}
