//! Sender-side path price estimation (§5.3).
//!
//! Routers stamp a price — queueing delay plus the adverse part of the
//! channel's flow imbalance, the discrete analogue of the paper's
//! `λ + µ` edge price with its `x_u − x_v` imbalance term — onto every
//! transiting unit (`spider-sim::queue`). The sender cannot observe router
//! state directly; it sees only the stamps coming back on unit
//! acknowledgements. [`PathPriceEstimator`] smooths those observations
//! into a per-path price the allocator can steer on, with failed units
//! (drops, timeouts) contributing a configurable penalty price so paths
//! that eat units look expensive even though they return no stamp sum.

use spider_types::MarkStamp;

/// Exponentially-weighted moving average of a path's acked prices.
#[derive(Debug, Clone)]
pub struct PathPriceEstimator {
    /// Smoothing factor in (0, 1]: weight of the newest observation.
    gamma: f64,
    /// Price charged for a failed (dropped) unit.
    nack_price: f64,
    /// Current estimate.
    estimate: f64,
    /// Number of observations folded in.
    observations: u64,
}

impl PathPriceEstimator {
    /// Creates an estimator starting at price zero.
    ///
    /// `gamma` is the EWMA weight of each new observation; `nack_price`
    /// is the price attributed to a unit that never arrived.
    pub fn new(gamma: f64, nack_price: f64) -> Self {
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        assert!(nack_price >= 0.0, "nack price must be non-negative");
        PathPriceEstimator {
            gamma,
            nack_price,
            estimate: 0.0,
            observations: 0,
        }
    }

    /// Folds one unit acknowledgement into the estimate.
    pub fn observe(&mut self, delivered: bool, stamp: &MarkStamp) {
        let observed = if delivered {
            stamp.price
        } else {
            self.nack_price.max(stamp.price)
        };
        if self.observations == 0 {
            self.estimate = observed;
        } else {
            self.estimate = (1.0 - self.gamma) * self.estimate + self.gamma * observed;
        }
        self.observations += 1;
    }

    /// The current smoothed path price (0 before any observation).
    pub fn price(&self) -> f64 {
        self.estimate
    }

    /// Number of acknowledgements observed.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_types::SimDuration;

    fn stamp(price: f64) -> MarkStamp {
        let mut s = MarkStamp::CLEAR;
        s.absorb(price, false, SimDuration::ZERO);
        s
    }

    #[test]
    fn starts_at_zero_and_adopts_first_observation() {
        let mut e = PathPriceEstimator::new(0.1, 5.0);
        assert_eq!(e.price(), 0.0);
        e.observe(true, &stamp(2.0));
        assert_eq!(e.price(), 2.0, "first observation is adopted outright");
    }

    #[test]
    fn ewma_tracks_toward_new_prices() {
        let mut e = PathPriceEstimator::new(0.5, 5.0);
        e.observe(true, &stamp(0.0));
        e.observe(true, &stamp(4.0));
        assert!((e.price() - 2.0).abs() < 1e-12);
        e.observe(true, &stamp(4.0));
        assert!((e.price() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn nacks_charge_the_penalty_price() {
        let mut e = PathPriceEstimator::new(1.0, 7.5);
        e.observe(false, &stamp(0.25));
        assert_eq!(e.price(), 7.5);
        // A nack with an even higher stamped price keeps the stamp.
        e.observe(false, &stamp(9.0));
        assert_eq!(e.price(), 9.0);
        assert_eq!(e.observations(), 2);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_bad_gamma() {
        let _ = PathPriceEstimator::new(0.0, 1.0);
    }
}
