//! The online Spider router: k edge-disjoint paths, price-steered
//! allocation, per-path AIMD windows.
//!
//! [`ProtocolRouter`] is the sender side of §5's protocol. For every
//! (sender, receiver) pair it precomputes `k` edge-disjoint candidate
//! paths (the paper's evaluation uses 4), then on every routing request
//! fills windows cheapest-path-first:
//!
//! 1. each path's AIMD controller ([`crate::rate`]) bounds the value the
//!    sender may have in flight on it;
//! 2. among paths with remaining budget, MTU-sized units go to the path
//!    with the lowest smoothed price ([`crate::price`]), ties broken
//!    toward the shorter (lower-index) path;
//! 3. acknowledgements (delivered/marked/dropped) update both the window
//!    and the price estimate.
//!
//! The router is deliberately ignorant of live channel balances: unlike
//! the offline schemes it steers *only* on the feedback a real Spider
//! host would have — acks and marks — which is what makes it runnable as
//! a fully decentralized protocol.

use crate::price::PathPriceEstimator;
use crate::rate::{PathController, RateConfig};
use spider_routing::{BackoffConfig, ChannelBreakers, PathCache, PathPenalties, PathPolicy};
use spider_sim::{
    NetworkView, RouteProposal, RouteRequest, Router, TopologyUpdate, UnitAck, UnitOutcome,
};
use spider_types::{Amount, DropReason, NodeId, PathId};
use std::collections::HashMap;

/// Tunables of the protocol sender.
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    /// Per-path AIMD window parameters.
    pub rate: RateConfig,
    /// EWMA weight of each new price observation.
    pub price_gamma: f64,
    /// Price attributed to a dropped unit (see
    /// [`PathPriceEstimator`](crate::price::PathPriceEstimator)).
    pub nack_price: f64,
    /// Fault-backoff cooldown shape (base and doubling cap) for the
    /// per-path penalty table.
    pub backoff: BackoffConfig,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            rate: RateConfig::default(),
            price_gamma: 0.125,
            nack_price: 2.0,
            backoff: BackoffConfig::default(),
        }
    }
}

/// Per-(sender, receiver) protocol state. Candidate paths are interned
/// ids, so matching an acknowledged path against the candidate set is an
/// integer comparison instead of a node-vector equality walk.
struct PairState {
    paths: Vec<PathId>,
    controllers: Vec<PathController>,
    prices: Vec<PathPriceEstimator>,
}

/// The §5 protocol router (non-atomic; requires
/// [`QueueingMode::PerChannelFifo`](spider_sim::QueueingMode::PerChannelFifo)
/// for its feedback loop to close — in lockstep mode no acks arrive and
/// windows stay pinned near their initial value).
pub struct ProtocolRouter {
    cfg: ProtocolConfig,
    cache: PathCache,
    pairs: HashMap<(NodeId, NodeId), PairState>,
    /// Fault cooldowns (empty for the whole run unless faults fire).
    penalties: PathPenalties,
    /// Per-channel shed breakers (empty for the whole run unless
    /// overload shedding fires).
    breakers: ChannelBreakers,
}

impl ProtocolRouter {
    /// Creates the router with `k` edge-disjoint candidate paths per pair
    /// (the paper uses 4) and default tunables.
    pub fn new(k: usize) -> Self {
        Self::with_config(k, ProtocolConfig::default())
    }

    /// Creates the router with explicit tunables.
    pub fn with_config(k: usize, cfg: ProtocolConfig) -> Self {
        assert!(k >= 1, "need at least one path");
        assert!(
            cfg.price_gamma > 0.0 && cfg.price_gamma <= 1.0,
            "gamma must be in (0, 1]"
        );
        let penalties = PathPenalties::new(cfg.backoff);
        ProtocolRouter {
            cfg,
            cache: PathCache::new(PathPolicy::EdgeDisjoint(k)),
            pairs: HashMap::new(),
            penalties,
            breakers: ChannelBreakers::default(),
        }
    }

    /// Current AIMD window of one candidate path (for tests/telemetry).
    pub fn path_window(&self, src: NodeId, dst: NodeId, path_index: usize) -> Option<Amount> {
        self.pairs
            .get(&(src, dst))
            .and_then(|p| p.controllers.get(path_index))
            .map(|c| c.window())
    }

    /// Current smoothed price of one candidate path.
    pub fn path_price(&self, src: NodeId, dst: NodeId, path_index: usize) -> Option<f64> {
        self.pairs
            .get(&(src, dst))
            .and_then(|p| p.prices.get(path_index))
            .map(|e| e.price())
    }

    /// Index of the pair's candidate path with this interned id.
    fn path_index(state: &PairState, path: PathId) -> Option<usize> {
        state.paths.iter().position(|&p| p == path)
    }

    /// Migrates a pair's controller/price state onto a repaired candidate
    /// set: surviving paths keep their AIMD window, in-flight accounting
    /// and smoothed price (by interned id, wherever they land in the new
    /// ordering); retired paths drop theirs (late acks for them are
    /// ignored by the id lookup); new paths start fresh controllers.
    fn migrate_pair(&mut self, pair: (NodeId, NodeId), new_paths: Vec<PathId>) {
        let Some(old) = self.pairs.remove(&pair) else {
            return;
        };
        let mut controllers = Vec::with_capacity(new_paths.len());
        let mut prices = Vec::with_capacity(new_paths.len());
        for &p in &new_paths {
            match old.paths.iter().position(|&q| q == p) {
                Some(i) => {
                    controllers.push(old.controllers[i].clone());
                    prices.push(old.prices[i].clone());
                }
                None => {
                    controllers.push(PathController::new(&self.cfg.rate));
                    prices.push(PathPriceEstimator::new(
                        self.cfg.price_gamma,
                        self.cfg.nack_price,
                    ));
                }
            }
        }
        self.pairs.insert(
            pair,
            PairState {
                paths: new_paths,
                controllers,
                prices,
            },
        );
    }
}

impl Router for ProtocolRouter {
    fn name(&self) -> &'static str {
        "spider-protocol"
    }

    fn wants_prewarm(&self) -> bool {
        true
    }

    fn prewarm(&mut self, pairs: &[(NodeId, NodeId)], view: &NetworkView<'_>) {
        self.cache.prefill(view.topo, view.paths, pairs);
    }

    fn on_topology_change(&mut self, update: &TopologyUpdate, view: &NetworkView<'_>) {
        let repaired = self.cache.on_topology_change(view.topo, view.paths, update);
        for pair in repaired {
            if !self.pairs.contains_key(&pair) {
                continue; // never routed; nothing to migrate
            }
            let new_paths = self
                .cache
                .get(view.topo, view.paths, pair.0, pair.1)
                .to_vec();
            self.migrate_pair(pair, new_paths);
        }
    }

    fn route(&mut self, req: &RouteRequest, view: &NetworkView<'_>) -> Vec<RouteProposal> {
        // Split-borrow the pair state so `penalties` stays reachable.
        let ProtocolRouter {
            cfg,
            cache,
            pairs,
            penalties,
            breakers,
        } = self;
        let state = pairs.entry((req.src, req.dst)).or_insert_with(|| {
            let paths = cache.get(view.topo, view.paths, req.src, req.dst).to_vec();
            let controllers = paths
                .iter()
                .map(|_| PathController::new(&cfg.rate))
                .collect();
            let prices = paths
                .iter()
                .map(|_| PathPriceEstimator::new(cfg.price_gamma, cfg.nack_price))
                .collect();
            PairState {
                paths,
                controllers,
                prices,
            }
        });
        if state.paths.is_empty() {
            return Vec::new();
        }
        // Fill windows cheapest-path-first against a request-local copy of
        // each path's remaining budget. Prices are fixed for the duration
        // of one request, so the cheapest eligible path absorbs its whole
        // budget at once (identical to the per-MTU reference loop, without
        // the O(units) rescans). A path the sender's probe shows as
        // currently dead (zero bottleneck) is skipped this round — §5.3.1's
        // hosts measure available capacity on their candidate paths, and
        // pushing units at a dead path only converts them into queue drops.
        // A path inside a fault cooldown is likewise skipped, unless every
        // candidate is cooling (a penalized path still beats giving up).
        // A path crossing a shed-tripped circuit breaker is skipped
        // unconditionally — an open breaker means the channel is actively
        // shedding, and fail-fast (retry at the next poll, once it
        // half-opens) is the whole point of tripping it.
        let all_cooled = state
            .paths
            .iter()
            .all(|&p| penalties.is_cooled(p, view.now));
        let mut budgets: Vec<Amount> = state
            .controllers
            .iter()
            .zip(&state.paths)
            .map(|(c, &p)| {
                if view.bottleneck(p).is_zero() {
                    Amount::ZERO
                } else if !all_cooled && penalties.is_cooled(p, view.now) {
                    penalties.note_skip();
                    Amount::ZERO
                } else if !breakers.is_empty()
                    && !view
                        .path(p)
                        .hops()
                        .iter()
                        .all(|&(ch, _)| breakers.allow(ch, view.now))
                {
                    Amount::ZERO
                } else {
                    c.budget()
                }
            })
            .collect();
        let mut allocated: Vec<Amount> = vec![Amount::ZERO; state.paths.len()];
        let mut remaining = req.remaining;
        while !remaining.is_zero() {
            let mut best: Option<(f64, usize)> = None;
            for (i, budget) in budgets.iter().enumerate() {
                if budget.is_zero() {
                    continue;
                }
                let price = state.prices[i].price();
                let better = match best {
                    None => true,
                    Some((bp, _)) => price < bp - 1e-12,
                };
                if better {
                    best = Some((price, i));
                }
            }
            let Some((_, i)) = best else { break };
            let take = budgets[i].min(remaining);
            allocated[i] += take;
            budgets[i] -= take;
            remaining -= take;
        }
        state
            .paths
            .iter()
            .zip(allocated)
            .filter(|(_, a)| !a.is_zero())
            .map(|(&path, amount)| RouteProposal { path, amount })
            .collect()
    }

    fn on_unit_outcome(&mut self, outcome: &UnitOutcome, view: &NetworkView<'_>) {
        if outcome.fault.is_some() {
            // A post-lock fault notification, not a lock outcome: the
            // unit's send was already observed when it locked, so only
            // the path penalty reacts (double-counting on_send would
            // corrupt the controller's in-flight accounting).
            self.penalties.on_fault(outcome.path, view.now);
            return;
        }
        let entry = view.path(outcome.path);
        let Some(state) = self.pairs.get_mut(&(entry.source(), entry.dest())) else {
            return;
        };
        let Some(i) = Self::path_index(state, outcome.path) else {
            return;
        };
        if outcome.locked {
            state.controllers[i].on_send(outcome.amount);
        } else {
            state.controllers[i].on_reject(&self.cfg.rate);
        }
    }

    fn on_unit_ack(&mut self, ack: &UnitAck, view: &NetworkView<'_>) {
        self.penalties
            .on_ack(ack.path, ack.delivered, ack.drop_reason, view.now);
        if ack.drop_reason == Some(DropReason::Shed) {
            if let Some(c) = ack.drop_channel {
                self.breakers.on_strike(c, view.now);
            }
        } else if ack.delivered && !self.breakers.is_empty() {
            for &(c, _) in view.path(ack.path).hops() {
                self.breakers.on_success(c);
            }
        }
        let entry = view.path(ack.path);
        let Some(state) = self.pairs.get_mut(&(entry.source(), entry.dest())) else {
            return;
        };
        let Some(i) = Self::path_index(state, ack.path) else {
            return;
        };
        state.controllers[i].on_ack(ack.amount, ack.delivered, ack.stamp.marked, &self.cfg.rate);
        state.prices[i].observe(ack.delivered, &ack.stamp);
    }

    fn window_gauge(&self) -> Option<f64> {
        // Sorted by pair key before reducing: float addition is not
        // associative, so summing controller windows in hash order would
        // make the sampled window_sum_xrp series differ run to run.
        let mut pairs: Vec<_> = self.pairs.iter().collect();
        pairs.sort_unstable_by_key(|(&k, _)| k);
        Some(
            pairs
                .iter()
                .flat_map(|(_, s)| s.controllers.iter())
                .map(|c| c.window().as_xrp())
                .sum(),
        )
    }

    fn observability(&self) -> spider_sim::RouterObs {
        let mut obs = spider_sim::RouterObs::default();
        obs.counters
            .extend(self.cache.counters().map(|(k, v)| (k.to_string(), v)));
        obs.counters
            .extend(self.penalties.counters().map(|(k, v)| (k.to_string(), v)));
        obs.counters
            .extend(self.breakers.counters().map(|(k, v)| (k.to_string(), v)));
        // Sorted by pair key so the histogram's fill order (and therefore
        // any serialized form) is independent of hash-map iteration.
        let mut pairs: Vec<_> = self.pairs.iter().collect();
        pairs.sort_unstable_by_key(|(&k, _)| k);
        for (_, state) in pairs {
            obs.windows_xrp
                .extend(state.controllers.iter().map(|c| c.window().as_xrp()));
        }
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_sim::{ChannelState, PathTable};
    use spider_types::{MarkStamp, PaymentId, SimDuration, SimTime};

    fn xrp(x: u64) -> Amount {
        Amount::from_xrp(x)
    }

    fn req(src: u32, dst: u32, amount: Amount, mtu: Amount) -> RouteRequest {
        RouteRequest {
            payment: PaymentId(0),
            src: NodeId(src),
            dst: NodeId(dst),
            remaining: amount,
            total: amount,
            mtu,
            attempt: 0,
        }
    }

    /// Two disjoint 2-hop routes 0→3, via 1 and via 2.
    fn two_routes() -> (spider_topology::Topology, Vec<ChannelState>) {
        let mut b = spider_topology::Topology::builder(4);
        b.channel(NodeId(0), NodeId(1), xrp(2_000)).unwrap();
        b.channel(NodeId(1), NodeId(3), xrp(2_000)).unwrap();
        b.channel(NodeId(0), NodeId(2), xrp(2_000)).unwrap();
        b.channel(NodeId(2), NodeId(3), xrp(2_000)).unwrap();
        let t = b.build();
        let ch = t
            .channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect();
        (t, ch)
    }

    fn marked_stamp() -> MarkStamp {
        let mut s = MarkStamp::CLEAR;
        s.absorb(1.0, true, SimDuration::from_millis(200));
        s
    }

    fn ack(path: PathId, amount: Amount, delivered: bool, stamp: MarkStamp) -> UnitAck {
        UnitAck {
            payment: PaymentId(0),
            path,
            amount,
            delivered,
            stamp,
            drop_reason: None,
            drop_channel: None,
            rtt: SimDuration::from_millis(520),
        }
    }

    #[test]
    fn splits_across_paths_within_windows() {
        let (t, ch) = two_routes();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let cfg = ProtocolConfig {
            rate: RateConfig {
                initial_window: xrp(50),
                ..RateConfig::default()
            },
            ..ProtocolConfig::default()
        };
        let mut r = ProtocolRouter::with_config(4, cfg);
        let props = r.route(&req(0, 3, xrp(200), xrp(10)), &view);
        // Two candidate paths, 50 XRP window each → 100 XRP proposed.
        let total: Amount = props.iter().map(|p| p.amount).sum();
        assert_eq!(total, xrp(100));
        assert_eq!(props.len(), 2);
    }

    #[test]
    fn inflight_consumes_budget_until_acked() {
        let (t, ch) = two_routes();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let cfg = ProtocolConfig {
            rate: RateConfig {
                initial_window: xrp(30),
                ..RateConfig::default()
            },
            ..ProtocolConfig::default()
        };
        let mut r = ProtocolRouter::with_config(4, cfg);
        let props = r.route(&req(0, 3, xrp(100), xrp(10)), &view);
        assert_eq!(props.iter().map(|p| p.amount).sum::<Amount>(), xrp(60));
        // Report every proposed unit as accepted.
        for p in &props {
            for unit in p.amount.mtu_chunks(xrp(10)) {
                let o = UnitOutcome {
                    payment: PaymentId(0),
                    path: p.path,
                    amount: unit,
                    locked: true,
                    fault: None,
                };
                r.on_unit_outcome(&o, &view);
            }
        }
        // Windows are full: nothing more to propose.
        let empty = r.route(&req(0, 3, xrp(100), xrp(10)), &view);
        assert!(empty.is_empty(), "in-flight value must consume the window");
        // Acking releases budget (and clean acks grow it).
        let path = props[0].path;
        r.on_unit_ack(&ack(path, xrp(10), true, MarkStamp::CLEAR), &view);
        let again = r.route(&req(0, 3, xrp(100), xrp(10)), &view);
        assert!(!again.is_empty());
    }

    #[test]
    fn marked_acks_shrink_the_marked_path_only() {
        let (t, ch) = two_routes();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut r = ProtocolRouter::new(4);
        // Initialize pair state.
        let props = r.route(&req(0, 3, xrp(1), xrp(1)), &view);
        let marked_path = props[0].path;
        let w0 = r.path_window(NodeId(0), NodeId(3), 0).unwrap();
        let w1 = r.path_window(NodeId(0), NodeId(3), 1).unwrap();
        r.on_unit_ack(&ack(marked_path, xrp(1), true, marked_stamp()), &view);
        assert!(r.path_window(NodeId(0), NodeId(3), 0).unwrap() < w0);
        assert_eq!(r.path_window(NodeId(0), NodeId(3), 1).unwrap(), w1);
        assert!(r.path_price(NodeId(0), NodeId(3), 0).unwrap() > 0.0);
        assert_eq!(r.path_price(NodeId(0), NodeId(3), 1).unwrap(), 0.0);
    }

    #[test]
    fn allocation_prefers_the_cheaper_path() {
        let (t, ch) = two_routes();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut r = ProtocolRouter::new(4);
        let props = r.route(&req(0, 3, xrp(1), xrp(1)), &view);
        // Make path 0 expensive.
        let p0 = props[0].path;
        for _ in 0..4 {
            r.on_unit_ack(&ack(p0, Amount::ZERO, true, marked_stamp()), &view);
        }
        // A small request now goes entirely to the other path.
        let props = r.route(&req(0, 3, xrp(5), xrp(5)), &view);
        assert_eq!(props.len(), 1);
        assert_ne!(props[0].path, p0);
    }

    #[test]
    fn unreachable_pair_proposes_nothing() {
        let mut b = spider_topology::Topology::builder(3);
        b.channel(NodeId(0), NodeId(1), xrp(10)).unwrap();
        let t = b.build();
        let ch: Vec<ChannelState> = t
            .channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut r = ProtocolRouter::new(4);
        assert!(r.route(&req(0, 2, xrp(1), xrp(1)), &view).is_empty());
    }

    #[test]
    fn topology_change_migrates_surviving_path_state() {
        let (t, ch) = two_routes();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut r = ProtocolRouter::new(4);
        let props = r.route(&req(0, 3, xrp(1), xrp(1)), &view);
        assert_eq!(r.pairs[&(NodeId(0), NodeId(3))].paths.len(), 2);
        // Make path 0 (via node 1) expensive and remember its state.
        let p0 = props[0].path;
        r.on_unit_ack(&ack(p0, Amount::ZERO, true, marked_stamp()), &view);
        let surviving_price = r.path_price(NodeId(0), NodeId(3), 0).unwrap();
        let surviving_window = r.path_window(NodeId(0), NodeId(3), 0).unwrap();
        assert!(surviving_price > 0.0);
        // Close a channel on the *other* candidate (via node 2).
        let closed = t.channel_between(NodeId(0), NodeId(2)).unwrap();
        let update = spider_sim::TopologyUpdate {
            closed: vec![closed],
            ..Default::default()
        };
        r.on_topology_change(&update, &view);
        let state = &r.pairs[&(NodeId(0), NodeId(3))];
        assert_eq!(state.paths.len(), 1, "only the surviving route remains");
        assert_eq!(state.paths[0], p0, "surviving path keeps its interned id");
        assert_eq!(r.path_price(NodeId(0), NodeId(3), 0), Some(surviving_price));
        assert_eq!(
            r.path_window(NodeId(0), NodeId(3), 0),
            Some(surviving_window)
        );
        // Reopen: the pair regains both candidates; the survivor keeps its
        // state, the reborn path starts fresh.
        let update = spider_sim::TopologyUpdate {
            opened: vec![closed],
            ..Default::default()
        };
        r.on_topology_change(&update, &view);
        let state = &r.pairs[&(NodeId(0), NodeId(3))];
        assert_eq!(state.paths.len(), 2);
        let i0 = state.paths.iter().position(|&p| p == p0).unwrap();
        assert_eq!(
            r.path_price(NodeId(0), NodeId(3), i0),
            Some(surviving_price)
        );
        let fresh = 1 - i0;
        assert_eq!(r.path_price(NodeId(0), NodeId(3), fresh), Some(0.0));
    }

    #[test]
    fn not_atomic_and_named() {
        let r = ProtocolRouter::new(4);
        assert!(!r.atomic());
        assert_eq!(r.name(), "spider-protocol");
    }
}
