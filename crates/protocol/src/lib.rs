//! # spider-protocol
//!
//! The decentralized, packet-switched Spider protocol of §5 — the paper's
//! headline contribution — as an online routing scheme for the simulator:
//!
//! * **Router queues** (hosted in `spider-sim` behind
//!   [`QueueingMode::PerChannelFifo`]): every channel direction owns a FIFO
//!   of transaction units; a unit that finds no balance waits instead of
//!   failing.
//! * **Price signaling** (`spider-sim::queue` + [`price`]): as a queued
//!   unit is serviced, the router computes a local price from its queueing
//!   delay and the channel's flow imbalance (the `x_u − x_v` term of
//!   §5.3), stamps it onto the unit, and *marks* the unit when either
//!   observable crosses its threshold. The stamp returns to the sender on
//!   the unit's acknowledgement; [`price::PathPriceEstimator`] smooths the
//!   acked stamps into a steerable per-path price.
//! * **Per-path source rate control** ([`rate`]): each (sender, path) pair
//!   runs an AIMD window on value in flight — additive increase on clean
//!   acks, multiplicative decrease on marked or failed ones — replacing
//!   the coarse per-pair window of `spider-core::congestion` for this
//!   mode.
//! * **[`ProtocolRouter`]**: splits each payment into MTU-sized units
//!   across `k` precomputed edge-disjoint paths, filling the
//!   cheapest-priced path's window first.
//!
//! ## The three operating modes
//!
//! | Mode | Where | What it models |
//! |---|---|---|
//! | Offline LP / waterfilling | `spider-routing` (`SpiderLp`, `SpiderWaterfilling`) | §5.2's fluid optimum, instant whole-path locking |
//! | AIMD window | `spider-core::congestion::Windowed` | §4.1's transport sketch over any inner scheme, lockstep |
//! | Queue + price protocol | this crate + `QueueingMode::PerChannelFifo` | §5's deployed protocol: queues, marking, per-path AIMD |
//!
//! Select the third mode by putting `SchemeConfig::SpiderProtocol` in an
//! experiment (which auto-enables queueing) or by constructing a
//! [`ProtocolRouter`] and a `SimConfig` with
//! `queueing: QueueingMode::PerChannelFifo(..)` directly.
//!
//! Everything is deterministic given the construction inputs; runs are
//! bit-reproducible per seed.
//!
//! [`QueueingMode::PerChannelFifo`]: spider_sim::QueueingMode::PerChannelFifo

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod price;
pub mod rate;
pub mod router;

pub use price::PathPriceEstimator;
pub use rate::{PathController, RateConfig};
pub use router::{ProtocolConfig, ProtocolRouter};
