//! Per-(sender, path) AIMD rate control (§5's source behavior).
//!
//! Each candidate path of a (sender, receiver) pair owns a window bounding
//! the value the sender may have in flight on it. Acknowledgements drive
//! the classic AIMD dynamics the paper prescribes for marked packets:
//!
//! * clean delivered ack → window grows additively (probe for capacity);
//! * marked or failed ack → window shrinks multiplicatively (back off);
//! * rejection at injection (`on_nack`) → same multiplicative back-off.
//!
//! The window floor keeps every path probing — a starved path would
//! otherwise never learn its price again — and the ceiling bounds queue
//! build-up when the network is briefly generous.

use spider_types::Amount;

/// AIMD parameters for one path's controller.
#[derive(Debug, Clone)]
pub struct RateConfig {
    /// Initial window per path.
    pub initial_window: Amount,
    /// Additive increase per clean delivered ack.
    pub increase: Amount,
    /// Multiplicative decrease factor on a marked or failed ack (0 < f < 1).
    pub decrease_factor: f64,
    /// Window floor.
    pub min_window: Amount,
    /// Window ceiling.
    pub max_window: Amount,
}

impl Default for RateConfig {
    fn default() -> Self {
        RateConfig {
            initial_window: Amount::from_xrp(200),
            increase: Amount::from_xrp(10),
            decrease_factor: 0.7,
            min_window: Amount::from_xrp(20),
            max_window: Amount::from_xrp(10_000),
        }
    }
}

impl RateConfig {
    fn validate(&self) {
        assert!(
            self.decrease_factor > 0.0 && self.decrease_factor < 1.0,
            "decrease factor must be in (0, 1)"
        );
        assert!(!self.min_window.is_zero(), "window floor must be positive");
        assert!(
            self.min_window <= self.max_window,
            "floor must not exceed ceiling"
        );
    }
}

/// The AIMD window and in-flight accounting of one (sender, path) pair.
#[derive(Debug, Clone)]
pub struct PathController {
    window: Amount,
    inflight: Amount,
}

impl PathController {
    /// Fresh controller at the configured initial window.
    pub fn new(cfg: &RateConfig) -> Self {
        cfg.validate();
        PathController {
            window: Ord::clamp(cfg.initial_window, cfg.min_window, cfg.max_window),
            inflight: Amount::ZERO,
        }
    }

    /// Value the sender may still inject on this path right now.
    pub fn budget(&self) -> Amount {
        self.window.saturating_sub(self.inflight)
    }

    /// Current window.
    pub fn window(&self) -> Amount {
        self.window
    }

    /// Value currently in flight on this path.
    pub fn inflight(&self) -> Amount {
        self.inflight
    }

    /// Records an accepted injection of `amount`.
    pub fn on_send(&mut self, amount: Amount) {
        self.inflight += amount;
    }

    /// Records a rejected injection: the engine refused the unit at the
    /// ingress (first-hop queue full), a hard congestion signal.
    pub fn on_reject(&mut self, cfg: &RateConfig) {
        self.backoff(cfg);
    }

    /// Records the unit acknowledgement for `amount` in flight.
    pub fn on_ack(&mut self, amount: Amount, delivered: bool, marked: bool, cfg: &RateConfig) {
        self.inflight = self.inflight.saturating_sub(amount);
        if delivered && !marked {
            self.window = (self.window + cfg.increase).min(cfg.max_window);
        } else {
            self.backoff(cfg);
        }
    }

    fn backoff(&mut self, cfg: &RateConfig) {
        self.window = self.window.mul_f64(cfg.decrease_factor).max(cfg.min_window);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xrp(x: u64) -> Amount {
        Amount::from_xrp(x)
    }

    fn cfg() -> RateConfig {
        RateConfig {
            initial_window: xrp(100),
            increase: xrp(10),
            decrease_factor: 0.5,
            min_window: xrp(5),
            max_window: xrp(150),
        }
    }

    #[test]
    fn budget_tracks_inflight() {
        let c = cfg();
        let mut p = PathController::new(&c);
        assert_eq!(p.budget(), xrp(100));
        p.on_send(xrp(30));
        assert_eq!(p.budget(), xrp(70));
        assert_eq!(p.inflight(), xrp(30));
        p.on_send(xrp(70));
        assert_eq!(p.budget(), Amount::ZERO);
    }

    #[test]
    fn clean_acks_grow_additively_to_ceiling() {
        let c = cfg();
        let mut p = PathController::new(&c);
        p.on_send(xrp(10));
        p.on_ack(xrp(10), true, false, &c);
        assert_eq!(p.window(), xrp(110));
        assert_eq!(p.inflight(), Amount::ZERO);
        for _ in 0..20 {
            p.on_ack(Amount::ZERO, true, false, &c);
        }
        assert_eq!(p.window(), xrp(150), "ceiling holds");
    }

    #[test]
    fn marked_or_failed_acks_backoff_to_floor() {
        let c = cfg();
        let mut p = PathController::new(&c);
        p.on_send(xrp(20));
        p.on_ack(xrp(20), true, true, &c); // delivered but marked
        assert_eq!(p.window(), xrp(50));
        p.on_ack(Amount::ZERO, false, true, &c); // dropped
        assert_eq!(p.window(), xrp(25));
        for _ in 0..20 {
            p.on_reject(&c);
        }
        assert_eq!(p.window(), xrp(5), "floor holds");
    }

    #[test]
    fn ack_never_underflows_inflight() {
        let c = cfg();
        let mut p = PathController::new(&c);
        p.on_ack(xrp(10), true, false, &c);
        assert_eq!(p.inflight(), Amount::ZERO);
    }

    #[test]
    #[should_panic(expected = "decrease factor")]
    fn rejects_bad_decrease_factor() {
        let _ = PathController::new(&RateConfig {
            decrease_factor: 1.0,
            ..cfg()
        });
    }
}
