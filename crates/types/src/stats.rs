//! Small statistics helpers used by metrics collection and the bench
//! harness (means, variance, percentiles, online accumulators).

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population variance; `None` for an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation; `None` for an empty slice.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// The p-th percentile (nearest-rank on a sorted copy); `None` when empty
/// or `p` outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    Some(sorted[rank.min(sorted.len() - 1)])
}

/// Numerically stable online mean/variance accumulator (Welford).
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Current population variance; `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Current population standard deviation; `None` when empty.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_inputs_yield_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
        assert_eq!(std_dev(&[]), None);
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(Welford::new().mean(), None);
    }

    #[test]
    fn mean_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert_eq!(variance(&xs), Some(4.0));
        assert_eq!(std_dev(&xs), Some(2.0));
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 50.0), Some(3.0));
        assert_eq!(percentile(&xs, 100.0), Some(5.0));
        assert_eq!(percentile(&xs, 101.0), None);
        assert_eq!(percentile(&xs, -1.0), None);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 50.0), Some(3.0));
    }

    #[test]
    fn welford_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for x in xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((w.variance().unwrap() - 4.0).abs() < 1e-12);
        assert!((w.std_dev().unwrap() - 2.0).abs() < 1e-12);
    }
}
