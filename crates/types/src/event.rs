//! Live-topology churn events.
//!
//! Real payment-channel networks are not frozen snapshots: channels open,
//! close, deplete and get resized mid-flight, and nodes join and leave. A
//! [`TopologyEvent`] describes one such change at a simulated instant; the
//! engine injects them into its calendar and applies the mutation mid-run
//! (see `spider_sim::Simulation::set_topology_events`), while
//! `spider-dynamics` generates deterministic schedules of them from a
//! `DynamicsConfig`.
//!
//! The dense [`NodeId`]/[`ChannelId`] id spaces stay **stable across
//! churn**: a "closed" channel keeps its id and its escrowed funds (frozen,
//! unusable) and may later reopen; a channel that only comes into existence
//! mid-run is part of the union topology from the start, closed at `t = 0`
//! and opened by its event. This is what lets every cache, slab and CSR
//! structure survive churn without reindexing.

use crate::ids::{ChannelId, NodeId};
use crate::time::SimTime;
use crate::Amount;
use serde::{Deserialize, Serialize};

/// One kind of mid-run topology mutation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TopologyChange {
    /// An existing channel closes (cooperatively, or its funding party
    /// goes on-chain): its balances freeze, in-flight units crossing it
    /// fail back cleanly, and no new unit may lock it. Idempotent: closing
    /// a closed channel is a no-op.
    ChannelClose {
        /// The channel that closes.
        channel: ChannelId,
    },
    /// A closed channel (re)opens with the balances it froze with.
    /// Channels that only come into existence mid-run start closed at
    /// `t = 0` and open through this event. Idempotent on open channels.
    ChannelOpen {
        /// The channel that opens.
        channel: ChannelId,
    },
    /// The channel is resized toward `new_capacity` by an on-chain splice:
    /// growth deposits fresh funds split across both directions; shrinkage
    /// withdraws from the *available* balances only (in-flight funds are
    /// never clawed back, so the realized capacity may stay above the
    /// target until units settle).
    ChannelResize {
        /// The channel being resized.
        channel: ChannelId,
        /// Target total capacity after the splice.
        new_capacity: Amount,
    },
    /// `node` leaves the network: every one of its open channels closes
    /// (as [`TopologyChange::ChannelClose`] would, one by one).
    NodeLeave {
        /// The departing node.
        node: NodeId,
    },
    /// `node` rejoins: every one of its closed channels reopens.
    NodeJoin {
        /// The returning node.
        node: NodeId,
    },
}

/// A topology mutation scheduled at a simulated instant.
///
/// Events with `at == SimTime::ZERO` describe the *initial* state delta
/// (channels that start closed) and are applied before any payment or
/// router prewarm; later events fire from the simulation calendar in
/// `(at, schedule-order)` order, so runs stay bit-deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyEvent {
    /// When the change takes effect.
    pub at: SimTime,
    /// What changes.
    pub change: TopologyChange,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_round_trip_all_variants() {
        let events = vec![
            TopologyEvent {
                at: SimTime::from_secs(3),
                change: TopologyChange::ChannelClose {
                    channel: ChannelId(7),
                },
            },
            TopologyEvent {
                at: SimTime::ZERO,
                change: TopologyChange::ChannelOpen {
                    channel: ChannelId(1),
                },
            },
            TopologyEvent {
                at: SimTime::from_micros(1_500_000),
                change: TopologyChange::ChannelResize {
                    channel: ChannelId(2),
                    new_capacity: Amount::from_xrp(123),
                },
            },
            TopologyEvent {
                at: SimTime::from_secs(9),
                change: TopologyChange::NodeLeave { node: NodeId(4) },
            },
            TopologyEvent {
                at: SimTime::from_secs(10),
                change: TopologyChange::NodeJoin { node: NodeId(4) },
            },
        ];
        let v = serde::Serialize::to_value(&events);
        let back: Vec<TopologyEvent> = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, events);
    }
}
