//! Deterministic randomness.
//!
//! Every stochastic component of the reproduction (workload, topology
//! generation, scheme-internal randomness) draws from a [`DetRng`] derived
//! from a single experiment seed, so that every run is bit-reproducible.
//! Independent subsystems *fork* labeled child generators instead of sharing
//! one stream; this keeps, e.g., the transaction workload identical across
//! routing schemes even though the schemes consume different amounts of
//! randomness.

use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};
use std::convert::Infallible;

/// A deterministic, forkable random-number generator.
///
/// Wraps [`SmallRng`] and adds [`DetRng::fork`], which derives an independent
/// child stream from a string label. Forks with the same (parent seed, label)
/// pair always produce identical streams.
#[derive(Debug, Clone)]
pub struct DetRng {
    seed: u64,
    inner: SmallRng,
}

impl DetRng {
    /// Creates a generator from an experiment seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            seed,
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator identified by `label`.
    ///
    /// The child's seed is a hash of the parent seed and the label, so
    /// different labels give (for all practical purposes) independent
    /// streams, and the same label always gives the same stream.
    pub fn fork(&self, label: &str) -> DetRng {
        // FNV-1a over the label, mixed with the parent seed via a
        // SplitMix64 finalizer. Stable across platforms and Rust versions
        // (unlike `DefaultHasher`).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut z = self.seed ^ h;
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        DetRng::new(z)
    }

    /// Uniform sample in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform sample strictly inside `(0, 1)`; safe as a log/division input.
    #[inline]
    pub fn uniform_open(&mut self) -> f64 {
        loop {
            let u = self.inner.random::<f64>();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        self.inner.random_range(0..n)
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.random_range(lo..hi)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.random::<f64>() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element. Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Samples an index with probability proportional to `weights[i]`.
    ///
    /// Zero-weight entries are never selected. Panics if the weights are
    /// empty, contain negatives/NaNs, or all are zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "empty weights");
        let total: f64 = weights
            .iter()
            .inspect(|&w| {
                assert!(w.is_finite() && *w >= 0.0, "invalid weight {w}");
            })
            .sum();
        assert!(total > 0.0, "all weights zero");
        let mut target = self.uniform() * total;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights
            .iter()
            .rposition(|w| *w > 0.0)
            .expect("positive weight exists")
    }
}

// Implementing the infallible `TryRng` gives `DetRng` the full `rand::Rng`
// and `rand::RngExt` APIs through rand's blanket impls, so a `DetRng` can be
// handed to any rand-compatible consumer (e.g. proptest strategies).
impl rand::rand_core::TryRng for DetRng {
    type Error = Infallible;

    fn try_next_u32(&mut self) -> Result<u32, Infallible> {
        Ok(self.inner.next_u32())
    }
    fn try_next_u64(&mut self) -> Result<u64, Infallible> {
        Ok(self.inner.next_u64())
    }
    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Infallible> {
        self.inner.fill_bytes(dst);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_label_stable_and_distinct() {
        let root = DetRng::new(42);
        let mut w1 = root.fork("workload");
        let mut w2 = root.fork("workload");
        let mut t = root.fork("topology");
        let s1: Vec<u64> = (0..16).map(|_| w1.next_u64()).collect();
        let s2: Vec<u64> = (0..16).map(|_| w2.next_u64()).collect();
        let s3: Vec<u64> = (0..16).map(|_| t.next_u64()).collect();
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = DetRng::new(1);
        for _ in 0..1000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            let v = r.uniform_open();
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn index_bounds() {
        let mut r = DetRng::new(2);
        for _ in 0..1000 {
            assert!(r.index(5) < 5);
        }
        assert_eq!(r.index(1), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_frequency_reasonable() {
        let mut r = DetRng::new(4);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        let freq = hits as f64 / 10_000.0;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        let mut r = DetRng::new(6);
        for _ in 0..1000 {
            let i = r.weighted_index(&[0.0, 2.0, 0.0, 1.0]);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn weighted_index_frequency() {
        let mut r = DetRng::new(7);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[r.weighted_index(&[1.0, 2.0, 3.0])] += 1;
        }
        let f1 = counts[1] as f64 / 30_000.0;
        assert!((f1 - 2.0 / 6.0).abs() < 0.02, "f1 {f1}");
    }

    #[test]
    #[should_panic(expected = "all weights zero")]
    fn weighted_index_all_zero_panics() {
        DetRng::new(8).weighted_index(&[0.0, 0.0]);
    }

    #[test]
    fn choose_returns_member() {
        let mut r = DetRng::new(9);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(r.choose(&items)));
        }
    }
}
