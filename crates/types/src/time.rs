//! Simulation time.
//!
//! The discrete-event simulator keeps a virtual clock in integer
//! microseconds. Integer time makes event ordering deterministic and keeps
//! rate computations (drops per second) exact enough for the fluid-model
//! comparisons in the evaluation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A span of simulation time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as an "infinite" deadline.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates an instant from fractional seconds (rounded to microseconds).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid time {s}");
        SimTime((s * 1e6).round() as u64)
    }

    /// Raw microseconds since simulation start.
    #[inline]
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration (None at the far-future sentinel).
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds (rounded to microseconds).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Raw microseconds.
    #[inline]
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// Duration in seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True iff zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimTime went backwards"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == SimTime::FAR_FUTURE {
            write!(f, "t=∞")
        } else {
            write!(f, "t={:.6}s", self.as_secs_f64())
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).micros(), 2_000_000);
        assert_eq!(SimTime::from_secs_f64(0.5).micros(), 500_000);
        assert_eq!(SimDuration::from_millis(3).micros(), 3_000);
        assert_eq!(SimDuration::from_secs_f64(1.25).as_secs_f64(), 1.25);
    }

    #[test]
    fn instant_duration_algebra() {
        let t0 = SimTime::from_secs(1);
        let t1 = t0 + SimDuration::from_millis(500);
        assert_eq!(t1.micros(), 1_500_000);
        assert_eq!(t1 - t0, SimDuration::from_millis(500));
        assert_eq!(t0.since(t1), SimDuration::ZERO); // saturates
        assert_eq!(t1.since(t0), SimDuration::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "SimTime went backwards")]
    fn strict_sub_panics_backwards() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(SimDuration::from_secs(2) * 3, SimDuration::from_secs(6));
    }

    #[test]
    fn far_future_checked_add() {
        assert_eq!(
            SimTime::FAR_FUTURE.checked_add(SimDuration::from_micros(1)),
            None
        );
        assert!(SimTime::ZERO
            .checked_add(SimDuration::from_secs(1))
            .is_some());
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::FAR_FUTURE > SimTime::from_secs(u32::MAX as u64));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_secs_f64(1.5).to_string(), "t=1.500000s");
        assert_eq!(SimTime::FAR_FUTURE.to_string(), "t=∞");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250000s");
    }
}
