//! Fixed-point currency amounts.
//!
//! All balances, transaction sizes and channel capacities are integer counts
//! of *drops* (1 XRP = 10^6 drops, Ripple's real on-ledger unit). Integer
//! arithmetic makes fund-conservation checks exact: the simulator asserts to
//! the drop that no money is created or destroyed.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Number of drops in one XRP.
pub const DROPS_PER_XRP: u64 = 1_000_000;

/// An unsigned quantity of currency, counted in drops.
///
/// `Amount` deliberately implements only the arithmetic that cannot produce
/// surprising values: addition, subtraction (panicking on underflow — use
/// [`Amount::checked_sub`] or [`Amount::saturating_sub`] where underflow is
/// an expected outcome), and scaling by integers. Fractional operations go
/// through [`Amount::mul_f64`], which rounds to the nearest drop.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Amount(u64);

impl Amount {
    /// The zero amount.
    pub const ZERO: Amount = Amount(0);
    /// One drop, the smallest representable quantum of currency.
    pub const DROP: Amount = Amount(1);
    /// The largest representable amount.
    pub const MAX: Amount = Amount(u64::MAX);

    /// Creates an amount from a raw drop count.
    #[inline]
    pub const fn from_drops(drops: u64) -> Self {
        Amount(drops)
    }

    /// Creates an amount from a whole number of XRP.
    #[inline]
    pub const fn from_xrp(xrp: u64) -> Self {
        Amount(xrp * DROPS_PER_XRP)
    }

    /// Creates an amount from a fractional number of XRP, rounding to the
    /// nearest drop. Negative inputs clamp to zero.
    #[inline]
    pub fn from_xrp_f64(xrp: f64) -> Self {
        if xrp <= 0.0 || !xrp.is_finite() {
            return Amount::ZERO;
        }
        Amount((xrp * DROPS_PER_XRP as f64).round() as u64)
    }

    /// Raw drop count.
    #[inline]
    pub const fn drops(self) -> u64 {
        self.0
    }

    /// Value in XRP as a float (for reporting; never for accounting).
    #[inline]
    pub fn as_xrp(self) -> f64 {
        self.0 as f64 / DROPS_PER_XRP as f64
    }

    /// True iff this is the zero amount.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction; `None` on underflow.
    #[inline]
    pub fn checked_sub(self, rhs: Amount) -> Option<Amount> {
        self.0.checked_sub(rhs.0).map(Amount)
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Amount) -> Option<Amount> {
        self.0.checked_add(rhs.0).map(Amount)
    }

    /// Subtraction clamped at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: Amount) -> Amount {
        Amount(self.0.saturating_sub(rhs.0))
    }

    /// Addition clamped at `u64::MAX` drops.
    #[inline]
    pub fn saturating_add(self, rhs: Amount) -> Amount {
        Amount(self.0.saturating_add(rhs.0))
    }

    /// The smaller of two amounts.
    #[inline]
    pub fn min(self, rhs: Amount) -> Amount {
        Amount(self.0.min(rhs.0))
    }

    /// The larger of two amounts.
    #[inline]
    pub fn max(self, rhs: Amount) -> Amount {
        Amount(self.0.max(rhs.0))
    }

    /// Multiplies by a non-negative float, rounding to the nearest drop.
    /// Negative or non-finite factors yield zero.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> Amount {
        if factor <= 0.0 || !factor.is_finite() {
            return Amount::ZERO;
        }
        Amount((self.0 as f64 * factor).round() as u64)
    }

    /// Fraction `self / denom` as a float; zero when `denom` is zero.
    #[inline]
    pub fn ratio(self, denom: Amount) -> f64 {
        if denom.0 == 0 {
            0.0
        } else {
            self.0 as f64 / denom.0 as f64
        }
    }

    /// Splits this amount into chunks of at most `mtu`, preserving the total.
    ///
    /// This is exactly the transport layer's packetization rule: a payment of
    /// value `v` becomes `ceil(v / mtu)` transaction units, all of size `mtu`
    /// except a possibly-smaller final unit. An empty vector is returned for
    /// the zero amount. Panics if `mtu` is zero.
    pub fn split_mtu(self, mtu: Amount) -> Vec<Amount> {
        assert!(!mtu.is_zero(), "MTU must be positive");
        let mut remaining = self.0;
        let mut units = Vec::with_capacity((self.0 / mtu.0 + 1) as usize);
        while remaining > 0 {
            let u = remaining.min(mtu.0);
            units.push(Amount(u));
            remaining -= u;
        }
        units
    }

    /// Allocation-free variant of [`Amount::split_mtu`]: iterates the same
    /// chunks without materializing a vector (the engine packetizes every
    /// proposal, so this runs once per routed unit). Panics if `mtu` is
    /// zero.
    pub fn mtu_chunks(self, mtu: Amount) -> MtuChunks {
        assert!(!mtu.is_zero(), "MTU must be positive");
        MtuChunks {
            remaining: self.0,
            mtu: mtu.0,
        }
    }

    /// Converts to a signed amount. Panics if the value exceeds `i64::MAX`
    /// drops (≈ 9.2 trillion XRP — far beyond any simulated economy).
    #[inline]
    pub fn signed(self) -> SignedAmount {
        SignedAmount(i64::try_from(self.0).expect("amount exceeds i64::MAX drops"))
    }
}

/// Iterator over MTU-sized chunks of an amount (see [`Amount::mtu_chunks`]).
#[derive(Debug, Clone)]
pub struct MtuChunks {
    remaining: u64,
    mtu: u64,
}

impl MtuChunks {
    /// Skips every remaining full-MTU chunk, returning how many were
    /// skipped; the iterator then yields at most the final partial chunk.
    ///
    /// Used by the engine's failed-lock fast path: when a full-size unit
    /// fails to lock a path and the lock attempt left channel balances
    /// unchanged, every further full-size chunk on the same path would
    /// fail identically, so they can be counted instead of re-walked.
    pub fn skip_full_chunks(&mut self) -> u64 {
        let full = self.remaining / self.mtu;
        self.remaining -= full * self.mtu;
        full
    }
}

impl Iterator for MtuChunks {
    type Item = Amount;

    fn next(&mut self) -> Option<Amount> {
        if self.remaining == 0 {
            return None;
        }
        let u = self.remaining.min(self.mtu);
        self.remaining -= u;
        Some(Amount(u))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining.div_ceil(self.mtu) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for MtuChunks {}

impl Add for Amount {
    type Output = Amount;
    #[inline]
    fn add(self, rhs: Amount) -> Amount {
        Amount(self.0.checked_add(rhs.0).expect("Amount overflow"))
    }
}

impl AddAssign for Amount {
    #[inline]
    fn add_assign(&mut self, rhs: Amount) {
        *self = *self + rhs;
    }
}

impl Sub for Amount {
    type Output = Amount;
    #[inline]
    fn sub(self, rhs: Amount) -> Amount {
        Amount(self.0.checked_sub(rhs.0).expect("Amount underflow"))
    }
}

impl SubAssign for Amount {
    #[inline]
    fn sub_assign(&mut self, rhs: Amount) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Amount {
    type Output = Amount;
    #[inline]
    fn mul(self, rhs: u64) -> Amount {
        Amount(self.0.checked_mul(rhs).expect("Amount overflow"))
    }
}

impl Div<u64> for Amount {
    type Output = Amount;
    #[inline]
    fn div(self, rhs: u64) -> Amount {
        Amount(self.0 / rhs)
    }
}

impl Sum for Amount {
    fn sum<I: Iterator<Item = Amount>>(iter: I) -> Amount {
        iter.fold(Amount::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Amount> for Amount {
    fn sum<I: Iterator<Item = &'a Amount>>(iter: I) -> Amount {
        iter.fold(Amount::ZERO, |a, b| a + *b)
    }
}

impl fmt::Display for Amount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let whole = self.0 / DROPS_PER_XRP;
        let frac = self.0 % DROPS_PER_XRP;
        if frac == 0 {
            write!(f, "{whole} XRP")
        } else {
            let s = format!("{frac:06}");
            write!(f, "{whole}.{} XRP", s.trim_end_matches('0'))
        }
    }
}

/// A signed quantity of currency in drops, used for channel *imbalance*
/// (flow in one direction minus flow in the other) and price gradients.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SignedAmount(i64);

impl SignedAmount {
    /// The zero signed amount.
    pub const ZERO: SignedAmount = SignedAmount(0);

    /// Creates from a raw signed drop count.
    #[inline]
    pub const fn from_drops(drops: i64) -> Self {
        SignedAmount(drops)
    }

    /// Raw signed drop count.
    #[inline]
    pub const fn drops(self) -> i64 {
        self.0
    }

    /// Value in XRP as a float.
    #[inline]
    pub fn as_xrp(self) -> f64 {
        self.0 as f64 / DROPS_PER_XRP as f64
    }

    /// Absolute value as an unsigned [`Amount`].
    #[inline]
    pub fn abs(self) -> Amount {
        Amount(self.0.unsigned_abs())
    }

    /// True iff negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }
}

impl Add for SignedAmount {
    type Output = SignedAmount;
    #[inline]
    fn add(self, rhs: SignedAmount) -> SignedAmount {
        SignedAmount(self.0.checked_add(rhs.0).expect("SignedAmount overflow"))
    }
}

impl AddAssign for SignedAmount {
    #[inline]
    fn add_assign(&mut self, rhs: SignedAmount) {
        *self = *self + rhs;
    }
}

impl Sub for SignedAmount {
    type Output = SignedAmount;
    #[inline]
    fn sub(self, rhs: SignedAmount) -> SignedAmount {
        SignedAmount(self.0.checked_sub(rhs.0).expect("SignedAmount overflow"))
    }
}

impl SubAssign for SignedAmount {
    #[inline]
    fn sub_assign(&mut self, rhs: SignedAmount) {
        *self = *self - rhs;
    }
}

impl Neg for SignedAmount {
    type Output = SignedAmount;
    #[inline]
    fn neg(self) -> SignedAmount {
        SignedAmount(-self.0)
    }
}

impl fmt::Display for SignedAmount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 0 {
            write!(f, "-{}", self.abs())
        } else {
            write!(f, "{}", self.abs())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xrp_drop_round_trip() {
        assert_eq!(Amount::from_xrp(3).drops(), 3_000_000);
        assert_eq!(Amount::from_drops(1_500_000).as_xrp(), 1.5);
        assert_eq!(Amount::from_xrp_f64(2.5), Amount::from_drops(2_500_000));
    }

    #[test]
    fn from_xrp_f64_clamps_garbage() {
        assert_eq!(Amount::from_xrp_f64(-1.0), Amount::ZERO);
        assert_eq!(Amount::from_xrp_f64(f64::NAN), Amount::ZERO);
        assert_eq!(Amount::from_xrp_f64(f64::NEG_INFINITY), Amount::ZERO);
    }

    #[test]
    fn arithmetic_basics() {
        let a = Amount::from_xrp(10);
        let b = Amount::from_xrp(4);
        assert_eq!(a + b, Amount::from_xrp(14));
        assert_eq!(a - b, Amount::from_xrp(6));
        assert_eq!(a * 3, Amount::from_xrp(30));
        assert_eq!(a / 2, Amount::from_xrp(5));
        assert_eq!(b.saturating_sub(a), Amount::ZERO);
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    #[should_panic(expected = "Amount underflow")]
    fn sub_underflow_panics() {
        let _ = Amount::from_xrp(1) - Amount::from_xrp(2);
    }

    #[test]
    fn split_mtu_preserves_total_and_bounds() {
        let total = Amount::from_drops(10_500_000);
        let mtu = Amount::from_xrp(3);
        let parts = total.split_mtu(mtu);
        assert_eq!(parts.iter().copied().sum::<Amount>(), total);
        assert!(parts.iter().all(|p| *p <= mtu && !p.is_zero()));
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[3], Amount::from_drops(1_500_000));
    }

    #[test]
    fn split_mtu_zero_amount() {
        assert!(Amount::ZERO.split_mtu(Amount::DROP).is_empty());
    }

    #[test]
    fn split_mtu_exact_multiple() {
        let parts = Amount::from_xrp(9).split_mtu(Amount::from_xrp(3));
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| *p == Amount::from_xrp(3)));
    }

    #[test]
    fn mtu_chunks_matches_split_mtu() {
        for (total, mtu) in [
            (Amount::from_drops(10_500_000), Amount::from_xrp(3)),
            (Amount::from_xrp(9), Amount::from_xrp(3)),
            (Amount::ZERO, Amount::DROP),
            (Amount::from_drops(1), Amount::from_xrp(10)),
        ] {
            let iter: Vec<Amount> = total.mtu_chunks(mtu).collect();
            assert_eq!(iter, total.split_mtu(mtu));
            assert_eq!(total.mtu_chunks(mtu).len(), iter.len());
        }
    }

    #[test]
    fn skip_full_chunks_leaves_only_the_partial() {
        // 10.5 XRP at 3-XRP MTU: chunks are 3, 3, 3, 1.5.
        let mut it = Amount::from_drops(10_500_000).mtu_chunks(Amount::from_xrp(3));
        assert_eq!(it.next(), Some(Amount::from_xrp(3)));
        assert_eq!(it.skip_full_chunks(), 2);
        assert_eq!(it.next(), Some(Amount::from_drops(1_500_000)));
        assert_eq!(it.next(), None);
        // Exact multiple: skipping consumes everything.
        let mut it = Amount::from_xrp(9).mtu_chunks(Amount::from_xrp(3));
        assert_eq!(it.skip_full_chunks(), 3);
        assert_eq!(it.next(), None);
        // Nothing but a partial: nothing to skip.
        let mut it = Amount::from_drops(1).mtu_chunks(Amount::from_xrp(10));
        assert_eq!(it.skip_full_chunks(), 0);
        assert_eq!(it.next(), Some(Amount::from_drops(1)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Amount::from_xrp(5).to_string(), "5 XRP");
        assert_eq!(Amount::from_drops(1_230_000).to_string(), "1.23 XRP");
        assert_eq!(SignedAmount::from_drops(-1_000_000).to_string(), "-1 XRP");
    }

    #[test]
    fn signed_amount_ops() {
        let x = SignedAmount::from_drops(5);
        let y = SignedAmount::from_drops(-8);
        assert_eq!((x + y).drops(), -3);
        assert_eq!((x - y).drops(), 13);
        assert_eq!((-y).drops(), 8);
        assert_eq!(y.abs(), Amount::from_drops(8));
        assert!(y.is_negative());
        assert!(!x.is_negative());
    }

    #[test]
    fn mul_f64_rounds() {
        let a = Amount::from_drops(10);
        assert_eq!(a.mul_f64(0.25), Amount::from_drops(3)); // 2.5 rounds to 3 (round half away)
        assert_eq!(a.mul_f64(-1.0), Amount::ZERO);
        assert_eq!(a.mul_f64(f64::NAN), Amount::ZERO);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(Amount::from_xrp(1).ratio(Amount::ZERO), 0.0);
        assert_eq!(Amount::from_xrp(1).ratio(Amount::from_xrp(4)), 0.25);
    }

    #[test]
    fn sum_iterator() {
        let v = vec![
            Amount::from_xrp(1),
            Amount::from_xrp(2),
            Amount::from_xrp(3),
        ];
        assert_eq!(v.iter().sum::<Amount>(), Amount::from_xrp(6));
        assert_eq!(v.into_iter().sum::<Amount>(), Amount::from_xrp(6));
    }
}
