//! Transaction-unit price/marking metadata (§5's decentralized signaling).
//!
//! In the online Spider protocol, routers do not drop transaction units
//! that find an empty channel direction — they queue them, compute a local
//! *price* from the queueing delay and the channel's flow imbalance
//! (the `x_u − x_v` term of §5.3), and **mark** transiting units when the
//! local signal crosses a threshold. The sender's per-path rate controller
//! backs off on marked acknowledgements and probes upward on clean ones.
//!
//! [`MarkStamp`] is the piece of state a unit accumulates on its way:
//! each hop folds its local signal in with [`MarkStamp::absorb`], and the
//! final stamp travels back to the sender on the unit's acknowledgement.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Price-signal metadata carried by one transaction unit across its path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarkStamp {
    /// Set when any hop's local congestion signal crossed its marking
    /// threshold (the router "marks the packet").
    pub marked: bool,
    /// Sum of per-hop prices along the path — the path price `∑ z_e` the
    /// sender's controller steers on.
    pub price: f64,
    /// Largest single-hop queueing delay the unit experienced.
    pub max_queue_delay: SimDuration,
}

impl MarkStamp {
    /// A fresh, unmarked stamp (what a unit carries at injection).
    pub const CLEAR: MarkStamp = MarkStamp {
        marked: false,
        price: 0.0,
        max_queue_delay: SimDuration::ZERO,
    };

    /// Folds one hop's local signal into the stamp.
    pub fn absorb(&mut self, hop_price: f64, hop_marked: bool, queue_delay: SimDuration) {
        self.marked |= hop_marked;
        self.price += hop_price;
        if queue_delay > self.max_queue_delay {
            self.max_queue_delay = queue_delay;
        }
    }
}

impl Default for MarkStamp {
    fn default() -> Self {
        MarkStamp::CLEAR
    }
}

/// Why a transaction unit was dropped before reaching its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The unit waited in a router queue longer than the configured bound.
    QueueTimeout,
    /// The router queue it needed was full on arrival.
    QueueOverflow,
    /// Its payment's deadline passed while it was still in flight.
    Expired,
    /// A channel on its path closed (topology churn) while it was in
    /// flight; every locked hop was refunded.
    ChannelClosed,
    /// The unit's forwarding message (or its acknowledgement) was lost in
    /// transit (fault injection); the per-hop timeout fired and every
    /// locked upstream hop was refunded.
    MessageLost,
    /// A hop silently held the unit (a stuck HTLC) past the per-hop
    /// timeout; the timeout canceled it and refunded every locked hop.
    HopTimeout,
    /// A node on its path crashed while the unit was in flight; every
    /// locked hop was refunded.
    NodeCrashed,
    /// Evicted by deadline-aware overload shedding: a full queue chose to
    /// drop the unit least likely to meet its deadline (which may be the
    /// newcomer itself) rather than tail-drop blindly.
    Shed,
    /// Fail-fasted by sender-side admission control before entering any
    /// queue: the network was judged too loaded to carry it in time.
    AdmissionRejected,
}

impl DropReason {
    /// True for the drop reasons produced only by fault injection
    /// (`spider-faults`): lost messages, hop timeouts, node crashes.
    /// Zero-fault runs never produce these, which is what lets retry
    /// backoff react to them without perturbing fault-free goldens.
    pub fn is_fault(self) -> bool {
        matches!(
            self,
            DropReason::MessageLost | DropReason::HopTimeout | DropReason::NodeCrashed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_stamp_is_neutral() {
        let s = MarkStamp::CLEAR;
        assert!(!s.marked);
        assert_eq!(s.price, 0.0);
        assert_eq!(s.max_queue_delay, SimDuration::ZERO);
        assert_eq!(MarkStamp::default(), s);
    }

    #[test]
    fn absorb_accumulates_price_and_mark() {
        let mut s = MarkStamp::CLEAR;
        s.absorb(0.25, false, SimDuration::from_millis(5));
        assert!(!s.marked);
        s.absorb(0.5, true, SimDuration::from_millis(80));
        s.absorb(0.125, false, SimDuration::from_millis(3));
        assert!(s.marked, "a single marked hop marks the unit");
        assert!((s.price - 0.875).abs() < 1e-12);
        assert_eq!(s.max_queue_delay, SimDuration::from_millis(80));
    }

    #[test]
    fn serde_round_trip() {
        let mut s = MarkStamp::CLEAR;
        s.absorb(1.5, true, SimDuration::from_millis(42));
        let v = serde::Serialize::to_value(&s);
        let back: MarkStamp = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, s);
        for r in [
            DropReason::QueueTimeout,
            DropReason::QueueOverflow,
            DropReason::Expired,
            DropReason::ChannelClosed,
            DropReason::MessageLost,
            DropReason::HopTimeout,
            DropReason::NodeCrashed,
            DropReason::Shed,
            DropReason::AdmissionRejected,
        ] {
            let v = serde::Serialize::to_value(&r);
            let back: DropReason = serde::Deserialize::from_value(&v).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn fault_reasons_are_exactly_the_injected_ones() {
        assert!(DropReason::MessageLost.is_fault());
        assert!(DropReason::HopTimeout.is_fault());
        assert!(DropReason::NodeCrashed.is_fault());
        assert!(!DropReason::QueueTimeout.is_fault());
        assert!(!DropReason::QueueOverflow.is_fault());
        assert!(!DropReason::Expired.is_fault());
        assert!(!DropReason::ChannelClosed.is_fault());
        // Overload protection is congestion response, not fault injection:
        // these must never trip the fault backoff.
        assert!(!DropReason::Shed.is_fault());
        assert!(!DropReason::AdmissionRejected.is_fault());
    }
}
