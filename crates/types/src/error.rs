//! Error types shared across the workspace.

use crate::ids::{ChannelId, NodeId, PaymentId};
use std::fmt;

/// Convenient result alias using [`SpiderError`].
pub type Result<T> = std::result::Result<T, SpiderError>;

/// Errors produced anywhere in the Spider stack.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpiderError {
    /// A node id referenced a node that does not exist in the topology.
    UnknownNode(NodeId),
    /// A channel id referenced a channel that does not exist.
    UnknownChannel(ChannelId),
    /// Two nodes are not adjacent but an operation required a direct channel.
    NotAdjacent(NodeId, NodeId),
    /// No route could be found between two nodes.
    NoRoute(NodeId, NodeId),
    /// A channel direction lacked the balance for a transfer.
    InsufficientBalance {
        /// The starved channel.
        channel: ChannelId,
        /// Amount requested, in drops.
        requested: u64,
        /// Amount available, in drops.
        available: u64,
    },
    /// A payment id was not found (already completed, or never submitted).
    UnknownPayment(PaymentId),
    /// The linear program was infeasible.
    Infeasible,
    /// The linear program was unbounded.
    Unbounded,
    /// An iterative solver failed to converge within its iteration budget.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// Parsing external data (topology file, trace) failed.
    Parse(String),
    /// An invalid configuration value was supplied.
    InvalidConfig(String),
}

impl fmt::Display for SpiderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiderError::UnknownNode(n) => write!(f, "unknown node {n}"),
            SpiderError::UnknownChannel(c) => write!(f, "unknown channel {c}"),
            SpiderError::NotAdjacent(a, b) => write!(f, "nodes {a} and {b} share no channel"),
            SpiderError::NoRoute(a, b) => write!(f, "no route from {a} to {b}"),
            SpiderError::InsufficientBalance {
                channel,
                requested,
                available,
            } => write!(
                f,
                "insufficient balance on {channel}: requested {requested} drops, have {available}"
            ),
            SpiderError::UnknownPayment(p) => write!(f, "unknown payment {p}"),
            SpiderError::Infeasible => write!(f, "linear program is infeasible"),
            SpiderError::Unbounded => write!(f, "linear program is unbounded"),
            SpiderError::NoConvergence { iterations } => {
                write!(f, "solver did not converge after {iterations} iterations")
            }
            SpiderError::Parse(msg) => write!(f, "parse error: {msg}"),
            SpiderError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SpiderError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SpiderError::UnknownNode(NodeId(3)).to_string(),
            "unknown node n3"
        );
        assert_eq!(
            SpiderError::NoRoute(NodeId(1), NodeId(2)).to_string(),
            "no route from n1 to n2"
        );
        let e = SpiderError::InsufficientBalance {
            channel: ChannelId(0),
            requested: 10,
            available: 5,
        };
        assert_eq!(
            e.to_string(),
            "insufficient balance on ch0: requested 10 drops, have 5"
        );
        assert_eq!(
            SpiderError::Infeasible.to_string(),
            "linear program is infeasible"
        );
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&SpiderError::Unbounded);
    }
}
