//! # spider-types
//!
//! Foundation types shared by every crate in the Spider payment-channel-network
//! reproduction: fixed-point currency amounts, simulation time, entity
//! identifiers, error types, deterministic random-number utilities and the
//! probability distributions used by the workload generators.
//!
//! The paper ("Routing Cryptocurrency with the Spider Network", the arXiv
//! precursor of the NSDI 2020 Spider paper) measures everything in XRP.
//! Ripple's native integer unit is the *drop* (1 XRP = 10^6 drops), so
//! [`Amount`] is a fixed-point integer count of drops. Integer arithmetic
//! keeps the simulator deterministic and conservation-checkable to the drop.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod amount;
pub mod distr;
pub mod error;
pub mod event;
pub mod ids;
pub mod rng;
pub mod stats;
pub mod time;
pub mod unit;

pub use amount::{Amount, SignedAmount, DROPS_PER_XRP};
pub use error::{Result, SpiderError};
pub use event::{TopologyChange, TopologyEvent};
pub use ids::{ChannelId, Direction, NodeId, PathId, PaymentId, UnitId};
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
pub use unit::{DropReason, MarkStamp};
