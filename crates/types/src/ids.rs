//! Identifiers for the entities of a payment channel network.
//!
//! All ids are small newtypes over integers so they can be used as dense
//! vector indices (the graph code stores per-node and per-channel state in
//! flat `Vec`s) while staying type-safe.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a node (a Spider router and/or end-host) in the network.
///
/// Node ids are dense indices `0..n`, assigned by the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The underlying dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a node id from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies an *undirected* payment channel (an escrowed pair of balances).
///
/// Channel ids are dense indices `0..m`, assigned by the topology. A channel
/// between `u` and `v` carries funds in both directions; a direction is
/// selected with [`Direction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// The underlying dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a channel id from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        ChannelId(u32::try_from(i).expect("channel index exceeds u32"))
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// One of the two directions of a bidirectional payment channel.
///
/// The topology stores each channel with a canonical `(u, v)` endpoint order
/// (`u < v`); `Forward` means funds moving `u → v`, `Backward` means `v → u`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// From the canonical first endpoint to the second (`u → v`).
    Forward,
    /// From the canonical second endpoint to the first (`v → u`).
    Backward,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub const fn reverse(self) -> Direction {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }

    /// Index (0 for forward, 1 for backward) for two-element state arrays.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Direction::Forward => 0,
            Direction::Backward => 1,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Forward => write!(f, "→"),
            Direction::Backward => write!(f, "←"),
        }
    }
}

/// Identifies an interned path: a dense index into a simulation's shared
/// path table, where the node sequence and its pre-resolved
/// `(ChannelId, Direction)` hops are stored exactly once.
///
/// Routers and the engine exchange `PathId`s instead of cloning node
/// vectors; resolving a hop sequence costs one index instead of a
/// `channel_between` lookup per hop per unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PathId(pub u32);

impl PathId {
    /// The underlying dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a path id from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        PathId(u32::try_from(i).expect("path index exceeds u32"))
    }
}

impl fmt::Display for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifies an end-to-end payment (which may be split into many
/// transaction units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PaymentId(pub u64);

impl fmt::Display for PaymentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pay{}", self.0)
    }
}

/// Identifies a single transaction unit: `(payment, sequence number)`.
///
/// The sender generates a fresh hash-lock key per unit (§4.1 of the paper),
/// so the unit id is also the identity of the HTLC along its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UnitId {
    /// The payment this unit belongs to.
    pub payment: PaymentId,
    /// Sequence number of the unit within its payment, starting at 0.
    pub seq: u32,
}

impl UnitId {
    /// Creates a unit id.
    #[inline]
    pub const fn new(payment: PaymentId, seq: u32) -> Self {
        UnitId { payment, seq }
    }
}

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.payment, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_index_round_trip() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n.to_string(), "n42");
    }

    #[test]
    fn channel_index_round_trip() {
        let c = ChannelId::from_index(7);
        assert_eq!(c.index(), 7);
        assert_eq!(c.to_string(), "ch7");
    }

    #[test]
    fn direction_reverse_is_involution() {
        for d in [Direction::Forward, Direction::Backward] {
            assert_eq!(d.reverse().reverse(), d);
            assert_ne!(d.reverse(), d);
        }
        assert_eq!(Direction::Forward.index(), 0);
        assert_eq!(Direction::Backward.index(), 1);
    }

    #[test]
    fn unit_id_identity() {
        let u = UnitId::new(PaymentId(9), 3);
        assert_eq!(u.to_string(), "pay9#3");
        assert_eq!(
            u,
            UnitId {
                payment: PaymentId(9),
                seq: 3
            }
        );
        assert_ne!(u, UnitId::new(PaymentId(9), 4));
    }

    #[test]
    fn ids_are_ordered() {
        assert!(NodeId(1) < NodeId(2));
        assert!(UnitId::new(PaymentId(1), 5) < UnitId::new(PaymentId(2), 0));
    }
}
