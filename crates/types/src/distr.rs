//! Probability distributions for workload generation, built from first
//! principles on top of [`DetRng`].
//!
//! The paper's workloads need: exponential inter-arrival times (Poisson
//! transaction arrivals), log-normal-ish transaction sizes matching the
//! Ripple trace moments, an exponential-rank sampler for choosing senders
//! ("the sender for each transaction was sampled ... using an exponential
//! distribution", §6.1), and uniform receivers. We also provide Pareto and
//! an empirical distribution for trace-driven experiments.

use crate::rng::DetRng;

/// A sampleable one-dimensional distribution over `f64`.
pub trait Distribution {
    /// Draws one sample.
    fn sample(&self, rng: &mut DetRng) -> f64;

    /// The distribution mean, if it exists in closed form.
    fn mean(&self) -> Option<f64> {
        None
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate (> 0).
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda.is_finite(), "rate must be positive");
        Exponential { lambda }
    }

    /// Creates an exponential distribution with the given mean (> 0).
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive");
        Exponential { lambda: 1.0 / mean }
    }

    /// The rate parameter λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        // Inverse CDF: F⁻¹(u) = -ln(1-u)/λ; we use -ln(u) with u ∈ (0,1),
        // which has the same law.
        -rng.uniform_open().ln() / self.lambda
    }

    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.lambda)
    }
}

/// Standard-normal sampler (Box–Muller, one value per call).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StdNormal;

impl Distribution for StdNormal {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        let u1 = rng.uniform_open();
        let u2 = rng.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    fn mean(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// Log-normal distribution: `exp(mu + sigma * Z)` with `Z ~ N(0,1)`.
///
/// Transaction sizes in the Ripple trace are heavy-tailed with a moderate
/// body; the paper reports mean 345 XRP (full trace restricted to its
/// subgraph) and mean 170 XRP (ISP workload, largest 10 % pruned). Use
/// [`LogNormal::with_mean_median`] to fit those two moments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with location `mu` and scale `sigma >= 0` of the
    /// underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            sigma >= 0.0 && sigma.is_finite() && mu.is_finite(),
            "invalid parameters"
        );
        LogNormal { mu, sigma }
    }

    /// Fits a log-normal from a target mean and median (mean > median > 0).
    ///
    /// Median = exp(mu), mean = exp(mu + sigma²/2), so
    /// sigma = sqrt(2 ln(mean/median)).
    pub fn with_mean_median(mean: f64, median: f64) -> Self {
        assert!(
            mean > 0.0 && median > 0.0 && mean >= median,
            "need mean >= median > 0"
        );
        let mu = median.ln();
        let sigma = (2.0 * (mean / median).ln()).sqrt();
        LogNormal { mu, sigma }
    }

    /// Location parameter of the underlying normal.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter of the underlying normal.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        (self.mu + self.sigma * StdNormal.sample(rng)).exp()
    }

    fn mean(&self) -> Option<f64> {
        Some((self.mu + self.sigma * self.sigma / 2.0).exp())
    }
}

/// Pareto (power-law) distribution with scale `x_min > 0` and shape
/// `alpha > 0`; used for heavy-tailed stress workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0 && alpha > 0.0, "parameters must be positive");
        Pareto { x_min, alpha }
    }
}

impl Distribution for Pareto {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        self.x_min / rng.uniform_open().powf(1.0 / self.alpha)
    }

    fn mean(&self) -> Option<f64> {
        (self.alpha > 1.0).then(|| self.alpha * self.x_min / (self.alpha - 1.0))
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformF64 {
    lo: f64,
    hi: f64,
}

impl UniformF64 {
    /// Creates a uniform distribution on `[lo, hi)` with `lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "invalid interval"
        );
        UniformF64 { lo, hi }
    }
}

impl Distribution for UniformF64 {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.uniform()
    }

    fn mean(&self) -> Option<f64> {
        Some((self.lo + self.hi) / 2.0)
    }
}

/// Constant (degenerate) distribution; handy in tests and ablations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl Distribution for Constant {
    fn sample(&self, _rng: &mut DetRng) -> f64 {
        self.0
    }

    fn mean(&self) -> Option<f64> {
        Some(self.0)
    }
}

/// Empirical distribution: samples uniformly from observed values
/// (bootstrap resampling of a trace).
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    values: Vec<f64>,
}

impl Empirical {
    /// Builds an empirical distribution from a non-empty sample set.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "empirical distribution needs samples");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "samples must be finite"
        );
        Empirical { values }
    }

    /// Truncates the distribution to values `<= cap`, mimicking the paper's
    /// "pruning out the largest 10 %" preprocessing. Returns `None` if no
    /// samples survive.
    pub fn truncated(&self, cap: f64) -> Option<Empirical> {
        let kept: Vec<f64> = self.values.iter().copied().filter(|v| *v <= cap).collect();
        (!kept.is_empty()).then(|| Empirical::new(kept))
    }

    /// The p-th percentile (0 ≤ p ≤ 100) of the sample set.
    pub fn percentile(&self, p: f64) -> f64 {
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }
}

impl Distribution for Empirical {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        self.values[rng.index(self.values.len())]
    }

    fn mean(&self) -> Option<f64> {
        Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
    }
}

/// Samples node *ranks* with exponentially decaying probability:
/// `P(rank = i) ∝ exp(-i / scale)`, truncated to `0..n`.
///
/// This reproduces the paper's skewed sender selection ("sampled from the
/// set of nodes using an exponential distribution") — a few nodes originate
/// most payments, which is what makes channels become imbalanced.
#[derive(Debug, Clone, PartialEq)]
pub struct ExponentialRank {
    n: usize,
    cumulative: Vec<f64>,
}

impl ExponentialRank {
    /// Creates a sampler over `n` ranks with decay scale `scale > 0`
    /// (larger scale = closer to uniform).
    pub fn new(n: usize, scale: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += (-(i as f64) / scale).exp();
            cumulative.push(acc);
        }
        ExponentialRank { n, cumulative }
    }

    /// Draws a rank in `0..n`.
    pub fn sample_rank(&self, rng: &mut DetRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let target = rng.uniform() * total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&target).expect("finite"))
        {
            Ok(i) => (i + 1).min(self.n - 1),
            Err(i) => i.min(self.n - 1),
        }
    }
}

/// A Poisson arrival process: exponential inter-arrival times with the given
/// rate (events per second). Yields successive arrival timestamps in seconds.
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    inter: Exponential,
    now: f64,
}

impl PoissonProcess {
    /// Creates a process with `rate` events per second, starting at t = 0.
    pub fn new(rate: f64) -> Self {
        PoissonProcess {
            inter: Exponential::new(rate),
            now: 0.0,
        }
    }

    /// Advances to and returns the next arrival time (seconds).
    pub fn next_arrival(&mut self, rng: &mut DetRng) -> f64 {
        self.now += self.inter.sample(rng);
        self.now
    }

    /// The current (last returned) arrival time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(d: &impl Distribution, seed: u64, n: usize) -> f64 {
        let mut rng = DetRng::new(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::with_mean(4.0);
        let m = mean_of(&d, 11, 100_000);
        assert!((m - 4.0).abs() < 0.1, "mean {m}");
        assert_eq!(d.mean(), Some(4.0));
        assert!((Exponential::new(0.5).mean().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_is_positive() {
        let d = Exponential::new(1.0);
        let mut rng = DetRng::new(12);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn std_normal_moments() {
        let mut rng = DetRng::new(13);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| StdNormal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn log_normal_fit_mean_median() {
        // Paper's ISP workload: mean 170 XRP. Pick median 100 XRP for a
        // realistic right skew.
        let d = LogNormal::with_mean_median(170.0, 100.0);
        let m = mean_of(&d, 14, 200_000);
        assert!((m - 170.0).abs() / 170.0 < 0.05, "mean {m}");
        assert!((d.mean().unwrap() - 170.0).abs() < 1e-9);
    }

    #[test]
    fn pareto_tail_and_mean() {
        let d = Pareto::new(1.0, 2.5);
        let m = mean_of(&d, 15, 200_000);
        let expect = 2.5 / 1.5;
        assert!((m - expect).abs() / expect < 0.05, "mean {m}");
        assert_eq!(Pareto::new(1.0, 0.5).mean(), None); // infinite mean
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = UniformF64::new(2.0, 6.0);
        let mut rng = DetRng::new(16);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..6.0).contains(&x));
        }
        assert_eq!(d.mean(), Some(4.0));
    }

    #[test]
    fn constant_is_constant() {
        let mut rng = DetRng::new(17);
        assert_eq!(Constant(3.5).sample(&mut rng), 3.5);
        assert_eq!(Constant(3.5).mean(), Some(3.5));
    }

    #[test]
    fn empirical_resamples_members() {
        let d = Empirical::new(vec![1.0, 2.0, 4.0]);
        let mut rng = DetRng::new(18);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!(x == 1.0 || x == 2.0 || x == 4.0);
        }
        assert!((d.mean().unwrap() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_truncation() {
        let d = Empirical::new(vec![1.0, 5.0, 10.0, 50.0]);
        let t = d.truncated(10.0).unwrap();
        assert_eq!(t.mean(), Some(16.0 / 3.0));
        assert!(d.truncated(0.5).is_none());
    }

    #[test]
    fn empirical_percentiles() {
        let d = Empirical::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(d.percentile(0.0), 1.0);
        assert_eq!(d.percentile(100.0), 100.0);
        let p50 = d.percentile(50.0);
        assert!((p50 - 50.0).abs() <= 1.0, "p50 {p50}");
    }

    #[test]
    fn exponential_rank_is_skewed_and_in_range() {
        let s = ExponentialRank::new(10, 2.0);
        let mut rng = DetRng::new(19);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            let r = s.sample_rank(&mut rng);
            assert!(r < 10);
            counts[r] += 1;
        }
        // Rank 0 should be sampled ~ e^{1/2} ≈ 1.65x more often than rank 1.
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[3]);
        assert!(counts[0] as f64 / counts[1] as f64 > 1.3);
    }

    #[test]
    fn exponential_rank_large_scale_near_uniform() {
        let s = ExponentialRank::new(4, 1e6);
        let mut rng = DetRng::new(20);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[s.sample_rank(&mut rng)] += 1;
        }
        for c in counts {
            let f = c as f64 / 40_000.0;
            assert!((f - 0.25).abs() < 0.02, "f {f}");
        }
    }

    #[test]
    fn poisson_process_monotone_with_correct_rate() {
        let mut p = PoissonProcess::new(100.0);
        let mut rng = DetRng::new(21);
        let mut last = 0.0;
        let mut count = 0;
        while p.next_arrival(&mut rng) < 10.0 {
            assert!(p.now() > last);
            last = p.now();
            count += 1;
        }
        // Expect ~1000 arrivals in 10 s at rate 100/s.
        assert!((count as f64 - 1000.0).abs() < 120.0, "count {count}");
    }
}
