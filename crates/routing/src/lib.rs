//! # spider-routing
//!
//! The routing schemes evaluated in §6, all implementing
//! [`spider_sim::Router`]:
//!
//! | Scheme | Paper role | Atomic? |
//! |---|---|---|
//! | [`SpiderWaterfilling`] | Spider (Waterfilling): k candidate paths, water-fill toward equal bottleneck balances | no |
//! | [`SpiderLp`] | Spider (LP): offline fluid-LP weights steer per-path splits | no |
//! | [`SpiderPricing`] | §5.3 price feedback as an online imbalance-aware scheme (extension) | no |
//! | [`ShortestPath`] | packet-switched shortest-path baseline | no |
//! | [`MaxFlow`] | per-transaction max-flow (Ford–Fulkerson gold standard) | yes |
//! | [`SilentWhispers`] | landmark routing with multipath splits | yes |
//! | [`SpeedyMurmurs`] | embedding-based greedy routing on spanning trees | yes |
//!
//! All schemes are deterministic given their construction inputs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backoff;
pub mod cache;
pub mod lp_router;
pub mod maxflow_router;
pub mod oracle;
pub mod pricing;
pub mod shortest;
pub mod silentwhispers;
pub mod speedymurmurs;
pub mod waterfilling;

pub use backoff::{BackoffConfig, BreakerConfig, ChannelBreakers, PathPenalties};
pub use cache::{PathCache, PathPolicy};
pub use lp_router::{LpSolverKind, SpiderLp};
pub use maxflow_router::MaxFlow;
pub use oracle::PathOracle;
pub use pricing::{PricingConfig, SpiderPricing};
pub use shortest::ShortestPath;
pub use silentwhispers::SilentWhispers;
pub use speedymurmurs::SpeedyMurmurs;
pub use waterfilling::SpiderWaterfilling;

use spider_sim::Router;

/// Convenience constructor for the full §6 scheme lineup, in the paper's
/// legend order. `demands` feeds Spider (LP)'s offline optimization exactly
/// as the paper does ("Spider (LP) solves the LP once based on the
/// long-term payment demands").
pub fn paper_schemes(
    topo: &spider_topology::Topology,
    demands: &spider_paygraph::PaymentGraph,
    delta_secs: f64,
) -> Vec<Box<dyn Router>> {
    vec![
        Box::new(SpiderLp::new(
            topo,
            demands,
            delta_secs,
            4,
            LpSolverKind::Auto,
        )),
        Box::new(SpiderWaterfilling::new(4)),
        Box::new(MaxFlow::new()),
        Box::new(ShortestPath::new()),
        Box::new(SilentWhispers::new(topo, 3)),
        Box::new(SpeedyMurmurs::new(topo, 3)),
    ]
}
