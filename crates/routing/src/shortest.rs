//! The packet-switched shortest-path baseline.
//!
//! "We implemented shortest-path routing with non-atomic payments as
//! another baseline for our packet-switched network" (§6.1). The scheme
//! proposes the single BFS shortest path for the full remainder; the
//! engine packetizes into MTU units and queues what does not fit.
//!
//! The path is computed once per pair through the shared [`PathCache`]
//! (the topology is static, so BFS per request was pure waste) and handed
//! to the engine as an interned [`PathId`](spider_types::PathId).

use crate::backoff::{BackoffConfig, ChannelBreakers, PathPenalties};
use crate::cache::{PathCache, PathPolicy};
use spider_sim::{NetworkView, RouteProposal, RouteRequest, Router, TopologyUpdate};
use spider_types::{DropReason, PathId};

/// Non-atomic single-shortest-path routing.
#[derive(Debug)]
pub struct ShortestPath {
    cache: PathCache,
    /// Fault cooldowns (empty for the whole run unless faults fire).
    penalties: PathPenalties,
    /// Per-channel shed breakers (empty for the whole run unless
    /// overload shedding fires).
    breakers: ChannelBreakers,
    /// Alternate candidates for failover while the shortest path is
    /// cooling down (or breaker-blocked). Built lazily on the first
    /// hit, so fault-free runs never pay for (or observe) it.
    alt: Option<PathCache>,
}

impl Default for ShortestPath {
    fn default() -> Self {
        Self::new()
    }
}

impl ShortestPath {
    /// Creates the baseline router.
    pub fn new() -> Self {
        Self::with_backoff(BackoffConfig::default())
    }

    /// Creates the baseline router with explicit fault-backoff tuning
    /// (cooldown base and doubling cap).
    pub fn with_backoff(cfg: BackoffConfig) -> Self {
        ShortestPath {
            cache: PathCache::new(PathPolicy::Shortest),
            penalties: PathPenalties::new(cfg),
            breakers: ChannelBreakers::default(),
            alt: None,
        }
    }

    /// True when every hop of `path` may be crossed at `view.now`
    /// (short-circuits on the empty breaker table).
    fn breakers_allow(
        breakers: &mut ChannelBreakers,
        path: PathId,
        view: &NetworkView<'_>,
    ) -> bool {
        view.path(path)
            .hops()
            .iter()
            .all(|&(c, _)| breakers.allow(c, view.now))
    }
}

impl Router for ShortestPath {
    /// The lock-outcome hook is the default no-op: let the engine elide
    /// it (and batch-count identical failed chunks).
    fn observes_unit_outcomes(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "shortest-path"
    }

    fn wants_prewarm(&self) -> bool {
        true
    }

    fn prewarm(
        &mut self,
        pairs: &[(spider_types::NodeId, spider_types::NodeId)],
        view: &NetworkView<'_>,
    ) {
        self.cache.prefill(view.topo, view.paths, pairs);
    }

    fn on_topology_change(&mut self, update: &TopologyUpdate, view: &NetworkView<'_>) {
        self.cache.on_topology_change(view.topo, view.paths, update);
        if let Some(alt) = self.alt.as_mut() {
            alt.on_topology_change(view.topo, view.paths, update);
        }
    }

    fn route(&mut self, req: &RouteRequest, view: &NetworkView<'_>) -> Vec<RouteProposal> {
        let Some(&primary) = self
            .cache
            .get(view.topo, view.paths, req.src, req.dst)
            .first()
        else {
            return Vec::new();
        };
        let mut path = primary;
        if self.penalties.is_cooled(primary, view.now) {
            // Fail over to an edge-disjoint alternate while the shortest
            // path cools down; all-cooled falls back to the primary.
            let alt = self
                .alt
                .get_or_insert_with(|| PathCache::new(PathPolicy::EdgeDisjoint(2)));
            let candidates = alt.get(view.topo, view.paths, req.src, req.dst).to_vec();
            path = self
                .penalties
                .choose(&candidates, view.now)
                .unwrap_or(primary);
        }
        if !self.breakers.is_empty() && !Self::breakers_allow(&mut self.breakers, path, view) {
            // The chosen path crosses a tripped channel: fail over to an
            // edge-disjoint alternate whose breakers all allow traffic.
            let alt = self
                .alt
                .get_or_insert_with(|| PathCache::new(PathPolicy::EdgeDisjoint(2)));
            let candidates = alt.get(view.topo, view.paths, req.src, req.dst).to_vec();
            match candidates
                .into_iter()
                .filter(|&p| p != path)
                .find(|&p| Self::breakers_allow(&mut self.breakers, p, view))
            {
                Some(p) => path = p,
                // Every candidate is blocked: fail fast and let the next
                // poll retry once the breakers half-open.
                None => return Vec::new(),
            }
        }
        vec![RouteProposal {
            path,
            amount: req.remaining,
        }]
    }

    /// Fault outcomes arrive here unconditionally (the engine bypasses
    /// the `observes_unit_outcomes` gate for them); ordinary lock
    /// outcomes stay elided.
    fn on_unit_outcome(&mut self, outcome: &spider_sim::UnitOutcome, view: &NetworkView<'_>) {
        if let Some(reason) = outcome.fault {
            debug_assert!(reason.is_fault());
            self.penalties.on_fault(outcome.path, view.now);
        }
    }

    fn on_unit_ack(&mut self, ack: &spider_sim::UnitAck, view: &NetworkView<'_>) {
        self.penalties
            .on_ack(ack.path, ack.delivered, ack.drop_reason, view.now);
        if ack.drop_reason == Some(DropReason::Shed) {
            if let Some(c) = ack.drop_channel {
                self.breakers.on_strike(c, view.now);
            }
        } else if ack.delivered && !self.breakers.is_empty() {
            for &(c, _) in view.path(ack.path).hops() {
                self.breakers.on_success(c);
            }
        }
    }

    fn observability(&self) -> spider_sim::RouterObs {
        let mut obs = spider_sim::RouterObs::default();
        obs.counters
            .extend(self.penalties.counters().map(|(k, v)| (k.to_string(), v)));
        obs.counters
            .extend(self.breakers.counters().map(|(k, v)| (k.to_string(), v)));
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_sim::{ChannelState, PathTable};
    use spider_types::{Amount, NodeId, PaymentId, SimTime};

    #[test]
    fn proposes_single_shortest_path() {
        let t = spider_topology::gen::line(4, Amount::from_xrp(10));
        let channels: Vec<ChannelState> = t
            .channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &channels,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut r = ShortestPath::new();
        let req = RouteRequest {
            payment: PaymentId(0),
            src: NodeId(0),
            dst: NodeId(3),
            remaining: Amount::from_xrp(2),
            total: Amount::from_xrp(2),
            mtu: Amount::from_xrp(1),
            attempt: 0,
        };
        let props = r.route(&req, &view);
        assert_eq!(props.len(), 1);
        assert_eq!(
            view.path(props[0].path).nodes(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(props[0].amount, Amount::from_xrp(2));
        assert!(!r.atomic());
        // The second request hits the cache, not BFS: same interned id.
        let again = r.route(&req, &view);
        assert_eq!(again[0].path, props[0].path);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn empty_for_unreachable() {
        let mut b = spider_topology::Topology::builder(3);
        b.channel(NodeId(0), NodeId(1), Amount::from_xrp(1))
            .unwrap();
        let t = b.build();
        let channels: Vec<ChannelState> = t
            .channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &channels,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let req = RouteRequest {
            payment: PaymentId(0),
            src: NodeId(0),
            dst: NodeId(2),
            remaining: Amount::from_xrp(1),
            total: Amount::from_xrp(1),
            mtu: Amount::from_xrp(1),
            attempt: 0,
        };
        assert!(ShortestPath::new().route(&req, &view).is_empty());
    }
}
