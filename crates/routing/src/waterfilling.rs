//! Spider (Waterfilling).
//!
//! The quickly-converging heuristic of §5.3.1: "sources … always sending
//! on paths with the largest available capacity, much like waterfilling
//! algorithms for max-min fairness. A source measures the available
//! capacity on a set of paths to the destination. It then first transmits
//! on the path with highest capacity until its capacity is the same as the
//! second-highest-capacity path; then it transmits on both … and so on."
//!
//! We allocate the payment in MTU-sized units, each to the candidate path
//! with the largest *residual* bottleneck (current available balance minus
//! what this payment already put on it) — the discrete version of the
//! waterfilling dynamics, restricted to the paper's 4 edge-disjoint paths.

use crate::cache::{PathCache, PathPolicy};
use spider_sim::{NetworkView, RouteProposal, RouteRequest, Router};
use spider_types::Amount;

/// Spider's waterfilling router (non-atomic).
#[derive(Debug)]
pub struct SpiderWaterfilling {
    cache: PathCache,
}

impl SpiderWaterfilling {
    /// Creates the router with `k` edge-disjoint candidate paths per pair
    /// (the paper uses 4).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one path");
        SpiderWaterfilling {
            cache: PathCache::new(PathPolicy::EdgeDisjoint(k)),
        }
    }
}

impl Router for SpiderWaterfilling {
    fn name(&self) -> &'static str {
        "spider-waterfilling"
    }

    fn route(&mut self, req: &RouteRequest, view: &NetworkView<'_>) -> Vec<RouteProposal> {
        let paths = self.cache.get(view.topo, req.src, req.dst);
        if paths.is_empty() {
            return Vec::new();
        }
        // Current bottleneck per candidate path.
        let mut residual: Vec<Amount> = paths
            .iter()
            .map(|p| view.path_bottleneck(&p.nodes).unwrap_or(Amount::ZERO))
            .collect();
        let mut allocated: Vec<Amount> = vec![Amount::ZERO; paths.len()];
        let mut remaining = req.remaining;
        while !remaining.is_zero() {
            // Highest residual capacity wins the next unit (ties: lowest
            // index, i.e. the shorter path).
            let Some(best) = (0..paths.len())
                .filter(|&i| !residual[i].is_zero())
                .max_by(|&a, &b| residual[a].cmp(&residual[b]).then(b.cmp(&a)))
            else {
                break;
            };
            let unit = req.mtu.min(remaining).min(residual[best]);
            allocated[best] += unit;
            residual[best] -= unit;
            remaining -= unit;
        }
        paths
            .iter()
            .zip(allocated)
            .filter(|(_, a)| !a.is_zero())
            .map(|(p, amount)| RouteProposal {
                path: p.nodes.clone(),
                amount,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_sim::ChannelState;
    use spider_types::{Direction, NodeId, PaymentId, SimTime};

    fn xrp(x: u64) -> Amount {
        Amount::from_xrp(x)
    }

    fn req(src: u32, dst: u32, amount: Amount, mtu: Amount) -> RouteRequest {
        RouteRequest {
            payment: PaymentId(0),
            src: NodeId(src),
            dst: NodeId(dst),
            remaining: amount,
            total: amount,
            mtu,
            attempt: 0,
        }
    }

    /// Diamond with asymmetric capacities: direct 0-3 thin, detours fat.
    fn diamond() -> (spider_topology::Topology, Vec<ChannelState>) {
        let mut b = spider_topology::Topology::builder(4);
        b.channel(NodeId(0), NodeId(3), xrp(4)).unwrap(); // direct: 2 avail
        b.channel(NodeId(0), NodeId(1), xrp(20)).unwrap();
        b.channel(NodeId(1), NodeId(3), xrp(20)).unwrap();
        b.channel(NodeId(0), NodeId(2), xrp(12)).unwrap();
        b.channel(NodeId(2), NodeId(3), xrp(12)).unwrap();
        let t = b.build();
        let ch: Vec<ChannelState> = t
            .channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect();
        (t, ch)
    }

    #[test]
    fn prefers_widest_path_first() {
        let (t, ch) = diamond();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            now: SimTime::ZERO,
        };
        let mut r = SpiderWaterfilling::new(4);
        // 3 XRP with MTU 1: all three units fit on the 10-XRP detour
        // (residuals: direct 2, via-1 10, via-2 6).
        let props = r.route(&req(0, 3, xrp(3), xrp(1)), &view);
        assert_eq!(props.len(), 1);
        assert_eq!(props[0].path, vec![NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(props[0].amount, xrp(3));
    }

    #[test]
    fn spreads_across_paths_when_large() {
        let (t, ch) = diamond();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            now: SimTime::ZERO,
        };
        let mut r = SpiderWaterfilling::new(4);
        // 14 XRP: waterfills via-1 (10 avail) down toward via-2 (6) and
        // direct (2). Expected split: via-1 gets 9, via-2 gets 5 — both
        // equalize at residual 1 — then direct 2 is still below; remaining
        // 0. Allocation: 9 + 5 = 14.
        let props = r.route(&req(0, 3, xrp(14), xrp(1)), &view);
        let total: Amount = props.iter().map(|p| p.amount).sum();
        assert_eq!(total, xrp(14));
        assert!(props.len() >= 2);
        // The widest path must carry the largest share.
        let via1 = props
            .iter()
            .find(|p| p.path == vec![NodeId(0), NodeId(1), NodeId(3)])
            .expect("widest path used");
        for p in &props {
            assert!(via1.amount >= p.amount);
        }
    }

    #[test]
    fn allocation_capped_by_total_capacity() {
        let (t, ch) = diamond();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            now: SimTime::ZERO,
        };
        let mut r = SpiderWaterfilling::new(4);
        // Ask for far more than the network can hold: 2 + 10 + 6 = 18 max.
        let props = r.route(&req(0, 3, xrp(100), xrp(1)), &view);
        let total: Amount = props.iter().map(|p| p.amount).sum();
        assert_eq!(total, xrp(18));
    }

    #[test]
    fn skips_empty_paths() {
        let (t, mut ch) = diamond();
        // Drain the direct channel's forward side entirely.
        let direct = t.channel_between(NodeId(0), NodeId(3)).unwrap();
        let avail = ch[direct.index()].available(Direction::Forward);
        assert!(ch[direct.index()].lock(Direction::Forward, avail));
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            now: SimTime::ZERO,
        };
        let mut r = SpiderWaterfilling::new(4);
        let props = r.route(&req(0, 3, xrp(16), xrp(1)), &view);
        assert!(props.iter().all(|p| p.path != vec![NodeId(0), NodeId(3)]));
        let total: Amount = props.iter().map(|p| p.amount).sum();
        assert_eq!(total, xrp(16));
    }

    #[test]
    fn unreachable_gives_nothing() {
        let mut b = spider_topology::Topology::builder(3);
        b.channel(NodeId(0), NodeId(1), xrp(2)).unwrap();
        let t = b.build();
        let ch: Vec<ChannelState> = t
            .channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            now: SimTime::ZERO,
        };
        assert!(SpiderWaterfilling::new(4)
            .route(&req(0, 2, xrp(1), xrp(1)), &view)
            .is_empty());
    }

    #[test]
    fn not_atomic() {
        assert!(!SpiderWaterfilling::new(4).atomic());
    }
}
