//! Spider (Waterfilling).
//!
//! The quickly-converging heuristic of §5.3.1: "sources … always sending
//! on paths with the largest available capacity, much like waterfilling
//! algorithms for max-min fairness. A source measures the available
//! capacity on a set of paths to the destination. It then first transmits
//! on the path with highest capacity until its capacity is the same as the
//! second-highest-capacity path; then it transmits on both … and so on."
//!
//! The discrete reference dynamics allocate the payment in MTU-sized
//! units, each to the candidate path with the largest *residual*
//! bottleneck (ties: lowest index, i.e. the shorter path). A large payment
//! over a small MTU makes that loop O(units × k); [`waterfill`] computes
//! the identical allocation in closed form by binary-searching the water
//! level over the k residual progressions — O(k log max-residual).

use crate::backoff::PathPenalties;
use crate::cache::{PathCache, PathPolicy};
use spider_sim::{NetworkView, RouteProposal, RouteRequest, Router, TopologyUpdate};
use spider_types::Amount;

/// The exact fixed point of the discrete waterfilling loop.
///
/// Reference semantics being reproduced: repeatedly pick the path with
/// the largest current residual (ties to the lowest index) and allocate
/// `min(mtu, remaining, residual)` to it, until `remaining` or every
/// residual is exhausted.
///
/// Each path's residual walks the arithmetic progression
/// `b_i, b_i − mtu, b_i − 2·mtu, …`, and the loop consumes chunks in
/// globally non-increasing residual order (ties by index). The final
/// allocation is therefore determined by a *water level* `v*` — the
/// lowest residual value at which a chunk is still taken — found here by
/// binary search, with the partial boundary chunk resolved in index
/// order, exactly as the loop would.
pub fn waterfill(residuals: &[Amount], remaining: Amount, mtu: Amount) -> Vec<Amount> {
    let mut alloc = Vec::new();
    let mut scratch = Vec::new();
    waterfill_into(residuals, remaining, mtu, &mut alloc, &mut scratch);
    alloc.into_iter().map(Amount::from_drops).collect()
}

/// [`waterfill`] without its allocations: writes the allocation (drops)
/// into `alloc` and uses `scratch` for the reference-dynamics fallback.
/// The routing hot path calls this ~10⁵ times per simulated run with
/// recycled buffers.
pub fn waterfill_into(
    residuals: &[Amount],
    remaining: Amount,
    mtu: Amount,
    alloc: &mut Vec<u64>,
    scratch: &mut Vec<u64>,
) {
    let m = mtu.drops();
    assert!(m > 0, "MTU must be positive");
    let r_total = remaining.drops();
    alloc.clear();
    alloc.resize(residuals.len(), 0);
    if r_total == 0 {
        return;
    }
    let capacity: u128 = residuals.iter().map(|a| a.drops() as u128).sum();
    if capacity <= r_total as u128 {
        // The loop runs every residual dry.
        for (a, r) in alloc.iter_mut().zip(residuals) {
            *a = r.drops();
        }
        return;
    }
    // Fast path: if the whole request fits strictly inside the gap
    // between the widest path and the runner-up, every chunk goes to the
    // widest path (it stays the strict maximum throughout) — one O(k)
    // scan, no search. This is the overwhelming common case under SRPT,
    // which retries small remainders first.
    {
        let (mut best, mut r1, mut r2) = (0usize, 0u64, 0u64);
        for (i, ri) in residuals.iter().enumerate() {
            let bi = ri.drops();
            if bi > r1 {
                r2 = r1;
                r1 = bi;
                best = i;
            } else if bi > r2 {
                r2 = bi;
            }
        }
        if r1 > r_total && r1 - r_total > r2 {
            alloc[best] = r_total;
            return;
        }
    }
    // Small requests take fewer chunks than the water-level search costs;
    // run the reference dynamics directly (identical output, and the
    // common case under SRPT, which retries small remainders first).
    if r_total.div_ceil(m) <= 64 {
        let residual = scratch;
        residual.clear();
        residual.extend(residuals.iter().map(|a| a.drops()));
        let mut rem = r_total;
        while rem > 0 {
            let Some(best) = (0..residual.len())
                .filter(|&i| residual[i] > 0)
                .max_by(|&a, &b| residual[a].cmp(&residual[b]).then(b.cmp(&a)))
            else {
                break;
            };
            let unit = m.min(rem).min(residual[best]);
            alloc[best] += unit;
            residual[best] -= unit;
            rem -= unit;
        }
        return;
    }
    // Allocation from all chunks whose starting residual exceeds `v`:
    // path i contributes ceil((b_i − v) / m) chunks of m, capped at b_i
    // (the last progression term is a partial chunk).
    let above = |v: u64| -> u128 {
        residuals
            .iter()
            .map(|ri| {
                let bi = ri.drops();
                if bi > v {
                    let n = (bi - v).div_ceil(m) as u128;
                    (n * m as u128).min(bi as u128)
                } else {
                    0
                }
            })
            .sum()
    };
    // Water level v* = the largest v ≥ 1 whose chunks-at-or-above cover
    // the request: above(v−1) counts chunks with starting residual ≥ v.
    // above(0) = capacity > remaining guarantees the invariant at lo = 1.
    let (mut lo, mut hi) = (1u64, residuals.iter().map(|a| a.drops()).max().unwrap_or(0));
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if above(mid - 1) >= r_total as u128 {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let v_star = lo;
    // Chunks strictly above the water level are taken in full…
    let mut cum = 0u64;
    for (a, ri) in alloc.iter_mut().zip(residuals) {
        let bi = ri.drops();
        if bi > v_star {
            let n = (bi - v_star).div_ceil(m);
            *a = (n * m).min(bi);
            cum += *a;
        }
    }
    debug_assert!(cum < r_total);
    // …then the chunks *at* the water level go in index order (the loop's
    // tie-break), the last one truncated to the remaining budget.
    for (a, ri) in alloc.iter_mut().zip(residuals) {
        if cum == r_total {
            break;
        }
        let bi = ri.drops();
        if bi >= v_star && (bi - v_star) % m == 0 {
            let chunk = m.min(v_star).min(r_total - cum);
            *a += chunk;
            cum += chunk;
        }
    }
    debug_assert_eq!(cum, r_total, "water level must cover the request");
}

/// Spider's waterfilling router (non-atomic).
#[derive(Debug)]
pub struct SpiderWaterfilling {
    cache: PathCache,
    /// Fault cooldowns (empty for the whole run unless faults fire).
    penalties: PathPenalties,
    /// Recycled per-call buffers (candidate ids, residuals, allocation,
    /// reference-loop scratch) — the route hot path allocates only its
    /// returned proposals.
    path_ids: Vec<spider_types::PathId>,
    residuals: Vec<Amount>,
    alloc: Vec<u64>,
    scratch: Vec<u64>,
}

impl SpiderWaterfilling {
    /// Creates the router with `k` edge-disjoint candidate paths per pair
    /// (the paper uses 4).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one path");
        SpiderWaterfilling {
            cache: PathCache::new(PathPolicy::EdgeDisjoint(k)),
            penalties: PathPenalties::default(),
            path_ids: Vec::new(),
            residuals: Vec::new(),
            alloc: Vec::new(),
            scratch: Vec::new(),
        }
    }
}

impl Router for SpiderWaterfilling {
    /// The lock-outcome hook is the default no-op: let the engine elide
    /// it (and batch-count identical failed chunks).
    fn observes_unit_outcomes(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "spider-waterfilling"
    }

    fn wants_prewarm(&self) -> bool {
        true
    }

    fn prewarm(
        &mut self,
        pairs: &[(spider_types::NodeId, spider_types::NodeId)],
        view: &NetworkView<'_>,
    ) {
        self.cache.prefill(view.topo, view.paths, pairs);
    }

    fn on_topology_change(&mut self, update: &TopologyUpdate, view: &NetworkView<'_>) {
        self.cache.on_topology_change(view.topo, view.paths, update);
    }

    /// Fault outcomes arrive here unconditionally (the engine bypasses
    /// the `observes_unit_outcomes` gate for them); ordinary lock
    /// outcomes stay elided.
    fn on_unit_outcome(&mut self, outcome: &spider_sim::UnitOutcome, view: &NetworkView<'_>) {
        if outcome.fault.is_some() {
            self.penalties.on_fault(outcome.path, view.now);
        }
    }

    fn on_unit_ack(&mut self, ack: &spider_sim::UnitAck, view: &NetworkView<'_>) {
        self.penalties
            .on_ack(ack.path, ack.delivered, ack.drop_reason, view.now);
    }

    fn observability(&self) -> spider_sim::RouterObs {
        let mut obs = spider_sim::RouterObs::default();
        obs.counters
            .extend(self.penalties.counters().map(|(k, v)| (k.to_string(), v)));
        obs
    }

    fn route(&mut self, req: &RouteRequest, view: &NetworkView<'_>) -> Vec<RouteProposal> {
        let SpiderWaterfilling {
            cache,
            penalties,
            path_ids,
            residuals,
            alloc,
            scratch,
        } = self;
        let paths = cache.get(view.topo, view.paths, req.src, req.dst);
        if paths.is_empty() {
            return Vec::new();
        }
        path_ids.clear();
        path_ids.extend_from_slice(paths);
        // Candidates inside a fault cooldown sit this round out (no-op in
        // fault-free runs; an all-cooled slate is kept whole).
        penalties.retain_usable(path_ids, view.now);
        // Current bottleneck per candidate path, over pre-resolved hops.
        residuals.clear();
        residuals.extend(path_ids.iter().map(|&id| view.bottleneck(id)));
        waterfill_into(residuals, req.remaining, req.mtu, alloc, scratch);
        path_ids
            .iter()
            .zip(alloc.iter())
            .filter(|(_, &a)| a != 0)
            .map(|(&path, &amount)| RouteProposal {
                path,
                amount: Amount::from_drops(amount),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_sim::{ChannelState, PathTable};
    use spider_types::{DetRng, Direction, NodeId, PaymentId, SimTime};

    fn xrp(x: u64) -> Amount {
        Amount::from_xrp(x)
    }

    fn req(src: u32, dst: u32, amount: Amount, mtu: Amount) -> RouteRequest {
        RouteRequest {
            payment: PaymentId(0),
            src: NodeId(src),
            dst: NodeId(dst),
            remaining: amount,
            total: amount,
            mtu,
            attempt: 0,
        }
    }

    /// Diamond with asymmetric capacities: direct 0-3 thin, detours fat.
    fn diamond() -> (spider_topology::Topology, Vec<ChannelState>) {
        let mut b = spider_topology::Topology::builder(4);
        b.channel(NodeId(0), NodeId(3), xrp(4)).unwrap(); // direct: 2 avail
        b.channel(NodeId(0), NodeId(1), xrp(20)).unwrap();
        b.channel(NodeId(1), NodeId(3), xrp(20)).unwrap();
        b.channel(NodeId(0), NodeId(2), xrp(12)).unwrap();
        b.channel(NodeId(2), NodeId(3), xrp(12)).unwrap();
        let t = b.build();
        let ch: Vec<ChannelState> = t
            .channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect();
        (t, ch)
    }

    /// The pre-closed-form reference dynamics, kept verbatim for the
    /// equivalence tests below.
    fn reference_waterfill(residuals: &[Amount], remaining: Amount, mtu: Amount) -> Vec<Amount> {
        let mut residual = residuals.to_vec();
        let mut allocated = vec![Amount::ZERO; residuals.len()];
        let mut remaining = remaining;
        while !remaining.is_zero() {
            let Some(best) = (0..residual.len())
                .filter(|&i| !residual[i].is_zero())
                .max_by(|&a, &b| residual[a].cmp(&residual[b]).then(b.cmp(&a)))
            else {
                break;
            };
            let unit = mtu.min(remaining).min(residual[best]);
            allocated[best] += unit;
            residual[best] -= unit;
            remaining -= unit;
        }
        allocated
    }

    fn path_nodes(view: &NetworkView<'_>, p: &RouteProposal) -> Vec<NodeId> {
        view.path(p.path).nodes().to_vec()
    }

    #[test]
    fn closed_form_matches_reference_loop_exhaustively() {
        // Deterministic fuzz over residual sets, MTUs, and request sizes,
        // including exact ties and non-multiple remainders.
        let mut rng = DetRng::new(99);
        for case in 0..2_000 {
            let k = 1 + rng.index(6);
            let residuals: Vec<Amount> = (0..k)
                .map(|_| {
                    Amount::from_drops(if rng.chance(0.2) {
                        0
                    } else {
                        rng.range_u64(1, 500)
                    })
                })
                .collect();
            let mtu = Amount::from_drops(rng.range_u64(1, 40));
            let remaining = Amount::from_drops(rng.range_u64(1, 1_200));
            let fast = waterfill(&residuals, remaining, mtu);
            let slow = reference_waterfill(&residuals, remaining, mtu);
            assert_eq!(
                fast, slow,
                "case {case}: residuals {residuals:?} remaining {remaining:?} mtu {mtu:?}"
            );
        }
    }

    #[test]
    fn closed_form_handles_edge_cases() {
        let b = |xs: &[u64]| {
            xs.iter()
                .map(|&x| Amount::from_drops(x))
                .collect::<Vec<_>>()
        };
        // Capacity below the request: everything drains.
        assert_eq!(
            waterfill(&b(&[5, 3]), Amount::from_drops(100), Amount::from_drops(4)),
            b(&[5, 3])
        );
        // Exact ties resolve toward the lowest index.
        assert_eq!(
            waterfill(&b(&[10, 10]), Amount::from_drops(3), Amount::from_drops(3)),
            b(&[3, 0])
        );
        // Zero request, zero residuals.
        assert_eq!(waterfill(&b(&[10]), Amount::ZERO, Amount::DROP), b(&[0]));
        assert_eq!(
            waterfill(&[], Amount::from_drops(5), Amount::DROP),
            Vec::<Amount>::new()
        );
    }

    #[test]
    fn prefers_widest_path_first() {
        let (t, ch) = diamond();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut r = SpiderWaterfilling::new(4);
        // 3 XRP with MTU 1: all three units fit on the 10-XRP detour
        // (residuals: direct 2, via-1 10, via-2 6).
        let props = r.route(&req(0, 3, xrp(3), xrp(1)), &view);
        assert_eq!(props.len(), 1);
        assert_eq!(
            path_nodes(&view, &props[0]),
            vec![NodeId(0), NodeId(1), NodeId(3)]
        );
        assert_eq!(props[0].amount, xrp(3));
    }

    #[test]
    fn spreads_across_paths_when_large() {
        let (t, ch) = diamond();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut r = SpiderWaterfilling::new(4);
        // 14 XRP: waterfills via-1 (10 avail) down toward via-2 (6) and
        // direct (2). Expected split: via-1 gets 9, via-2 gets 5 — both
        // equalize at residual 1 — then direct 2 is still below; remaining
        // 0. Allocation: 9 + 5 = 14.
        let props = r.route(&req(0, 3, xrp(14), xrp(1)), &view);
        let total: Amount = props.iter().map(|p| p.amount).sum();
        assert_eq!(total, xrp(14));
        assert!(props.len() >= 2);
        // The widest path must carry the largest share.
        let via1 = props
            .iter()
            .find(|p| path_nodes(&view, p) == vec![NodeId(0), NodeId(1), NodeId(3)])
            .expect("widest path used");
        for p in &props {
            assert!(via1.amount >= p.amount);
        }
    }

    #[test]
    fn allocation_capped_by_total_capacity() {
        let (t, ch) = diamond();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut r = SpiderWaterfilling::new(4);
        // Ask for far more than the network can hold: 2 + 10 + 6 = 18 max.
        let props = r.route(&req(0, 3, xrp(100), xrp(1)), &view);
        let total: Amount = props.iter().map(|p| p.amount).sum();
        assert_eq!(total, xrp(18));
    }

    #[test]
    fn skips_empty_paths() {
        let (t, mut ch) = diamond();
        // Drain the direct channel's forward side entirely.
        let direct = t.channel_between(NodeId(0), NodeId(3)).unwrap();
        let avail = ch[direct.index()].available(Direction::Forward);
        assert!(ch[direct.index()].lock(Direction::Forward, avail));
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut r = SpiderWaterfilling::new(4);
        let props = r.route(&req(0, 3, xrp(16), xrp(1)), &view);
        assert!(props
            .iter()
            .all(|p| path_nodes(&view, p) != vec![NodeId(0), NodeId(3)]));
        let total: Amount = props.iter().map(|p| p.amount).sum();
        assert_eq!(total, xrp(16));
    }

    #[test]
    fn unreachable_gives_nothing() {
        let mut b = spider_topology::Topology::builder(3);
        b.channel(NodeId(0), NodeId(1), xrp(2)).unwrap();
        let t = b.build();
        let ch: Vec<ChannelState> = t
            .channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        assert!(SpiderWaterfilling::new(4)
            .route(&req(0, 2, xrp(1), xrp(1)), &view)
            .is_empty());
    }

    #[test]
    fn not_atomic() {
        assert!(!SpiderWaterfilling::new(4).atomic());
    }
}
