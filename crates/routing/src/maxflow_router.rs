//! The max-flow benchmark.
//!
//! "For each transaction, max-flow uses a distributed implementation of the
//! Ford–Fulkerson method to find source–destination paths that support the
//! largest transaction volume. If this volume exceeds the transaction
//! value, the transaction succeeds" (§3). It is the throughput gold
//! standard but costs `O(|V|·|E|²)` per transaction.
//!
//! We rebuild the flow network from the *current* directional balances on
//! every request (that is the expensive part the paper criticizes), run
//! Dinic, and decompose into explicit paths. Atomic: if the max flow is
//! below the payment value the payment fails outright.

use spider_maxflow::FlowNetwork;
use spider_sim::{NetworkView, RouteProposal, RouteRequest, Router};
use spider_types::{Amount, Direction};

/// Atomic per-transaction max-flow routing.
#[derive(Debug, Default)]
pub struct MaxFlow {
    _private: (),
}

impl MaxFlow {
    /// Creates the benchmark router.
    pub fn new() -> Self {
        MaxFlow { _private: () }
    }
}

impl Router for MaxFlow {
    /// The lock-outcome hook is the default no-op: let the engine elide
    /// it (and batch-count identical failed chunks).
    fn observes_unit_outcomes(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "max-flow"
    }

    fn atomic(&self) -> bool {
        true
    }

    fn route(&mut self, req: &RouteRequest, view: &NetworkView<'_>) -> Vec<RouteProposal> {
        let mut net = FlowNetwork::new(view.topo.node_count());
        for (id, ch) in view.topo.channels() {
            let fwd = view.available(id, Direction::Forward).drops();
            let bwd = view.available(id, Direction::Backward).drops();
            if fwd > 0 {
                net.add_edge(ch.u, ch.v, fwd);
            }
            if bwd > 0 {
                net.add_edge(ch.v, ch.u, bwd);
            }
        }
        let value = net.max_flow_dinic(req.src, req.dst);
        if value < req.remaining.drops() {
            return Vec::new(); // transaction fails
        }
        // Decompose and take paths until the payment is covered.
        let mut remaining = req.remaining;
        let mut proposals = Vec::new();
        for (path, amt) in net.flow_paths(req.src, req.dst) {
            if remaining.is_zero() {
                break;
            }
            let take = Amount::from_drops(amt).min(remaining);
            proposals.push(RouteProposal {
                path: view.intern(&path),
                amount: take,
            });
            remaining -= take;
        }
        debug_assert!(remaining.is_zero(), "decomposition covers the max flow");
        proposals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_sim::{ChannelState, PathTable};
    use spider_types::{NodeId, PaymentId, SimTime};

    fn xrp(x: u64) -> Amount {
        Amount::from_xrp(x)
    }

    fn req(src: u32, dst: u32, amount: Amount) -> RouteRequest {
        RouteRequest {
            payment: PaymentId(0),
            src: NodeId(src),
            dst: NodeId(dst),
            remaining: amount,
            total: amount,
            mtu: xrp(1_000_000),
            attempt: 0,
        }
    }

    /// Two parallel 2-hop routes of 5 XRP usable each way.
    fn double_path() -> (spider_topology::Topology, Vec<ChannelState>) {
        let mut b = spider_topology::Topology::builder(4);
        b.channel(NodeId(0), NodeId(1), xrp(10)).unwrap();
        b.channel(NodeId(1), NodeId(3), xrp(10)).unwrap();
        b.channel(NodeId(0), NodeId(2), xrp(10)).unwrap();
        b.channel(NodeId(2), NodeId(3), xrp(10)).unwrap();
        let t = b.build();
        let ch = t
            .channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect();
        (t, ch)
    }

    #[test]
    fn splits_over_multiple_paths() {
        let (t, ch) = double_path();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        // 8 XRP exceeds any single path's 5 XRP, but max flow is 10.
        let props = MaxFlow::new().route(&req(0, 3, xrp(8)), &view);
        assert_eq!(props.iter().map(|p| p.amount).sum::<Amount>(), xrp(8));
        assert!(props.len() == 2, "expected a 2-path split, got {props:?}");
    }

    #[test]
    fn fails_when_max_flow_insufficient() {
        let (t, ch) = double_path();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let props = MaxFlow::new().route(&req(0, 3, xrp(11)), &view);
        assert!(props.is_empty());
    }

    #[test]
    fn uses_directional_balances() {
        let (t, mut ch) = double_path();
        // Drain 0→1 completely: only the 0→2→3 route remains.
        let c01 = t.channel_between(NodeId(0), NodeId(1)).unwrap();
        let avail = ch[c01.index()].available(Direction::Forward);
        assert!(ch[c01.index()].lock(Direction::Forward, avail));
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let props = MaxFlow::new().route(&req(0, 3, xrp(5)), &view);
        assert_eq!(props.len(), 1);
        assert_eq!(
            view.path(props[0].path).nodes(),
            vec![NodeId(0), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn is_atomic() {
        assert!(MaxFlow::new().atomic());
    }
}
