//! SpeedyMurmurs-style embedding-based routing.
//!
//! "Embedding-based or distance-based routing learns a vector embedding
//! for each node, such that nodes that are close in network hop distance
//! are also close in embedded space. Each node relays each transaction to
//! the neighbor whose embedding is closest to the destination's
//! embedding" (§3).
//!
//! Following SpeedyMurmurs we embed the network in `n_trees` BFS spanning
//! trees rooted at the highest-degree nodes, split each payment into equal
//! shares (one per tree), and forward each share greedily: at every node,
//! move to any topology neighbor that is strictly closer to the
//! destination in that tree's metric *and* has enough balance, preferring
//! the closest (then best-funded) neighbor. Strictly decreasing distance
//! makes routes loop-free. Delivery is atomic across the shares.

use spider_sim::{NetworkView, RouteProposal, RouteRequest, Router};
use spider_topology::Topology;
use spider_types::{Amount, NodeId};
use std::collections::VecDeque;

/// One spanning tree's embedding: parent pointers and depths.
#[derive(Debug, Clone)]
struct TreeEmbedding {
    parent: Vec<Option<NodeId>>,
    depth: Vec<u32>,
    reachable: Vec<bool>,
}

impl TreeEmbedding {
    fn build(topo: &Topology, root: NodeId) -> Self {
        let n = topo.node_count();
        let mut parent = vec![None; n];
        let mut depth = vec![0u32; n];
        let mut reachable = vec![false; n];
        reachable[root.index()] = true;
        let mut queue = VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for adj in topo.neighbors(u) {
                let v = adj.neighbor;
                if !reachable[v.index()] {
                    reachable[v.index()] = true;
                    parent[v.index()] = Some(u);
                    depth[v.index()] = depth[u.index()] + 1;
                    queue.push_back(v);
                }
            }
        }
        TreeEmbedding {
            parent,
            depth,
            reachable,
        }
    }

    /// Tree distance `depth(u) + depth(v) − 2·depth(lca)`;
    /// `None` if either node is outside the tree.
    fn distance(&self, u: NodeId, v: NodeId) -> Option<u32> {
        if !self.reachable[u.index()] || !self.reachable[v.index()] {
            return None;
        }
        let (mut a, mut b) = (u, v);
        let mut hops = 0;
        while self.depth[a.index()] > self.depth[b.index()] {
            a = self.parent[a.index()].expect("non-root has parent");
            hops += 1;
        }
        while self.depth[b.index()] > self.depth[a.index()] {
            b = self.parent[b.index()].expect("non-root has parent");
            hops += 1;
        }
        while a != b {
            a = self.parent[a.index()].expect("non-root has parent");
            b = self.parent[b.index()].expect("non-root has parent");
            hops += 2;
        }
        Some(hops)
    }
}

/// Atomic embedding-based greedy routing over spanning trees.
#[derive(Debug)]
pub struct SpeedyMurmurs {
    trees: Vec<TreeEmbedding>,
}

impl SpeedyMurmurs {
    /// Builds `n_trees` BFS spanning trees rooted at the highest-degree
    /// nodes (distinct roots, ties toward smaller id).
    pub fn new(topo: &Topology, n_trees: usize) -> Self {
        assert!(n_trees >= 1, "need at least one tree");
        let mut roots: Vec<NodeId> = topo.nodes().collect();
        roots.sort_by_key(|&n| (std::cmp::Reverse(topo.degree(n)), n));
        roots.truncate(n_trees);
        let trees = roots
            .into_iter()
            .map(|r| TreeEmbedding::build(topo, r))
            .collect();
        SpeedyMurmurs { trees }
    }

    /// Greedy embedded walk for one share; `None` when stuck.
    fn greedy_path(
        &self,
        tree: &TreeEmbedding,
        view: &NetworkView<'_>,
        src: NodeId,
        dst: NodeId,
        share: Amount,
    ) -> Option<Vec<NodeId>> {
        let mut current = src;
        let mut dist = tree.distance(current, dst)?;
        let mut path = vec![current];
        while current != dst {
            // Eligible: strictly closer in tree metric, enough balance.
            let mut best: Option<(u32, Amount, NodeId)> = None;
            for adj in view.topo.neighbors(current) {
                let Some(d) = tree.distance(adj.neighbor, dst) else {
                    continue;
                };
                if d >= dist {
                    continue;
                }
                let dir = view.topo.channel(adj.channel).direction_from(current);
                let avail = view.available(adj.channel, dir);
                if avail < share {
                    continue;
                }
                let better = match best {
                    None => true,
                    // Prefer closer; then better funded; then smaller id.
                    Some((bd, bav, bn)) => {
                        d < bd || (d == bd && (avail > bav || (avail == bav && adj.neighbor < bn)))
                    }
                };
                if better {
                    best = Some((d, avail, adj.neighbor));
                }
            }
            let (d, _, next) = best?;
            current = next;
            dist = d;
            path.push(current);
        }
        Some(path)
    }
}

impl Router for SpeedyMurmurs {
    /// The lock-outcome hook is the default no-op: let the engine elide
    /// it (and batch-count identical failed chunks).
    fn observes_unit_outcomes(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "speedymurmurs"
    }

    fn atomic(&self) -> bool {
        true
    }

    fn route(&mut self, req: &RouteRequest, view: &NetworkView<'_>) -> Vec<RouteProposal> {
        let n = self.trees.len() as u64;
        let share = req.remaining / n;
        let remainder = req.remaining - share * n;
        let mut proposals = Vec::with_capacity(self.trees.len());
        for (i, tree) in self.trees.iter().enumerate() {
            let amount = if i == 0 { share + remainder } else { share };
            if amount.is_zero() {
                continue;
            }
            match self.greedy_path(tree, view, req.src, req.dst, amount) {
                Some(path) => proposals.push(RouteProposal {
                    path: view.intern(&path),
                    amount,
                }),
                // Any stuck share fails the whole (atomic) payment.
                None => return Vec::new(),
            }
        }
        proposals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_sim::{ChannelState, PathTable};
    use spider_topology::gen;
    use spider_types::{Direction, PaymentId, SimTime};

    fn xrp(x: u64) -> Amount {
        Amount::from_xrp(x)
    }

    fn req(src: u32, dst: u32, amount: Amount) -> RouteRequest {
        RouteRequest {
            payment: PaymentId(0),
            src: NodeId(src),
            dst: NodeId(dst),
            remaining: amount,
            total: amount,
            mtu: xrp(1_000),
            attempt: 0,
        }
    }

    fn split(t: &Topology) -> Vec<ChannelState> {
        t.channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect()
    }

    #[test]
    fn tree_distance_on_a_line() {
        let t = gen::line(5, xrp(10));
        let e = TreeEmbedding::build(&t, NodeId(0));
        assert_eq!(e.distance(NodeId(0), NodeId(4)), Some(4));
        assert_eq!(e.distance(NodeId(2), NodeId(2)), Some(0));
        assert_eq!(e.distance(NodeId(1), NodeId(3)), Some(2));
    }

    #[test]
    fn tree_distance_unreachable() {
        let mut b = Topology::builder(3);
        b.channel(NodeId(0), NodeId(1), xrp(1)).unwrap();
        let t = b.build();
        let e = TreeEmbedding::build(&t, NodeId(0));
        assert_eq!(e.distance(NodeId(0), NodeId(2)), None);
    }

    #[test]
    fn routes_along_decreasing_distance() {
        let t = gen::isp_topology(xrp(100));
        let ch = split(&t);
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut sm = SpeedyMurmurs::new(&t, 3);
        let props = sm.route(&req(8, 25, xrp(3)), &view);
        assert!(!props.is_empty());
        assert_eq!(props.iter().map(|p| p.amount).sum::<Amount>(), xrp(3));
        for p in &props {
            assert_eq!(view.path(p.path).source(), NodeId(8));
            assert_eq!(view.path(p.path).dest(), NodeId(25));
            // Loop-free by construction.
            let nodes = view.path(p.path).nodes().to_vec();
            let mut s = nodes.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), nodes.len());
        }
    }

    #[test]
    fn respects_balance_during_discovery() {
        // Line 0-1-2 with the 1→2 direction drained: share can't proceed.
        let t = gen::line(3, xrp(10));
        let mut ch = split(&t);
        let c12 = t.channel_between(NodeId(1), NodeId(2)).unwrap();
        let avail = ch[c12.index()].available(Direction::Forward);
        assert!(ch[c12.index()].lock(Direction::Forward, avail));
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut sm = SpeedyMurmurs::new(&t, 1);
        assert!(sm.route(&req(0, 2, xrp(1)), &view).is_empty());
    }

    #[test]
    fn atomic_failure_when_one_tree_is_stuck() {
        // Two trees; drain the only channel into the destination so every
        // tree's share is stuck → no proposals at all.
        let t = gen::line(3, xrp(10));
        let mut ch = split(&t);
        let c12 = t.channel_between(NodeId(1), NodeId(2)).unwrap();
        let avail = ch[c12.index()].available(Direction::Forward);
        assert!(ch[c12.index()].lock(Direction::Forward, avail));
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut sm = SpeedyMurmurs::new(&t, 2);
        assert!(sm.route(&req(0, 2, xrp(2)), &view).is_empty());
    }

    #[test]
    fn shares_sum_with_remainder() {
        let t = gen::isp_topology(xrp(100));
        let ch = split(&t);
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut sm = SpeedyMurmurs::new(&t, 3);
        let amount = Amount::from_drops(10_000_001);
        let props = sm.route(&req(9, 21, amount), &view);
        if !props.is_empty() {
            assert_eq!(props.iter().map(|p| p.amount).sum::<Amount>(), amount);
        }
    }

    #[test]
    fn is_atomic() {
        let t = gen::line(2, xrp(1));
        assert!(SpeedyMurmurs::new(&t, 1).atomic());
    }
}
