//! Spider (LP).
//!
//! "Spider (LP) solves the LP in Eq. (1) once based on the long-term
//! payment demands and uses the solution to set a weight for selecting
//! each path" (§6.1). The router is constructed from a demand matrix,
//! solves the fluid LP offline (exact simplex on small instances, the
//! decentralized primal-dual solver on large ones), and thereafter splits
//! every payment across its pair's paths in proportion to the optimal
//! rates.
//!
//! Pairs whose LP rate is zero get **no** proposals — reproducing the
//! paper's observed weakness: "the LP assigns zero flows to all paths for
//! certain commodities, which means no payments between them will ever get
//! attempted."

use spider_lp::fluid::{FluidProblem, PathSelection};
use spider_lp::primal_dual::{solve_problem, PrimalDualConfig};
use spider_paygraph::PaymentGraph;
use spider_sim::{NetworkView, RouteProposal, RouteRequest, Router};
use spider_topology::Topology;
use spider_types::{Amount, NodeId};
use std::collections::BTreeMap;

/// Which offline solver computes the path weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpSolverKind {
    /// Exact dense simplex (small/medium instances).
    Simplex,
    /// The paper's decentralized primal-dual iteration (scales further).
    PrimalDual,
    /// Simplex when the instance is small (≤ ~2,000 path variables),
    /// primal-dual otherwise.
    Auto,
}

/// Per-pair weighted path set: `(node path, weight)` with weights
/// summing to 1.
type PairWeights = BTreeMap<(NodeId, NodeId), Vec<(Vec<NodeId>, f64)>>;

/// Spider (LP): offline-optimized weighted multipath splitting (non-atomic).
#[derive(Debug)]
pub struct SpiderLp {
    /// Per-pair: list of (node path, weight) with weights summing to 1.
    weights: PairWeights,
    /// Per-pair fraction of demand the LP actually routes
    /// (`lp_rate / demand_rate`, ≤ 1). Payments are throttled to this
    /// fraction so that long-run per-path rates track the LP solution
    /// ("the frequency of usage of different paths over time is roughly
    /// proportional to the optimal flow rate along the paths", §5.3.1).
    coverage: BTreeMap<(NodeId, NodeId), f64>,
    /// Whether the coverage throttle is applied (on by default; off routes
    /// every payment fully along the weighted paths — an ablation knob).
    rate_capped: bool,
    /// Throughput of the offline solution (for diagnostics).
    offline_throughput: f64,
}

impl SpiderLp {
    /// Solves the fluid LP over `k` edge-disjoint paths per demand pair and
    /// keeps the normalized per-path weights.
    pub fn new(
        topo: &Topology,
        demands: &PaymentGraph,
        delta_secs: f64,
        k: usize,
        solver: LpSolverKind,
    ) -> Self {
        let problem = FluidProblem::new(topo, demands, delta_secs, PathSelection::KEdgeDisjoint(k));
        let n_path_vars: usize = demands
            .edges()
            .map(|e| problem.paths_for(e.src, e.dst).len())
            .sum();
        let use_simplex = match solver {
            LpSolverKind::Simplex => true,
            LpSolverKind::PrimalDual => false,
            LpSolverKind::Auto => n_path_vars <= 2_000,
        };
        let flows: Vec<(NodeId, NodeId, Vec<NodeId>, f64)> = if use_simplex {
            let sol = problem
                .solve_balanced()
                .expect("fluid LP is always feasible (x = 0)");
            sol.flows
                .into_iter()
                .map(|f| (f.src, f.dst, f.path.nodes, f.rate))
                .collect()
        } else {
            let scale = demands.edges().map(|e| e.rate).fold(1e-9, f64::max);
            let mut cfg = PrimalDualConfig::for_demand_scale(scale);
            cfg.iterations = 30_000;
            let sol = solve_problem(topo, demands, delta_secs, &problem, &cfg);
            sol.flows
                .into_iter()
                .map(|f| (f.src, f.dst, f.path.nodes, f.rate))
                .collect()
        };
        let mut weights: PairWeights = BTreeMap::new();
        let mut offline_throughput = 0.0;
        for (src, dst, path, rate) in flows {
            if rate > 1e-9 {
                offline_throughput += rate;
                weights.entry((src, dst)).or_default().push((path, rate));
            }
        }
        // Normalize to fractions; record per-pair demand coverage.
        let mut coverage = BTreeMap::new();
        for (&(src, dst), entry) in weights.iter_mut() {
            let total: f64 = entry.iter().map(|(_, r)| r).sum();
            for (_, r) in entry.iter_mut() {
                *r /= total;
            }
            let demand = demands.demand(src, dst);
            coverage.insert(
                (src, dst),
                if demand > 0.0 {
                    (total / demand).min(1.0)
                } else {
                    1.0
                },
            );
        }
        SpiderLp {
            weights,
            coverage,
            rate_capped: true,
            offline_throughput,
        }
    }

    /// Disables the per-pair LP-rate throttle (ablation: route every
    /// payment fully along the weighted paths).
    pub fn without_rate_cap(mut self) -> Self {
        self.rate_capped = false;
        self
    }

    /// Throughput of the offline fluid solution (units/s).
    pub fn offline_throughput(&self) -> f64 {
        self.offline_throughput
    }

    /// Number of pairs that received any positive weight.
    pub fn active_pairs(&self) -> usize {
        self.weights.len()
    }
}

impl Router for SpiderLp {
    /// The lock-outcome hook is the default no-op: let the engine elide
    /// it (and batch-count identical failed chunks).
    fn observes_unit_outcomes(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "spider-lp"
    }

    fn route(&mut self, req: &RouteRequest, view: &NetworkView<'_>) -> Vec<RouteProposal> {
        let Some(paths) = self.weights.get(&(req.src, req.dst)) else {
            return Vec::new(); // LP gave this commodity zero rate
        };
        // Throttle to the LP's per-pair rate: of this payment, route at
        // most `coverage × total`; `total − remaining` is already assigned
        // (delivered or in flight).
        let budget = if self.rate_capped {
            let coverage = self
                .coverage
                .get(&(req.src, req.dst))
                .copied()
                .unwrap_or(1.0);
            let cap = req.total.mul_f64(coverage);
            let assigned = req.total - req.remaining;
            cap.saturating_sub(assigned).min(req.remaining)
        } else {
            req.remaining
        };
        if budget.is_zero() {
            return Vec::new();
        }
        // Largest-remainder split of the budget by weight.
        let mut proposals: Vec<RouteProposal> = Vec::with_capacity(paths.len());
        let mut assigned = Amount::ZERO;
        for (path, w) in paths {
            let amt = budget.mul_f64(*w);
            proposals.push(RouteProposal {
                path: view.intern(path),
                amount: amt,
            });
            assigned = assigned.saturating_add(amt);
        }
        // Rounding drift goes to the heaviest path.
        if assigned < budget {
            if let Some(p) = proposals.iter_mut().max_by(|a, b| a.amount.cmp(&b.amount)) {
                p.amount += budget - assigned;
            }
        } else if assigned > budget {
            let mut excess = assigned - budget;
            for p in proposals.iter_mut().rev() {
                let cut = excess.min(p.amount);
                p.amount -= cut;
                excess -= cut;
                if excess.is_zero() {
                    break;
                }
            }
        }
        proposals.retain(|p| !p.amount.is_zero());
        proposals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_paygraph::examples;
    use spider_sim::{ChannelState, PathTable};
    use spider_topology::gen;
    use spider_types::{PaymentId, SimTime};

    const BIG: Amount = Amount::from_xrp(1_000_000);

    fn router() -> SpiderLp {
        let topo = gen::paper_example_topology(BIG);
        let demands = examples::paper_example_demands();
        SpiderLp::new(&topo, &demands, 0.5, 4, LpSolverKind::Simplex)
    }

    fn view_of(t: &spider_topology::Topology) -> Vec<ChannelState> {
        t.channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect()
    }

    fn req(src: u32, dst: u32, amount: Amount) -> RouteRequest {
        RouteRequest {
            payment: PaymentId(0),
            src: NodeId(src),
            dst: NodeId(dst),
            remaining: amount,
            total: amount,
            mtu: Amount::from_xrp(1),
            attempt: 0,
        }
    }

    #[test]
    fn offline_solution_reaches_circulation() {
        let r = router();
        assert!(
            (r.offline_throughput() - examples::MAX_CIRCULATION).abs() < 1e-6,
            "offline throughput {}",
            r.offline_throughput()
        );
    }

    #[test]
    fn proposals_sum_to_remaining() {
        let mut r = router();
        let topo = gen::paper_example_topology(BIG);
        let ch = view_of(&topo);
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &topo,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        // Pair (2→4) (ids 1→3) carries weight in the optimum.
        let amount = Amount::from_drops(12_345_678);
        let props = r.route(&req(1, 3, amount), &view);
        assert!(!props.is_empty());
        let total: Amount = props.iter().map(|p| p.amount).sum();
        assert_eq!(total, amount);
        for p in &props {
            assert_eq!(view.path(p.path).source(), NodeId(1));
            assert_eq!(view.path(p.path).dest(), NodeId(3));
        }
    }

    #[test]
    fn zero_rate_pairs_get_no_proposals() {
        let mut r = router();
        let topo = gen::paper_example_topology(BIG);
        let ch = view_of(&topo);
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &topo,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        // (5→3) (ids 4→2) is pure-DAG demand in the example: the balanced
        // LP assigns it rate 0 in every optimum (any positive rate would
        // unbalance some channel).
        let props = r.route(&req(4, 2, Amount::from_xrp(1)), &view);
        assert!(props.is_empty(), "DAG-only pair should get zero weight");
    }

    #[test]
    fn primal_dual_variant_close_to_simplex() {
        let topo = gen::paper_example_topology(BIG);
        let demands = examples::paper_example_demands();
        let pd = SpiderLp::new(&topo, &demands, 0.5, 4, LpSolverKind::PrimalDual);
        assert!(
            (pd.offline_throughput() - examples::MAX_CIRCULATION).abs() < 0.5,
            "pd throughput {}",
            pd.offline_throughput()
        );
        assert!(pd.active_pairs() >= 5);
    }

    #[test]
    fn auto_picks_simplex_for_small() {
        let topo = gen::paper_example_topology(BIG);
        let demands = examples::paper_example_demands();
        let auto = SpiderLp::new(&topo, &demands, 0.5, 4, LpSolverKind::Auto);
        let exact = SpiderLp::new(&topo, &demands, 0.5, 4, LpSolverKind::Simplex);
        assert!((auto.offline_throughput() - exact.offline_throughput()).abs() < 1e-9);
    }

    #[test]
    fn not_atomic() {
        assert!(!router().atomic());
    }

    #[test]
    fn rate_cap_throttles_partially_covered_pairs() {
        let topo = gen::paper_example_topology(BIG);
        let demands = examples::paper_example_demands();
        let mut r = SpiderLp::new(&topo, &demands, 0.5, 4, LpSolverKind::Simplex);
        let ch = view_of(&topo);
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &topo,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        // Pair (4→1) (ids 3→0) has demand 2 but the optimum routes only 1:
        // coverage = 0.5, so of a 10-XRP payment only 5 XRP is proposed.
        let props = r.route(&req(3, 0, Amount::from_xrp(10)), &view);
        let total: Amount = props.iter().map(|p| p.amount).sum();
        assert_eq!(total, Amount::from_xrp(5));
        // Without the cap the full amount is proposed.
        let mut unc =
            SpiderLp::new(&topo, &demands, 0.5, 4, LpSolverKind::Simplex).without_rate_cap();
        let props = unc.route(&req(3, 0, Amount::from_xrp(10)), &view);
        let total: Amount = props.iter().map(|p| p.amount).sum();
        assert_eq!(total, Amount::from_xrp(10));
    }

    #[test]
    fn rate_cap_stops_retries_beyond_coverage() {
        let topo = gen::paper_example_topology(BIG);
        let demands = examples::paper_example_demands();
        let mut r = SpiderLp::new(&topo, &demands, 0.5, 4, LpSolverKind::Simplex);
        let ch = view_of(&topo);
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &topo,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        // Simulate the engine having already assigned 5 of 10 XRP: the
        // retry request has remaining = 5, and the cap (0.5 × 10) is met.
        let retry = RouteRequest {
            payment: PaymentId(0),
            src: NodeId(3),
            dst: NodeId(0),
            remaining: Amount::from_xrp(5),
            total: Amount::from_xrp(10),
            mtu: Amount::from_xrp(1),
            attempt: 1,
        };
        assert!(r.route(&retry, &view).is_empty());
    }
}
