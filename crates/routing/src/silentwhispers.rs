//! SilentWhispers-style landmark routing.
//!
//! Landmark routing "stores routing tables for the rest of the network at
//! select routers (landmarks); individual nodes only need to route
//! transactions to a landmark" (§3). Following SilentWhispers, a payment
//! is split into equal shares, one per landmark; each share travels
//! `source → landmark → destination`. Delivery is **atomic**: if any share
//! cannot be locked, the whole payment fails.
//!
//! Landmarks are the highest-degree nodes, the standard choice in the
//! SilentWhispers/SpeedyMurmurs artifact.

use spider_sim::{NetworkView, RouteProposal, RouteRequest, Router};
use spider_topology::Topology;
use spider_types::NodeId;

/// Atomic landmark-routing scheme.
#[derive(Debug)]
pub struct SilentWhispers {
    landmarks: Vec<NodeId>,
}

impl SilentWhispers {
    /// Creates the scheme with the `n_landmarks` highest-degree nodes of
    /// `topo` as landmarks (ties broken toward smaller ids).
    pub fn new(topo: &Topology, n_landmarks: usize) -> Self {
        assert!(n_landmarks >= 1, "need at least one landmark");
        let mut nodes: Vec<NodeId> = topo.nodes().collect();
        nodes.sort_by_key(|&n| (std::cmp::Reverse(topo.degree(n)), n));
        nodes.truncate(n_landmarks);
        SilentWhispers { landmarks: nodes }
    }

    /// The landmark set.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// `src → lm → dst` with loops erased; `None` if either leg is
    /// unreachable.
    fn via_landmark(topo: &Topology, src: NodeId, lm: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        let up = topo.shortest_path(src, lm)?;
        let down = topo.shortest_path(lm, dst)?;
        let mut combined = up;
        combined.extend_from_slice(&down[1..]);
        Some(erase_loops(combined))
    }
}

/// Removes loops from a walk while keeping it a valid walk: whenever a node
/// repeats, everything between its two occurrences is dropped.
fn erase_loops(walk: Vec<NodeId>) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = Vec::with_capacity(walk.len());
    for node in walk {
        if let Some(pos) = out.iter().position(|&n| n == node) {
            out.truncate(pos + 1);
        } else {
            out.push(node);
        }
    }
    out
}

impl Router for SilentWhispers {
    /// The lock-outcome hook is the default no-op: let the engine elide
    /// it (and batch-count identical failed chunks).
    fn observes_unit_outcomes(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "silentwhispers"
    }

    fn atomic(&self) -> bool {
        true
    }

    fn route(&mut self, req: &RouteRequest, view: &NetworkView<'_>) -> Vec<RouteProposal> {
        // Distinct landmark paths.
        let mut paths: Vec<Vec<NodeId>> = Vec::new();
        for &lm in &self.landmarks {
            if let Some(p) = Self::via_landmark(view.topo, req.src, lm, req.dst) {
                if p.len() >= 2 && !paths.contains(&p) {
                    paths.push(p);
                }
            }
        }
        if paths.is_empty() {
            return Vec::new();
        }
        // Equal shares; the integer remainder rides on the first share.
        let n = paths.len() as u64;
        let share = req.remaining / n;
        let remainder = req.remaining - share * n;
        paths
            .into_iter()
            .enumerate()
            .map(|(i, path)| RouteProposal {
                path: view.intern(&path),
                amount: if i == 0 { share + remainder } else { share },
            })
            .filter(|p| !p.amount.is_zero())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_sim::{ChannelState, PathTable};
    use spider_topology::gen;
    use spider_types::{PaymentId, SimTime};

    use spider_types::Amount;

    fn xrp(x: u64) -> Amount {
        Amount::from_xrp(x)
    }

    fn req(src: u32, dst: u32, amount: Amount) -> RouteRequest {
        RouteRequest {
            payment: PaymentId(0),
            src: NodeId(src),
            dst: NodeId(dst),
            remaining: amount,
            total: amount,
            mtu: xrp(1_000),
            attempt: 0,
        }
    }

    #[test]
    fn landmarks_are_highest_degree() {
        let t = gen::star(6, xrp(10)); // hub = node 0
        let sw = SilentWhispers::new(&t, 2);
        assert_eq!(sw.landmarks()[0], NodeId(0));
        // Remaining landmarks are leaves; smallest id wins the tie.
        assert_eq!(sw.landmarks()[1], NodeId(1));
    }

    #[test]
    fn loop_erasure() {
        let walk = vec![NodeId(0), NodeId(1), NodeId(2), NodeId(1), NodeId(3)];
        assert_eq!(erase_loops(walk), vec![NodeId(0), NodeId(1), NodeId(3)]);
        let no_loop = vec![NodeId(0), NodeId(1)];
        assert_eq!(erase_loops(no_loop.clone()), no_loop);
    }

    #[test]
    fn shares_sum_to_amount() {
        let t = gen::isp_topology(xrp(100));
        let ch: Vec<ChannelState> = t
            .channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut sw = SilentWhispers::new(&t, 3);
        let amount = Amount::from_drops(10_000_001); // indivisible by 3
        let props = sw.route(&req(8, 20, amount), &view);
        assert!(!props.is_empty());
        assert_eq!(props.iter().map(|p| p.amount).sum::<Amount>(), amount);
        for p in &props {
            assert_eq!(view.path(p.path).source(), NodeId(8));
            assert_eq!(view.path(p.path).dest(), NodeId(20));
            // Loopless.
            let nodes = view.path(p.path).nodes().to_vec();
            let mut s = nodes.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), nodes.len());
        }
    }

    #[test]
    fn landmark_on_endpoint_is_fine() {
        let t = gen::line(3, xrp(10));
        let ch: Vec<ChannelState> = t
            .channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        // Landmark will be node 1 (highest degree); route 1 → 2.
        let mut sw = SilentWhispers::new(&t, 1);
        let props = sw.route(&req(1, 2, xrp(1)), &view);
        assert_eq!(props.len(), 1);
        assert_eq!(view.path(props[0].path).nodes(), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn unreachable_gives_nothing() {
        let mut b = spider_topology::Topology::builder(4);
        b.channel(NodeId(0), NodeId(1), xrp(5)).unwrap();
        b.channel(NodeId(2), NodeId(3), xrp(5)).unwrap();
        let t = b.build();
        let ch: Vec<ChannelState> = t
            .channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut sw = SilentWhispers::new(&t, 2);
        assert!(sw.route(&req(0, 3, xrp(1)), &view).is_empty());
    }

    #[test]
    fn is_atomic() {
        let t = gen::line(2, xrp(1));
        assert!(SilentWhispers::new(&t, 1).atomic());
    }
}
