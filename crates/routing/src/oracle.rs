//! Batched candidate-path precomputation: the workload's whole pair list
//! filled per source, fanned across worker threads.
//!
//! The lazy [`PathCache`](crate::PathCache) computes each pair's candidate
//! set on first use — 4 BFS traversals plus a workspace allocation per
//! pair, which dominates wall time at Ripple scale (3,774 nodes, ~10k
//! pairs). [`PathOracle`] computes the same sets ahead of time: pairs are
//! grouped by source, each source is answered by one
//! [`SourceOracle`](spider_lp::paths::SourceOracle) (one shared BFS tree,
//! one reusable epoch-stamped workspace), and sources are pulled from an
//! atomic work queue by `spider_core::run_sweep`-style scoped worker
//! threads. Candidate sets are bit-identical to the lazy oracle's — only
//! the wall time changes (see `BENCH_pathfill.json`).
//!
//! Workers produce plain node sequences; interning into the simulation's
//! shared (single-threaded) [`PathTable`](spider_sim::PathTable) happens
//! afterwards on the calling thread, in pair order, exactly as the lazy
//! path would have interned them.

use crate::cache::PathPolicy;
use spider_lp::paths::{CsrGraph, Path, SourceOracle};
use spider_topology::Topology;
use spider_types::NodeId;

/// Batched per-source candidate-path oracle over a fixed topology.
pub struct PathOracle<'a> {
    topo: &'a Topology,
    csr: Csr<'a>,
    policy: PathPolicy,
}

/// The oracle either flattens the adjacency lists itself or borrows a
/// caller-retained [`CsrGraph`] — the latter is how `PathCache` reuses one
/// graph (with its O(1) channel enable/disable state) across every churn
/// repair instead of reflattening per event.
enum Csr<'a> {
    Owned(CsrGraph),
    Borrowed(&'a CsrGraph),
}

impl Csr<'_> {
    fn get(&self) -> &CsrGraph {
        match self {
            Csr::Owned(c) => c,
            Csr::Borrowed(c) => c,
        }
    }
}

/// Below this many pairs the thread fan-out costs more than it saves;
/// fill inline on the calling thread instead.
const PARALLEL_THRESHOLD: usize = 256;

impl<'a> PathOracle<'a> {
    /// Builds the oracle (flattens the adjacency lists once).
    pub fn new(topo: &'a Topology, policy: PathPolicy) -> Self {
        PathOracle {
            topo,
            csr: Csr::Owned(CsrGraph::new(topo)),
            policy,
        }
    }

    /// Builds the oracle over a caller-retained CSR graph — candidate
    /// sets then respect whatever channels `csr` has disabled. `csr` must
    /// be a [`CsrGraph`] of `topo`.
    pub fn with_csr(topo: &'a Topology, csr: &'a CsrGraph, policy: PathPolicy) -> Self {
        PathOracle {
            topo,
            csr: Csr::Borrowed(csr),
            policy,
        }
    }

    /// Candidate paths for every pair, in pair order (`out[i]` answers
    /// `pairs[i]`). Pairs sharing a source share one BFS tree and one
    /// workspace; distinct sources are filled concurrently. Every entry is
    /// exactly what the per-pair oracle of [`Self::policy`] returns —
    /// including empty sets for unreachable or degenerate `src == dst`
    /// pairs.
    pub fn fill(&self, pairs: &[(NodeId, NodeId)]) -> Vec<Vec<Path>> {
        // Group pair indices by source, keeping first-seen source order.
        let mut source_order: Vec<NodeId> = Vec::new();
        let mut groups: std::collections::HashMap<NodeId, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, &(src, _)) in pairs.iter().enumerate() {
            groups
                .entry(src)
                .or_insert_with(|| {
                    source_order.push(src);
                    Vec::new()
                })
                .push(i);
        }
        let sources: Vec<(NodeId, Vec<usize>)> = source_order
            .into_iter()
            .map(|s| {
                let idxs = groups.remove(&s).expect("grouped");
                (s, idxs)
            })
            .collect();

        let workers = if pairs.len() < PARALLEL_THRESHOLD {
            1
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(sources.len())
        };
        let mut out: Vec<Option<Vec<Path>>> = (0..pairs.len()).map(|_| None).collect();
        if workers <= 1 {
            let mut oracle: Option<SourceOracle<'_>> = None;
            for (src, idxs) in &sources {
                let o = oracle
                    .get_or_insert_with(|| SourceOracle::new(self.topo, self.csr.get(), *src));
                o.retarget(*src);
                for &i in idxs {
                    out[i] = Some(self.candidates(o, pairs[i].1));
                }
            }
        } else {
            let next = std::sync::atomic::AtomicUsize::new(0);
            let merged: Vec<Vec<(usize, Vec<Path>)>> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for _ in 0..workers {
                    let next = &next;
                    let sources = &sources;
                    handles.push(scope.spawn(move || {
                        let mut local: Vec<(usize, Vec<Path>)> = Vec::new();
                        let mut oracle: Option<SourceOracle<'_>> = None;
                        loop {
                            let g = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if g >= sources.len() {
                                break;
                            }
                            let (src, idxs) = &sources[g];
                            let o = oracle.get_or_insert_with(|| {
                                SourceOracle::new(self.topo, self.csr.get(), *src)
                            });
                            o.retarget(*src);
                            for &i in idxs {
                                local.push((i, self.candidates(o, pairs[i].1)));
                            }
                        }
                        local
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("oracle worker panicked"))
                    .collect()
            });
            for (i, cands) in merged.into_iter().flatten() {
                out[i] = Some(cands);
            }
        }
        out.into_iter()
            .map(|c| c.expect("every pair filled"))
            .collect()
    }

    /// The policy this oracle answers with.
    pub fn policy(&self) -> PathPolicy {
        self.policy
    }

    fn candidates(&self, oracle: &mut SourceOracle<'_>, dst: NodeId) -> Vec<Path> {
        match self.policy {
            PathPolicy::EdgeDisjoint(k) => oracle.edge_disjoint(dst, k),
            PathPolicy::KShortest(k) => oracle.k_shortest(dst, k),
            PathPolicy::Shortest => oracle.shortest(dst).into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_lp::paths::{k_edge_disjoint_paths, k_shortest_paths};
    use spider_topology::gen;
    use spider_types::{Amount, DetRng};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn fill_matches_per_pair_oracles() {
        let t = gen::isp_topology(Amount::from_xrp(100));
        let mut rng = DetRng::new(11);
        let mut pairs = Vec::new();
        for _ in 0..200 {
            pairs.push((
                NodeId(rng.index(t.node_count()) as u32),
                NodeId(rng.index(t.node_count()) as u32),
            ));
        }
        pairs.push((n(3), n(3))); // degenerate self-pair
        for policy in [
            PathPolicy::EdgeDisjoint(4),
            PathPolicy::KShortest(3),
            PathPolicy::Shortest,
        ] {
            let oracle = PathOracle::new(&t, policy);
            let filled = oracle.fill(&pairs);
            assert_eq!(filled.len(), pairs.len());
            for (&(s, d), got) in pairs.iter().zip(&filled) {
                let want: Vec<Vec<NodeId>> = match policy {
                    PathPolicy::EdgeDisjoint(k) => k_edge_disjoint_paths(&t, s, d, k)
                        .into_iter()
                        .map(|p| p.nodes)
                        .collect(),
                    PathPolicy::KShortest(k) => k_shortest_paths(&t, s, d, k)
                        .into_iter()
                        .map(|p| p.nodes)
                        .collect(),
                    PathPolicy::Shortest => t.shortest_path(s, d).into_iter().collect(),
                };
                let got: Vec<Vec<NodeId>> = got.iter().map(|p| p.nodes.clone()).collect();
                assert_eq!(got, want, "{s}->{d} under {policy:?}");
            }
        }
    }

    #[test]
    fn fill_spans_the_parallel_path() {
        // Enough pairs to cross PARALLEL_THRESHOLD; results must still be
        // in pair order and identical to the sequential per-pair fill.
        let t = gen::isp_topology(Amount::from_xrp(100));
        let mut pairs = Vec::new();
        for s in 0..t.node_count() as u32 {
            for d in 0..t.node_count() as u32 {
                if s != d {
                    pairs.push((n(s), n(d)));
                }
            }
        }
        assert!(pairs.len() >= PARALLEL_THRESHOLD);
        let oracle = PathOracle::new(&t, PathPolicy::EdgeDisjoint(2));
        let filled = oracle.fill(&pairs);
        for (i, &(s, d)) in pairs.iter().enumerate().step_by(97) {
            let want: Vec<Vec<NodeId>> = k_edge_disjoint_paths(&t, s, d, 2)
                .into_iter()
                .map(|p| p.nodes)
                .collect();
            let got: Vec<Vec<NodeId>> = filled[i].iter().map(|p| p.nodes.clone()).collect();
            assert_eq!(got, want, "{s}->{d}");
        }
    }
}
