//! Shared per-pair candidate-path cache with incremental churn repair.
//!
//! Every source-routed scheme restricts itself to a small candidate set per
//! pair (§5.3.1); computing it once per pair and caching matches how real
//! hosts would remember their probed paths. Candidates are interned into
//! the simulation's shared [`PathTable`] on first computation, so every
//! scheme resolves a pair's paths to `(ChannelId, Direction)` arrays
//! exactly once and thereafter trades in copyable [`PathId`]s.
//!
//! Under topology churn ([`PathCache::on_topology_change`]) the cache
//! repairs itself **incrementally**: a channel close drops only the pairs
//! whose cached candidates traverse it (removing an edge no candidate uses
//! provably cannot change any oracle's answer — see the module tests), a
//! channel open invalidates every cached pair (a new edge can improve any
//! pair), and a capacity resize invalidates nothing (the oracles are
//! hop-count-based). Dropped pairs are batch-refilled through
//! [`PathOracle`](crate::PathOracle) over one retained
//! [`CsrGraph`] whose channels are enabled/disabled in O(1) per event —
//! the graph is flattened exactly once per cache lifetime.

use spider_lp::paths::{k_edge_disjoint_paths, k_shortest_paths, CsrGraph, SourceOracle};
use spider_sim::{PathTable, TopologyUpdate};
use spider_topology::Topology;
use spider_types::{ChannelId, NodeId, PathId};
use std::collections::{HashMap, HashSet};

/// Candidate-set policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathPolicy {
    /// k edge-disjoint shortest paths (the paper's evaluation setting).
    EdgeDisjoint(usize),
    /// Yen's k shortest loopless paths.
    KShortest(usize),
    /// The single BFS shortest path (the packet-switched baseline).
    Shortest,
}

/// Lazily computed per-pair candidate paths, churn-repairable.
#[derive(Debug, Clone)]
pub struct PathCache {
    policy: PathPolicy,
    cache: HashMap<(NodeId, NodeId), Vec<PathId>>,
    /// Per-source BFS parent trees ([`PathPolicy::Shortest`] only,
    /// computed by [`Topology::bfs_parents`] — the same traversal
    /// `Topology::shortest_path` derives from): one tree yields the
    /// identical smallest-id shortest path to *every* destination, so a
    /// sender pays for one traversal no matter how many receivers it
    /// routes to. Only usable while no channel is closed (trees are a
    /// full-graph cache; churn invalidates them wholesale).
    bfs_trees: HashMap<NodeId, Vec<u32>>,
    /// Channels currently closed by churn (`true` = closed). Empty until
    /// the first topology change.
    closed: Vec<bool>,
    /// The retained flattened graph, built on first batched fill and kept
    /// in sync with `closed` through O(1) channel toggles.
    csr: Option<CsrGraph>,
    /// Reverse index: `rev[c]` = the cached pairs with a candidate
    /// traversing channel `c` (lazily sized to the channel count).
    /// A close then invalidates exactly `∪ rev[closed]` instead of
    /// scanning every cached pair's candidates — the difference between
    /// O(affected) and O(pairs × k × hops) per event at Ripple scale.
    rev: Vec<HashSet<(NodeId, NodeId)>>,
    /// Lifetime counters surfaced through [`PathCache::counters`].
    hits: u64,
    misses: u64,
    prefilled: u64,
    repairs: u64,
}

impl PathCache {
    /// Empty cache with the given policy.
    pub fn new(policy: PathPolicy) -> Self {
        PathCache {
            policy,
            cache: HashMap::new(),
            bfs_trees: HashMap::new(),
            closed: Vec::new(),
            csr: None,
            rev: Vec::new(),
            hits: 0,
            misses: 0,
            prefilled: 0,
            repairs: 0,
        }
    }

    /// The candidate paths for `(src, dst)`, computing and interning them
    /// on first use (against the current channel-liveness mask).
    pub fn get(
        &mut self,
        topo: &Topology,
        paths: &PathTable,
        src: NodeId,
        dst: NodeId,
    ) -> &[PathId] {
        // Split borrows so the hit path stays one hash lookup (the
        // `entry` API) while the miss closure computes through the other
        // fields; the reverse index registers freshly cached pairs after
        // the insertion.
        let PathCache {
            policy,
            cache,
            bfs_trees,
            closed,
            csr,
            rev,
            hits,
            misses,
            ..
        } = self;
        let mut fresh = false;
        let ids = cache.entry((src, dst)).or_insert_with(|| {
            fresh = true;
            let candidates = Self::compute(*policy, bfs_trees, closed, csr, topo, src, dst);
            candidates
                .iter()
                .map(|nodes| paths.intern(topo, nodes))
                .collect()
        });
        if fresh {
            *misses += 1;
            Self::register(rev, topo, paths, (src, dst), ids);
        } else {
            *hits += 1;
        }
        ids
    }

    /// Adds `pair` to the reverse index of every channel its candidates
    /// traverse.
    fn register(
        rev: &mut Vec<HashSet<(NodeId, NodeId)>>,
        topo: &Topology,
        paths: &PathTable,
        pair: (NodeId, NodeId),
        ids: &[PathId],
    ) {
        if rev.is_empty() {
            rev.resize_with(topo.channel_count(), HashSet::new);
        }
        for &id in ids {
            for &(c, _) in paths.entry(id).hops() {
                rev[c.index()].insert(pair);
            }
        }
    }

    /// Removes `pair` (with candidate set `ids`) from the reverse index.
    fn unregister(&mut self, paths: &PathTable, pair: (NodeId, NodeId), ids: &[PathId]) {
        for &id in ids {
            for &(c, _) in paths.entry(id).hops() {
                self.rev[c.index()].remove(&pair);
            }
        }
    }

    /// One pair's candidate node sequences under the live mask.
    #[allow(clippy::too_many_arguments)]
    fn compute(
        policy: PathPolicy,
        bfs_trees: &mut HashMap<NodeId, Vec<u32>>,
        closed: &[bool],
        csr: &mut Option<CsrGraph>,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
    ) -> Vec<Vec<NodeId>> {
        if !closed.iter().any(|&c| c) {
            // Static topology: the PR 3 fast paths, bit-identical to the
            // masked oracle with an empty mask.
            return match policy {
                PathPolicy::EdgeDisjoint(k) => k_edge_disjoint_paths(topo, src, dst, k)
                    .into_iter()
                    .map(|p| p.nodes)
                    .collect(),
                PathPolicy::KShortest(k) => k_shortest_paths(topo, src, dst, k)
                    .into_iter()
                    .map(|p| p.nodes)
                    .collect(),
                PathPolicy::Shortest => {
                    let tree = bfs_trees
                        .entry(src)
                        .or_insert_with(|| topo.bfs_parents(src));
                    Topology::path_from_parents(tree, src, dst)
                        .into_iter()
                        .collect()
                }
            };
        }
        let csr = Self::synced_csr(csr, topo, closed);
        let mut oracle = SourceOracle::new(topo, csr, src);
        match policy {
            PathPolicy::EdgeDisjoint(k) => oracle
                .edge_disjoint(dst, k)
                .into_iter()
                .map(|p| p.nodes)
                .collect(),
            PathPolicy::KShortest(k) => oracle
                .k_shortest(dst, k)
                .into_iter()
                .map(|p| p.nodes)
                .collect(),
            PathPolicy::Shortest => oracle.shortest(dst).map(|p| p.nodes).into_iter().collect(),
        }
    }

    /// The retained CSR graph, built on first use and synced to `closed`.
    fn synced_csr<'a>(
        slot: &'a mut Option<CsrGraph>,
        topo: &Topology,
        closed: &[bool],
    ) -> &'a mut CsrGraph {
        slot.get_or_insert_with(|| {
            let mut csr = CsrGraph::new(topo);
            for (i, &c) in closed.iter().enumerate() {
                if c {
                    csr.set_channel_enabled(topo, ChannelId::from_index(i), false);
                }
            }
            csr
        })
    }

    /// Precomputes and interns the candidate sets of every listed pair,
    /// so later [`PathCache::get`] calls are pure lookups.
    ///
    /// Pairs are filled *per source* through a batched
    /// [`PathOracle`](crate::PathOracle) — one BFS tree and one reusable
    /// workspace per source, sources fanned across worker threads — then
    /// interned into `paths` on this thread in pair order (first
    /// occurrence wins; already-cached pairs are skipped). Candidate sets,
    /// and the `PathId`s a given get-order produces, are bit-identical to
    /// the lazy path; only the fill cost changes (see
    /// `BENCH_pathfill.json`).
    pub fn prefill(&mut self, topo: &Topology, paths: &PathTable, pairs: &[(NodeId, NodeId)]) {
        let mut todo: Vec<(NodeId, NodeId)> = Vec::new();
        let mut queued: std::collections::HashSet<(NodeId, NodeId)> =
            std::collections::HashSet::new();
        for &pair in pairs {
            if !self.cache.contains_key(&pair) && queued.insert(pair) {
                todo.push(pair);
            }
        }
        self.prefilled += todo.len() as u64;
        self.fill_pairs(topo, paths, &todo);
    }

    /// Batch-fills `todo` (must not already be cached) through the
    /// retained CSR graph and interns the results in pair order.
    fn fill_pairs(&mut self, topo: &Topology, paths: &PathTable, todo: &[(NodeId, NodeId)]) {
        if todo.is_empty() {
            return;
        }
        let policy = self.policy;
        let filled = {
            let csr = Self::synced_csr(&mut self.csr, topo, &self.closed);
            crate::PathOracle::with_csr(topo, csr, policy).fill(todo)
        };
        // One interning pass over every candidate of every pair (the
        // table borrow is taken once), then slice the flat id list back
        // into per-pair entries.
        let ids = paths.intern_batch(
            topo,
            filled
                .iter()
                .flat_map(|cands| cands.iter().map(|p| p.nodes.as_slice())),
        );
        let mut cursor = ids.into_iter();
        for (&pair, candidates) in todo.iter().zip(filled) {
            let ids: Vec<_> = cursor.by_ref().take(candidates.len()).collect();
            Self::register(&mut self.rev, topo, paths, pair, &ids);
            self.cache.insert(pair, ids);
        }
    }

    /// Repairs the cache after a topology-churn event: updates the
    /// channel-liveness mask (O(1) toggles on the retained CSR graph),
    /// drops exactly the pairs whose candidate sets may have changed, and
    /// batch-refills them. Returns the repaired pairs (sorted, so callers
    /// migrating per-path state iterate deterministically).
    ///
    /// Invalidation rules, each exact for the hop-count oracles:
    ///
    /// * **close** — only pairs whose cached candidates traverse a closed
    ///   channel: removing an edge used by no candidate leaves every
    ///   successively-chosen lex-min path both feasible and minimal, so
    ///   the oracle's answer is unchanged;
    /// * **open** — every cached pair: a new edge can shorten or add a
    ///   candidate for pairs whose current candidates never touch it;
    /// * **resize** — nothing: candidate selection ignores capacity.
    pub fn on_topology_change(
        &mut self,
        topo: &Topology,
        paths: &PathTable,
        update: &TopologyUpdate,
    ) -> Vec<(NodeId, NodeId)> {
        if update.connectivity_changed() && self.closed.is_empty() {
            self.closed = vec![false; topo.channel_count()];
        }
        for &c in &update.closed {
            self.closed[c.index()] = true;
            if let Some(csr) = self.csr.as_mut() {
                csr.set_channel_enabled(topo, c, false);
            }
        }
        for &c in &update.opened {
            self.closed[c.index()] = false;
            if let Some(csr) = self.csr.as_mut() {
                csr.set_channel_enabled(topo, c, true);
            }
        }
        if !update.connectivity_changed() {
            return Vec::new();
        }
        // Per-source BFS trees are a whole-graph cache; any connectivity
        // change invalidates them wholesale (they are cheap to rebuild).
        self.bfs_trees.clear();
        let mut dropped: Vec<(NodeId, NodeId)> = if !update.opened.is_empty() {
            self.cache.keys().copied().collect()
        } else {
            // Exactly the pairs whose candidates traverse a closed
            // channel, straight from the reverse index (maintained on
            // every insertion/removal, so it equals what a full scan of
            // the cache would find — see `pairs_traversing_scan`).
            self.pairs_traversing(&update.closed)
        };
        // Set/map iteration order is arbitrary; sort so the refill (and
        // therefore PathId interning) order is deterministic.
        dropped.sort_unstable();
        self.repairs += dropped.len() as u64;
        for pair in &dropped {
            if let Some(ids) = self.cache.remove(pair) {
                self.unregister(paths, *pair, &ids);
            }
        }
        self.fill_pairs(topo, paths, &dropped);
        dropped
    }

    /// The cached pairs with a candidate traversing any of `channels`,
    /// answered from the reverse index in O(affected) — unsorted.
    pub fn pairs_traversing(&self, channels: &[ChannelId]) -> Vec<(NodeId, NodeId)> {
        let mut seen: HashSet<(NodeId, NodeId)> = HashSet::new();
        for &c in channels {
            if let Some(set) = self.rev.get(c.index()) {
                seen.extend(set.iter().copied());
            }
        }
        // lint: allow(unordered-iter): audited — the one non-test caller
        // (`on_topology_change`) sorts the pairs before refilling, and the
        // equivalence tests compare as sets.
        seen.into_iter().collect()
    }

    /// Reference implementation of [`PathCache::pairs_traversing`]: the
    /// full cache scan the reverse index replaced. Kept for the
    /// equivalence tests and the invalidation microbenchmark — unsorted.
    pub fn pairs_traversing_scan(
        &self,
        paths: &PathTable,
        channels: &[ChannelId],
    ) -> Vec<(NodeId, NodeId)> {
        // lint: allow(unordered-iter): audited — reference implementation
        // used only by set-equality tests and the invalidation microbench,
        // never by the engine.
        self.cache
            .iter()
            .filter(|(_, ids)| {
                ids.iter().any(|&id| {
                    paths
                        .entry(id)
                        .hops()
                        .iter()
                        .any(|&(c, _)| channels.contains(&c))
                })
            })
            .map(|(&pair, _)| pair)
            .collect()
    }

    /// True when `channel` is currently closed in this cache's mask.
    pub fn channel_closed(&self, channel: ChannelId) -> bool {
        self.closed.get(channel.index()).copied().unwrap_or(false)
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Lifetime counters, in a fixed order suitable for
    /// [`RouterObs::counters`](spider_sim::RouterObs): cache hits (get on
    /// a cached pair), misses (lazy computes), pairs filled by
    /// [`PathCache::prefill`], and pairs repaired after churn.
    pub fn counters(&self) -> [(&'static str, u64); 4] {
        [
            ("path_cache_hits", self.hits),
            ("path_cache_misses", self.misses),
            ("path_cache_prefilled", self.prefilled),
            ("path_cache_repairs", self.repairs),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_topology::gen;
    use spider_types::Amount;

    #[test]
    fn caches_per_pair_and_shares_interned_ids() {
        let t = gen::isp_topology(Amount::from_xrp(100));
        let table = PathTable::new();
        let mut c = PathCache::new(PathPolicy::EdgeDisjoint(4));
        assert!(c.is_empty());
        let p1 = c.get(&t, &table, NodeId(8), NodeId(20)).to_vec();
        assert_eq!(c.len(), 1);
        let interned_after_first = table.len();
        let p2 = c.get(&t, &table, NodeId(8), NodeId(20)).to_vec();
        assert_eq!(c.len(), 1);
        assert_eq!(p1, p2);
        assert_eq!(table.len(), interned_after_first, "no re-interning");
        c.get(&t, &table, NodeId(20), NodeId(8));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn policies_differ() {
        let t = gen::isp_topology(Amount::from_xrp(100));
        let table = PathTable::new();
        let mut dis = PathCache::new(PathPolicy::EdgeDisjoint(4));
        let mut yen = PathCache::new(PathPolicy::KShortest(4));
        let d = dis.get(&t, &table, NodeId(0), NodeId(7)).to_vec();
        let y = yen.get(&t, &table, NodeId(0), NodeId(7)).to_vec();
        assert_eq!(d.len(), 4);
        assert_eq!(y.len(), 4);
        // Yen's set may share edges; the disjoint set may not.
        let mut used = std::collections::HashSet::new();
        for id in &d {
            for &(c, _) in table.entry(*id).hops() {
                assert!(used.insert(c));
            }
        }
    }

    #[test]
    fn shortest_policy_matches_topology_bfs() {
        // The per-source BFS tree must reproduce `Topology::shortest_path`
        // exactly (same smallest-id tie-breaks) for every destination.
        let t = gen::isp_topology(Amount::from_xrp(100));
        let table = PathTable::new();
        let mut c = PathCache::new(PathPolicy::Shortest);
        for src in [0u32, 3, 8, 31] {
            for dst in 0..32u32 {
                if src == dst {
                    continue;
                }
                let ids = c.get(&t, &table, NodeId(src), NodeId(dst)).to_vec();
                assert_eq!(ids.len(), 1);
                assert_eq!(
                    table.entry(ids[0]).nodes(),
                    t.shortest_path(NodeId(src), NodeId(dst)).unwrap(),
                    "pair {src}->{dst}"
                );
            }
        }
        // Unreachable pairs cache an empty set.
        let mut b = spider_topology::Topology::builder(3);
        b.channel(NodeId(0), NodeId(1), Amount::from_xrp(1))
            .unwrap();
        let t2 = b.build();
        let table2 = PathTable::new();
        let mut c2 = PathCache::new(PathPolicy::Shortest);
        assert!(c2.get(&t2, &table2, NodeId(0), NodeId(2)).is_empty());
        assert_eq!(c2.len(), 1, "negative result is cached too");
    }

    /// Resolve a cache's candidates to node sequences for comparison
    /// across caches whose interning orders (and therefore PathIds) differ.
    fn resolved(
        cache: &mut PathCache,
        topo: &Topology,
        table: &PathTable,
        pairs: &[(NodeId, NodeId)],
    ) -> Vec<Vec<Vec<NodeId>>> {
        pairs
            .iter()
            .map(|&(s, d)| {
                cache
                    .get(topo, table, s, d)
                    .iter()
                    .map(|&id| table.entry(id).nodes().to_vec())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn close_repair_equals_cold_rebuild_and_is_targeted() {
        let t = gen::isp_topology(Amount::from_xrp(100));
        let table = PathTable::new();
        let mut warm = PathCache::new(PathPolicy::EdgeDisjoint(4));
        let pairs: Vec<(NodeId, NodeId)> = (0..16u32)
            .flat_map(|s| [(NodeId(s), NodeId(s + 16)), (NodeId(s + 16), NodeId(s))])
            .collect();
        warm.prefill(&t, &table, &pairs);
        // Close one channel used by somebody's candidate set.
        let victim = table
            .entry(warm.get(&t, &table, pairs[0].0, pairs[0].1)[0])
            .hops()[0]
            .0;
        let update = TopologyUpdate {
            closed: vec![victim],
            ..TopologyUpdate::default()
        };
        let repaired = warm.on_topology_change(&t, &table, &update);
        assert!(!repaired.is_empty(), "the traversed pair must be repaired");
        assert!(
            repaired.len() < pairs.len(),
            "a close must not invalidate everything ({} of {})",
            repaired.len(),
            pairs.len()
        );
        assert!(warm.channel_closed(victim));
        // Cold cache prewarmed on the final (masked) topology.
        let cold_table = PathTable::new();
        let mut cold = PathCache::new(PathPolicy::EdgeDisjoint(4));
        cold.on_topology_change(&t, &cold_table, &update);
        cold.prefill(&t, &cold_table, &pairs);
        assert_eq!(
            resolved(&mut warm, &t, &table, &pairs),
            resolved(&mut cold, &t, &cold_table, &pairs),
            "incremental repair must equal a cold rebuild"
        );
        // No repaired candidate traverses the closed channel.
        for &(s, d) in &pairs {
            for &id in warm.get(&t, &table, s, d) {
                assert!(table.entry(id).hops().iter().all(|&(c, _)| c != victim));
            }
        }
        // Reopen: everything returns to the unmasked answers.
        let update = TopologyUpdate {
            opened: vec![victim],
            ..TopologyUpdate::default()
        };
        let repaired = warm.on_topology_change(&t, &table, &update);
        assert_eq!(repaired.len(), pairs.len(), "opens invalidate every pair");
        let fresh_table = PathTable::new();
        let mut fresh = PathCache::new(PathPolicy::EdgeDisjoint(4));
        fresh.prefill(&t, &fresh_table, &pairs);
        assert_eq!(
            resolved(&mut warm, &t, &table, &pairs),
            resolved(&mut fresh, &t, &fresh_table, &pairs),
        );
    }

    #[test]
    fn reverse_index_matches_full_scan_through_churn() {
        // The rev index must answer "which pairs traverse these channels"
        // identically to the full cache scan it replaced, across prefill,
        // lazy gets, repairs, and re-fills.
        let t = gen::isp_topology(Amount::from_xrp(100));
        let table = PathTable::new();
        let mut c = PathCache::new(PathPolicy::EdgeDisjoint(4));
        let pairs: Vec<(NodeId, NodeId)> =
            (0..12u32).map(|s| (NodeId(s), NodeId(31 - s))).collect();
        c.prefill(&t, &table, &pairs);
        let mut rng = spider_types::DetRng::new(21);
        let check = |c: &PathCache, table: &PathTable, probe: &[ChannelId]| {
            let mut indexed = c.pairs_traversing(probe);
            let mut scanned = c.pairs_traversing_scan(table, probe);
            indexed.sort_unstable();
            scanned.sort_unstable();
            assert_eq!(indexed, scanned, "probe {probe:?}");
        };
        for round in 0..30 {
            let ch = ChannelId(rng.index(t.channel_count()) as u32);
            let update = if round % 3 == 2 && c.channel_closed(ch) {
                TopologyUpdate {
                    opened: vec![ch],
                    ..TopologyUpdate::default()
                }
            } else {
                TopologyUpdate {
                    closed: vec![ch],
                    ..TopologyUpdate::default()
                }
            };
            c.on_topology_change(&t, &table, &update);
            // A lazily cached pair joins the index too.
            let s = rng.index(32) as u32;
            let d = (s + 1 + rng.index(30) as u32) % 32;
            c.get(&t, &table, NodeId(s), NodeId(d));
            let probe: Vec<ChannelId> = (0..3)
                .map(|_| ChannelId(rng.index(t.channel_count()) as u32))
                .collect();
            check(&c, &table, &probe);
        }
    }

    #[test]
    fn counters_track_hits_misses_prefills_and_repairs() {
        let t = gen::isp_topology(Amount::from_xrp(100));
        let table = PathTable::new();
        let mut c = PathCache::new(PathPolicy::EdgeDisjoint(4));
        c.get(&t, &table, NodeId(0), NodeId(9));
        c.get(&t, &table, NodeId(0), NodeId(9));
        c.get(&t, &table, NodeId(9), NodeId(0));
        c.prefill(
            &t,
            &table,
            &[(NodeId(0), NodeId(9)), (NodeId(1), NodeId(8))],
        );
        let victim = table
            .entry(c.get(&t, &table, NodeId(0), NodeId(9))[0])
            .hops()[0]
            .0;
        let update = TopologyUpdate {
            closed: vec![victim],
            ..TopologyUpdate::default()
        };
        let repaired = c.on_topology_change(&t, &table, &update).len() as u64;
        let counters: std::collections::HashMap<&str, u64> = c.counters().into_iter().collect();
        assert_eq!(counters["path_cache_misses"], 2);
        // The repeat get plus the victim-lookup get above.
        assert_eq!(counters["path_cache_hits"], 2);
        assert_eq!(counters["path_cache_prefilled"], 1, "cached pair skipped");
        assert_eq!(counters["path_cache_repairs"], repaired);
        assert!(repaired > 0);
    }

    #[test]
    fn resize_invalidates_nothing() {
        let t = gen::isp_topology(Amount::from_xrp(100));
        let table = PathTable::new();
        let mut c = PathCache::new(PathPolicy::KShortest(3));
        c.get(&t, &table, NodeId(1), NodeId(9));
        let update = TopologyUpdate {
            resized: vec![ChannelId(0), ChannelId(3)],
            ..TopologyUpdate::default()
        };
        assert!(c.on_topology_change(&t, &table, &update).is_empty());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lazy_get_respects_the_mask() {
        // A pair first requested *after* a close must be computed on the
        // masked graph, for every policy.
        let t = gen::isp_topology(Amount::from_xrp(100));
        for policy in [
            PathPolicy::EdgeDisjoint(4),
            PathPolicy::KShortest(3),
            PathPolicy::Shortest,
        ] {
            let table = PathTable::new();
            let mut c = PathCache::new(policy);
            // Close every channel incident to node 5's first neighbor hop
            // on the 0→5 shortest path, forcing a different route.
            let sp = t.shortest_path(NodeId(0), NodeId(5)).unwrap();
            let first_hop = t.channel_between(sp[0], sp[1]).unwrap();
            let update = TopologyUpdate {
                closed: vec![first_hop],
                ..TopologyUpdate::default()
            };
            c.on_topology_change(&t, &table, &update);
            for &id in c.get(&t, &table, NodeId(0), NodeId(5)) {
                assert!(
                    table
                        .entry(id)
                        .hops()
                        .iter()
                        .all(|&(ch, _)| ch != first_hop),
                    "{policy:?} lazily computed a path over a closed channel"
                );
            }
        }
    }
}
