//! Shared lazily-populated per-pair path cache.
//!
//! Every source-routed scheme restricts itself to a small candidate set per
//! pair (§5.3.1); computing it once per pair and caching matches how real
//! hosts would remember their probed paths.

use spider_lp::paths::{k_edge_disjoint_paths, k_shortest_paths, Path};
use spider_topology::Topology;
use spider_types::NodeId;
use std::collections::BTreeMap;

/// Candidate-set policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathPolicy {
    /// k edge-disjoint shortest paths (the paper's evaluation setting).
    EdgeDisjoint(usize),
    /// Yen's k shortest loopless paths.
    KShortest(usize),
}

/// Lazily computed per-pair candidate paths.
#[derive(Debug, Clone)]
pub struct PathCache {
    policy: PathPolicy,
    cache: BTreeMap<(NodeId, NodeId), Vec<Path>>,
}

impl PathCache {
    /// Empty cache with the given policy.
    pub fn new(policy: PathPolicy) -> Self {
        PathCache {
            policy,
            cache: BTreeMap::new(),
        }
    }

    /// The candidate paths for `(src, dst)`, computing them on first use.
    pub fn get(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> &[Path] {
        self.cache
            .entry((src, dst))
            .or_insert_with(|| match self.policy {
                PathPolicy::EdgeDisjoint(k) => k_edge_disjoint_paths(topo, src, dst, k),
                PathPolicy::KShortest(k) => k_shortest_paths(topo, src, dst, k),
            })
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_topology::gen;
    use spider_types::Amount;

    #[test]
    fn caches_per_pair() {
        let t = gen::isp_topology(Amount::from_xrp(100));
        let mut c = PathCache::new(PathPolicy::EdgeDisjoint(4));
        assert!(c.is_empty());
        let p1 = c.get(&t, NodeId(8), NodeId(20)).to_vec();
        assert_eq!(c.len(), 1);
        let p2 = c.get(&t, NodeId(8), NodeId(20)).to_vec();
        assert_eq!(c.len(), 1);
        assert_eq!(p1, p2);
        c.get(&t, NodeId(20), NodeId(8));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn policies_differ() {
        let t = gen::isp_topology(Amount::from_xrp(100));
        let mut dis = PathCache::new(PathPolicy::EdgeDisjoint(4));
        let mut yen = PathCache::new(PathPolicy::KShortest(4));
        let d = dis.get(&t, NodeId(0), NodeId(7)).to_vec();
        let y = yen.get(&t, NodeId(0), NodeId(7)).to_vec();
        assert_eq!(d.len(), 4);
        assert_eq!(y.len(), 4);
        // Yen's set may share edges; the disjoint set may not.
        let mut used = std::collections::HashSet::new();
        for p in &d {
            for (c, _) in p.channels(&t) {
                assert!(used.insert(c));
            }
        }
    }
}
