//! Shared lazily-populated per-pair path cache.
//!
//! Every source-routed scheme restricts itself to a small candidate set per
//! pair (§5.3.1); computing it once per pair and caching matches how real
//! hosts would remember their probed paths. Candidates are interned into
//! the simulation's shared [`PathTable`] on first computation, so every
//! scheme resolves a pair's paths to `(ChannelId, Direction)` arrays
//! exactly once and thereafter trades in copyable [`PathId`]s.

use spider_lp::paths::{k_edge_disjoint_paths, k_shortest_paths};
use spider_sim::PathTable;
use spider_topology::Topology;
use spider_types::{NodeId, PathId};
use std::collections::HashMap;

/// Candidate-set policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathPolicy {
    /// k edge-disjoint shortest paths (the paper's evaluation setting).
    EdgeDisjoint(usize),
    /// Yen's k shortest loopless paths.
    KShortest(usize),
    /// The single BFS shortest path (the packet-switched baseline).
    Shortest,
}

/// Lazily computed per-pair candidate paths.
#[derive(Debug, Clone)]
pub struct PathCache {
    policy: PathPolicy,
    cache: HashMap<(NodeId, NodeId), Vec<PathId>>,
    /// Per-source BFS parent trees ([`PathPolicy::Shortest`] only,
    /// computed by [`Topology::bfs_parents`] — the same traversal
    /// `Topology::shortest_path` derives from): one tree yields the
    /// identical smallest-id shortest path to *every* destination, so a
    /// sender pays for one traversal no matter how many receivers it
    /// routes to.
    bfs_trees: HashMap<NodeId, Vec<u32>>,
}

impl PathCache {
    /// Empty cache with the given policy.
    pub fn new(policy: PathPolicy) -> Self {
        PathCache {
            policy,
            cache: HashMap::new(),
            bfs_trees: HashMap::new(),
        }
    }

    /// The candidate paths for `(src, dst)`, computing and interning them
    /// on first use.
    pub fn get(
        &mut self,
        topo: &Topology,
        paths: &PathTable,
        src: NodeId,
        dst: NodeId,
    ) -> &[PathId] {
        let policy = self.policy;
        let trees = &mut self.bfs_trees;
        self.cache.entry((src, dst)).or_insert_with(|| {
            let candidates: Vec<Vec<NodeId>> = match policy {
                PathPolicy::EdgeDisjoint(k) => k_edge_disjoint_paths(topo, src, dst, k)
                    .into_iter()
                    .map(|p| p.nodes)
                    .collect(),
                PathPolicy::KShortest(k) => k_shortest_paths(topo, src, dst, k)
                    .into_iter()
                    .map(|p| p.nodes)
                    .collect(),
                PathPolicy::Shortest => {
                    let tree = trees.entry(src).or_insert_with(|| topo.bfs_parents(src));
                    Topology::path_from_parents(tree, src, dst)
                        .into_iter()
                        .collect()
                }
            };
            candidates
                .iter()
                .map(|nodes| paths.intern(topo, nodes))
                .collect()
        })
    }

    /// Precomputes and interns the candidate sets of every listed pair,
    /// so later [`PathCache::get`] calls are pure lookups.
    ///
    /// Pairs are filled *per source* through a batched
    /// [`PathOracle`](crate::PathOracle) — one BFS tree and one reusable
    /// workspace per source, sources fanned across worker threads — then
    /// interned into `paths` on this thread in pair order (first
    /// occurrence wins; already-cached pairs are skipped). Candidate sets,
    /// and the `PathId`s a given get-order produces, are bit-identical to
    /// the lazy path; only the fill cost changes (see
    /// `BENCH_pathfill.json`).
    pub fn prefill(&mut self, topo: &Topology, paths: &PathTable, pairs: &[(NodeId, NodeId)]) {
        let mut todo: Vec<(NodeId, NodeId)> = Vec::new();
        let mut queued: std::collections::HashSet<(NodeId, NodeId)> =
            std::collections::HashSet::new();
        for &pair in pairs {
            if !self.cache.contains_key(&pair) && queued.insert(pair) {
                todo.push(pair);
            }
        }
        if todo.is_empty() {
            return;
        }
        let filled = crate::PathOracle::new(topo, self.policy).fill(&todo);
        // One interning pass over every candidate of every pair (the
        // table borrow is taken once), then slice the flat id list back
        // into per-pair entries.
        let ids = paths.intern_batch(
            topo,
            filled
                .iter()
                .flat_map(|cands| cands.iter().map(|p| p.nodes.as_slice())),
        );
        let mut cursor = ids.into_iter();
        for (pair, candidates) in todo.into_iter().zip(filled) {
            let ids: Vec<_> = cursor.by_ref().take(candidates.len()).collect();
            self.cache.insert(pair, ids);
        }
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_topology::gen;
    use spider_types::Amount;

    #[test]
    fn caches_per_pair_and_shares_interned_ids() {
        let t = gen::isp_topology(Amount::from_xrp(100));
        let table = PathTable::new();
        let mut c = PathCache::new(PathPolicy::EdgeDisjoint(4));
        assert!(c.is_empty());
        let p1 = c.get(&t, &table, NodeId(8), NodeId(20)).to_vec();
        assert_eq!(c.len(), 1);
        let interned_after_first = table.len();
        let p2 = c.get(&t, &table, NodeId(8), NodeId(20)).to_vec();
        assert_eq!(c.len(), 1);
        assert_eq!(p1, p2);
        assert_eq!(table.len(), interned_after_first, "no re-interning");
        c.get(&t, &table, NodeId(20), NodeId(8));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn policies_differ() {
        let t = gen::isp_topology(Amount::from_xrp(100));
        let table = PathTable::new();
        let mut dis = PathCache::new(PathPolicy::EdgeDisjoint(4));
        let mut yen = PathCache::new(PathPolicy::KShortest(4));
        let d = dis.get(&t, &table, NodeId(0), NodeId(7)).to_vec();
        let y = yen.get(&t, &table, NodeId(0), NodeId(7)).to_vec();
        assert_eq!(d.len(), 4);
        assert_eq!(y.len(), 4);
        // Yen's set may share edges; the disjoint set may not.
        let mut used = std::collections::HashSet::new();
        for id in &d {
            for &(c, _) in table.entry(*id).hops() {
                assert!(used.insert(c));
            }
        }
    }

    #[test]
    fn shortest_policy_matches_topology_bfs() {
        // The per-source BFS tree must reproduce `Topology::shortest_path`
        // exactly (same smallest-id tie-breaks) for every destination.
        let t = gen::isp_topology(Amount::from_xrp(100));
        let table = PathTable::new();
        let mut c = PathCache::new(PathPolicy::Shortest);
        for src in [0u32, 3, 8, 31] {
            for dst in 0..32u32 {
                if src == dst {
                    continue;
                }
                let ids = c.get(&t, &table, NodeId(src), NodeId(dst)).to_vec();
                assert_eq!(ids.len(), 1);
                assert_eq!(
                    table.entry(ids[0]).nodes(),
                    t.shortest_path(NodeId(src), NodeId(dst)).unwrap(),
                    "pair {src}->{dst}"
                );
            }
        }
        // Unreachable pairs cache an empty set.
        let mut b = spider_topology::Topology::builder(3);
        b.channel(NodeId(0), NodeId(1), Amount::from_xrp(1))
            .unwrap();
        let t2 = b.build();
        let table2 = PathTable::new();
        let mut c2 = PathCache::new(PathPolicy::Shortest);
        assert!(c2.get(&t2, &table2, NodeId(0), NodeId(2)).is_empty());
        assert_eq!(c2.len(), 1, "negative result is cached too");
    }
}
