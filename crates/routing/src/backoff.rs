//! Sender-side fault backoff: temporary path penalties with exponential
//! cooldown.
//!
//! When a unit is lost to an injected transport fault (message loss, hop
//! timeout, node crash — exactly [`DropReason::is_fault`]), the sender
//! cools the failed path down for `base · 2^strikes` (exponent capped)
//! and the router fails over to alternate candidates while the cooldown
//! lasts. A delivery on the path clears its strikes.
//!
//! Ordinary congestion signals — failed locks, queue timeouts, expiry —
//! never penalize a path: backoff reacts *exclusively* to faults, so a
//! fault-free run behaves bit-identically with the machinery installed
//! (the penalty table stays empty and every query short-circuits).
//!
//! [`ChannelBreakers`] is the overload-side sibling: a per-channel
//! circuit breaker that trips on sustained *shedding* ([`DropReason::
//! Shed`] acks — never ordinary faults or congestion), blocks routes
//! over the tripped channel while open, and recovers through a
//! half-open probing window. Like the penalty table it is sparse: a run
//! that never sheds keeps it empty, so always-on wiring cannot perturb
//! overload-free outcomes.

use spider_types::{ChannelId, DropReason, PathId, SimDuration, SimTime};

/// Cooldown shape for [`PathPenalties`].
#[derive(Debug, Clone, Copy)]
pub struct BackoffConfig {
    /// Cooldown after a path's first fault; doubles per strike.
    pub base_cooldown: SimDuration,
    /// Cap on the doubling exponent (`base · 2^max_exponent` ceiling).
    pub max_exponent: u32,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base_cooldown: SimDuration::from_millis(250),
            max_exponent: 6,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Penalty {
    until: SimTime,
    strikes: u32,
}

/// Per-path strike/cooldown table plus the fault-backoff counters a
/// router surfaces through `Router::observability`.
#[derive(Debug, Default)]
pub struct PathPenalties {
    cfg: BackoffConfig,
    /// Only ever holds paths that faulted at least once — empty for the
    /// whole run unless fault injection is active.
    entries: Vec<(PathId, Penalty)>,
    faults_seen: u64,
    cooldowns_started: u64,
    paths_skipped: u64,
}

impl PathPenalties {
    /// A table with explicit cooldown tuning.
    pub fn new(cfg: BackoffConfig) -> Self {
        PathPenalties {
            cfg,
            ..PathPenalties::default()
        }
    }

    /// True when no path ever faulted (the fault-free fast path).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records a fault on `path`: one more strike, and a fresh cooldown
    /// of `base · 2^min(strikes, max_exponent)` starting now.
    pub fn on_fault(&mut self, path: PathId, now: SimTime) {
        self.faults_seen += 1;
        let i = match self.entries.iter().position(|&(p, _)| p == path) {
            Some(i) => {
                self.entries[i].1.strikes += 1;
                i
            }
            None => {
                self.entries.push((
                    path,
                    Penalty {
                        until: SimTime::ZERO,
                        strikes: 0,
                    },
                ));
                self.entries.len() - 1
            }
        };
        let exp = self.entries[i].1.strikes.min(self.cfg.max_exponent);
        let cooldown = SimDuration::from_micros(self.cfg.base_cooldown.micros() << exp);
        self.entries[i].1.until = now + cooldown;
        self.cooldowns_started += 1;
    }

    /// Records a successful delivery on `path`: the path is healthy
    /// again, so its strikes (and any remaining cooldown) are dropped.
    pub fn on_delivery(&mut self, path: PathId) {
        if self.entries.is_empty() {
            return;
        }
        self.entries.retain(|&(p, _)| p != path);
    }

    /// Digests a queueing-mode ack: fault reasons strike the path,
    /// deliveries clear it, everything else (congestion drops, expiry)
    /// is ignored.
    pub fn on_ack(
        &mut self,
        path: PathId,
        delivered: bool,
        drop_reason: Option<DropReason>,
        now: SimTime,
    ) {
        if let Some(r) = drop_reason {
            if r.is_fault() {
                self.on_fault(path, now);
                return;
            }
        }
        if delivered {
            self.on_delivery(path);
        }
    }

    /// True when `path` is inside a fault cooldown window at `now`.
    #[inline]
    pub fn is_cooled(&self, path: PathId, now: SimTime) -> bool {
        if self.entries.is_empty() {
            return false;
        }
        self.entries
            .iter()
            .any(|&(p, pen)| p == path && now < pen.until)
    }

    /// Removes currently-cooled candidates from `paths` (preserving
    /// order) — unless *every* candidate is cooled, in which case the
    /// set is left untouched: a penalized path still beats giving up.
    /// Counts each skipped path.
    pub fn retain_usable(&mut self, paths: &mut Vec<PathId>, now: SimTime) {
        if self.entries.is_empty() || paths.is_empty() {
            return;
        }
        let cooled = paths.iter().filter(|&&p| self.is_cooled(p, now)).count();
        if cooled == 0 || cooled == paths.len() {
            return;
        }
        self.paths_skipped += cooled as u64;
        let entries = &self.entries;
        paths.retain(|&p| !entries.iter().any(|&(q, pen)| q == p && now < pen.until));
    }

    /// Counts one externally-detected skip (for routers that gate
    /// cooled candidates inline rather than via
    /// [`PathPenalties::retain_usable`]).
    #[inline]
    pub fn note_skip(&mut self) {
        self.paths_skipped += 1;
    }

    /// Picks the first non-cooled candidate, falling back to the first
    /// candidate when all are cooled. `None` only for an empty slate.
    pub fn choose(&mut self, candidates: &[PathId], now: SimTime) -> Option<PathId> {
        let first = *candidates.first()?;
        if self.entries.is_empty() {
            return Some(first);
        }
        for (i, &p) in candidates.iter().enumerate() {
            if !self.is_cooled(p, now) {
                self.paths_skipped += i as u64;
                return Some(p);
            }
        }
        Some(first)
    }

    /// Backoff counters for `Router::observability`, in a fixed order.
    /// Empty when no fault was ever seen, so fault-free observability
    /// output is unchanged by the backoff machinery.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> {
        let quiet = self.faults_seen == 0;
        [
            ("backoff_faults_seen", self.faults_seen),
            ("backoff_cooldowns_started", self.cooldowns_started),
            ("backoff_paths_skipped", self.paths_skipped),
        ]
        .into_iter()
        .filter(move |_| !quiet)
    }
}

/// Circuit-breaker tuning for [`ChannelBreakers`].
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Shed strikes (since the last success) that trip a breaker open.
    pub strike_threshold: u32,
    /// How long an open breaker blocks its channel before half-opening.
    pub open_cooldown: SimDuration,
    /// Probe units a half-open breaker lets through; a success closes
    /// the breaker, a further shed re-opens it.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            strike_threshold: 8,
            open_cooldown: SimDuration::from_millis(1_000),
            half_open_probes: 3,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum BreakerState {
    /// Accumulating strikes; traffic flows.
    Closed { strikes: u32 },
    /// Tripped: the channel is blocked until the cooldown elapses.
    Open { until: SimTime },
    /// Probing: up to `left` units may cross; the first ack decides
    /// (success closes, shed re-opens).
    HalfOpen { left: u32 },
}

/// Per-channel shed-driven circuit breakers (closed → open → half-open),
/// plus the counters a router surfaces through `Router::observability`.
///
/// Sparse by construction: only channels that shed at least once get an
/// entry, and every query short-circuits on the empty table.
#[derive(Debug, Default)]
pub struct ChannelBreakers {
    cfg: BreakerConfig,
    entries: Vec<(ChannelId, BreakerState)>,
    strikes_seen: u64,
    trips: u64,
    probes_allowed: u64,
}

impl ChannelBreakers {
    /// A breaker table with explicit tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        ChannelBreakers {
            cfg,
            ..ChannelBreakers::default()
        }
    }

    /// True when no channel ever shed (the overload-free fast path).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn position(&self, channel: ChannelId) -> Option<usize> {
        self.entries.iter().position(|&(c, _)| c == channel)
    }

    /// Records one shed strike against `channel`: a closed breaker
    /// accumulates toward its threshold, a half-open breaker's failed
    /// probe re-opens it, an open breaker's cooldown is refreshed
    /// (sustained shedding keeps it open).
    pub fn on_strike(&mut self, channel: ChannelId, now: SimTime) {
        self.strikes_seen += 1;
        let open = BreakerState::Open {
            until: now + self.cfg.open_cooldown,
        };
        match self.position(channel) {
            None => {
                if self.cfg.strike_threshold <= 1 {
                    self.trips += 1;
                    self.entries.push((channel, open));
                } else {
                    self.entries
                        .push((channel, BreakerState::Closed { strikes: 1 }));
                }
            }
            Some(i) => match self.entries[i].1 {
                BreakerState::Closed { strikes } => {
                    if strikes + 1 >= self.cfg.strike_threshold {
                        self.trips += 1;
                        self.entries[i].1 = open;
                    } else {
                        self.entries[i].1 = BreakerState::Closed {
                            strikes: strikes + 1,
                        };
                    }
                }
                BreakerState::HalfOpen { .. } => {
                    self.trips += 1;
                    self.entries[i].1 = open;
                }
                BreakerState::Open { .. } => self.entries[i].1 = open,
            },
        }
    }

    /// Records a successful delivery over `channel`: the breaker closes
    /// and its strikes are forgotten, whatever state it was in.
    pub fn on_success(&mut self, channel: ChannelId) {
        if self.entries.is_empty() {
            return;
        }
        self.entries.retain(|&(c, _)| c != channel);
    }

    /// The routing-time gate: may a unit cross `channel` at `now`?
    /// An open breaker whose cooldown elapsed transitions to half-open
    /// here and starts handing out its probe allowance.
    pub fn allow(&mut self, channel: ChannelId, now: SimTime) -> bool {
        if self.entries.is_empty() {
            return true;
        }
        let Some(i) = self.position(channel) else {
            return true;
        };
        match self.entries[i].1 {
            BreakerState::Closed { .. } => true,
            BreakerState::Open { until } => {
                if now < until {
                    return false;
                }
                let left = self.cfg.half_open_probes.max(1) - 1;
                self.entries[i].1 = BreakerState::HalfOpen { left };
                self.probes_allowed += 1;
                true
            }
            BreakerState::HalfOpen { left } => {
                if left == 0 {
                    return false;
                }
                self.entries[i].1 = BreakerState::HalfOpen { left: left - 1 };
                self.probes_allowed += 1;
                true
            }
        }
    }

    /// True when every channel in `hops` may be crossed at `now`
    /// (convenience for whole-path gating).
    pub fn allow_path(&mut self, hops: &[ChannelId], now: SimTime) -> bool {
        if self.entries.is_empty() {
            return true;
        }
        hops.iter().all(|&c| self.allow(c, now))
    }

    /// Breaker counters for `Router::observability`, in a fixed order.
    /// Empty when no shed was ever seen, so overload-free observability
    /// output is unchanged by the breaker machinery.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> {
        let quiet = self.strikes_seen == 0;
        [
            ("breaker_strikes_seen", self.strikes_seen),
            ("breaker_trips", self.trips),
            ("breaker_probes_allowed", self.probes_allowed),
        ]
        .into_iter()
        .filter(move |_| !quiet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime::ZERO;

    fn at(ms: u64) -> SimTime {
        T0 + SimDuration::from_millis(ms)
    }

    #[test]
    fn fault_cools_and_expires() {
        let mut p = PathPenalties::default();
        assert!(!p.is_cooled(PathId(0), T0));
        p.on_fault(PathId(0), T0);
        assert!(p.is_cooled(PathId(0), T0));
        assert!(p.is_cooled(PathId(0), at(249)));
        assert!(!p.is_cooled(PathId(0), at(250)), "cooldown over");
        assert!(!p.is_cooled(PathId(1), T0), "other paths unaffected");
    }

    #[test]
    fn strikes_double_the_cooldown_up_to_the_cap() {
        let mut p = PathPenalties::new(BackoffConfig {
            base_cooldown: SimDuration::from_millis(100),
            max_exponent: 2,
        });
        p.on_fault(PathId(3), T0); // strike 0 → 100 ms
        assert!(!p.is_cooled(PathId(3), at(100)));
        p.on_fault(PathId(3), at(100)); // strike 1 → 200 ms
        assert!(p.is_cooled(PathId(3), at(299)));
        assert!(!p.is_cooled(PathId(3), at(300)));
        p.on_fault(PathId(3), at(300)); // strike 2 → 400 ms
        p.on_fault(PathId(3), at(700)); // strike 3, capped → still 400 ms
        assert!(p.is_cooled(PathId(3), at(1_099)));
        assert!(!p.is_cooled(PathId(3), at(1_100)));
    }

    #[test]
    fn delivery_clears_the_strikes() {
        let mut p = PathPenalties::default();
        p.on_fault(PathId(7), T0);
        p.on_delivery(PathId(7));
        assert!(!p.is_cooled(PathId(7), T0));
        // The next fault starts over at the base cooldown.
        p.on_fault(PathId(7), at(1_000));
        assert!(!p.is_cooled(PathId(7), at(1_250)));
    }

    #[test]
    fn ack_reacts_only_to_fault_reasons() {
        let mut p = PathPenalties::default();
        p.on_ack(PathId(1), false, Some(DropReason::QueueTimeout), T0);
        p.on_ack(PathId(1), false, Some(DropReason::Expired), T0);
        assert!(p.is_empty(), "congestion drops never penalize");
        p.on_ack(PathId(1), false, Some(DropReason::MessageLost), T0);
        assert!(p.is_cooled(PathId(1), T0));
        p.on_ack(PathId(1), true, None, at(10));
        assert!(!p.is_cooled(PathId(1), at(10)), "delivery heals");
    }

    #[test]
    fn retain_keeps_the_slate_when_everything_is_cooled() {
        let mut p = PathPenalties::default();
        p.on_fault(PathId(0), T0);
        p.on_fault(PathId(1), T0);
        let mut both = vec![PathId(0), PathId(1)];
        p.retain_usable(&mut both, T0);
        assert_eq!(both, vec![PathId(0), PathId(1)], "all cooled → untouched");
        let mut mixed = vec![PathId(0), PathId(2)];
        p.retain_usable(&mut mixed, T0);
        assert_eq!(mixed, vec![PathId(2)], "cooled candidate removed");
    }

    #[test]
    fn choose_fails_over_then_falls_back() {
        let mut p = PathPenalties::default();
        let slate = [PathId(0), PathId(1)];
        assert_eq!(p.choose(&slate, T0), Some(PathId(0)));
        p.on_fault(PathId(0), T0);
        assert_eq!(p.choose(&slate, T0), Some(PathId(1)), "failover");
        p.on_fault(PathId(1), T0);
        assert_eq!(p.choose(&slate, T0), Some(PathId(0)), "all cooled");
        assert_eq!(p.choose(&[], T0), None);
    }

    #[test]
    fn counters_stay_silent_without_faults() {
        let mut p = PathPenalties::default();
        let mut slate = vec![PathId(0)];
        p.retain_usable(&mut slate, T0);
        p.choose(&slate, T0);
        assert_eq!(p.counters().count(), 0, "fault-free output unchanged");
        p.on_fault(PathId(0), T0);
        let counters: Vec<_> = p.counters().collect();
        assert_eq!(counters[0], ("backoff_faults_seen", 1));
        assert_eq!(counters[1], ("backoff_cooldowns_started", 1));
    }

    /// Regression pin for the default cooldown cap: `base · 2^6` with a
    /// 250 ms base, i.e. penalties saturate at 16 s however many strikes
    /// accumulate. Anyone retuning [`BackoffConfig`] must update this
    /// consciously.
    #[test]
    fn default_cooldown_cap_pins_base_times_two_pow_six() {
        let cfg = BackoffConfig::default();
        assert_eq!(cfg.base_cooldown, SimDuration::from_millis(250));
        assert_eq!(cfg.max_exponent, 6);
        let mut p = PathPenalties::default();
        // Strike far past the cap, each strike after the previous
        // cooldown fully expired.
        for k in 0..20u64 {
            p.on_fault(PathId(0), at(k * 100_000));
        }
        let last_ms = 19 * 100_000;
        assert!(p.is_cooled(PathId(0), at(last_ms + 15_999)));
        assert!(
            !p.is_cooled(PathId(0), at(last_ms + 16_000)),
            "cooldown must saturate at 250 ms << 6 = 16 s"
        );
    }

    #[test]
    fn breaker_trips_after_sustained_sheds_and_blocks() {
        let mut b = ChannelBreakers::new(BreakerConfig {
            strike_threshold: 3,
            open_cooldown: SimDuration::from_millis(500),
            half_open_probes: 1,
        });
        let c = ChannelId(4);
        b.on_strike(c, T0);
        b.on_strike(c, T0);
        assert!(b.allow(c, T0), "below threshold traffic flows");
        b.on_strike(c, T0);
        assert!(!b.allow(c, at(499)), "tripped breaker blocks");
        assert!(b.allow(ChannelId(5), T0), "other channels unaffected");
    }

    #[test]
    fn breaker_recovers_through_half_open_probes() {
        let mut b = ChannelBreakers::new(BreakerConfig {
            strike_threshold: 1,
            open_cooldown: SimDuration::from_millis(100),
            half_open_probes: 2,
        });
        let c = ChannelId(0);
        b.on_strike(c, T0);
        assert!(!b.allow(c, at(99)));
        // Cooldown over: half-open hands out exactly two probes.
        assert!(b.allow(c, at(100)));
        assert!(b.allow(c, at(100)));
        assert!(!b.allow(c, at(100)), "probe allowance exhausted");
        // A successful probe closes the breaker for good.
        b.on_success(c);
        assert!(b.allow(c, at(101)));
        // A failed probe would have re-opened it instead.
        b.on_strike(c, at(200));
        assert!(!b.allow(c, at(200)), "threshold 1 re-trips instantly");
    }

    #[test]
    fn breaker_failed_probe_reopens() {
        let mut b = ChannelBreakers::new(BreakerConfig {
            strike_threshold: 2,
            open_cooldown: SimDuration::from_millis(100),
            half_open_probes: 1,
        });
        let c = ChannelId(9);
        b.on_strike(c, T0);
        b.on_strike(c, T0);
        assert!(b.allow(c, at(100)), "half-open probe");
        b.on_strike(c, at(110));
        assert!(!b.allow(c, at(150)), "failed probe re-opened the breaker");
        assert!(!b.allow(c, at(209)), "fresh full cooldown from the strike");
        assert!(b.allow(c, at(210)));
    }

    #[test]
    fn breaker_stays_silent_without_sheds() {
        let mut b = ChannelBreakers::default();
        assert!(b.is_empty());
        assert!(b.allow(ChannelId(1), T0));
        assert!(b.allow_path(&[ChannelId(0), ChannelId(1)], T0));
        b.on_success(ChannelId(1));
        assert_eq!(b.counters().count(), 0, "shed-free output unchanged");
        b.on_strike(ChannelId(1), T0);
        let counters: Vec<_> = b.counters().collect();
        assert_eq!(counters[0], ("breaker_strikes_seen", 1));
    }
}
