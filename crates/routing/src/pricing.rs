//! Spider (Pricing): the §5.3 price intuition as an *online* router.
//!
//! The decentralized algorithm prices each channel direction by capacity
//! congestion (λ) and imbalance (µ), and steers rate toward cheap paths.
//! [`SpiderPricing`] realizes that feedback loop against live channel
//! state: each hop's price combines
//!
//! * an **imbalance term** — positive (expensive) when sending would drain
//!   the already-poorer side of the channel, negative (a discount) when
//!   sending *rebalances* the channel (the µ_(u,v) − µ_(v,u) difference in
//!   the edge price z); and
//! * a **congestion term** — growing as the sender's available balance
//!   approaches zero (the λ terms).
//!
//! Units are allocated greedily to the currently cheapest candidate path,
//! with virtual balances updated after every unit so one request's own
//! allocations feed back into its prices. Compared to waterfilling (which
//! looks only at the sender-side bottleneck), pricing also sees the far
//! side of every channel and will happily take a longer path that heals an
//! imbalanced channel — the paper's "imbalance-aware routing" in its most
//! direct online form.

use crate::backoff::PathPenalties;
use crate::cache::{PathCache, PathPolicy};
use spider_sim::{NetworkView, RouteProposal, RouteRequest, Router};
use spider_types::{Amount, ChannelId, Direction};
use std::collections::HashMap;

/// Weights of the two price components.
#[derive(Debug, Clone, Copy)]
pub struct PricingConfig {
    /// Weight of the imbalance term (µ analogue).
    pub imbalance_weight: f64,
    /// Weight of the congestion term (λ analogue).
    pub congestion_weight: f64,
    /// Per-hop constant cost, discouraging needlessly long paths.
    pub hop_cost: f64,
}

impl Default for PricingConfig {
    fn default() -> Self {
        PricingConfig {
            imbalance_weight: 1.0,
            congestion_weight: 0.5,
            hop_cost: 0.1,
        }
    }
}

/// Online price-based imbalance-aware routing (non-atomic).
#[derive(Debug)]
pub struct SpiderPricing {
    cache: PathCache,
    cfg: PricingConfig,
    /// Fault cooldowns (empty for the whole run unless faults fire).
    penalties: PathPenalties,
}

impl SpiderPricing {
    /// Creates the router with `k` edge-disjoint candidate paths and
    /// default price weights.
    pub fn new(k: usize) -> Self {
        Self::with_config(k, PricingConfig::default())
    }

    /// Creates the router with explicit price weights.
    pub fn with_config(k: usize, cfg: PricingConfig) -> Self {
        assert!(k >= 1, "need at least one path");
        assert!(
            cfg.congestion_weight >= 0.0 && cfg.hop_cost >= 0.0,
            "invalid weights"
        );
        SpiderPricing {
            cache: PathCache::new(PathPolicy::EdgeDisjoint(k)),
            cfg,
            penalties: PathPenalties::default(),
        }
    }

    /// Price of sending one more unit over `channel` in `dir`, given the
    /// virtual (request-local) balances.
    fn hop_price(&self, capacity: Amount, avail_dir: Amount, avail_rev: Amount) -> f64 {
        let cap = capacity.drops().max(1) as f64;
        // Imbalance: (rev − dir)/cap ∈ [−1, 1]. Positive ⇒ the sending
        // side is poorer ⇒ sending worsens imbalance ⇒ expensive.
        let imbalance = (avail_rev.drops() as f64 - avail_dir.drops() as f64) / cap;
        // Congestion: approaches 1 as the sender's side empties.
        let congestion = 1.0 - avail_dir.drops() as f64 / cap;
        self.cfg.imbalance_weight * imbalance
            + self.cfg.congestion_weight * congestion
            + self.cfg.hop_cost
    }
}

impl Router for SpiderPricing {
    /// The lock-outcome hook is the default no-op: let the engine elide
    /// it (and batch-count identical failed chunks).
    fn observes_unit_outcomes(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "spider-pricing"
    }

    fn wants_prewarm(&self) -> bool {
        true
    }

    fn prewarm(
        &mut self,
        pairs: &[(spider_types::NodeId, spider_types::NodeId)],
        view: &NetworkView<'_>,
    ) {
        self.cache.prefill(view.topo, view.paths, pairs);
    }

    fn on_topology_change(&mut self, update: &spider_sim::TopologyUpdate, view: &NetworkView<'_>) {
        self.cache.on_topology_change(view.topo, view.paths, update);
    }

    /// Fault outcomes arrive here unconditionally (the engine bypasses
    /// the `observes_unit_outcomes` gate for them); ordinary lock
    /// outcomes stay elided.
    fn on_unit_outcome(&mut self, outcome: &spider_sim::UnitOutcome, view: &NetworkView<'_>) {
        if outcome.fault.is_some() {
            self.penalties.on_fault(outcome.path, view.now);
        }
    }

    fn on_unit_ack(&mut self, ack: &spider_sim::UnitAck, view: &NetworkView<'_>) {
        self.penalties
            .on_ack(ack.path, ack.delivered, ack.drop_reason, view.now);
    }

    fn observability(&self) -> spider_sim::RouterObs {
        let mut obs = spider_sim::RouterObs::default();
        obs.counters
            .extend(self.penalties.counters().map(|(k, v)| (k.to_string(), v)));
        obs
    }

    fn route(&mut self, req: &RouteRequest, view: &NetworkView<'_>) -> Vec<RouteProposal> {
        // Copy the (small) candidate id set so the cache borrow ends
        // before pricing, which borrows `self` immutably.
        let mut paths: Vec<spider_types::PathId> = self
            .cache
            .get(view.topo, view.paths, req.src, req.dst)
            .to_vec();
        if paths.is_empty() {
            return Vec::new();
        }
        // Candidates inside a fault cooldown sit this round out (no-op in
        // fault-free runs; an all-cooled slate is kept whole).
        self.penalties.retain_usable(&mut paths, view.now);
        let paths = paths;
        // Virtual balances: shared across paths so channel overlap is
        // priced consistently within this request.
        fn avail(
            virt: &mut HashMap<(ChannelId, Direction), Amount>,
            view: &NetworkView<'_>,
            c: ChannelId,
            d: Direction,
        ) -> Amount {
            *virt.entry((c, d)).or_insert_with(|| view.available(c, d))
        }
        let mut virt: HashMap<(ChannelId, Direction), Amount> = HashMap::new();
        // Hops were pre-resolved at interning time.
        let entries: Vec<_> = paths.iter().map(|&id| view.path(id)).collect();
        let mut allocated = vec![Amount::ZERO; paths.len()];
        let mut remaining = req.remaining;
        while !remaining.is_zero() {
            let unit = req.mtu.min(remaining);
            // Price every candidate path at current virtual state.
            let mut best: Option<(f64, usize)> = None;
            for (i, entry) in entries.iter().enumerate() {
                let mut price = 0.0;
                let mut feasible = true;
                for &(c, d) in entry.hops() {
                    let a_dir = avail(&mut virt, view, c, d);
                    if a_dir < unit {
                        feasible = false;
                        break;
                    }
                    let a_rev = avail(&mut virt, view, c, d.reverse());
                    price += self.hop_price(view.topo.channel(c).capacity, a_dir, a_rev);
                }
                if feasible && best.is_none_or(|(bp, _)| price < bp - 1e-12) {
                    best = Some((price, i));
                }
            }
            let Some((_, i)) = best else { break };
            // Commit the unit to the cheapest path's virtual balances.
            for &(c, d) in entries[i].hops() {
                let a = avail(&mut virt, view, c, d);
                virt.insert((c, d), a - unit);
            }
            allocated[i] += unit;
            remaining -= unit;
        }
        paths
            .iter()
            .zip(allocated)
            .filter(|(_, a)| !a.is_zero())
            .map(|(&path, amount)| RouteProposal { path, amount })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_sim::{ChannelState, PathTable};
    use spider_types::{NodeId, PaymentId, SimTime};

    fn xrp(x: u64) -> Amount {
        Amount::from_xrp(x)
    }

    fn req(src: u32, dst: u32, amount: Amount, mtu: Amount) -> RouteRequest {
        RouteRequest {
            payment: PaymentId(0),
            src: NodeId(src),
            dst: NodeId(dst),
            remaining: amount,
            total: amount,
            mtu,
            attempt: 0,
        }
    }

    /// Two disjoint 2-hop routes 0→3: via 1 and via 2.
    fn two_routes() -> spider_topology::Topology {
        let mut b = spider_topology::Topology::builder(4);
        b.channel(NodeId(0), NodeId(1), xrp(20)).unwrap();
        b.channel(NodeId(1), NodeId(3), xrp(20)).unwrap();
        b.channel(NodeId(0), NodeId(2), xrp(20)).unwrap();
        b.channel(NodeId(2), NodeId(3), xrp(20)).unwrap();
        b.build()
    }

    #[test]
    fn prefers_the_path_that_rebalances() {
        let t = two_routes();
        // Route via 1: channels balanced (10/10).
        // Route via 2: the 0→2 channel is skewed 16/4 — sending 0→2 moves
        // funds toward the poorer side, i.e. REBALANCES, so it is cheaper.
        let mut ch: Vec<ChannelState> = t
            .channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect();
        let c02 = t.channel_between(NodeId(0), NodeId(2)).unwrap();
        // 0 is u (canonical), so Forward = 0→2; give that side 16.
        ch[c02.index()] = ChannelState::with_balances(xrp(16), xrp(4));
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut r = SpiderPricing::new(4);
        let props = r.route(&req(0, 3, xrp(2), xrp(2)), &view);
        assert_eq!(props.len(), 1);
        assert_eq!(
            view.path(props[0].path).nodes(),
            vec![NodeId(0), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn avoids_draining_the_poor_side() {
        let t = two_routes();
        let mut ch: Vec<ChannelState> = t
            .channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect();
        // Route via 2 has more instantaneous sender-side balance on hop 1
        // (12 > 10) but is heavily skewed against the sender on hop 2
        // (2→3 side has 18 of 20? no: make 2→3 poor: 3/17).
        let c02 = t.channel_between(NodeId(0), NodeId(2)).unwrap();
        ch[c02.index()] = ChannelState::with_balances(xrp(12), xrp(8));
        let c23 = t.channel_between(NodeId(2), NodeId(3)).unwrap();
        ch[c23.index()] = ChannelState::with_balances(xrp(3), xrp(17));
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut r = SpiderPricing::new(4);
        let props = r.route(&req(0, 3, xrp(2), xrp(2)), &view);
        // Pure waterfilling would compare bottlenecks (10 vs 3) and also
        // pick via-1 here; the interesting check is the price direction:
        // via-2's second hop is priced as draining (expensive).
        assert_eq!(
            view.path(props[0].path).nodes(),
            vec![NodeId(0), NodeId(1), NodeId(3)]
        );
    }

    #[test]
    fn splits_when_cheap_path_fills_up() {
        let t = two_routes();
        let ch: Vec<ChannelState> = t
            .channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut r = SpiderPricing::new(4);
        // 16 XRP with MTU 2: both paths have 10 XRP bottlenecks; virtual
        // feedback must spread the load across both.
        let props = r.route(&req(0, 3, xrp(16), xrp(2)), &view);
        assert_eq!(props.iter().map(|p| p.amount).sum::<Amount>(), xrp(16));
        assert_eq!(props.len(), 2);
        let amounts: Vec<u64> = props.iter().map(|p| p.amount.drops() / 1_000_000).collect();
        assert!(
            amounts.iter().all(|&a| a == 8),
            "even split expected, got {amounts:?}"
        );
    }

    #[test]
    fn respects_capacity_feasibility() {
        let t = two_routes();
        let ch: Vec<ChannelState> = t
            .channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut r = SpiderPricing::new(4);
        let props = r.route(&req(0, 3, xrp(100), xrp(1)), &view);
        // Total sendable = 10 + 10.
        assert_eq!(props.iter().map(|p| p.amount).sum::<Amount>(), xrp(20));
    }

    #[test]
    fn hop_price_signs() {
        let r = SpiderPricing::new(1);
        // Balanced channel: imbalance 0, congestion 0.5 → positive price.
        let balanced = r.hop_price(xrp(20), xrp(10), xrp(10));
        // Sending from the rich side: negative imbalance → discount.
        let rebalancing = r.hop_price(xrp(20), xrp(18), xrp(2));
        // Sending from the poor side: expensive.
        let draining = r.hop_price(xrp(20), xrp(2), xrp(18));
        assert!(rebalancing < balanced);
        assert!(balanced < draining);
    }

    #[test]
    fn not_atomic() {
        assert!(!SpiderPricing::new(4).atomic());
    }
}
