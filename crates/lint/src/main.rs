//! CLI for spider-lint.
//!
//! ```text
//! cargo run -p spider-lint -- --check            # CI entry point
//! cargo run -p spider-lint -- --update-baseline  # tighten the ratchet
//! ```
//!
//! `--check` exits 0 only when the tree lints clean: no determinism
//! hazards, no consistency drift, and panic-site counts at or below the
//! committed baseline. The ratchet summary prints on every run so drift
//! stays visible in CI logs.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode_update = false;
    let mut root_arg: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => {} // the default mode
            "--update-baseline" => mode_update = true,
            "--root" => root_arg = it.next().cloned(),
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                print_usage();
                return ExitCode::from(2);
            }
        }
    }
    let start = match root_arg {
        Some(r) => std::path::PathBuf::from(r),
        None => match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("cannot determine working directory: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let Some(root) = spider_lint::find_workspace_root(&start) else {
        eprintln!(
            "no workspace root ([workspace] in Cargo.toml) found above {}",
            start.display()
        );
        return ExitCode::from(2);
    };

    if mode_update {
        return match spider_lint::update_baseline(&root) {
            Ok(text) => {
                println!(
                    "wrote {} ({} crates)",
                    spider_lint::BASELINE_PATH,
                    text.lines().filter(|l| l.starts_with('[')).count()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }

    let result = match spider_lint::run_check(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &result.findings {
        println!("{f}");
    }
    print!(
        "{}",
        spider_lint::ratchet::summary_table(&result.counts, &result.baseline)
    );
    for (name, cat, cur, base) in &result.ratchet.regressions {
        println!("RATCHET: crates/{name}: {cat} sites grew {base} -> {cur}; remove them or justify via --update-baseline");
    }
    for name in &result.ratchet.stale {
        println!(
            "RATCHET: baseline lists crate `{name}` that no longer exists; run --update-baseline"
        );
    }
    for (name, cat, cur, base) in &result.ratchet.improvements {
        println!("note: crates/{name}: {cat} sites dropped {base} -> {cur}; run --update-baseline to lock in");
    }

    if result.ok() {
        let n_find = result.findings.len();
        debug_assert_eq!(n_find, 0);
        println!("spider-lint: clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "spider-lint: {} finding(s), {} ratchet regression(s)",
            result.findings.len(),
            result.ratchet.regressions.len() + result.ratchet.stale.len()
        );
        ExitCode::FAILURE
    }
}

fn print_usage() {
    println!(
        "spider-lint: workspace determinism/consistency static analysis\n\n\
         USAGE:\n  cargo run -p spider-lint -- [--check | --update-baseline] [--root <dir>]\n\n\
         MODES:\n  --check            run all rules + the panic-site ratchet (default)\n  \
         --update-baseline  recount panic sites and rewrite crates/lint/baseline.toml\n\n\
         Suppress a finding with `// lint: allow(<rule>): <why>` on the flagged\n\
         line or in the comment block above it. Rules: unordered-iter,\n\
         float-accum, wall-clock, non-det-rng, generic-derive."
    );
}
