//! Cross-file exhaustiveness/consistency checks.
//!
//! Several invariants in this workspace span files that the compiler
//! cannot tie together:
//!
//! * every [`DropReason`] variant must be counted by `DropBreakdown`
//!   (`crates/sim/src/metrics.rs`) and rendered by the trace renderers
//!   (`crates/obs/src/trace.rs`, whose `reason_str` feeds both the JSONL
//!   and the Chrome emitter);
//! * the JSONL `"ev"` event-name set emitted by `Trace::to_jsonl` must
//!   equal the allowlist embedded in `.github/workflows/ci.yml`'s trace
//!   schema smoke;
//! * every `EventKind` variant in the engine must actually be referenced
//!   (a declared-but-never-scheduled kind is dead protocol surface);
//! * `FigureRow`'s field list must match `CSV_HEADER` in
//!   `crates/core/src/output.rs` column for column.
//!
//! All checks parse tokens/strings only, so they keep working across
//! rustfmt and refactors that preserve the names.

use crate::lexer::{lex, Lexed, TokKind};
use crate::Finding;
use std::collections::BTreeSet;
use std::path::Path;

/// Extracts the variant names of `enum <name>` from tokenized source.
pub fn enum_variants(lx: &Lexed, name: &str) -> Option<Vec<String>> {
    let t = &lx.toks;
    let start = (0..t.len())
        .find(|&i| lx.is_ident(i, "enum") && lx.is_ident(i + 1, name) && lx.is_punct(i + 2, '{'))?;
    let mut variants = Vec::new();
    let mut depth = 1usize;
    let mut expect_name = true;
    let mut i = start + 3;
    while i < t.len() && depth > 0 {
        match (t[i].kind, t[i].text.as_str()) {
            (TokKind::Punct, "{" | "(" | "[") => depth += 1,
            (TokKind::Punct, "}" | ")" | "]") => depth -= 1,
            (TokKind::Punct, ",") if depth == 1 => expect_name = true,
            (TokKind::Ident, v) if depth == 1 && expect_name => {
                variants.push(v.to_string());
                expect_name = false;
            }
            _ => {}
        }
        i += 1;
    }
    Some(variants)
}

/// Extracts the `pub` field names of `struct <name>`, in declaration order.
pub fn struct_pub_fields(lx: &Lexed, name: &str) -> Option<Vec<String>> {
    let t = &lx.toks;
    let start = (0..t.len()).find(|&i| {
        lx.is_ident(i, "struct") && lx.is_ident(i + 1, name) && lx.is_punct(i + 2, '{')
    })?;
    let mut fields = Vec::new();
    let mut depth = 1usize;
    let mut i = start + 3;
    while i < t.len() && depth > 0 {
        match (t[i].kind, t[i].text.as_str()) {
            (TokKind::Punct, "{" | "(" | "[" | "<") => depth += 1,
            (TokKind::Punct, "}" | ")" | "]" | ">") => depth -= 1,
            (TokKind::Ident, "pub")
                if depth == 1
                    && t.get(i + 1).map(|x| x.kind) == Some(TokKind::Ident)
                    && lx.is_punct(i + 2, ':') =>
            {
                fields.push(t[i + 1].text.clone());
            }
            _ => {}
        }
        i += 1;
    }
    Some(fields)
}

/// True when `Enum :: Variant` appears anywhere in the token stream.
pub fn references_variant(lx: &Lexed, enum_name: &str, variant: &str) -> bool {
    let t = &lx.toks;
    (0..t.len()).any(|i| {
        lx.is_ident(i, enum_name)
            && lx.is_punct(i + 1, ':')
            && lx.is_punct(i + 2, ':')
            && lx.is_ident(i + 3, variant)
    })
}

/// Collects every `"ev":"<name>"` event name written by the JSONL
/// renderer (the names live inside Rust string literals as escaped
/// `\"ev\":\"name\"` sequences).
pub fn trace_event_names(lx: &Lexed) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for tok in &lx.toks {
        if tok.kind != TokKind::Str {
            continue;
        }
        let s = &tok.text;
        let mut from = 0usize;
        while let Some(pos) = s[from..].find("\\\"ev\\\":\\\"") {
            let start = from + pos + "\\\"ev\\\":\\\"".len();
            let end = s[start..].find('\\').map(|e| start + e).unwrap_or(s.len());
            if start < end {
                names.insert(s[start..end].to_string());
            }
            from = end;
        }
    }
    names
}

/// Parses the `events = {"a", "b", …}` allowlist out of the CI workflow's
/// embedded python validator.
pub fn ci_event_names(yml: &str) -> Option<BTreeSet<String>> {
    let start = yml.find("events = {")? + "events = {".len();
    let end = start + yml[start..].find('}')?;
    let mut names = BTreeSet::new();
    let body = &yml[start..end];
    let mut rest = body;
    while let Some(q) = rest.find('"') {
        let after = &rest[q + 1..];
        let close = after.find('"')?;
        names.insert(after[..close].to_string());
        rest = &after[close + 1..];
    }
    Some(names)
}

/// Paths (workspace-relative) the consistency checks read.
pub const INPUTS: &[&str] = &[
    "crates/types/src/unit.rs",
    "crates/sim/src/metrics.rs",
    "crates/obs/src/trace.rs",
    "crates/sim/src/engine.rs",
    "crates/core/src/output.rs",
    ".github/workflows/ci.yml",
];

/// Runs every cross-file check from the workspace root.
pub fn check(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut sources = Vec::new();
    for rel in INPUTS {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(s) => sources.push(s),
            Err(e) => {
                out.push(Finding::new(
                    rel,
                    0,
                    "consistency",
                    format!("cannot read consistency input: {e} — if the file moved, update crates/lint/src/consistency.rs"),
                ));
                return out;
            }
        }
    }
    let [unit_src, metrics_src, trace_src, engine_src, output_src, ci_src] = &sources[..] else {
        unreachable!("sources has INPUTS.len() elements");
    };
    check_sources(
        unit_src,
        metrics_src,
        trace_src,
        engine_src,
        output_src,
        ci_src,
        &mut out,
    );
    out
}

/// The file-content core of [`check`], separated for fixture tests.
#[allow(clippy::too_many_arguments)]
pub fn check_sources(
    unit_src: &str,
    metrics_src: &str,
    trace_src: &str,
    engine_src: &str,
    output_src: &str,
    ci_src: &str,
    out: &mut Vec<Finding>,
) {
    let unit = lex(unit_src);
    let metrics = lex(metrics_src);
    let trace = lex(trace_src);
    let engine = lex(engine_src);
    let output = lex(output_src);

    // DropReason exhaustiveness across the breakdown and the renderers.
    match enum_variants(&unit, "DropReason") {
        None => out.push(Finding::new(
            "crates/types/src/unit.rs",
            0,
            "consistency",
            "enum DropReason not found".to_string(),
        )),
        Some(variants) => {
            for (file, lexed, role) in [
                (
                    "crates/sim/src/metrics.rs",
                    &metrics,
                    "DropBreakdown::count",
                ),
                (
                    "crates/obs/src/trace.rs",
                    &trace,
                    "reason_str (feeds both trace renderers)",
                ),
            ] {
                for v in &variants {
                    if !references_variant(lexed, "DropReason", v) {
                        out.push(Finding::new(
                            file,
                            0,
                            "consistency",
                            format!("DropReason::{v} is not handled here ({role})"),
                        ));
                    }
                }
            }
        }
    }

    // Trace event-name set ≡ the CI trace-smoke allowlist.
    let emitted = trace_event_names(&trace);
    if emitted.is_empty() {
        out.push(Finding::new(
            "crates/obs/src/trace.rs",
            0,
            "consistency",
            "no \"ev\" event names found in the JSONL renderer".to_string(),
        ));
    }
    match ci_event_names(ci_src) {
        None => out.push(Finding::new(
            ".github/workflows/ci.yml",
            0,
            "consistency",
            "trace-smoke `events = {...}` allowlist not found".to_string(),
        )),
        Some(allowed) => {
            for missing in emitted.difference(&allowed) {
                out.push(Finding::new(
                    ".github/workflows/ci.yml",
                    0,
                    "consistency",
                    format!("trace event \"{missing}\" is emitted by Trace::to_jsonl but absent from the CI allowlist"),
                ));
            }
            for extra in allowed.difference(&emitted) {
                out.push(Finding::new(
                    ".github/workflows/ci.yml",
                    0,
                    "consistency",
                    format!(
                        "CI allowlists trace event \"{extra}\" that Trace::to_jsonl never emits"
                    ),
                ));
            }
        }
    }

    // Every EventKind variant must be referenced beyond its declaration.
    match enum_variants(&engine, "EventKind") {
        None => out.push(Finding::new(
            "crates/sim/src/engine.rs",
            0,
            "consistency",
            "enum EventKind not found".to_string(),
        )),
        Some(variants) => {
            for v in &variants {
                if !references_variant(&engine, "EventKind", v) {
                    out.push(Finding::new(
                        "crates/sim/src/engine.rs",
                        0,
                        "consistency",
                        format!("EventKind::{v} is declared but never scheduled or matched"),
                    ));
                }
            }
        }
    }

    // FigureRow fields ≡ CSV header columns, in order.
    let fields = struct_pub_fields(&output, "FigureRow");
    let header = csv_header(&output);
    match (fields, header) {
        (Some(fields), Some(header)) => {
            let cols: Vec<String> = header.split(',').map(str::to_string).collect();
            if fields != cols {
                out.push(Finding::new(
                    "crates/core/src/output.rs",
                    0,
                    "consistency",
                    format!("FigureRow fields {fields:?} do not match CSV_HEADER columns {cols:?}"),
                ));
            }
        }
        _ => out.push(Finding::new(
            "crates/core/src/output.rs",
            0,
            "consistency",
            "FigureRow struct or CSV_HEADER not found".to_string(),
        )),
    }
}

/// The string literal assigned to `CSV_HEADER`.
fn csv_header(lx: &Lexed) -> Option<String> {
    let t = &lx.toks;
    let i = (0..t.len()).find(|&i| lx.is_ident(i, "CSV_HEADER"))?;
    t[i..]
        .iter()
        .find(|tok| tok.kind == TokKind::Str)
        .map(|tok| tok.text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_variants_with_payloads() {
        let lx = lex("pub enum E { A, B { x: u32, y: Vec<(u8, u8)> }, C(usize), D }");
        assert_eq!(
            enum_variants(&lx, "E").expect("enum parsed"),
            vec!["A", "B", "C", "D"]
        );
        assert!(enum_variants(&lx, "F").is_none());
    }

    #[test]
    fn struct_fields_in_order() {
        let lx = lex("pub struct R { pub a: String, pub b: f64, c: u64, pub d: Option<f64> }");
        assert_eq!(
            struct_pub_fields(&lx, "R").expect("struct parsed"),
            vec!["a", "b", "d"],
            "non-pub fields are not CSV columns"
        );
    }

    #[test]
    fn variant_references() {
        let lx = lex("match r { E::A => 1, E::B => 2 }");
        assert!(references_variant(&lx, "E", "A"));
        assert!(!references_variant(&lx, "E", "C"));
    }

    #[test]
    fn trace_names_from_escaped_literals() {
        let lx = lex(
            r#"fn f() { write!(out, "\"ev\":\"arrival\",\"x\":{}", 1); g("{\"ev\":\"path\",\"nodes\":["); }"#,
        );
        let names = trace_event_names(&lx);
        assert_eq!(
            names.into_iter().collect::<Vec<_>>(),
            vec!["arrival", "path"]
        );
    }

    #[test]
    fn ci_events_parse() {
        let yml = "x\n events = {\"a\", \"b\",\n   \"c\"}\n rest";
        let names = ci_event_names(yml).expect("allowlist found");
        assert_eq!(names.into_iter().collect::<Vec<_>>(), vec!["a", "b", "c"]);
    }

    #[test]
    fn check_sources_cross_validates() {
        let unit = "pub enum DropReason { Expired, Lost }";
        let metrics =
            "fn c(r: DropReason) { match r { DropReason::Expired => {}, DropReason::Lost => {} } }";
        let trace = r#"fn r(x: DropReason) -> &'static str { match x { DropReason::Expired => "expired", DropReason::Lost => "lost" } }
                       fn j() { w("\"ev\":\"drop\""); w("{\"ev\":\"path\""); }"#;
        let engine = "enum EventKind { Poll } fn f() { let e = EventKind::Poll; }";
        let output =
            "pub struct FigureRow { pub a: u32, pub b: u32 } pub const CSV_HEADER: &str = \"a,b\";";
        let ci = "events = {\"drop\", \"path\"}";
        let mut out = Vec::new();
        check_sources(unit, metrics, trace, engine, output, ci, &mut out);
        assert!(out.is_empty(), "{out:?}");

        // Remove a match arm → exactly that variant is reported.
        let bad_metrics = "fn c(r: DropReason) { match r { DropReason::Expired => {}, _ => {} } }";
        let mut out = Vec::new();
        check_sources(unit, bad_metrics, trace, engine, output, ci, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("DropReason::Lost"), "{out:?}");

        // Drift the CI allowlist → both directions are reported.
        let bad_ci = "events = {\"drop\", \"path\", \"ghost\"}";
        let mut out = Vec::new();
        check_sources(unit, metrics, trace, engine, output, bad_ci, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("ghost"));

        // CSV header drift.
        let bad_output =
            "pub struct FigureRow { pub a: u32, pub b: u32 } pub const CSV_HEADER: &str = \"a\";";
        let mut out = Vec::new();
        check_sources(unit, metrics, trace, engine, bad_output, ci, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("CSV_HEADER"), "{out:?}");
    }
}
