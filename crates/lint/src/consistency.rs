//! Cross-file exhaustiveness/consistency checks.
//!
//! Several invariants in this workspace span files that the compiler
//! cannot tie together:
//!
//! * every [`DropReason`] variant must be counted by `DropBreakdown`
//!   (`crates/sim/src/metrics.rs`) and rendered by the trace renderers
//!   (`crates/obs/src/trace.rs`, whose `reason_str` feeds both the JSONL
//!   and the Chrome emitter);
//! * the JSONL `"ev"` event-name set emitted by `Trace::to_jsonl` must
//!   equal the allowlist embedded in `.github/workflows/ci.yml`'s trace
//!   schema smoke;
//! * every `EventKind` variant in the engine must actually be referenced
//!   (a declared-but-never-scheduled kind is dead protocol surface);
//! * `FigureRow`'s field list must match `CSV_HEADER` in
//!   `crates/core/src/output.rs` column for column;
//! * the hotspot table (`crates/obs/src/attribution.rs`): the
//!   `ChannelHotspot` fields, the `HOTSPOT_HEADER` columns, and the
//!   field names its hand-written JSONL renderers emit must all agree;
//! * the forensics artifacts (`crates/obs/src/forensics.rs`):
//!   `DropRecord` ≡ `FORENSICS_HEADER`, `RootCauseRow` ≡
//!   `ROOTCAUSE_HEADER`, the rendered JSONL field names equal the union
//!   of both headers, and every `DropReason` variant is keyed by the
//!   root-cause table (`reason_ord`/`REASONS`).
//!
//! All checks parse tokens/strings only, so they keep working across
//! rustfmt and refactors that preserve the names.

use crate::lexer::{lex, Lexed, TokKind};
use crate::Finding;
use std::collections::BTreeSet;
use std::path::Path;

/// Extracts the variant names of `enum <name>` from tokenized source.
pub fn enum_variants(lx: &Lexed, name: &str) -> Option<Vec<String>> {
    let t = &lx.toks;
    let start = (0..t.len())
        .find(|&i| lx.is_ident(i, "enum") && lx.is_ident(i + 1, name) && lx.is_punct(i + 2, '{'))?;
    let mut variants = Vec::new();
    let mut depth = 1usize;
    let mut expect_name = true;
    let mut i = start + 3;
    while i < t.len() && depth > 0 {
        match (t[i].kind, t[i].text.as_str()) {
            (TokKind::Punct, "{" | "(" | "[") => depth += 1,
            (TokKind::Punct, "}" | ")" | "]") => depth -= 1,
            (TokKind::Punct, ",") if depth == 1 => expect_name = true,
            (TokKind::Ident, v) if depth == 1 && expect_name => {
                variants.push(v.to_string());
                expect_name = false;
            }
            _ => {}
        }
        i += 1;
    }
    Some(variants)
}

/// Extracts the `pub` field names of `struct <name>`, in declaration order.
pub fn struct_pub_fields(lx: &Lexed, name: &str) -> Option<Vec<String>> {
    let t = &lx.toks;
    let start = (0..t.len()).find(|&i| {
        lx.is_ident(i, "struct") && lx.is_ident(i + 1, name) && lx.is_punct(i + 2, '{')
    })?;
    let mut fields = Vec::new();
    let mut depth = 1usize;
    let mut i = start + 3;
    while i < t.len() && depth > 0 {
        match (t[i].kind, t[i].text.as_str()) {
            (TokKind::Punct, "{" | "(" | "[" | "<") => depth += 1,
            (TokKind::Punct, "}" | ")" | "]" | ">") => depth -= 1,
            (TokKind::Ident, "pub")
                if depth == 1
                    && t.get(i + 1).map(|x| x.kind) == Some(TokKind::Ident)
                    && lx.is_punct(i + 2, ':') =>
            {
                fields.push(t[i + 1].text.clone());
            }
            _ => {}
        }
        i += 1;
    }
    Some(fields)
}

/// True when `Enum :: Variant` appears anywhere in the token stream.
pub fn references_variant(lx: &Lexed, enum_name: &str, variant: &str) -> bool {
    let t = &lx.toks;
    (0..t.len()).any(|i| {
        lx.is_ident(i, enum_name)
            && lx.is_punct(i + 1, ':')
            && lx.is_punct(i + 2, ':')
            && lx.is_ident(i + 3, variant)
    })
}

/// Collects every `"ev":"<name>"` event name written by the JSONL
/// renderer (the names live inside Rust string literals as escaped
/// `\"ev\":\"name\"` sequences).
pub fn trace_event_names(lx: &Lexed) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for tok in &lx.toks {
        if tok.kind != TokKind::Str {
            continue;
        }
        let s = &tok.text;
        let mut from = 0usize;
        while let Some(pos) = s[from..].find("\\\"ev\\\":\\\"") {
            let start = from + pos + "\\\"ev\\\":\\\"".len();
            let end = s[start..].find('\\').map(|e| start + e).unwrap_or(s.len());
            if start < end {
                names.insert(s[start..end].to_string());
            }
            from = end;
        }
    }
    names
}

/// Parses the `events = {"a", "b", …}` allowlist out of the CI workflow's
/// embedded python validator.
pub fn ci_event_names(yml: &str) -> Option<BTreeSet<String>> {
    let start = yml.find("events = {")? + "events = {".len();
    let end = start + yml[start..].find('}')?;
    let mut names = BTreeSet::new();
    let body = &yml[start..end];
    let mut rest = body;
    while let Some(q) = rest.find('"') {
        let after = &rest[q + 1..];
        let close = after.find('"')?;
        names.insert(after[..close].to_string());
        rest = &after[close + 1..];
    }
    Some(names)
}

/// Collects every `\"name\":` field name written by a hand-rolled JSONL
/// renderer (the names live inside Rust string literals as escaped
/// `\"name\":` sequences, like the trace event tags).
pub fn jsonl_field_names(lx: &Lexed) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for tok in &lx.toks {
        if tok.kind != TokKind::Str {
            continue;
        }
        let s = &tok.text;
        let mut from = 0usize;
        while let Some(pos) = s[from..].find("\\\"") {
            let start = from + pos + 2;
            let Some(endq) = s[start..].find("\\\"") else {
                break;
            };
            let name = &s[start..start + endq];
            let after = start + endq + 2;
            if s[after..].starts_with(':')
                && !name.is_empty()
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                names.insert(name.to_string());
            }
            from = start;
        }
    }
    names
}

/// Paths (workspace-relative) the consistency checks read.
pub const INPUTS: &[&str] = &[
    "crates/types/src/unit.rs",
    "crates/sim/src/metrics.rs",
    "crates/obs/src/trace.rs",
    "crates/sim/src/engine.rs",
    "crates/core/src/output.rs",
    ".github/workflows/ci.yml",
    "crates/obs/src/attribution.rs",
    "crates/obs/src/forensics.rs",
];

/// Runs every cross-file check from the workspace root.
pub fn check(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut sources = Vec::new();
    for rel in INPUTS {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(s) => sources.push(s),
            Err(e) => {
                out.push(Finding::new(
                    rel,
                    0,
                    "consistency",
                    format!("cannot read consistency input: {e} — if the file moved, update crates/lint/src/consistency.rs"),
                ));
                return out;
            }
        }
    }
    let [unit_src, metrics_src, trace_src, engine_src, output_src, ci_src, attribution_src, forensics_src] =
        &sources[..]
    else {
        unreachable!("sources has INPUTS.len() elements");
    };
    check_sources(
        unit_src,
        metrics_src,
        trace_src,
        engine_src,
        output_src,
        ci_src,
        attribution_src,
        forensics_src,
        &mut out,
    );
    out
}

/// The file-content core of [`check`], separated for fixture tests.
#[allow(clippy::too_many_arguments)]
pub fn check_sources(
    unit_src: &str,
    metrics_src: &str,
    trace_src: &str,
    engine_src: &str,
    output_src: &str,
    ci_src: &str,
    attribution_src: &str,
    forensics_src: &str,
    out: &mut Vec<Finding>,
) {
    let unit = lex(unit_src);
    let metrics = lex(metrics_src);
    let trace = lex(trace_src);
    let engine = lex(engine_src);
    let output = lex(output_src);
    let attribution = lex(attribution_src);
    let forensics = lex(forensics_src);

    // DropReason exhaustiveness across the breakdown and the renderers.
    match enum_variants(&unit, "DropReason") {
        None => out.push(Finding::new(
            "crates/types/src/unit.rs",
            0,
            "consistency",
            "enum DropReason not found".to_string(),
        )),
        Some(variants) => {
            for (file, lexed, role) in [
                (
                    "crates/sim/src/metrics.rs",
                    &metrics,
                    "DropBreakdown::count",
                ),
                (
                    "crates/obs/src/trace.rs",
                    &trace,
                    "reason_str (feeds both trace renderers)",
                ),
                (
                    "crates/obs/src/forensics.rs",
                    &forensics,
                    "reason_ord/REASONS (the root-cause table key)",
                ),
            ] {
                for v in &variants {
                    if !references_variant(lexed, "DropReason", v) {
                        out.push(Finding::new(
                            file,
                            0,
                            "consistency",
                            format!("DropReason::{v} is not handled here ({role})"),
                        ));
                    }
                }
            }
        }
    }

    // Trace event-name set ≡ the CI trace-smoke allowlist.
    let emitted = trace_event_names(&trace);
    if emitted.is_empty() {
        out.push(Finding::new(
            "crates/obs/src/trace.rs",
            0,
            "consistency",
            "no \"ev\" event names found in the JSONL renderer".to_string(),
        ));
    }
    match ci_event_names(ci_src) {
        None => out.push(Finding::new(
            ".github/workflows/ci.yml",
            0,
            "consistency",
            "trace-smoke `events = {...}` allowlist not found".to_string(),
        )),
        Some(allowed) => {
            for missing in emitted.difference(&allowed) {
                out.push(Finding::new(
                    ".github/workflows/ci.yml",
                    0,
                    "consistency",
                    format!("trace event \"{missing}\" is emitted by Trace::to_jsonl but absent from the CI allowlist"),
                ));
            }
            for extra in allowed.difference(&emitted) {
                out.push(Finding::new(
                    ".github/workflows/ci.yml",
                    0,
                    "consistency",
                    format!(
                        "CI allowlists trace event \"{extra}\" that Trace::to_jsonl never emits"
                    ),
                ));
            }
        }
    }

    // Every EventKind variant must be referenced beyond its declaration.
    match enum_variants(&engine, "EventKind") {
        None => out.push(Finding::new(
            "crates/sim/src/engine.rs",
            0,
            "consistency",
            "enum EventKind not found".to_string(),
        )),
        Some(variants) => {
            for v in &variants {
                if !references_variant(&engine, "EventKind", v) {
                    out.push(Finding::new(
                        "crates/sim/src/engine.rs",
                        0,
                        "consistency",
                        format!("EventKind::{v} is declared but never scheduled or matched"),
                    ));
                }
            }
        }
    }

    // Struct fields ≡ named header-constant columns, in order, for every
    // (file, struct, header const) artifact schema pair.
    for (file, lexed, struct_name, header_name) in [
        (
            "crates/core/src/output.rs",
            &output,
            "FigureRow",
            "CSV_HEADER",
        ),
        (
            "crates/obs/src/attribution.rs",
            &attribution,
            "ChannelHotspot",
            "HOTSPOT_HEADER",
        ),
        (
            "crates/obs/src/forensics.rs",
            &forensics,
            "DropRecord",
            "FORENSICS_HEADER",
        ),
        (
            "crates/obs/src/forensics.rs",
            &forensics,
            "RootCauseRow",
            "ROOTCAUSE_HEADER",
        ),
    ] {
        let fields = struct_pub_fields(lexed, struct_name);
        let header = const_str(lexed, header_name);
        match (fields, header) {
            (Some(fields), Some(header)) => {
                let cols: Vec<String> = header.split(',').map(str::to_string).collect();
                if fields != cols {
                    out.push(Finding::new(
                        file,
                        0,
                        "consistency",
                        format!(
                            "{struct_name} fields {fields:?} do not match {header_name} columns {cols:?}"
                        ),
                    ));
                }
            }
            _ => out.push(Finding::new(
                file,
                0,
                "consistency",
                format!("{struct_name} struct or {header_name} not found"),
            )),
        }
    }

    // The hand-written JSONL renderers must emit exactly the header
    // columns as field names: attribution's renderers cover
    // HOTSPOT_HEADER, forensics' two renderers cover the union of
    // FORENSICS_HEADER and ROOTCAUSE_HEADER.
    for (file, lexed, header_names) in [
        (
            "crates/obs/src/attribution.rs",
            &attribution,
            &["HOTSPOT_HEADER"][..],
        ),
        (
            "crates/obs/src/forensics.rs",
            &forensics,
            &["FORENSICS_HEADER", "ROOTCAUSE_HEADER"][..],
        ),
    ] {
        let mut want = BTreeSet::new();
        for h in header_names {
            if let Some(header) = const_str(lexed, h) {
                want.extend(header.split(',').map(str::to_string));
            }
        }
        if want.is_empty() {
            // Already reported above as a missing header constant.
            continue;
        }
        let written = jsonl_field_names(lexed);
        for missing in want.difference(&written) {
            out.push(Finding::new(
                file,
                0,
                "consistency",
                format!("header column \"{missing}\" is never written by the JSONL renderer"),
            ));
        }
        for extra in written.difference(&want) {
            out.push(Finding::new(
                file,
                0,
                "consistency",
                format!("JSONL renderer writes field \"{extra}\" that no header declares"),
            ));
        }
    }
}

/// The string literal assigned to `const <name>`.
fn const_str(lx: &Lexed, name: &str) -> Option<String> {
    let t = &lx.toks;
    let i = (0..t.len()).find(|&i| lx.is_ident(i, name))?;
    t[i..]
        .iter()
        .find(|tok| tok.kind == TokKind::Str)
        .map(|tok| tok.text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_variants_with_payloads() {
        let lx = lex("pub enum E { A, B { x: u32, y: Vec<(u8, u8)> }, C(usize), D }");
        assert_eq!(
            enum_variants(&lx, "E").expect("enum parsed"),
            vec!["A", "B", "C", "D"]
        );
        assert!(enum_variants(&lx, "F").is_none());
    }

    #[test]
    fn struct_fields_in_order() {
        let lx = lex("pub struct R { pub a: String, pub b: f64, c: u64, pub d: Option<f64> }");
        assert_eq!(
            struct_pub_fields(&lx, "R").expect("struct parsed"),
            vec!["a", "b", "d"],
            "non-pub fields are not CSV columns"
        );
    }

    #[test]
    fn variant_references() {
        let lx = lex("match r { E::A => 1, E::B => 2 }");
        assert!(references_variant(&lx, "E", "A"));
        assert!(!references_variant(&lx, "E", "C"));
    }

    #[test]
    fn trace_names_from_escaped_literals() {
        let lx = lex(
            r#"fn f() { write!(out, "\"ev\":\"arrival\",\"x\":{}", 1); g("{\"ev\":\"path\",\"nodes\":["); }"#,
        );
        let names = trace_event_names(&lx);
        assert_eq!(
            names.into_iter().collect::<Vec<_>>(),
            vec!["arrival", "path"]
        );
    }

    #[test]
    fn ci_events_parse() {
        let yml = "x\n events = {\"a\", \"b\",\n   \"c\"}\n rest";
        let names = ci_event_names(yml).expect("allowlist found");
        assert_eq!(names.into_iter().collect::<Vec<_>>(), vec!["a", "b", "c"]);
    }

    #[test]
    fn jsonl_names_from_escaped_literals() {
        let lx = lex(
            r#"fn f() { write!(out, "{{\"t_us\":{},\"channel\":", 1); w(",\"count\":{}}}"); g("\"{col}\":"); }"#,
        );
        let names = jsonl_field_names(&lx);
        assert_eq!(
            names.into_iter().collect::<Vec<_>>(),
            vec!["channel", "count", "t_us"],
            "interpolated-name probes like \\\"{{col}}\\\": must not count"
        );
    }

    /// A consistent set of fixture sources; each drift case below breaks
    /// exactly one of them.
    fn fixtures() -> [&'static str; 8] {
        let unit = "pub enum DropReason { Expired, Lost }";
        let metrics =
            "fn c(r: DropReason) { match r { DropReason::Expired => {}, DropReason::Lost => {} } }";
        let trace = r#"fn r(x: DropReason) -> &'static str { match x { DropReason::Expired => "expired", DropReason::Lost => "lost" } }
                       fn j() { w("\"ev\":\"drop\""); w("{\"ev\":\"path\""); }"#;
        let engine = "enum EventKind { Poll } fn f() { let e = EventKind::Poll; }";
        let output =
            "pub struct FigureRow { pub a: u32, pub b: u32 } pub const CSV_HEADER: &str = \"a,b\";";
        let ci = "events = {\"drop\", \"path\"}";
        let attribution = r#"pub const HOTSPOT_HEADER: &str = "channel,score";
            pub struct ChannelHotspot { pub channel: u32, pub score: f64 }
            fn j() { w("{\"channel\":{},\"score\":{:.6}}"); }"#;
        let forensics = r#"pub const FORENSICS_HEADER: &str = "t_us,reason";
            pub const ROOTCAUSE_HEADER: &str = "reason,count";
            pub struct DropRecord { pub t_us: u64, pub reason: DropReason }
            pub struct RootCauseRow { pub reason: &'static str, pub count: u64 }
            fn o(r: DropReason) -> u8 { match r { DropReason::Expired => 0, DropReason::Lost => 1 } }
            fn j() { w("{\"t_us\":{},\"reason\":\"{}\"}"); w("{\"reason\":\"{}\",\"count\":{}}"); }"#;
        [
            unit,
            metrics,
            trace,
            engine,
            output,
            ci,
            attribution,
            forensics,
        ]
    }

    fn run_check(srcs: &[&str; 8]) -> Vec<Finding> {
        let mut out = Vec::new();
        check_sources(
            srcs[0], srcs[1], srcs[2], srcs[3], srcs[4], srcs[5], srcs[6], srcs[7], &mut out,
        );
        out
    }

    #[test]
    fn check_sources_cross_validates() {
        let good = fixtures();
        assert!(run_check(&good).is_empty(), "{:?}", run_check(&good));

        // Remove a match arm → exactly that variant is reported.
        let mut bad = good;
        bad[1] = "fn c(r: DropReason) { match r { DropReason::Expired => {}, _ => {} } }";
        let out = run_check(&bad);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("DropReason::Lost"), "{out:?}");

        // Drift the CI allowlist → the phantom event is reported.
        let mut bad = good;
        bad[5] = "events = {\"drop\", \"path\", \"ghost\"}";
        let out = run_check(&bad);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("ghost"));

        // CSV header drift.
        let mut bad = good;
        bad[4] =
            "pub struct FigureRow { pub a: u32, pub b: u32 } pub const CSV_HEADER: &str = \"a\";";
        let out = run_check(&bad);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("CSV_HEADER"), "{out:?}");
    }

    #[test]
    fn check_sources_catches_obs_artifact_drift() {
        let good = fixtures();

        // Hotspot header gains a column the struct and renderer lack.
        let mut bad = good;
        bad[6] = r#"pub const HOTSPOT_HEADER: &str = "channel,score,ghost";
            pub struct ChannelHotspot { pub channel: u32, pub score: f64 }
            fn j() { w("{\"channel\":{},\"score\":{:.6}}"); }"#;
        let out = run_check(&bad);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("HOTSPOT_HEADER"), "{out:?}");
        assert!(out[1].message.contains("never written"), "{out:?}");

        // Forensics renderer writes a field no header declares.
        let mut bad = good;
        bad[7] = r#"pub const FORENSICS_HEADER: &str = "t_us,reason";
            pub const ROOTCAUSE_HEADER: &str = "reason,count";
            pub struct DropRecord { pub t_us: u64, pub reason: DropReason }
            pub struct RootCauseRow { pub reason: &'static str, pub count: u64 }
            fn o(r: DropReason) -> u8 { match r { DropReason::Expired => 0, DropReason::Lost => 1 } }
            fn j() { w("{\"t_us\":{},\"reason\":\"{}\",\"stray\":1}"); w("{\"reason\":\"{}\",\"count\":{}}"); }"#;
        let out = run_check(&bad);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("stray"), "{out:?}");

        // The root-cause key stops covering a DropReason variant.
        let mut bad = good;
        bad[7] = r#"pub const FORENSICS_HEADER: &str = "t_us,reason";
            pub const ROOTCAUSE_HEADER: &str = "reason,count";
            pub struct DropRecord { pub t_us: u64, pub reason: DropReason }
            pub struct RootCauseRow { pub reason: &'static str, pub count: u64 }
            fn o(r: DropReason) -> u8 { match r { DropReason::Expired => 0, _ => 1 } }
            fn j() { w("{\"t_us\":{},\"reason\":\"{}\"}"); w("{\"reason\":\"{}\",\"count\":{}}"); }"#;
        let out = run_check(&bad);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("DropReason::Lost"), "{out:?}");
    }
}
