//! A minimal Rust lexer: just enough structure for token-window lint rules.
//!
//! The environment is offline and `vendor/` carries no `syn`, so spider-lint
//! does not parse Rust — it tokenizes. Comments and string/char literals are
//! lifted out of the token stream (so a hazard pattern quoted in a string or
//! doc comment never fires), but both are retained on the side: comments feed
//! the `// lint: allow(...)` pragma lookup, and string literals feed the
//! cross-file consistency checks (trace event names, CSV headers).

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// One punctuation character (`::` is two `:` tokens).
    Punct,
    /// String literal (`"…"`, `r"…"`, `b"…"`, `r#"…"#`); text is the body
    /// without quotes, escapes left as written.
    Str,
    /// Character literal (`'x'`, `'\n'`).
    Char,
    /// Lifetime (`'a`); text is the name without the tick.
    Lifetime,
    /// Numeric literal.
    Num,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what is stripped).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment (line or block), kept out of the token stream.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Body without the `//` / `/* */` markers.
    pub text: String,
}

/// A tokenized source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order, comments and whitespace removed.
    pub toks: Vec<Tok>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// The token at `i`, if in range.
    pub fn tok(&self, i: usize) -> Option<&Tok> {
        self.toks.get(i)
    }

    /// True when token `i` is an identifier with exactly this text.
    pub fn is_ident(&self, i: usize, text: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
    }

    /// True when token `i` is the punctuation character `c`.
    pub fn is_punct(&self, i: usize, c: char) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text.len() == 1 && t.text.starts_with(c))
    }
}

/// Tokenizes `src`. Unterminated constructs are closed at end of input
/// rather than reported: the lint runs over code the compiler already
/// accepted, so error recovery is not worth structure.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = b.len();
    macro_rules! bump_lines {
        ($slice:expr) => {
            line += $slice.iter().filter(|&&c| c == b'\n').count() as u32
        };
    }
    while i < n {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && b[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..j].to_string(),
                });
                i = j;
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1u32;
                let mut j = start;
                while j < n && depth > 0 {
                    if b[j] == b'/' && j + 1 < n && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < n && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        if b[j] == b'\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: start_line,
                    text: src[start..end].to_string(),
                });
                i = j;
            }
            b'"' => {
                let (body_end, next) = scan_string(b, i + 1);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: src[i + 1..body_end].to_string(),
                    line,
                });
                bump_lines!(&b[i..next]);
                i = next;
            }
            b'r' | b'b' if is_literal_prefix(b, i) && !prev_is_ident_char(b, i) => {
                let (tok, next) = scan_prefixed_literal(src, b, i, line);
                bump_lines!(&b[i..next]);
                out.toks.push(tok);
                i = next;
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                if i + 1 < n && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_') {
                    let mut j = i + 1;
                    while j < n && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    if j < n && b[j] == b'\'' && j == i + 2 {
                        // 'x' — a one-character char literal.
                        out.toks.push(Tok {
                            kind: TokKind::Char,
                            text: src[i + 1..j].to_string(),
                            line,
                        });
                        i = j + 1;
                    } else {
                        out.toks.push(Tok {
                            kind: TokKind::Lifetime,
                            text: src[i + 1..j].to_string(),
                            line,
                        });
                        i = j;
                    }
                } else {
                    // Escaped or punctuation char literal: scan to the
                    // closing quote, honoring one backslash escape.
                    let mut j = i + 1;
                    if j < n && b[j] == b'\\' {
                        j += 2;
                    } else {
                        j += 1;
                    }
                    while j < n && b[j] != b'\'' {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: src[i + 1..j.min(n)].to_string(),
                        line,
                    });
                    i = (j + 1).min(n);
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut j = i + 1;
                while j < n && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < n
                    && (b[j].is_ascii_alphanumeric()
                        || b[j] == b'_'
                        || (b[j] == b'.' && j + 1 < n && b[j + 1].is_ascii_digit()))
                {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: src[i..i + 1].to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Scans a plain `"` string body starting at `from` (past the opening
/// quote); returns (body end, index past the closing quote).
fn scan_string(b: &[u8], from: usize) -> (usize, usize) {
    let mut j = from;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return (j, j + 1),
            _ => j += 1,
        }
    }
    (b.len(), b.len())
}

/// True when position `i` starts `r"`, `r#`, `b"`, `b'`, `br"` or `br#`.
fn is_literal_prefix(b: &[u8], i: usize) -> bool {
    let n = b.len();
    match b[i] {
        b'r' => i + 1 < n && (b[i + 1] == b'"' || b[i + 1] == b'#'),
        b'b' => {
            i + 1 < n
                && (b[i + 1] == b'"'
                    || b[i + 1] == b'\''
                    || (b[i + 1] == b'r' && i + 2 < n && (b[i + 2] == b'"' || b[i + 2] == b'#')))
        }
        _ => false,
    }
}

/// True when the byte before `i` can extend an identifier (so `hr"x"` is
/// the identifier `hr` followed by a string, not a raw-string prefix).
fn prev_is_ident_char(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// Scans a raw/byte string or byte char starting at its prefix letter.
fn scan_prefixed_literal(src: &str, b: &[u8], i: usize, line: u32) -> (Tok, usize) {
    let n = b.len();
    let mut j = i;
    while j < n && (b[j] == b'r' || b[j] == b'b') {
        j += 1;
    }
    let raw = src[i..j].contains('r');
    if j < n && b[j] == b'\'' {
        // b'x' byte char.
        let mut k = j + 1;
        if k < n && b[k] == b'\\' {
            k += 2;
        } else {
            k += 1;
        }
        while k < n && b[k] != b'\'' {
            k += 1;
        }
        return (
            Tok {
                kind: TokKind::Char,
                text: src[j + 1..k.min(n)].to_string(),
                line,
            },
            (k + 1).min(n),
        );
    }
    let mut hashes = 0usize;
    while raw && j < n && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || b[j] != b'"' {
        // Not actually a literal (e.g. `r#raw_ident`); emit as ident.
        let mut k = i;
        while k < n && (b[k].is_ascii_alphanumeric() || b[k] == b'_' || b[k] == b'#') {
            k += 1;
        }
        return (
            Tok {
                kind: TokKind::Ident,
                text: src[i..k].to_string(),
                line,
            },
            k.max(i + 1),
        );
    }
    let body_start = j + 1;
    let mut k = body_start;
    if raw {
        let closer: Vec<u8> = std::iter::once(b'"')
            .chain(std::iter::repeat_n(b'#', hashes))
            .collect();
        while k < n && !b[k..].starts_with(&closer) {
            k += 1;
        }
        let end = k;
        (
            Tok {
                kind: TokKind::Str,
                text: src[body_start..end].to_string(),
                line,
            },
            (k + closer.len()).min(n),
        )
    } else {
        let (end, next) = scan_string(b, body_start);
        (
            Tok {
                kind: TokKind::Str,
                text: src[body_start..end].to_string(),
                line,
            },
            next,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let l = lex("let x = a.b();\nfoo!");
        assert_eq!(
            l.toks.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(),
            vec!["let", "x", "=", "a", ".", "b", "(", ")", ";", "foo", "!"]
        );
        assert_eq!(l.toks[0].line, 1);
        assert_eq!(l.toks[9].line, 2);
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let l = lex("a // lint: allow(x): y\n/* block\nstill */ b");
        assert_eq!(l.toks.len(), 2);
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].text, " lint: allow(x): y");
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn strings_hide_their_contents_from_the_token_stream() {
        let l = lex(r#"f("a.unwrap() \" inner", r#inner)"#);
        assert!(l.toks.iter().all(|t| t.text != "unwrap"));
        assert_eq!(l.toks[2].kind, TokKind::Str);
        assert_eq!(l.toks[2].text, "a.unwrap() \\\" inner");
    }

    #[test]
    fn raw_and_byte_strings() {
        let l = lex("r#\"raw \" body\"# b\"bytes\" br#\"both\"#");
        let strs: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["raw \" body", "bytes", "both"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, vec!["x", "\\n"]);
    }

    #[test]
    fn numbers_lex_as_one_token() {
        assert_eq!(texts("1_000.5f64 0xFF"), vec!["1_000.5f64", "0xFF"]);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* x /* y */ z */ b");
        assert_eq!(l.toks.len(), 2);
        assert_eq!(l.comments[0].text, " x /* y */ z ");
    }
}
