//! Per-file determinism-hazard rules (token-window analyses).
//!
//! Every rule here guards an invariant the determinism goldens depend on:
//!
//! * [`unordered-iter`] — iterating a `HashMap`/`HashSet` observes hash
//!   order, which `RandomState` re-seeds per process; any reduction or
//!   side effect over that order is run-to-run nondeterministic. Allowed
//!   when a sort (or a `BTreeMap`/`BTreeSet`/`BinaryHeap` collect) follows
//!   in the same token window, or under an explicit pragma.
//! * [`float-accum`] — the same hazard, sharpened: an f64 `sum`/`fold`
//!   over hash order differs not just in order but in *value* (float
//!   addition is not associative).
//! * [`wall-clock`] — `Instant::now`/`SystemTime` anywhere outside
//!   `crates/obs` and `crates/bench` leaks wall time into simulation
//!   state.
//! * [`non-det-rng`] — any randomness source other than `DetRng`
//!   (`thread_rng`, `OsRng`, entropy seeding…) breaks seed-replayability.
//! * [`generic-derive`] — `#[derive(Serialize/Deserialize)]` on a generic
//!   type, which the vendored serde shim cannot expand; flagging it here
//!   turns a late opaque compile error into an immediate message.
//!
//! Suppression: `// lint: allow(<rule>): <reason>` on the flagged line or
//! in the comment block directly above it. The reason is mandatory — an
//! empty one is itself a finding ([`bad-pragma`]).

use crate::lexer::{Lexed, TokKind};
use crate::Finding;

/// Tokens scanned past a flagged iteration site looking for a sort.
const SORT_WINDOW: usize = 80;

/// Rule identifiers, also the names accepted by `allow(...)` pragmas.
pub const RULES: &[&str] = &[
    "unordered-iter",
    "float-accum",
    "wall-clock",
    "non-det-rng",
    "generic-derive",
];

/// Everything the per-file rules need to know about one source file.
pub struct FileContext<'a> {
    /// Workspace-relative path, `/`-separated (drives the per-crate
    /// allowlists for `wall-clock` and `non-det-rng`).
    pub rel_path: &'a str,
    /// The tokenized source.
    pub lexed: &'a Lexed,
}

impl FileContext<'_> {
    /// First line of the file's `#[cfg(test)]` region, if any. By this
    /// workspace's convention test modules sit at the bottom of the file,
    /// so everything at or past this line is treated as test code.
    fn test_start_line(&self) -> Option<u32> {
        let t = &self.lexed.toks;
        (0..t.len()).find_map(|i| {
            (self.lexed.is_punct(i, '#')
                && self.lexed.is_punct(i + 1, '[')
                && self.lexed.is_ident(i + 2, "cfg")
                && self.lexed.is_punct(i + 3, '(')
                && self.lexed.is_ident(i + 4, "test"))
            .then(|| t[i].line)
        })
    }

    /// True when `line` is suppressed for `rule` by a pragma on the same
    /// line or anywhere in the contiguous comment block directly above it.
    fn allowed(&self, line: u32, rule: &str) -> bool {
        let matches =
            |l: u32| {
                self.lexed.comments.iter().filter(|c| c.line == l).any(|c| {
                    parse_pragma(&c.text).is_some_and(|(r, why)| r == rule && !why.is_empty())
                })
            };
        if matches(line) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 && self.lexed.comments.iter().any(|c| c.line == l) {
            if matches(l) {
                return true;
            }
            l -= 1;
        }
        false
    }
}

/// Parses `lint: allow(<rule>): <reason>` out of a comment body.
/// Returns `(rule, reason)`; reason may be empty (the caller flags that).
pub fn parse_pragma(comment: &str) -> Option<(&str, &str)> {
    let rest = comment.trim().strip_prefix("lint:")?.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim();
    let reason = rest[close + 1..].trim_start_matches(':').trim();
    Some((rule, reason))
}

/// Runs every per-file rule over one file.
pub fn check_file(cx: &FileContext<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    let test_start = cx.test_start_line().unwrap_or(u32::MAX);
    check_pragmas(cx, &mut out);
    check_unordered_iter(cx, test_start, &mut out);
    check_wall_clock(cx, test_start, &mut out);
    check_rng(cx, test_start, &mut out);
    check_generic_derive(cx, &mut out);
    out
}

/// Flags malformed pragmas: a missing reason, or an unknown rule name
/// (which would otherwise silently suppress nothing).
fn check_pragmas(cx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for c in &cx.lexed.comments {
        let Some((rule, why)) = parse_pragma(&c.text) else {
            continue;
        };
        if !RULES.contains(&rule) {
            out.push(Finding::new(
                cx.rel_path,
                c.line,
                "bad-pragma",
                format!(
                    "allow({rule}) names no known rule (known: {})",
                    RULES.join(", ")
                ),
            ));
        } else if why.is_empty() {
            out.push(Finding::new(
                cx.rel_path,
                c.line,
                "bad-pragma",
                format!("allow({rule}) needs a reason: `// lint: allow({rule}): <why>`"),
            ));
        }
    }
}

/// Names declared in this file as `HashMap`/`HashSet` bindings, fields or
/// parameters. Token patterns handled (optionally through `std ::
/// collections ::` path prefixes):
///
/// * `name: HashMap<…>` / `name: &HashMap<…>` / `name: &mut HashSet<…>`
/// * `name = HashMap::new()` (also `with_capacity`, `default`, `from`)
fn hash_collection_names(lx: &Lexed) -> Vec<String> {
    let t = &lx.toks;
    let mut names = Vec::new();
    for i in 0..t.len() {
        if !(lx.is_ident(i, "HashMap") || lx.is_ident(i, "HashSet")) {
            continue;
        }
        // Walk back over a `path ::` qualification chain.
        let mut j = i;
        while j >= 3
            && lx.is_punct(j - 1, ':')
            && lx.is_punct(j - 2, ':')
            && t[j - 3].kind == TokKind::Ident
        {
            j -= 3;
        }
        // `name :` (skipping `&` / `&mut`).
        let mut k = j;
        while k >= 1 && (lx.is_punct(k - 1, '&') || lx.is_ident(k - 1, "mut")) {
            k -= 1;
        }
        let name = if k >= 2 && lx.is_punct(k - 1, ':') && t[k - 2].kind == TokKind::Ident {
            Some(&t[k - 2].text)
        } else if j >= 2 && lx.is_punct(j - 1, '=') && t[j - 2].kind == TokKind::Ident {
            // `name = HashMap::…`.
            Some(&t[j - 2].text)
        } else {
            None
        };
        if let Some(n) = name {
            if !names.contains(n) {
                names.push(n.clone());
            }
        }
    }
    names
}

/// Iterator adapters that observe hash order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// The `unordered-iter` / `float-accum` rule pair.
fn check_unordered_iter(cx: &FileContext<'_>, test_start: u32, out: &mut Vec<Finding>) {
    let lx = cx.lexed;
    let t = &lx.toks;
    let names = hash_collection_names(lx);
    if names.is_empty() {
        return;
    }
    let flag = |i: usize, name: &str, recv_line: u32, out: &mut Vec<Finding>| {
        let line = t[i].line;
        if line >= test_start {
            return;
        }
        // Forward window: an explicit sort (or re-keying into an ordered
        // collection) makes the iteration order immaterial.
        let window = &t[i..(i + SORT_WINDOW).min(t.len())];
        let sorted = window.iter().any(|w| {
            w.kind == TokKind::Ident
                && (w.text.starts_with("sort")
                    || w.text == "BTreeMap"
                    || w.text == "BTreeSet"
                    || w.text == "BinaryHeap")
        });
        if sorted {
            return;
        }
        // Backward window: `name.sort*(…)` just above means `name` is a
        // sorted local shadowing the hash binding (collect-sort-reduce).
        let back = &t[i.saturating_sub(SORT_WINDOW)..i];
        let presorted = back.windows(3).any(|w| {
            w[0].kind == TokKind::Ident
                && w[0].text == name
                && w[1].kind == TokKind::Punct
                && w[1].text == "."
                && w[2].kind == TokKind::Ident
                && w[2].text.starts_with("sort")
        });
        if presorted {
            return;
        }
        let summed = window
            .iter()
            .any(|w| w.kind == TokKind::Ident && (w.text == "sum" || w.text == "fold"));
        let (rule, msg) = if summed {
            (
                "float-accum",
                format!(
                    "accumulation over hash-ordered `{name}` — float sums differ across runs; \
                     sort the entries first"
                ),
            )
        } else {
            (
                "unordered-iter",
                format!(
                    "iteration over hash-ordered `{name}` with no following sort — order is \
                     not deterministic across runs"
                ),
            )
        };
        // The pragma may anchor to the method token's line or, in a
        // multi-line chain, to the receiver's line.
        if !cx.allowed(line, rule) && !cx.allowed(recv_line, rule) {
            out.push(Finding::new(cx.rel_path, line, rule, msg));
        }
    };
    for i in 0..t.len() {
        // `name . iter ( …`, also through `self . name . iter`.
        if t[i].kind == TokKind::Ident
            && ITER_METHODS.contains(&t[i].text.as_str())
            && i >= 2
            && lx.is_punct(i - 1, '.')
            && t[i - 2].kind == TokKind::Ident
            && lx.is_punct(i + 1, '(')
            && names.contains(&t[i - 2].text)
        {
            flag(i, &t[i - 2].text.clone(), t[i - 2].line, out);
        }
        // `for pat in &name {` / `for pat in &mut self.name {`. A plain
        // by-value `for x in name {` is NOT flagged: hash fields cannot
        // be moved out of `self`, so that form is a shadowing local
        // (typically the sorted Vec built just above).
        if lx.is_ident(i, "in") {
            let mut j = i + 1;
            let mut borrowed = false;
            while lx.is_punct(j, '&') || lx.is_ident(j, "mut") {
                borrowed = true;
                j += 1;
            }
            if lx.is_ident(j, "self") && lx.is_punct(j + 1, '.') {
                borrowed = true;
                j += 2;
            }
            if borrowed
                && j < t.len()
                && t[j].kind == TokKind::Ident
                && names.contains(&t[j].text)
                && lx.is_punct(j + 1, '{')
            {
                flag(j, &t[j].text.clone(), t[j].line, out);
            }
        }
    }
}

/// The `wall-clock` rule: simulation logic must never read real time.
fn check_wall_clock(cx: &FileContext<'_>, test_start: u32, out: &mut Vec<Finding>) {
    if cx.rel_path.starts_with("crates/obs/") || cx.rel_path.starts_with("crates/bench/") {
        return;
    }
    let lx = cx.lexed;
    for (i, tok) in lx.toks.iter().enumerate() {
        if tok.kind != TokKind::Ident || tok.line >= test_start {
            continue;
        }
        let hit = match tok.text.as_str() {
            "Instant" => {
                lx.is_punct(i + 1, ':') && lx.is_punct(i + 2, ':') && lx.is_ident(i + 3, "now")
            }
            "SystemTime" => true,
            _ => false,
        };
        if hit && !cx.allowed(tok.line, "wall-clock") {
            out.push(Finding::new(
                cx.rel_path,
                tok.line,
                "wall-clock",
                format!(
                    "`{}` outside crates/obs and crates/bench — simulated time only \
                     (use SimTime / the engine clock)",
                    tok.text
                ),
            ));
        }
    }
}

/// Randomness sources that are banned everywhere.
const BANNED_RNG: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "from_entropy",
    "getrandom",
];

/// The `non-det-rng` rule: `DetRng` is the only legal randomness source.
/// `SmallRng`/`StdRng` may appear only inside `DetRng`'s own
/// implementation (`crates/types/src/rng.rs`).
fn check_rng(cx: &FileContext<'_>, test_start: u32, out: &mut Vec<Finding>) {
    let lx = cx.lexed;
    let in_detrng_impl = cx.rel_path == "crates/types/src/rng.rs";
    for tok in &lx.toks {
        if tok.kind != TokKind::Ident || tok.line >= test_start {
            continue;
        }
        let banned = BANNED_RNG.contains(&tok.text.as_str())
            || (!in_detrng_impl && (tok.text == "SmallRng" || tok.text == "StdRng"));
        if banned && !cx.allowed(tok.line, "non-det-rng") {
            out.push(Finding::new(
                cx.rel_path,
                tok.line,
                "non-det-rng",
                format!(
                    "`{}` is not seed-deterministic — draw from a forked DetRng instead",
                    tok.text
                ),
            ));
        }
    }
}

/// The `generic-derive` rule: the vendored serde shim expands derives for
/// concrete types only; a generic parameter in the type header makes the
/// derive fail to compile later, far from the cause.
fn check_generic_derive(cx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let lx = cx.lexed;
    let t = &lx.toks;
    let mut i = 0;
    while i < t.len() {
        // `# [ derive ( … ) ]` mentioning Serialize/Deserialize.
        if !(lx.is_punct(i, '#') && lx.is_punct(i + 1, '[') && lx.is_ident(i + 2, "derive")) {
            i += 1;
            continue;
        }
        let mut j = i + 3;
        let mut depth = 0usize;
        let mut serde_derive = false;
        while j < t.len() {
            if lx.is_punct(j, '(') {
                depth += 1;
            } else if lx.is_punct(j, ')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if lx.is_ident(j, "Serialize") || lx.is_ident(j, "Deserialize") {
                serde_derive = true;
            }
            j += 1;
        }
        if !serde_derive {
            i = j;
            continue;
        }
        // Skip the closing `]` and any further attributes to the item.
        let mut k = j + 2;
        while lx.is_punct(k, '#') && lx.is_punct(k + 1, '[') {
            let mut d = 0usize;
            k += 1;
            while k < t.len() {
                if lx.is_punct(k, '[') {
                    d += 1;
                } else if lx.is_punct(k, ']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        }
        while lx.is_ident(k, "pub") {
            k += 1;
            if lx.is_punct(k, '(') {
                while k < t.len() && !lx.is_punct(k, ')') {
                    k += 1;
                }
                k += 1;
            }
        }
        if (lx.is_ident(k, "struct") || lx.is_ident(k, "enum")) && lx.is_punct(k + 2, '<') {
            // Generic header: any non-lifetime parameter is fatal for the
            // shim (lifetimes alone are fine).
            let name = t[k + 1].text.clone();
            let line = t[k].line;
            let mut g = k + 3;
            let mut depth = 1usize;
            let mut generic_param = false;
            let mut at_param_start = true;
            while g < t.len() && depth > 0 {
                if lx.is_punct(g, '<') {
                    depth += 1;
                } else if lx.is_punct(g, '>') {
                    depth -= 1;
                } else if depth == 1 && lx.is_punct(g, ',') {
                    at_param_start = true;
                    g += 1;
                    continue;
                } else if at_param_start && depth == 1 {
                    if t[g].kind == TokKind::Ident || lx.is_ident(g, "const") {
                        generic_param = true;
                    }
                    at_param_start = false;
                }
                g += 1;
            }
            if generic_param && !cx.allowed(line, "generic-derive") {
                out.push(Finding::new(
                    cx.rel_path,
                    line,
                    "generic-derive",
                    format!(
                        "#[derive(Serialize/Deserialize)] on generic `{name}` — the vendored \
                         serde shim cannot expand generic derives; implement the traits \
                         manually or monomorphize the type"
                    ),
                ));
            }
        }
        i = k + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        check_file(&FileContext {
            rel_path: path,
            lexed: &lexed,
        })
    }

    #[test]
    fn pragma_parses() {
        assert_eq!(
            parse_pragma(" lint: allow(unordered-iter): callers sort"),
            Some(("unordered-iter", "callers sort"))
        );
        assert_eq!(parse_pragma(" lint: allow(x)"), Some(("x", "")));
        assert_eq!(parse_pragma(" ordinary comment"), None);
    }

    #[test]
    fn sort_then_reduce_over_shadowing_local_is_exempt() {
        // collect-sort-reduce: the local `m` shadows the hash field name,
        // and the sort just above proves the reduction order is fixed.
        let src = "struct S { m: HashMap<u32, f64> }\n\
                   fn f(s: &S) -> f64 {\n\
                     let mut m: Vec<_> = s.m.iter().collect();\n\
                     m.sort_unstable_by_key(|(&k, _)| k);\n\
                     m.iter().map(|(_, v)| **v).sum()\n\
                   }\n";
        assert!(findings("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn pragma_in_comment_block_above_multiline_chain_applies() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   impl S {\n\
                     fn f(&self) -> Vec<u32> {\n\
                       // lint: allow(unordered-iter): audited — consumers\n\
                       // compare as sets, never positionally.\n\
                       self.m\n\
                         .keys()\n\
                         .copied()\n\
                         .collect()\n\
                     }\n\
                   }\n";
        assert!(
            findings("crates/x/src/a.rs", src).is_empty(),
            "{:?}",
            findings("crates/x/src/a.rs", src)
        );
    }

    #[test]
    fn sorted_iteration_is_exempt() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &S) -> Vec<u32> {\n\
                     let mut v: Vec<u32> = s.m.keys().copied().collect();\n\
                     v.sort_unstable();\n\
                     v\n\
                   }\n";
        assert!(findings("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn unsorted_iteration_is_flagged() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &S) -> Vec<u32> { s.m.keys().copied().collect() }\n";
        let f = findings("crates/x/src/a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unordered-iter");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn float_sum_is_its_own_rule() {
        let src = "struct S { m: HashMap<u32, f64> }\n\
                   fn f(s: &S) -> f64 { s.m.values().sum() }\n";
        let f = findings("crates/x/src/a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "float-accum");
    }

    #[test]
    fn test_module_code_is_skipped() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                     fn f(s: &super::S) -> usize { s.m.keys().count() }\n\
                   }\n";
        assert!(findings("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_allowed_only_in_obs_and_bench() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(findings("crates/sim/src/a.rs", src).len(), 1);
        assert!(findings("crates/obs/src/a.rs", src).is_empty());
        assert!(findings("crates/bench/src/bin/a.rs", src).is_empty());
    }

    #[test]
    fn rng_sources_are_flagged_outside_detrng() {
        let src = "fn f() { let r = SmallRng::seed_from_u64(1); }";
        assert_eq!(findings("crates/sim/src/a.rs", src)[0].rule, "non-det-rng");
        assert!(findings("crates/types/src/rng.rs", src).is_empty());
    }

    #[test]
    fn generic_derive_flags_type_params_not_lifetimes() {
        let generic = "#[derive(Debug, Serialize)]\npub struct Foo<T> { x: T }";
        assert_eq!(
            findings("crates/x/src/a.rs", generic)[0].rule,
            "generic-derive"
        );
        let lifetime = "#[derive(Serialize)]\nstruct Foo<'a> { x: &'a str }";
        assert!(findings("crates/x/src/a.rs", lifetime).is_empty());
        let concrete = "#[derive(Serialize, Deserialize)]\nstruct Foo { x: u32 }";
        assert!(findings("crates/x/src/a.rs", concrete).is_empty());
        let non_serde = "#[derive(Debug, Clone)]\nstruct Foo<T> { x: T }";
        assert!(findings("crates/x/src/a.rs", non_serde).is_empty());
    }

    #[test]
    fn pragma_suppresses_and_requires_reason() {
        let base = "struct S { m: HashMap<u32, u32> }\n";
        let allowed = format!(
            "{base}// lint: allow(unordered-iter): consumed as a set downstream\n\
             fn f(s: &S) -> Vec<u32> {{ s.m.keys().copied().collect() }}\n"
        );
        assert!(findings("crates/x/src/a.rs", &allowed).is_empty());
        let bare = format!(
            "{base}// lint: allow(unordered-iter)\n\
             fn f(s: &S) -> Vec<u32> {{ s.m.keys().copied().collect() }}\n"
        );
        let f = findings("crates/x/src/a.rs", &bare);
        assert!(f.iter().any(|x| x.rule == "bad-pragma"), "{f:?}");
        assert!(f.iter().any(|x| x.rule == "unordered-iter"), "{f:?}");
    }

    #[test]
    fn unknown_pragma_rule_is_flagged() {
        let f = findings("crates/x/src/a.rs", "// lint: allow(no-such-rule): x\n");
        assert_eq!(f[0].rule, "bad-pragma");
    }

    #[test]
    fn qualified_and_assigned_declarations_are_tracked() {
        let src = "fn f() {\n\
                   let mut g = std::collections::HashMap::new();\n\
                   g.insert(1, 2);\n\
                   for (k, v) in &g { drop((k, v)); }\n\
                   }\n";
        let f = findings("crates/x/src/a.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
    }
}
