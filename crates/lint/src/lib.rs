//! spider-lint: repo-specific static analysis for the Spider workspace.
//!
//! Everything this reproduction reports — the §5 protocol figures, the
//! churn/fault sweeps, the `BENCH_engine.json` trajectory — rests on
//! bit-exact determinism, pinned by goldens but guarded *statically* by
//! nothing. spider-lint closes that gap with four rule families over a
//! lightweight token stream (no external parser; the environment is
//! offline):
//!
//! 1. **Determinism hazards** ([`rules`]): unordered `HashMap`/`HashSet`
//!    iteration, wall-clock reads outside obs/bench, non-`DetRng`
//!    randomness, float accumulation over hash order.
//! 2. **Panic-site ratchet** ([`ratchet`]): per-crate
//!    unwrap/expect/panic/index counts against a committed
//!    `baseline.toml`; new sites fail, removals tighten via
//!    `--update-baseline`.
//! 3. **Cross-file consistency** ([`consistency`]): `DropReason` and
//!    `EventKind` exhaustiveness, trace event names vs the CI allowlist,
//!    `FigureRow` vs `CSV_HEADER`.
//! 4. **Vendored-shim guard** ([`rules`]): serde derives on generic
//!    types, which the vendored shim cannot expand.
//!
//! Run as `cargo run -p spider-lint -- --check` (CI does) or
//! `-- --update-baseline` after deliberately removing panic sites.

pub mod consistency;
pub mod lexer;
pub mod ratchet;
pub mod rules;

use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line (0 for file-level findings).
    pub line: u32,
    /// Rule identifier.
    pub rule: String,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// Builds a finding.
    pub fn new(file: &str, line: u32, rule: &str, message: String) -> Self {
        Finding {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            message,
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )
        } else {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.message)
        }
    }
}

/// Runs the per-file rules over one source string (fixture-test entry
/// point; `rel_path` drives the path-based allowlists).
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    rules::check_file(&rules::FileContext {
        rel_path,
        lexed: &lexed,
    })
}

/// Locates the workspace root by ascending from `start` until a
/// `Cargo.toml` declaring `[workspace]` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Lists every lintable source file under `crates/*/src`, sorted, as
/// `(crate_name, workspace_relative_path)`. `vendor/`, `target/` and the
/// lint fixtures are never visited.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs(&src, &mut files)?;
        files.sort();
        for f in files {
            let rel = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((name.clone(), rel));
        }
    }
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Result of a full workspace check.
pub struct CheckResult {
    /// All rule findings (determinism, consistency, pragma misuse).
    pub findings: Vec<Finding>,
    /// Current per-crate panic-site counts.
    pub counts: ratchet::CrateCounts,
    /// Ratchet comparison against the committed baseline.
    pub ratchet: ratchet::RatchetReport,
    /// The committed baseline (for the summary table).
    pub baseline: ratchet::CrateCounts,
}

impl CheckResult {
    /// True when the tree lints clean.
    pub fn ok(&self) -> bool {
        self.findings.is_empty() && self.ratchet.ok()
    }
}

/// Workspace-relative path of the ratchet baseline.
pub const BASELINE_PATH: &str = "crates/lint/baseline.toml";

/// Runs the full check from the workspace root.
pub fn run_check(root: &Path) -> Result<CheckResult, String> {
    let mut findings = Vec::new();
    let mut counts = ratchet::CrateCounts::new();
    let sources =
        workspace_sources(root).map_err(|e| format!("scanning workspace sources: {e}"))?;
    for (crate_name, rel) in &sources {
        let src = std::fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel}: {e}"))?;
        let lexed = lexer::lex(&src);
        findings.extend(rules::check_file(&rules::FileContext {
            rel_path: rel,
            lexed: &lexed,
        }));
        ratchet::accumulate(&mut counts, crate_name, ratchet::count_file(&lexed));
    }
    findings.extend(consistency::check(root));
    let baseline = match std::fs::read_to_string(root.join(BASELINE_PATH)) {
        Ok(text) => ratchet::parse_baseline(&text)?,
        Err(_) => {
            findings.push(Finding::new(
                BASELINE_PATH,
                0,
                "panic-ratchet",
                "baseline missing — create it with `cargo run -p spider-lint -- --update-baseline`"
                    .to_string(),
            ));
            ratchet::CrateCounts::new()
        }
    };
    let ratchet = ratchet::compare(&counts, &baseline);
    findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(CheckResult {
        findings,
        counts,
        ratchet,
        baseline,
    })
}

/// Recounts panic sites and rewrites the baseline file. Returns the
/// rendered baseline text.
pub fn update_baseline(root: &Path) -> Result<String, String> {
    let mut counts = ratchet::CrateCounts::new();
    for (crate_name, rel) in
        workspace_sources(root).map_err(|e| format!("scanning workspace sources: {e}"))?
    {
        let src = std::fs::read_to_string(root.join(&rel)).map_err(|e| format!("{rel}: {e}"))?;
        ratchet::accumulate(
            &mut counts,
            &crate_name,
            ratchet::count_file(&lexer::lex(&src)),
        );
    }
    let text = ratchet::format_baseline(&counts);
    std::fs::write(root.join(BASELINE_PATH), &text)
        .map_err(|e| format!("writing {BASELINE_PATH}: {e}"))?;
    Ok(text)
}
