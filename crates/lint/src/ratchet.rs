//! The panic-site ratchet.
//!
//! Counts `unwrap()` / `.expect()` / `panic!`-family macros / slice-index
//! expressions per crate and compares against the committed
//! `crates/lint/baseline.toml`. New sites fail the check; removed sites
//! pass but are reported so `--update-baseline` can tighten the floor.
//! `assert!`/`assert_eq!` are deliberately not counted: they state
//! invariants, the ratchet is about *incidental* panic sites.

use crate::lexer::{Lexed, TokKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Panic-site counts for one crate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// `.unwrap()` calls.
    pub unwrap: u64,
    /// `.expect(...)` calls.
    pub expect: u64,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!` invocations.
    pub panic: u64,
    /// Slice/array index expressions (`x[i]`), which panic out of bounds.
    pub index: u64,
}

impl Counts {
    /// Field access by ratchet category name.
    pub fn get(&self, key: &str) -> u64 {
        match key {
            "unwrap" => self.unwrap,
            "expect" => self.expect,
            "panic" => self.panic,
            "index" => self.index,
            _ => 0,
        }
    }

    fn add(&mut self, other: Counts) {
        self.unwrap += other.unwrap;
        self.expect += other.expect;
        self.panic += other.panic;
        self.index += other.index;
    }
}

/// The ratchet categories, in baseline/report order.
pub const CATEGORIES: &[&str] = &["unwrap", "expect", "panic", "index"];

/// Keywords that may directly precede `[` without forming an index
/// expression (`return [..]`, slice patterns, `for x in [..]`…).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "if", "else", "match", "return", "break", "as", "use", "pub", "fn",
    "for", "while", "loop", "impl", "where", "unsafe", "dyn", "const", "static", "type", "enum",
    "struct", "trait", "mod", "crate", "super", "move", "box", "yield",
];

/// Counts the panic sites in one tokenized file (test code included: the
/// ratchet tracks the whole crate, and fixture-style `unwrap()`s in tests
/// are exactly what the tightening satellite converts).
pub fn count_file(lx: &Lexed) -> Counts {
    let t = &lx.toks;
    let mut c = Counts::default();
    for i in 0..t.len() {
        match t[i].kind {
            TokKind::Ident => {
                let name = t[i].text.as_str();
                let method_call = i >= 1 && lx.is_punct(i - 1, '.') && lx.is_punct(i + 1, '(');
                match name {
                    "unwrap" if method_call => c.unwrap += 1,
                    "expect" if method_call => c.expect += 1,
                    "panic" | "unreachable" | "todo" | "unimplemented"
                        if lx.is_punct(i + 1, '!') =>
                    {
                        c.panic += 1;
                    }
                    _ => {}
                }
            }
            TokKind::Punct if t[i].text == "[" && i >= 1 => {
                let prev = &t[i - 1];
                let indexable = match prev.kind {
                    TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                    TokKind::Punct => prev.text == ")" || prev.text == "]",
                    _ => false,
                };
                if indexable {
                    c.index += 1;
                }
            }
            _ => {}
        }
    }
    c
}

/// Per-crate counts, keyed by crate directory name (`crates/<name>`).
pub type CrateCounts = BTreeMap<String, Counts>;

/// Accumulates one file's counts into its crate bucket.
pub fn accumulate(totals: &mut CrateCounts, crate_name: &str, file: Counts) {
    totals.entry(crate_name.to_string()).or_default().add(file);
}

/// Parses the baseline TOML subset: `[crate]` sections with
/// `key = integer` entries, `#` comments, blank lines. Returns an error
/// string for anything else — the file is machine-written, drift means
/// someone edited it by hand.
pub fn parse_baseline(text: &str) -> Result<CrateCounts, String> {
    let mut out = CrateCounts::new();
    let mut current: Option<String> = None;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let name = name.trim().to_string();
            out.entry(name.clone()).or_default();
            current = Some(name);
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "baseline.toml line {}: expected `key = value`",
                ln + 1
            ));
        };
        let Some(section) = current.as_ref() else {
            return Err(format!(
                "baseline.toml line {}: entry before any [crate] section",
                ln + 1
            ));
        };
        let v: u64 = value
            .trim()
            .parse()
            .map_err(|_| format!("baseline.toml line {}: non-integer value", ln + 1))?;
        let entry = out.get_mut(section).expect("section inserted above");
        match key.trim() {
            "unwrap" => entry.unwrap = v,
            "expect" => entry.expect = v,
            "panic" => entry.panic = v,
            "index" => entry.index = v,
            other => {
                return Err(format!(
                    "baseline.toml line {}: unknown category `{other}`",
                    ln + 1
                ))
            }
        }
    }
    Ok(out)
}

/// Renders counts in the exact format [`parse_baseline`] reads.
pub fn format_baseline(counts: &CrateCounts) -> String {
    let mut out = String::from(
        "# Panic-site ratchet baseline: per-crate counts of unwrap()/expect()/\n\
         # panic-family macros/slice-index sites. New sites fail `--check`;\n\
         # after removing sites, tighten with:\n\
         #   cargo run -p spider-lint -- --update-baseline\n",
    );
    for (name, c) in counts {
        let _ = write!(
            out,
            "\n[{name}]\nunwrap = {}\nexpect = {}\npanic = {}\nindex = {}\n",
            c.unwrap, c.expect, c.panic, c.index
        );
    }
    out
}

/// Outcome of comparing current counts against the baseline.
#[derive(Debug, Default)]
pub struct RatchetReport {
    /// `(crate, category, current, baseline)` where current > baseline —
    /// these fail the check.
    pub regressions: Vec<(String, &'static str, u64, u64)>,
    /// `(crate, category, current, baseline)` where current < baseline —
    /// informational; `--update-baseline` locks these in.
    pub improvements: Vec<(String, &'static str, u64, u64)>,
    /// Baseline crates that no longer exist in the tree.
    pub stale: Vec<String>,
}

impl RatchetReport {
    /// True when nothing regressed and the baseline matches the tree.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty() && self.stale.is_empty()
    }
}

/// Compares current per-crate counts against the baseline. Crates absent
/// from the baseline ratchet against zero: a brand-new crate must either
/// be panic-free or be consciously admitted via `--update-baseline`.
pub fn compare(current: &CrateCounts, baseline: &CrateCounts) -> RatchetReport {
    let mut rep = RatchetReport::default();
    for (name, cur) in current {
        let base = baseline.get(name).copied().unwrap_or_default();
        for &cat in CATEGORIES {
            let (c, b) = (cur.get(cat), base.get(cat));
            if c > b {
                rep.regressions.push((name.clone(), cat, c, b));
            } else if c < b {
                rep.improvements.push((name.clone(), cat, c, b));
            }
        }
    }
    for name in baseline.keys() {
        if !current.contains_key(name) {
            rep.stale.push(name.clone());
        }
    }
    rep
}

/// Renders the per-crate `current/baseline` summary table the CI step
/// prints, one row per crate plus a totals row.
pub fn summary_table(current: &CrateCounts, baseline: &CrateCounts) -> String {
    let mut out = String::from("panic-site ratchet (current/baseline):\n");
    let _ = writeln!(
        out,
        "  {:<12} {:>12} {:>12} {:>12} {:>12}",
        "crate", "unwrap", "expect", "panic", "index"
    );
    let mut cur_tot = Counts::default();
    let mut base_tot = Counts::default();
    for (name, cur) in current {
        let base = baseline.get(name).copied().unwrap_or_default();
        cur_tot.add(*cur);
        base_tot.add(base);
        let cell = |cat: &str| format!("{}/{}", cur.get(cat), base.get(cat));
        let _ = writeln!(
            out,
            "  {:<12} {:>12} {:>12} {:>12} {:>12}",
            name,
            cell("unwrap"),
            cell("expect"),
            cell("panic"),
            cell("index")
        );
    }
    let cell = |cat: &str| format!("{}/{}", cur_tot.get(cat), base_tot.get(cat));
    let _ = writeln!(
        out,
        "  {:<12} {:>12} {:>12} {:>12} {:>12}",
        "TOTAL",
        cell("unwrap"),
        cell("expect"),
        cell("panic"),
        cell("index")
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn counts_methods_macros_and_indexing() {
        let src = "fn f(v: Vec<u32>, m: &M) -> u32 {\n\
                   let a = v.get(0).unwrap();\n\
                   let b = m.slot(1).expect(\"slot live\");\n\
                   if *a > 3 { panic!(\"boom\") } else { unreachable!() }\n\
                   v[0] + rows[i][j] + f()[k]\n\
                   }\n";
        let c = count_file(&lex(src));
        assert_eq!(c.unwrap, 1);
        assert_eq!(c.expect, 1);
        assert_eq!(c.panic, 2);
        assert_eq!(c.index, 4, "v[0], rows[i], [i][j], f()[k]");
    }

    #[test]
    fn non_index_brackets_are_not_counted() {
        let src = "#[cfg(test)]\nfn f() { let [a, b] = xs; let v = vec![1, 2]; \
                   let t: [u8; 4] = [0; 4]; for x in [1, 2] {} }";
        let c = count_file(&lex(src));
        // `vec![` follows `!`, `[a, b]` follows `let`, types/attrs follow
        // punctuation; `xs;`-style plain idents never precede `[` here.
        assert_eq!(c.index, 0);
    }

    #[test]
    fn unwrap_or_variants_do_not_count() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_else(|| 1) }";
        let c = count_file(&lex(src));
        assert_eq!(c.unwrap, 0);
        assert_eq!(c.expect, 0);
    }

    #[test]
    fn strings_and_comments_do_not_count() {
        let src = "// has unwrap() and panic! in prose\nfn f() -> &'static str { \"x.unwrap()\" }";
        assert_eq!(count_file(&lex(src)), Counts::default());
    }

    #[test]
    fn baseline_round_trip() {
        let mut counts = CrateCounts::new();
        counts.insert(
            "sim".into(),
            Counts {
                unwrap: 3,
                expect: 14,
                panic: 2,
                index: 120,
            },
        );
        counts.insert("types".into(), Counts::default());
        let text = format_baseline(&counts);
        assert_eq!(parse_baseline(&text).expect("round trip parses"), counts);
    }

    #[test]
    fn baseline_rejects_garbage() {
        assert!(
            parse_baseline("unwrap = 3").is_err(),
            "entry before section"
        );
        assert!(parse_baseline("[sim]\nunwrap = x").is_err(), "non-integer");
        assert!(
            parse_baseline("[sim]\nwat = 3").is_err(),
            "unknown category"
        );
    }

    #[test]
    fn compare_flags_regressions_and_improvements() {
        let mut cur = CrateCounts::new();
        cur.insert(
            "a".into(),
            Counts {
                unwrap: 5,
                expect: 1,
                ..Counts::default()
            },
        );
        let mut base = CrateCounts::new();
        base.insert(
            "a".into(),
            Counts {
                unwrap: 3,
                expect: 2,
                ..Counts::default()
            },
        );
        base.insert("gone".into(), Counts::default());
        let rep = compare(&cur, &base);
        assert_eq!(rep.regressions, vec![("a".to_string(), "unwrap", 5, 3)]);
        assert_eq!(rep.improvements, vec![("a".to_string(), "expect", 1, 2)]);
        assert_eq!(rep.stale, vec!["gone".to_string()]);
        assert!(!rep.ok());
    }

    #[test]
    fn new_crate_ratchets_against_zero() {
        let mut cur = CrateCounts::new();
        cur.insert(
            "fresh".into(),
            Counts {
                unwrap: 1,
                ..Counts::default()
            },
        );
        let rep = compare(&cur, &CrateCounts::new());
        assert_eq!(rep.regressions.len(), 1);
    }
}
