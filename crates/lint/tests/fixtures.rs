//! Fixture tests for the per-file determinism rules: each seeded-bad
//! fixture must fire exactly its rule, the clean fixture must produce
//! zero findings (false-positive guard), and pragma suppression must
//! round-trip (reason present → silenced; reason missing → two findings).

use spider_lint::lint_source;

/// Path prefix that puts fixtures under the strictest rule set (inside
/// `crates/`, outside the obs/bench wall-clock allowlist and outside the
/// DetRng implementation file).
const AT: &str = "crates/sim/src/fixture.rs";

fn rules_fired(src: &str) -> Vec<String> {
    let mut rules: Vec<String> = lint_source(AT, src).into_iter().map(|f| f.rule).collect();
    rules.sort();
    rules.dedup();
    rules
}

#[test]
fn bad_unordered_fires_unordered_iter() {
    let src = include_str!("fixtures/bad_unordered.rs");
    assert_eq!(rules_fired(src), ["unordered-iter"]);
}

#[test]
fn bad_float_sum_fires_float_accum() {
    let src = include_str!("fixtures/bad_float_sum.rs");
    assert_eq!(rules_fired(src), ["float-accum"]);
}

#[test]
fn bad_wallclock_fires_wall_clock() {
    let src = include_str!("fixtures/bad_wallclock.rs");
    assert_eq!(rules_fired(src), ["wall-clock"]);
    // The same source is legal inside the instrumentation crates.
    assert!(lint_source("crates/obs/src/fixture.rs", src).is_empty());
    assert!(lint_source("crates/bench/src/bin/fixture.rs", src).is_empty());
}

#[test]
fn bad_rng_fires_non_det_rng() {
    let src = include_str!("fixtures/bad_rng.rs");
    assert_eq!(rules_fired(src), ["non-det-rng"]);
}

#[test]
fn bad_generic_derive_fires_generic_derive() {
    let src = include_str!("fixtures/bad_generic_derive.rs");
    assert_eq!(rules_fired(src), ["generic-derive"]);
}

#[test]
fn clean_fixture_has_zero_findings() {
    let src = include_str!("fixtures/clean.rs");
    let findings = lint_source(AT, src);
    assert!(findings.is_empty(), "false positives: {findings:?}");
}

#[test]
fn pragma_allow_round_trips() {
    let bad = include_str!("fixtures/bad_unordered.rs");
    assert_eq!(rules_fired(bad), ["unordered-iter"]);

    // With a reasoned pragma on the line above the hazard, it is silent.
    let allowed = bad.replace(
        "        self.entries.keys()",
        "        // lint: allow(unordered-iter): fixture — consumed as a set\n        self.entries.keys()",
    );
    assert_ne!(allowed, bad, "fixture drifted: hazard line not found");
    assert!(lint_source(AT, &allowed).is_empty());

    // Dropping the reason re-surfaces the hazard AND flags the pragma.
    let bare = bad.replace(
        "        self.entries.keys()",
        "        // lint: allow(unordered-iter)\n        self.entries.keys()",
    );
    assert_eq!(rules_fired(&bare), ["bad-pragma", "unordered-iter"]);
}
