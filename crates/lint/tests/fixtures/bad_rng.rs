//! Seeded-bad fixture: entropy-seeded randomness breaks seed replay.
pub fn jitter() -> f64 {
    let mut rng = thread_rng(); // hazard: not seed-deterministic
    rng.gen_range(0.0..1.0)
}
