//! Seeded-bad fixture: the vendored serde shim cannot expand derives on
//! generic types; the failure shows up later as an opaque compile error.
#[derive(Debug, Serialize)]
pub struct Sample<T> {
    pub at: u64,
    pub value: T,
}
