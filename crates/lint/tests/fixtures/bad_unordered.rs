//! Seeded-bad fixture: hash-ordered iteration with no following sort.
use std::collections::HashMap;

pub struct Book {
    entries: HashMap<u64, u64>,
}

impl Book {
    pub fn ids(&self) -> Vec<u64> {
        self.entries.keys().copied().collect() // hazard: hash order escapes
    }
}
