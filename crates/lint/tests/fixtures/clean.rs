//! Clean fixture: idiomatic patterns the rules must NOT flag. Every
//! construct here appears in the real tree; a finding on this file is a
//! false positive by definition.
use std::collections::{BTreeMap, HashMap};

pub struct Ledger {
    balances: HashMap<u64, f64>,
}

impl Ledger {
    /// Collect-sort-consume: hash order never escapes.
    pub fn ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.balances.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Collect-sort-reduce through a shadowing local: the sort just above
    /// the reduction fixes the accumulation order.
    pub fn total(&self) -> f64 {
        let mut balances: Vec<_> = self.balances.iter().collect();
        balances.sort_unstable_by_key(|(&k, _)| k);
        balances.iter().map(|(_, v)| **v).sum()
    }

    /// Re-keying into an ordered collection is equivalent to a sort.
    pub fn ordered(&self) -> BTreeMap<u64, f64> {
        self.balances.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Iteration whose order is audited not to matter, under a pragma
    /// with a mandatory reason.
    pub fn any_positive(&self) -> bool {
        // lint: allow(unordered-iter): audited — `any` is order-insensitive
        // and short-circuiting changes no observable state.
        self.balances.values().any(|&v| v > 0.0)
    }
}

/// Lifetime-only generics are fine for the vendored serde shim.
#[derive(Debug)]
pub struct View<'a> {
    pub slice: &'a [u64],
}

/// Concrete serde derives are what the shim expands.
#[derive(Serialize, Deserialize)]
pub struct Row {
    pub at: u64,
    pub value: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_observe_hash_order() {
        let l = Ledger {
            balances: HashMap::new(),
        };
        // Hazard rules skip test regions; the ratchet still counts them.
        let n = l.balances.keys().count();
        assert_eq!(n, 0);
    }
}
