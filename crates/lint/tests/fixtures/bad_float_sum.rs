//! Seeded-bad fixture: f64 accumulation in hash order. Float addition is
//! not associative, so the sum's *value* differs run to run.
use std::collections::HashMap;

pub struct Gauges {
    windows: HashMap<u32, f64>,
}

impl Gauges {
    pub fn total(&self) -> f64 {
        self.windows.values().sum() // hazard: hash-order reduction
    }
}
