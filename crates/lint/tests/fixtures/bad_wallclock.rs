//! Seeded-bad fixture: wall-clock reads outside crates/obs and
//! crates/bench leak real time into simulation state.
use std::time::Instant;

pub fn elapsed_ms(start: Instant) -> u128 {
    Instant::now().duration_since(start).as_millis() // hazard
}
