//! Run reports and diffs.
//!
//! Bench artifacts (`BENCH_engine.json` and friends) accumulate across
//! PRs, but nothing compared two of them: a regression in the drop mix
//! or a hotspot-set shift was invisible unless someone eyeballed the
//! JSON. This module is the pure comparison core behind the
//! `spider-report` bin: callers parse their artifacts into
//! [`RunRecord`]s (one per run/config, metrics split into *gated*
//! deterministic outcomes and *informational* wall-clock-ish numbers),
//! and [`diff_runs`] produces a [`RunDiff`] — threshold-gated metric
//! deltas, hotspot-set changes, and runs present on only one side — that
//! renders deterministically and maps onto process exit codes.
//!
//! The crate has no JSON parser; keeping the diff logic here (typed,
//! unit-tested) and the serde_json plumbing in the bin keeps the
//! dependency graph flat.

use std::fmt::Write as _;

/// One run/config from an artifact, reduced to comparable numbers.
#[derive(Debug, Clone, Default)]
pub struct RunRecord {
    /// Run key (e.g. the bench row's `config` name); diffs match on it.
    pub name: String,
    /// Deterministic outcome metrics: any above-threshold change gates.
    pub gated: Vec<(String, f64)>,
    /// Informational metrics (wall-clock rates etc.): reported, never
    /// gating.
    pub info: Vec<(String, f64)>,
    /// Hotspot channel ids (set semantics; order ignored).
    pub hotspots: Vec<u32>,
}

/// Tolerances for gated metric comparison. A delta gates only when it
/// exceeds **both** the absolute and the relative tolerance; the
/// defaults (both zero) gate on any change at all — the right bar for
/// deterministic fields.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiffThresholds {
    /// Absolute tolerance: deltas `<= abs_tol` never gate.
    pub abs_tol: f64,
    /// Relative tolerance against `|before|`: deltas within this
    /// fraction never gate.
    pub rel_tol: f64,
}

impl DiffThresholds {
    /// Whether a `before → after` change on a gated metric exceeds the
    /// thresholds. Missing sides (NaN) always gate.
    fn exceeded(&self, before: f64, after: f64) -> bool {
        if before.is_nan() || after.is_nan() {
            return true;
        }
        let delta = (after - before).abs();
        if delta <= self.abs_tol {
            return false;
        }
        delta > self.rel_tol * before.abs()
    }
}

/// One metric's change on one run. `before`/`after` are NaN when the
/// metric exists on only one side.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Run key.
    pub run: String,
    /// Metric name.
    pub metric: String,
    /// Value in the first (baseline) artifact.
    pub before: f64,
    /// Value in the second (candidate) artifact.
    pub after: f64,
}

/// Hotspot-set change on one run.
#[derive(Debug, Clone, PartialEq)]
pub struct HotspotDelta {
    /// Run key.
    pub run: String,
    /// Channels hot in the candidate but not the baseline (sorted).
    pub added: Vec<u32>,
    /// Channels hot in the baseline but not the candidate (sorted).
    pub removed: Vec<u32>,
}

/// The structured diff of two artifacts.
#[derive(Debug, Clone, Default)]
pub struct RunDiff {
    /// Runs present only in the baseline.
    pub missing_runs: Vec<String>,
    /// Runs present only in the candidate.
    pub new_runs: Vec<String>,
    /// Gated metric changes beyond the thresholds.
    pub regressions: Vec<MetricDelta>,
    /// Informational metric changes (any nonzero delta); never gate.
    pub info_changes: Vec<MetricDelta>,
    /// Hotspot-set changes.
    pub hotspot_changes: Vec<HotspotDelta>,
}

impl RunDiff {
    /// True when nothing gates: same run set, no above-threshold gated
    /// deltas, identical hotspot sets. Informational drift is allowed.
    pub fn is_clean(&self) -> bool {
        self.missing_runs.is_empty()
            && self.new_runs.is_empty()
            && self.regressions.is_empty()
            && self.hotspot_changes.is_empty()
    }

    /// Human-readable rendering, one finding per line, deterministic
    /// order (baseline run order, then metric order within a run).
    /// Empty string when there is nothing to report at all.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.missing_runs {
            writeln!(out, "GATE run only in baseline: {r}").expect("string write");
        }
        for r in &self.new_runs {
            writeln!(out, "GATE run only in candidate: {r}").expect("string write");
        }
        for d in &self.regressions {
            writeln!(
                out,
                "GATE {}: {} {}",
                d.run,
                d.metric,
                fmt_delta(d.before, d.after)
            )
            .expect("string write");
        }
        for h in &self.hotspot_changes {
            write!(out, "GATE {}: hotspots", h.run).expect("string write");
            if !h.added.is_empty() {
                write!(out, " +{:?}", h.added).expect("string write");
            }
            if !h.removed.is_empty() {
                write!(out, " -{:?}", h.removed).expect("string write");
            }
            out.push('\n');
        }
        for d in &self.info_changes {
            writeln!(
                out,
                "info {}: {} {}",
                d.run,
                d.metric,
                fmt_delta(d.before, d.after)
            )
            .expect("string write");
        }
        out
    }
}

fn fmt_delta(before: f64, after: f64) -> String {
    if before.is_nan() {
        return format!("(absent) -> {after}");
    }
    if after.is_nan() {
        return format!("{before} -> (absent)");
    }
    if before == 0.0 {
        return format!("{before} -> {after}");
    }
    format!(
        "{before} -> {after} ({:+.2}%)",
        100.0 * (after - before) / before.abs()
    )
}

/// Looks up `name` in a metric list.
fn metric(list: &[(String, f64)], name: &str) -> Option<f64> {
    list.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
}

/// Diffs two artifacts. Runs are matched by [`RunRecord::name`];
/// output order follows the baseline's run order (then the candidate's
/// for new runs), so rendering is deterministic.
pub fn diff_runs(baseline: &[RunRecord], candidate: &[RunRecord], th: DiffThresholds) -> RunDiff {
    let mut diff = RunDiff::default();
    for b in baseline {
        let Some(c) = candidate.iter().find(|c| c.name == b.name) else {
            diff.missing_runs.push(b.name.clone());
            continue;
        };
        // Gated metrics: union of both sides, baseline order first.
        let mut names: Vec<&String> = b.gated.iter().map(|(n, _)| n).collect();
        for (n, _) in &c.gated {
            if !names.contains(&n) {
                names.push(n);
            }
        }
        for name in names {
            let before = metric(&b.gated, name).unwrap_or(f64::NAN);
            let after = metric(&c.gated, name).unwrap_or(f64::NAN);
            if th.exceeded(before, after) {
                diff.regressions.push(MetricDelta {
                    run: b.name.clone(),
                    metric: name.clone(),
                    before,
                    after,
                });
            }
        }
        // Informational metrics: report any drift, never gate.
        for (name, before) in &b.info {
            let after = metric(&c.info, name).unwrap_or(f64::NAN);
            if after.is_nan() || after != *before {
                diff.info_changes.push(MetricDelta {
                    run: b.name.clone(),
                    metric: name.clone(),
                    before: *before,
                    after,
                });
            }
        }
        // Hotspot sets.
        let mut bh = b.hotspots.clone();
        let mut ch = c.hotspots.clone();
        bh.sort_unstable();
        bh.dedup();
        ch.sort_unstable();
        ch.dedup();
        let added: Vec<u32> = ch.iter().copied().filter(|x| !bh.contains(x)).collect();
        let removed: Vec<u32> = bh.iter().copied().filter(|x| !ch.contains(x)).collect();
        if !added.is_empty() || !removed.is_empty() {
            diff.hotspot_changes.push(HotspotDelta {
                run: b.name.clone(),
                added,
                removed,
            });
        }
    }
    for c in candidate {
        if !baseline.iter().any(|b| b.name == c.name) {
            diff.new_runs.push(c.name.clone());
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(name: &str, gated: &[(&str, f64)], hotspots: &[u32]) -> RunRecord {
        RunRecord {
            name: name.into(),
            gated: gated.iter().map(|&(n, v)| (n.into(), v)).collect(),
            info: vec![("events_per_sec".into(), 1e6)],
            hotspots: hotspots.to_vec(),
        }
    }

    #[test]
    fn identical_runs_diff_clean_and_render_empty() {
        let a = vec![run("isp", &[("completed", 100.0)], &[1, 2])];
        let d = diff_runs(&a, &a, DiffThresholds::default());
        assert!(d.is_clean());
        assert_eq!(d.render(), "");
    }

    #[test]
    fn gated_change_fails_with_zero_tolerance() {
        let a = vec![run("isp", &[("completed", 100.0)], &[])];
        let b = vec![run("isp", &[("completed", 99.0)], &[])];
        let d = diff_runs(&a, &b, DiffThresholds::default());
        assert!(!d.is_clean());
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].metric, "completed");
        let text = d.render();
        assert!(
            text.contains("GATE isp: completed 100 -> 99 (-1.00%)"),
            "{text}"
        );
    }

    #[test]
    fn thresholds_absorb_small_deltas() {
        let a = vec![run("isp", &[("completed", 1000.0)], &[])];
        let b = vec![run("isp", &[("completed", 1004.0)], &[])];
        let th = DiffThresholds {
            abs_tol: 0.0,
            rel_tol: 0.01,
        };
        assert!(diff_runs(&a, &b, th).is_clean());
        let tight = DiffThresholds {
            abs_tol: 0.0,
            rel_tol: 0.001,
        };
        assert!(!diff_runs(&a, &b, tight).is_clean());
    }

    #[test]
    fn info_drift_reports_but_never_gates() {
        let a = vec![run("isp", &[("completed", 1.0)], &[])];
        let mut b = a.clone();
        b[0].info[0].1 = 2e6;
        let d = diff_runs(&a, &b, DiffThresholds::default());
        assert!(d.is_clean());
        assert_eq!(d.info_changes.len(), 1);
        assert!(
            d.render().starts_with("info isp: events_per_sec"),
            "{}",
            d.render()
        );
    }

    #[test]
    fn hotspot_set_changes_gate_regardless_of_order() {
        let a = vec![run("isp", &[], &[3, 1])];
        let same = vec![run("isp", &[], &[1, 3])];
        assert!(diff_runs(&a, &same, DiffThresholds::default()).is_clean());
        let b = vec![run("isp", &[], &[1, 7])];
        let d = diff_runs(&a, &b, DiffThresholds::default());
        assert!(!d.is_clean());
        assert_eq!(d.hotspot_changes[0].added, vec![7]);
        assert_eq!(d.hotspot_changes[0].removed, vec![3]);
    }

    #[test]
    fn run_set_mismatch_and_missing_metrics_gate() {
        let a = vec![
            run("isp", &[("completed", 1.0)], &[]),
            run("ripple", &[], &[]),
        ];
        let b = vec![run("isp", &[], &[]), run("ln", &[], &[])];
        let d = diff_runs(&a, &b, DiffThresholds::default());
        assert_eq!(d.missing_runs, vec!["ripple".to_string()]);
        assert_eq!(d.new_runs, vec!["ln".to_string()]);
        // "completed" exists only in the baseline's isp run: gates.
        assert_eq!(d.regressions.len(), 1);
        assert!(d.render().contains("(absent)"), "{}", d.render());
    }
}
