//! # spider-obs
//!
//! The observability layer for the Spider simulator: everything the
//! engine can tell you about a run beyond the end-of-run aggregates.
//!
//! * [`trace`] — payment-lifecycle tracing: a zero-cost-when-disabled
//!   [`TraceSink`] records a structured event for every payment
//!   transition (arrival → route decision → per-hop lock/queue/forward →
//!   settle/fail), ordered by a deterministic event sequence number so
//!   traces are golden-testable, and emitted as JSONL or Chrome
//!   `trace_event` JSON for chrome://tracing.
//! * [`hist`] — fixed-bucket log-scale [`Histogram`]s for latency,
//!   queue-delay, path-length, and AIMD-window distributions.
//! * [`sampler`] — a unified time-series [`Sampler`] registry: one
//!   cadence, one output schema ([`SampleSet`]) for every per-second
//!   series the engine probes (imbalance, queue occupancy, in-flight
//!   units, calendar occupancy, AIMD window sum, mean channel price).
//! * [`profile`] — monotonic-clock [`Profiler`] timing the engine's
//!   phases (calendar pop, routing, forwarding, settlement, churn
//!   repair, sampling) into [`ProfileStats`].
//! * [`attribution`] — per-channel hotspot accumulators (utilization /
//!   starvation / imbalance integrals, queue residency, drop and
//!   bottleneck counts) reduced into a deterministic top-K
//!   [`ChannelHotspot`] table.
//! * [`forensics`] — a bounded [`FlightRecorder`] ring of structured
//!   per-drop records plus an exact reason×channel root-cause table.
//! * [`report`] — the artifact-diff core behind the `spider-report`
//!   bin: [`RunRecord`]s in, a threshold-gated [`RunDiff`] out.
//!
//! The crate depends only on `spider-types`; the engine owns the
//! integration points. Everything here is deterministic except the
//! profiler's wall-clock durations, which never feed back into the
//! simulation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attribution;
pub mod forensics;
pub mod hist;
pub mod profile;
pub mod report;
pub mod sampler;
pub mod trace;

pub use attribution::{
    ChannelAttribution, ChannelHotspot, ChannelSample, HOTSPOT_HEADER, HOTSPOT_K,
};
pub use forensics::{DropRecord, FlightRecorder, RootCauseRow, FORENSICS_HEADER, ROOTCAUSE_HEADER};
pub use hist::Histogram;
pub use profile::{Phase, PhaseStats, ProfileStats, Profiler};
pub use report::{DiffThresholds, HotspotDelta, MetricDelta, RunDiff, RunRecord};
pub use sampler::{SampleSeries, SampleSet, Sampler, SamplerConfig, NUM_SERIES, SERIES_NAMES};
pub use trace::{Trace, TraceEvent, TraceEventKind, TraceSink};
