//! Per-channel hotspot attribution.
//!
//! Spider's throughput claims are about *specific* channels: the paper's
//! routing schemes win or lose at the handful of imbalanced or
//! capacity-starved links where queues build and drops concentrate.
//! [`ChannelAttribution`] keeps one accumulator row per channel — fed
//! from the engine's lock/forward/settle/drop paths and advanced on the
//! sampler cadence — and reduces them into a deterministic top-K
//! [`ChannelHotspot`] table at the end of a run:
//!
//! * **utilization integral** — mean fraction of capacity locked
//!   in-flight over observed time,
//! * **time at zero liquidity** — seconds with either direction fully
//!   depleted (the starvation signal §5's prices react to),
//! * **imbalance integral** — mean `|imbalance| / capacity`,
//! * **queue residency** — total seconds units spent queued at the
//!   channel,
//! * **drop count** — drops whose failing hop was this channel,
//! * **bottleneck count** — delivered paths whose minimum post-settle
//!   availability was this channel (ties break to the lowest id).
//!
//! Everything is indexed by dense channel id, iterated in index order,
//! and sorted with explicit tie-breaks — no hash-order escape — so the
//! hotspot table is golden-testable like every other artifact.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Hotspot rows kept in `SimReport` (the reduction's K).
pub const HOTSPOT_K: usize = 8;

/// Column names of the hotspot table, in [`ChannelHotspot`] field order.
/// Spider-lint cross-checks this against the struct fields and the JSONL
/// renderer below.
pub const HOTSPOT_HEADER: &str =
    "channel,util_frac,zero_liquidity_s,imbalance_frac,queue_residency_s,drops,bottlenecks,score";

/// One channel's state at an integration step, computed by the engine
/// (the obs crate never sees `ChannelState` itself).
#[derive(Debug, Clone, Copy)]
pub struct ChannelSample {
    /// Closed channels contribute nothing to the integrals.
    pub closed: bool,
    /// Fraction of capacity currently locked in-flight, in `[0, 1]`.
    pub util_frac: f64,
    /// True when either direction has zero available balance.
    pub at_zero: bool,
    /// `|imbalance| / capacity`, in `[0, 1]`.
    pub imbalance_frac: f64,
}

/// One row of the end-of-run hotspot table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelHotspot {
    /// Dense channel id.
    pub channel: u32,
    /// Mean in-flight utilization over observed time, `[0, 1]`.
    pub util_frac: f64,
    /// Seconds spent with either direction at zero available balance.
    pub zero_liquidity_s: f64,
    /// Mean `|imbalance| / capacity` over observed time, `[0, 1]`.
    pub imbalance_frac: f64,
    /// Total seconds units spent queued at this channel.
    pub queue_residency_s: f64,
    /// Drops whose failing hop was this channel.
    pub drops: u64,
    /// Delivered paths for which this channel was the binding constraint.
    pub bottlenecks: u64,
    /// Ranking score (see [`ChannelAttribution::finish`]).
    pub score: f64,
}

/// Per-channel accumulators, one slot per dense channel id.
#[derive(Debug, Clone)]
pub struct ChannelAttribution {
    last_t_s: f64,
    util_integral_s: Vec<f64>,
    zero_liquidity_s: Vec<f64>,
    imbalance_integral_s: Vec<f64>,
    queue_residency_s: Vec<f64>,
    drops: Vec<u64>,
    bottlenecks: Vec<u64>,
}

impl ChannelAttribution {
    /// Accumulators for `n` channels, all zero, clock at t=0.
    pub fn new(n: usize) -> Self {
        ChannelAttribution {
            last_t_s: 0.0,
            util_integral_s: vec![0.0; n],
            zero_liquidity_s: vec![0.0; n],
            imbalance_integral_s: vec![0.0; n],
            queue_residency_s: vec![0.0; n],
            drops: vec![0; n],
            bottlenecks: vec![0; n],
        }
    }

    /// Channel slots tracked.
    pub fn len(&self) -> usize {
        self.drops.len()
    }

    /// True when tracking zero channels.
    pub fn is_empty(&self) -> bool {
        self.drops.is_empty()
    }

    /// Advances the time integrals over `[last_t, now_s]` using one
    /// sample per channel, in dense-id order. Steps with non-positive
    /// `dt` (same-instant re-entry) are no-ops.
    pub fn integrate(&mut self, now_s: f64, samples: impl Iterator<Item = ChannelSample>) {
        let dt = now_s - self.last_t_s;
        if dt <= 0.0 {
            return;
        }
        self.last_t_s = now_s;
        for (i, s) in samples.enumerate() {
            if s.closed || i >= self.util_integral_s.len() {
                continue;
            }
            self.util_integral_s[i] += s.util_frac * dt;
            if s.at_zero {
                self.zero_liquidity_s[i] += dt;
            }
            self.imbalance_integral_s[i] += s.imbalance_frac * dt;
        }
    }

    /// Charges `secs` of queue residency to `channel`.
    #[inline]
    pub fn queue_wait(&mut self, channel: usize, secs: f64) {
        self.queue_residency_s[channel] += secs;
    }

    /// Counts a drop whose failing hop was `channel`.
    #[inline]
    pub fn drop_at(&mut self, channel: usize) {
        self.drops[channel] += 1;
    }

    /// Counts a delivered path whose binding constraint was `channel`.
    #[inline]
    pub fn bottleneck(&mut self, channel: usize) {
        self.bottlenecks[channel] += 1;
    }

    /// Reduces the accumulators into at most `k` hotspot rows, sorted by
    /// descending score with ascending channel id as the tie-break, and
    /// dropping channels that never registered any signal.
    ///
    /// The score weighs each channel's *share* of the run's pathologies:
    /// drops and delivered-path bottlenecks dominate (weight 2 — they
    /// witness actual payment outcomes), queue residency share and
    /// starvation-time fraction follow (weight 1), and mean imbalance is
    /// a weak tie-signal (weight 0.5).
    pub fn finish(&self, k: usize) -> Vec<ChannelHotspot> {
        let elapsed = self.last_t_s.max(f64::MIN_POSITIVE);
        let total_drops = self.drops.iter().sum::<u64>().max(1) as f64;
        let total_bn = self.bottlenecks.iter().sum::<u64>().max(1) as f64;
        let total_qr = self
            .queue_residency_s
            .iter()
            .sum::<f64>()
            .max(f64::MIN_POSITIVE);
        let mut rows: Vec<ChannelHotspot> = (0..self.drops.len())
            .map(|i| {
                let util_frac = self.util_integral_s[i] / elapsed;
                let zero_liquidity_s = self.zero_liquidity_s[i];
                let imbalance_frac = self.imbalance_integral_s[i] / elapsed;
                let queue_residency_s = self.queue_residency_s[i];
                let score = 2.0 * (self.drops[i] as f64 / total_drops)
                    + 2.0 * (self.bottlenecks[i] as f64 / total_bn)
                    + queue_residency_s / total_qr
                    + zero_liquidity_s / elapsed
                    + 0.5 * imbalance_frac;
                ChannelHotspot {
                    channel: i as u32,
                    util_frac,
                    zero_liquidity_s,
                    imbalance_frac,
                    queue_residency_s,
                    drops: self.drops[i],
                    bottlenecks: self.bottlenecks[i],
                    score,
                }
            })
            .filter(|h| h.score > 0.0)
            .collect();
        rows.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.channel.cmp(&b.channel))
        });
        rows.truncate(k);
        rows
    }
}

/// Renders hotspot rows as a JSON array with fixed field order matching
/// [`HOTSPOT_HEADER`], for embedding in bench artifacts.
pub fn hotspots_to_json_array(rows: &[ChannelHotspot]) -> String {
    let mut out = String::from("[");
    for (i, h) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(
            out,
            "{{\"channel\":{},\"util_frac\":{:.6},\"zero_liquidity_s\":{:.6},\
             \"imbalance_frac\":{:.6},\"queue_residency_s\":{:.6},\"drops\":{},\
             \"bottlenecks\":{},\"score\":{:.6}}}",
            h.channel,
            h.util_frac,
            h.zero_liquidity_s,
            h.imbalance_frac,
            h.queue_residency_s,
            h.drops,
            h.bottlenecks,
            h.score
        )
        .expect("string write");
    }
    out.push(']');
    out
}

/// Renders hotspot rows as JSONL, one object per line, same field order
/// as [`hotspots_to_json_array`].
pub fn hotspots_to_jsonl(rows: &[ChannelHotspot]) -> String {
    let mut out = String::new();
    for h in rows {
        let obj = hotspots_to_json_array(std::slice::from_ref(h));
        // Strip the array brackets: each line is the bare object.
        out.push_str(&obj[1..obj.len() - 1]);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(util: f64, zero: bool, imb: f64) -> ChannelSample {
        ChannelSample {
            closed: false,
            util_frac: util,
            at_zero: zero,
            imbalance_frac: imb,
        }
    }

    #[test]
    fn integrals_accumulate_over_time() {
        let mut a = ChannelAttribution::new(2);
        a.integrate(
            1.0,
            [sample(0.5, true, 0.2), sample(0.0, false, 0.0)].into_iter(),
        );
        a.integrate(
            3.0,
            [sample(1.0, false, 0.4), sample(0.0, false, 0.0)].into_iter(),
        );
        let rows = a.finish(8);
        assert_eq!(rows.len(), 1, "idle channel filtered: {rows:?}");
        let h = &rows[0];
        assert_eq!(h.channel, 0);
        // (0.5*1 + 1.0*2) / 3.
        assert!((h.util_frac - 2.5 / 3.0).abs() < 1e-12, "{h:?}");
        assert!((h.zero_liquidity_s - 1.0).abs() < 1e-12, "{h:?}");
        // (0.2*1 + 0.4*2) / 3.
        assert!((h.imbalance_frac - 1.0 / 3.0).abs() < 1e-12, "{h:?}");
    }

    #[test]
    fn closed_channels_and_zero_dt_are_skipped() {
        let mut a = ChannelAttribution::new(1);
        let closed = ChannelSample {
            closed: true,
            util_frac: 1.0,
            at_zero: true,
            imbalance_frac: 1.0,
        };
        a.integrate(2.0, [closed].into_iter());
        a.integrate(2.0, [sample(1.0, true, 1.0)].into_iter()); // dt == 0
        assert!(a.finish(8).is_empty());
    }

    #[test]
    fn ranking_is_deterministic_with_id_tiebreak() {
        let mut a = ChannelAttribution::new(4);
        // Channels 1 and 3 get identical signals; 2 gets a stronger one.
        a.drop_at(1);
        a.drop_at(3);
        a.drop_at(2);
        a.bottleneck(2);
        let rows = a.finish(8);
        let ids: Vec<u32> = rows.iter().map(|h| h.channel).collect();
        assert_eq!(ids, vec![2, 1, 3], "{rows:?}");
        // Truncation keeps the top of the same order.
        let top: Vec<u32> = a.finish(2).iter().map(|h| h.channel).collect();
        assert_eq!(top, vec![2, 1]);
    }

    #[test]
    fn queue_residency_counts_toward_score() {
        let mut a = ChannelAttribution::new(2);
        a.queue_wait(1, 0.75);
        a.queue_wait(1, 0.25);
        let rows = a.finish(8);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].channel, 1);
        assert!((rows[0].queue_residency_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn json_renderers_are_deterministic_and_header_shaped() {
        let mut a = ChannelAttribution::new(2);
        a.drop_at(0);
        a.bottleneck(1);
        let rows = a.finish(8);
        let arr = hotspots_to_json_array(&rows);
        assert_eq!(arr, hotspots_to_json_array(&rows), "rendering must be pure");
        assert!(arr.starts_with('[') && arr.ends_with(']'), "{arr}");
        for col in HOTSPOT_HEADER.split(',') {
            assert!(
                arr.contains(&format!("\"{col}\":")),
                "missing {col} in {arr}"
            );
        }
        let lines = hotspots_to_jsonl(&rows);
        assert_eq!(lines.lines().count(), rows.len());
        for line in lines.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn empty_attribution_renders_empty_table() {
        let a = ChannelAttribution::new(0);
        assert!(a.is_empty());
        assert!(a.finish(8).is_empty());
        assert_eq!(hotspots_to_json_array(&[]), "[]");
        assert_eq!(hotspots_to_jsonl(&[]), "");
    }
}
