//! Unified time-series sampling.
//!
//! One cadence, one schema: the engine probes every registered series at
//! the same instant (once per [`SamplerConfig::cadence`], from the poll
//! handler) and pushes one row, so all series stay index-aligned — sample
//! `i` of every series was taken at the same simulated time. This
//! replaces the ad-hoc per-metric samplers (`imbalance_series`,
//! `queue_occupancy_series`, `QueueConfig::sample_queue_depths`) that
//! each had their own plumbing.
//!
//! The registry is fixed (see [`SERIES_NAMES`]): adding a series means
//! adding a probe in the engine, not a configuration mechanism. The
//! per-channel queue-depth matrix is the one opt-in extra
//! ([`SamplerConfig::queue_depths`]) because it is O(channels) per
//! sample.

use serde::{Deserialize, Serialize};
use spider_types::SimDuration;

/// Number of registered scalar series.
pub const NUM_SERIES: usize = 6;

/// The registered series, in row order.
///
/// * `imbalance` — network-wide mean `|fwd − bwd| / capacity` in `[0, 1]`.
/// * `queue_occupancy` — total units resident in router queues.
/// * `inflight_units` — live hop-by-hop units in the slab (0 in lockstep).
/// * `calendar_events` — events pending in the calendar queue.
/// * `window_sum_xrp` — sum of live AIMD window sizes (0 for windowless
///   schemes).
/// * `mean_channel_price` — mean per-channel imbalance price component
///   over open channels (queueing mode; 0 in lockstep).
pub const SERIES_NAMES: [&str; NUM_SERIES] = [
    "imbalance",
    "queue_occupancy",
    "inflight_units",
    "calendar_events",
    "window_sum_xrp",
    "mean_channel_price",
];

/// Sampling configuration, part of the engine's `SimConfig`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// Time between samples.
    pub cadence: SimDuration,
    /// Also record the per-channel queue-depth matrix (both directions
    /// summed, indexed by channel id) every sample. Off by default: it is
    /// the only probe whose cost scales with network size.
    pub queue_depths: bool,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            cadence: SimDuration::from_secs(1),
            queue_depths: false,
        }
    }
}

/// One named series of the sample set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleSeries {
    /// Name from [`SERIES_NAMES`].
    pub name: String,
    /// One value per sampling instant.
    pub values: Vec<f64>,
}

/// Every series of one run, index-aligned on the sampling instants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleSet {
    /// Seconds between samples.
    pub cadence_s: f64,
    /// The scalar series, in [`SERIES_NAMES`] order.
    pub series: Vec<SampleSeries>,
    /// Per-channel queue depths per sample (empty unless
    /// [`SamplerConfig::queue_depths`] was set). Outer index: sample;
    /// inner index: channel id.
    pub queue_depths: Vec<Vec<u32>>,
}

impl Default for SampleSet {
    fn default() -> Self {
        SampleSet {
            cadence_s: 1.0,
            series: SERIES_NAMES
                .iter()
                .map(|&name| SampleSeries {
                    name: name.to_string(),
                    values: Vec::new(),
                })
                .collect(),
            queue_depths: Vec::new(),
        }
    }
}

impl SampleSet {
    /// The values of the series called `name`; empty for unknown names.
    pub fn series(&self, name: &str) -> &[f64] {
        self.series
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.values.as_slice())
            .unwrap_or(&[])
    }

    /// Number of sampling instants recorded.
    pub fn len(&self) -> usize {
        self.series.first().map_or(0, |s| s.values.len())
    }

    /// True when no samples were taken.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Streaming collector the engine pushes rows into.
#[derive(Debug, Clone)]
pub struct Sampler {
    cfg: SamplerConfig,
    rows: Vec<[f64; NUM_SERIES]>,
    queue_depths: Vec<Vec<u32>>,
}

impl Sampler {
    /// A sampler with the given config.
    pub fn new(cfg: SamplerConfig) -> Self {
        Sampler {
            cfg,
            rows: Vec::new(),
            queue_depths: Vec::new(),
        }
    }

    /// Time between samples.
    pub fn cadence(&self) -> SimDuration {
        self.cfg.cadence
    }

    /// Whether the engine should also collect the per-channel depth
    /// matrix this run.
    pub fn wants_queue_depths(&self) -> bool {
        self.cfg.queue_depths
    }

    /// Records one row of probes, in [`SERIES_NAMES`] order.
    pub fn push_row(&mut self, row: [f64; NUM_SERIES]) {
        self.rows.push(row);
    }

    /// Records one per-channel depth sample (call once per `push_row`
    /// when [`Sampler::wants_queue_depths`]).
    pub fn push_queue_depths(&mut self, depths: Vec<u32>) {
        self.queue_depths.push(depths);
    }

    /// Number of rows recorded so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Transposes into the report-facing [`SampleSet`].
    pub fn finish(self) -> SampleSet {
        let series = SERIES_NAMES
            .iter()
            .enumerate()
            .map(|(i, &name)| SampleSeries {
                name: name.to_string(),
                values: self.rows.iter().map(|r| r[i]).collect(),
            })
            .collect();
        SampleSet {
            cadence_s: self.cfg.cadence.as_secs_f64(),
            series,
            queue_depths: self.queue_depths,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_transpose_into_aligned_series() {
        let mut s = Sampler::new(SamplerConfig::default());
        s.push_row([0.1, 5.0, 2.0, 10.0, 40.0, 0.5]);
        s.push_row([0.2, 6.0, 3.0, 11.0, 42.0, 0.6]);
        assert_eq!(s.len(), 2);
        let set = s.finish();
        assert_eq!(set.len(), 2);
        assert_eq!(set.series("imbalance"), &[0.1, 0.2]);
        assert_eq!(set.series("queue_occupancy"), &[5.0, 6.0]);
        assert_eq!(set.series("mean_channel_price"), &[0.5, 0.6]);
        assert_eq!(set.series("nope"), &[] as &[f64]);
        assert_eq!(set.cadence_s, 1.0);
    }

    #[test]
    fn queue_depths_are_opt_in() {
        let s = Sampler::new(SamplerConfig::default());
        assert!(!s.wants_queue_depths());
        let mut s = Sampler::new(SamplerConfig {
            queue_depths: true,
            ..SamplerConfig::default()
        });
        assert!(s.wants_queue_depths());
        s.push_row([0.0; NUM_SERIES]);
        s.push_queue_depths(vec![1, 2, 3]);
        let set = s.finish();
        assert_eq!(set.queue_depths, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn default_set_has_named_empty_series() {
        let set = SampleSet::default();
        assert!(set.is_empty());
        for name in SERIES_NAMES {
            assert_eq!(set.series(name), &[] as &[f64]);
        }
    }

    #[test]
    fn serde_round_trip() {
        let mut s = Sampler::new(SamplerConfig::default());
        s.push_row([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let set = s.finish();
        let v = serde::Serialize::to_value(&set);
        let back: SampleSet = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, set);
    }
}
