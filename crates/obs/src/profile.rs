//! Engine phase profiling.
//!
//! Wall-clock timers around the engine's dispatch phases, answering
//! "where does a run spend its time" per scheme — the breakdown
//! `engine_throughput` prints next to each BENCH row. Profiling is
//! opt-in: when disabled, [`Profiler::start`] returns `None` without
//! reading the clock, so the hot loop pays one branch per event.
//!
//! The measured durations are the only non-deterministic quantity in the
//! whole observability layer; they never influence the simulation and
//! are excluded from golden tests.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The engine phases the profiler distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Popping the next event off the calendar queue.
    CalendarPop,
    /// Payment arrival processing and route computation (poll retries
    /// included: their time is dominated by `Router::route`).
    Routing,
    /// Hop-by-hop unit movement: queue/forward/deliver/timeout events.
    Forwarding,
    /// Lockstep settlement events.
    Settlement,
    /// Topology-churn application and router cache repair.
    ChurnRepair,
    /// Per-second series sampling inside the poll handler.
    Sampling,
}

/// Accumulated timing for one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Times the phase ran.
    pub count: u64,
    /// Total wall-clock nanoseconds spent in it.
    pub total_ns: u64,
}

/// Per-phase timing breakdown for one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProfileStats {
    /// Whether profiling was enabled (all-zero stats otherwise).
    pub enabled: bool,
    /// Calendar pop time.
    pub calendar_pop: PhaseStats,
    /// Routing time (arrivals + poll retries).
    pub routing: PhaseStats,
    /// Hop-by-hop forwarding time.
    pub forwarding: PhaseStats,
    /// Lockstep settlement time.
    pub settlement: PhaseStats,
    /// Churn application/repair time.
    pub churn_repair: PhaseStats,
    /// Series-sampling time.
    pub sampling: PhaseStats,
}

impl ProfileStats {
    /// Every phase with its display name, in reporting order.
    pub fn phases(&self) -> [(&'static str, PhaseStats); 6] {
        [
            ("calendar_pop", self.calendar_pop),
            ("routing", self.routing),
            ("forwarding", self.forwarding),
            ("settlement", self.settlement),
            ("churn_repair", self.churn_repair),
            ("sampling", self.sampling),
        ]
    }

    /// Total nanoseconds across all phases.
    pub fn total_ns(&self) -> u64 {
        self.phases().iter().map(|(_, s)| s.total_ns).sum()
    }

    /// One-line breakdown (`phase=ms(share%)`), for harness output.
    pub fn summary(&self) -> String {
        let total = self.total_ns().max(1) as f64;
        self.phases()
            .iter()
            .filter(|(_, s)| s.count > 0)
            .map(|(name, s)| {
                format!(
                    "{}={:.1}ms({:.0}%)",
                    name,
                    s.total_ns as f64 / 1e6,
                    100.0 * s.total_ns as f64 / total
                )
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Accumulates [`PhaseStats`] from `start`/`stop` pairs.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    enabled: bool,
    stats: ProfileStats,
}

impl Profiler {
    /// A profiler; disabled means `start` never reads the clock.
    pub fn new(enabled: bool) -> Self {
        Profiler {
            enabled,
            stats: ProfileStats {
                enabled,
                ..ProfileStats::default()
            },
        }
    }

    /// Whether timers are live.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Begins timing a phase; `None` when disabled (one branch, no clock
    /// read).
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends timing: charges the elapsed time since `start` to `phase`.
    #[inline]
    pub fn stop(&mut self, phase: Phase, t0: Option<Instant>) {
        let Some(t0) = t0 else { return };
        let ns = t0.elapsed().as_nanos() as u64;
        let s = match phase {
            Phase::CalendarPop => &mut self.stats.calendar_pop,
            Phase::Routing => &mut self.stats.routing,
            Phase::Forwarding => &mut self.stats.forwarding,
            Phase::Settlement => &mut self.stats.settlement,
            Phase::ChurnRepair => &mut self.stats.churn_repair,
            Phase::Sampling => &mut self.stats.sampling,
        };
        s.count += 1;
        s.total_ns += ns;
    }

    /// Takes the accumulated stats, leaving the profiler empty.
    pub fn finish(&mut self) -> ProfileStats {
        let enabled = self.enabled;
        let mut stats = std::mem::take(&mut self.stats);
        stats.enabled = enabled;
        self.stats.enabled = enabled;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_never_times() {
        let mut p = Profiler::new(false);
        assert!(p.start().is_none());
        p.stop(Phase::Routing, None);
        let s = p.finish();
        assert!(!s.enabled);
        assert_eq!(s.total_ns(), 0);
        assert_eq!(s.routing.count, 0);
    }

    #[test]
    fn enabled_profiler_accumulates() {
        let mut p = Profiler::new(true);
        for _ in 0..3 {
            let t0 = p.start();
            assert!(t0.is_some());
            p.stop(Phase::Forwarding, t0);
        }
        let t0 = p.start();
        p.stop(Phase::CalendarPop, t0);
        let s = p.finish();
        assert!(s.enabled);
        assert_eq!(s.forwarding.count, 3);
        assert_eq!(s.calendar_pop.count, 1);
        assert_eq!(s.routing.count, 0);
        let line = s.summary();
        assert!(line.contains("forwarding="), "{line}");
    }

    #[test]
    fn serde_round_trip() {
        let mut p = Profiler::new(true);
        let t0 = p.start();
        p.stop(Phase::Settlement, t0);
        let s = p.finish();
        let v = serde::Serialize::to_value(&s);
        let back: ProfileStats = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back.settlement.count, 1);
        assert!(back.enabled);
    }
}
