//! Drop forensics: a bounded flight recorder for failed units.
//!
//! The `DropBreakdown` in `SimReport` says *how many* units died per
//! [`DropReason`]; it cannot say *where*. [`FlightRecorder`] captures one
//! structured [`DropRecord`] per drop — payment, path, the failing hop's
//! channel (when the drop has one), both channel balances at the instant
//! of failure, and the payment's retry count so far — into a bounded
//! ring buffer, so even million-event runs pay O(capacity) memory.
//!
//! Alongside the ring it keeps an *unbounded but tiny* reason×channel
//! counter table: every drop is counted there even after the ring starts
//! evicting, so the root-cause table partitions the run's full
//! `DropBreakdown` exactly (a proptest pins this). Rendering is
//! hand-written fixed-field-order JSONL, byte-equal across runs of the
//! same seed like every other artifact.

use crate::trace::reason_str;
use spider_types::DropReason;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// Field names of a [`DropRecord`] JSONL line, in render order.
/// Spider-lint cross-checks this against the renderer below.
pub const FORENSICS_HEADER: &str =
    "t_us,payment,path,channel,bal_fwd_drops,bal_rev_drops,retries,reason";

/// Field names of a root-cause table JSONL line, in render order.
pub const ROOTCAUSE_HEADER: &str = "reason,channel,count";

/// Stable ordinal for the reason×channel table key (`BTreeMap` needs
/// `Ord`, which `DropReason` doesn't derive). Keep in `DropReason`
/// declaration order.
fn reason_ord(r: DropReason) -> u8 {
    match r {
        DropReason::QueueTimeout => 0,
        DropReason::QueueOverflow => 1,
        DropReason::Expired => 2,
        DropReason::ChannelClosed => 3,
        DropReason::MessageLost => 4,
        DropReason::HopTimeout => 5,
        DropReason::NodeCrashed => 6,
        DropReason::Shed => 7,
        DropReason::AdmissionRejected => 8,
    }
}

/// Ordinal → reason, inverse of [`reason_ord`].
const REASONS: [DropReason; 9] = [
    DropReason::QueueTimeout,
    DropReason::QueueOverflow,
    DropReason::Expired,
    DropReason::ChannelClosed,
    DropReason::MessageLost,
    DropReason::HopTimeout,
    DropReason::NodeCrashed,
    DropReason::Shed,
    DropReason::AdmissionRejected,
];

/// One drop, with everything needed to reconstruct why it happened.
#[derive(Debug, Clone, PartialEq)]
pub struct DropRecord {
    /// Simulated time of the drop, microseconds.
    pub t_us: u64,
    /// Payment the unit belonged to.
    pub payment: u64,
    /// Interned path the unit was traveling.
    pub path: u64,
    /// The failing hop's channel id. `None` for whole-path failures with
    /// no single failing hop (lockstep expiry/fault refunds, and units
    /// that had already locked their full path).
    pub channel: Option<u32>,
    /// The failing channel's forward-direction balance at failure, in
    /// drops (canonical channel orientation; 0 when `channel` is `None`).
    pub bal_fwd_drops: u64,
    /// The failing channel's backward-direction balance at failure.
    pub bal_rev_drops: u64,
    /// Route attempts the payment had made when the unit died.
    pub retries: u32,
    /// Why the unit died.
    pub reason: DropReason,
}

/// One row of the aggregated reason×channel root-cause table.
#[derive(Debug, Clone, PartialEq)]
pub struct RootCauseRow {
    /// Canonical reason spelling ([`reason_str`]).
    pub reason: &'static str,
    /// Failing channel, `None` for whole-path failures.
    pub channel: Option<u32>,
    /// Drops with this (reason, channel) pair — counts every drop of the
    /// run, not just those still in the ring.
    pub count: u64,
}

/// Bounded ring of [`DropRecord`]s plus the exact root-cause counters.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    evicted: u64,
    ring: VecDeque<DropRecord>,
    root_cause: BTreeMap<(u8, Option<u32>), u64>,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` records (the engine only
    /// constructs one when `capacity > 0`).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            evicted: 0,
            ring: VecDeque::new(),
            root_cause: BTreeMap::new(),
        }
    }

    /// Records one drop: counts it in the root-cause table and appends
    /// it to the ring, evicting the oldest record when full.
    pub fn record(&mut self, rec: DropRecord) {
        *self
            .root_cause
            .entry((reason_ord(rec.reason), rec.channel))
            .or_insert(0) += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(rec);
    }

    /// Records currently held in the ring (newest `capacity` drops).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no drop has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty() && self.evicted == 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records evicted from the ring (total drops − `len()`).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Iterates retained records oldest-first.
    pub fn records(&self) -> impl Iterator<Item = &DropRecord> {
        self.ring.iter()
    }

    /// Total drops counted for `reason` across all channels — matches
    /// the corresponding `DropBreakdown` field exactly.
    pub fn reason_total(&self, reason: DropReason) -> u64 {
        let ord = reason_ord(reason);
        self.root_cause
            .range((ord, None)..=(ord, Some(u32::MAX)))
            .map(|(_, &c)| c)
            .sum()
    }

    /// The aggregated reason×channel table, sorted by reason ordinal
    /// then channel (`None` first) — `BTreeMap` order, fully
    /// deterministic.
    pub fn root_cause_rows(&self) -> Vec<RootCauseRow> {
        self.root_cause
            .iter()
            .map(|(&(ord, channel), &count)| RootCauseRow {
                reason: reason_str(REASONS[ord as usize]),
                channel,
                count,
            })
            .collect()
    }

    /// Renders the retained records as JSONL with fixed field order
    /// matching [`FORENSICS_HEADER`].
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.ring.len() * 96);
        for r in &self.ring {
            write!(
                out,
                "{{\"t_us\":{},\"payment\":{},\"path\":{},\"channel\":",
                r.t_us, r.payment, r.path
            )
            .expect("string write");
            match r.channel {
                Some(c) => write!(out, "{c}"),
                None => write!(out, "null"),
            }
            .expect("string write");
            write!(
                out,
                ",\"bal_fwd_drops\":{},\"bal_rev_drops\":{},\"retries\":{},\"reason\":\"{}\"}}",
                r.bal_fwd_drops,
                r.bal_rev_drops,
                r.retries,
                reason_str(r.reason)
            )
            .expect("string write");
            out.push('\n');
        }
        out
    }

    /// Renders the root-cause table as JSONL with fixed field order
    /// matching [`ROOTCAUSE_HEADER`].
    pub fn root_cause_to_jsonl(&self) -> String {
        let mut out = String::new();
        for row in self.root_cause_rows() {
            write!(out, "{{\"reason\":\"{}\",\"channel\":", row.reason).expect("string write");
            match row.channel {
                Some(c) => write!(out, "{c}"),
                None => write!(out, "null"),
            }
            .expect("string write");
            write!(out, ",\"count\":{}}}", row.count).expect("string write");
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_us: u64, channel: Option<u32>, reason: DropReason) -> DropRecord {
        DropRecord {
            t_us,
            payment: 7,
            path: 3,
            channel,
            bal_fwd_drops: 1_000,
            bal_rev_drops: 2_000,
            retries: 2,
            reason,
        }
    }

    #[test]
    fn ring_is_bounded_but_counters_are_exact() {
        let mut f = FlightRecorder::new(3);
        for i in 0..10 {
            f.record(rec(i, Some(1), DropReason::QueueTimeout));
        }
        assert_eq!(f.len(), 3);
        assert_eq!(f.evicted(), 7);
        // Newest three survive, oldest-first.
        let ts: Vec<u64> = f.records().map(|r| r.t_us).collect();
        assert_eq!(ts, vec![7, 8, 9]);
        // The table still counts all ten.
        assert_eq!(f.reason_total(DropReason::QueueTimeout), 10);
        assert_eq!(f.root_cause_rows()[0].count, 10);
    }

    #[test]
    fn root_cause_table_is_sorted_and_partitions_by_reason() {
        let mut f = FlightRecorder::new(16);
        f.record(rec(0, Some(5), DropReason::HopTimeout));
        f.record(rec(1, None, DropReason::Expired));
        f.record(rec(2, Some(2), DropReason::HopTimeout));
        f.record(rec(3, Some(5), DropReason::HopTimeout));
        let rows = f.root_cause_rows();
        let keys: Vec<(&str, Option<u32>)> = rows.iter().map(|r| (r.reason, r.channel)).collect();
        assert_eq!(
            keys,
            vec![
                ("expired", None),
                ("hop_timeout", Some(2)),
                ("hop_timeout", Some(5)),
            ]
        );
        assert_eq!(f.reason_total(DropReason::HopTimeout), 3);
        assert_eq!(f.reason_total(DropReason::Expired), 1);
        assert_eq!(f.reason_total(DropReason::MessageLost), 0);
    }

    #[test]
    fn jsonl_has_fixed_fields_and_null_channels() {
        let mut f = FlightRecorder::new(4);
        f.record(rec(10, Some(9), DropReason::MessageLost));
        f.record(rec(20, None, DropReason::Expired));
        let out = f.to_jsonl();
        assert_eq!(out, f.to_jsonl(), "rendering must be pure");
        assert_eq!(out.lines().count(), 2);
        for col in FORENSICS_HEADER.split(',') {
            assert!(
                out.contains(&format!("\"{col}\":")),
                "missing {col} in {out}"
            );
        }
        assert!(out.contains("\"channel\":9"), "{out}");
        assert!(out.contains("\"channel\":null"), "{out}");
        assert!(out.contains("\"reason\":\"message_lost\""), "{out}");

        let table = f.root_cause_to_jsonl();
        for col in ROOTCAUSE_HEADER.split(',') {
            assert!(
                table.contains(&format!("\"{col}\":")),
                "missing {col} in {table}"
            );
        }
    }

    #[test]
    fn empty_recorder_renders_nothing() {
        let f = FlightRecorder::new(8);
        assert!(f.is_empty());
        assert_eq!(f.to_jsonl(), "");
        assert_eq!(f.root_cause_to_jsonl(), "");
        assert!(f.root_cause_rows().is_empty());
    }
}
