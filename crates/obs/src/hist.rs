//! Fixed-bucket log-scale histograms.
//!
//! The paper's claims are distributional (tail latency under SRPT,
//! queue-delay spread under marking), so scalar means hide exactly what
//! matters. [`Histogram`] keeps 64 power-of-two buckets spanning
//! `[1 µs, ~9.2e12 µs]` when values are seconds — wide enough for any
//! simulated quantity we record — at a fixed 64-word cost per histogram,
//! so the engine can keep several without caring about run length.

use serde::{Deserialize, Serialize};

/// Number of log2 buckets.
const BUCKETS: usize = 64;

/// Smallest resolvable value; everything below lands in bucket 0.
const FLOOR: f64 = 1e-6;

/// A fixed-size log2-bucketed histogram over non-negative `f64` samples.
///
/// Bucket `i` covers `[FLOOR * 2^i, FLOOR * 2^(i+1))`; values below
/// `FLOOR` fall into bucket 0 and values beyond the last edge clamp into
/// bucket 63. Alongside the buckets it tracks exact count/sum/min/max, so
/// means are exact and percentiles are bucket-resolution approximations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    /// Per-bucket sample counts.
    pub counts: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: f64,
    /// Smallest sample recorded (0 when empty).
    pub min: f64,
    /// Largest sample recorded (0 when empty).
    pub max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }

    /// Index of the bucket covering `v`.
    fn bucket(v: f64) -> usize {
        if v < FLOOR {
            return 0;
        }
        let i = (v / FLOOR).log2().floor();
        (i as usize).min(BUCKETS - 1)
    }

    /// Records one sample. Negative or non-finite samples are clamped
    /// into bucket 0 (they only arise from degenerate configs).
    pub fn record(&mut self, v: f64) {
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        self.counts[Self::bucket(v)] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Approximate `p`-th percentile (`p` in `[0, 100]`): the upper edge
    /// of the bucket containing the rank, clamped into `[min, max]`.
    /// `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let edge = FLOOR * 2f64.powi(i as i32 + 1);
                return Some(edge.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Folds `other` into `self`: bucket counts and exact count/sum add
    /// elementwise, min/max combine. Merging an empty histogram (on
    /// either side) is the identity, so the 0.0 min/max sentinels of an
    /// empty histogram never leak into a non-empty one. Sweep bins use
    /// this to aggregate per-config latency histograms across seeds.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Non-empty buckets as `(lower_edge, count)` pairs, for reporting.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (FLOOR * 2f64.powi(i as i32), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(50.0), None);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn records_track_exact_stats() {
        let mut h = Histogram::new();
        for v in [0.5, 1.5, 2.0, 8.0] {
            h.record(v);
        }
        assert_eq!(h.count, 4);
        assert!((h.sum - 12.0).abs() < 1e-12);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 8.0);
        assert!((h.mean().unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_is_bucket_resolution() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(0.010);
        }
        h.record(10.0);
        // p50 lands in the 10 ms bucket: its upper edge is within 2x.
        let p50 = h.percentile(50.0).unwrap();
        assert!((0.010..0.032).contains(&p50), "p50 {p50}");
        // p100 reaches the outlier's bucket and clamps to max.
        let p100 = h.percentile(100.0).unwrap();
        assert!(p100 <= 10.0 && p100 > 5.0, "p100 {p100}");
    }

    #[test]
    fn degenerate_samples_are_clamped() {
        let mut h = Histogram::new();
        h.record(-3.0);
        h.record(f64::NAN);
        h.record(0.0);
        assert_eq!(h.count, 3);
        assert_eq!(h.counts[0], 3);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 0.0);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        for v in [0.5, 1.5, 2.0, 8.0] {
            h.record(v);
        }
        let snapshot = h.clone();

        // Empty right-hand side: nothing changes, sentinels don't leak.
        h.merge(&Histogram::new());
        assert_eq!(h.counts, snapshot.counts);
        assert_eq!(h.count, snapshot.count);
        assert_eq!(h.min, snapshot.min);
        assert_eq!(h.max, snapshot.max);

        // Empty left-hand side: becomes a copy of the right-hand side.
        let mut empty = Histogram::new();
        empty.merge(&snapshot);
        assert_eq!(empty.counts, snapshot.counts);
        assert_eq!(empty.count, snapshot.count);
        assert_eq!(empty.min, snapshot.min);
        assert_eq!(empty.max, snapshot.max);
        assert!((empty.sum - snapshot.sum).abs() < 1e-12);
    }

    #[test]
    fn merge_is_commutative_and_matches_recording_everything() {
        let xs = [0.001, 0.5, 0.5, 3.0];
        let ys = [0.25, 7.0, 120.0];
        let (mut a, mut b, mut all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &v in &xs {
            a.record(v);
            all.record(v);
        }
        for &v in &ys {
            b.record(v);
            all.record(v);
        }

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for m in [&ab, &ba] {
            assert_eq!(m.counts, all.counts);
            assert_eq!(m.count, all.count);
            assert_eq!(m.min, all.min);
            assert_eq!(m.max, all.max);
            assert!((m.sum - all.sum).abs() < 1e-12);
            // Percentiles recompute from merged buckets.
            assert_eq!(m.percentile(50.0), all.percentile(50.0));
            assert_eq!(m.percentile(99.0), all.percentile(99.0));
        }
    }

    #[test]
    fn serde_round_trip() {
        let mut h = Histogram::new();
        h.record(0.25);
        h.record(4.0);
        let v = serde::Serialize::to_value(&h);
        let back: Histogram = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back.count, h.count);
        assert_eq!(back.counts, h.counts);
        assert_eq!(back.min, h.min);
        assert_eq!(back.max, h.max);
    }
}
