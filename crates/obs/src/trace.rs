//! Payment-lifecycle tracing.
//!
//! [`TraceSink`] records one structured [`TraceEvent`] per payment
//! transition: arrival, route decisions with the chosen [`PathId`]s,
//! per-hop queue/forward movement, settlement, and drops with their
//! [`DropReason`]. Events are ordered by an engine-assigned sequence
//! number (never wall clock), so two runs of the same seed produce
//! byte-identical traces — the golden-trace tests pin exactly that.
//!
//! Emission formats:
//! * **JSONL** ([`Trace::to_jsonl`]) — one event per line, hand-written
//!   with a fixed field order (stable across serde-shim changes), plus
//!   trailing `"ev":"path"` lines resolving every referenced [`PathId`]
//!   to its node list.
//! * **Chrome `trace_event`** ([`Trace::to_chrome_trace`]) — payments as
//!   complete (`"X"`) slices and drops as instant events, loadable in
//!   chrome://tracing or Perfetto.
//!
//! Storage is chunked (4096 events per slab) so long traces never
//! reallocate-and-copy the whole buffer.

use spider_types::{Amount, ChannelId, DropReason, NodeId, PathId, PaymentId};
use std::fmt::Write as _;

/// Events per storage chunk.
const CHUNK: usize = 4096;

/// What happened, with the identities involved.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// A payment entered the system.
    PaymentArrival {
        /// The payment.
        payment: PaymentId,
        /// Sender.
        src: NodeId,
        /// Receiver.
        dst: NodeId,
        /// Full payment value.
        amount: Amount,
    },
    /// The router proposed sending `amount` along `path`.
    RouteProposal {
        /// The payment being routed.
        payment: PaymentId,
        /// Attempt ordinal (0 = first attempt).
        attempt: u32,
        /// Chosen path.
        path: PathId,
        /// Proposed amount.
        amount: Amount,
    },
    /// A lockstep whole-path lock attempt finished.
    LockOutcome {
        /// The payment.
        payment: PaymentId,
        /// The path attempted.
        path: PathId,
        /// Unit value.
        amount: Amount,
        /// Whether every hop locked.
        ok: bool,
    },
    /// A hop-by-hop unit was accepted at its first hop.
    UnitInjected {
        /// The payment.
        payment: PaymentId,
        /// Engine-assigned unit trace id (stable within a run).
        unit: u64,
        /// The unit's path.
        path: PathId,
        /// Unit value.
        amount: Amount,
    },
    /// A unit joined a channel-direction queue.
    UnitEnqueued {
        /// The unit.
        unit: u64,
        /// The channel whose queue it joined.
        channel: ChannelId,
        /// Queue length after joining.
        qlen: u32,
    },
    /// A unit locked its next hop and moved on.
    UnitForwarded {
        /// The unit.
        unit: u64,
        /// The channel crossed.
        channel: ChannelId,
        /// Hop ordinal just completed (0-based).
        hop: u32,
    },
    /// A unit fully locked its path and settled end-to-end.
    UnitDelivered {
        /// The unit.
        unit: u64,
    },
    /// A lockstep unit settled after the confirmation delay.
    UnitSettled {
        /// The payment.
        payment: PaymentId,
        /// Settled value.
        amount: Amount,
    },
    /// A unit was dropped in transit.
    UnitDropped {
        /// The unit.
        unit: u64,
        /// Why.
        reason: DropReason,
    },
    /// The sender received a unit's end-to-end acknowledgement.
    UnitAcked {
        /// The payment.
        payment: PaymentId,
        /// The unit.
        unit: u64,
        /// Whether it settled.
        delivered: bool,
        /// Whether it came back price-marked.
        marked: bool,
    },
    /// A payment delivered its full value.
    PaymentCompleted {
        /// The payment.
        payment: PaymentId,
        /// Arrival-to-completion latency, microseconds.
        latency_us: u64,
    },
    /// A payment's deadline passed with value undelivered.
    PaymentExpired {
        /// The payment.
        payment: PaymentId,
        /// Undelivered remainder.
        remaining: Amount,
    },
    /// A topology-churn event changed channel state.
    TopologyChanged {
        /// Channels closed.
        closed: u32,
        /// Channels opened.
        opened: u32,
        /// Channels resized.
        resized: u32,
    },
    /// A fault-plan event toggled a node's crash state.
    FaultApplied {
        /// The node that crashed or recovered.
        node: NodeId,
        /// True on crash, false on recovery.
        crashed: bool,
    },
    /// A lockstep unit was refunded along its whole path instead of
    /// settling: the payment expired between lock and settle, or an
    /// injected fault consumed the unit.
    UnitRefunded {
        /// The payment.
        payment: PaymentId,
        /// Refunded value.
        amount: Amount,
        /// Why the unit failed.
        reason: DropReason,
    },
}

/// One trace record: when (simulated time), in what order (sequence
/// number), and what.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Deterministic record order (0-based).
    pub seq: u64,
    /// Simulated time, microseconds.
    pub t_us: u64,
    /// The event.
    pub kind: TraceEventKind,
}

/// Chunked buffer the engine records into.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    chunks: Vec<Vec<TraceEvent>>,
    len: u64,
}

impl TraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// Appends one event, assigning it the next sequence number.
    #[inline]
    pub fn record(&mut self, t_us: u64, kind: TraceEventKind) {
        if self.chunks.last().is_none_or(|c| c.len() == CHUNK) {
            self.chunks.push(Vec::with_capacity(CHUNK));
        }
        let seq = self.len;
        self.len += 1;
        self.chunks
            .last_mut()
            .expect("chunk")
            .push(TraceEvent { seq, t_us, kind });
    }

    /// Events recorded so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates events in sequence order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.chunks.iter().flatten()
    }

    /// Seals the sink into a [`Trace`]; `paths` resolves every
    /// [`PathId`] referenced by the events to its node list (the engine
    /// supplies this from its path interner).
    pub fn finish(self, paths: Vec<(u64, Vec<u32>)>) -> Trace {
        Trace {
            chunks: self.chunks,
            paths,
        }
    }
}

/// A sealed trace: the event stream plus the path-id resolution table.
#[derive(Debug, Clone)]
pub struct Trace {
    chunks: Vec<Vec<TraceEvent>>,
    /// `(path_id, node_ids)` for every path referenced by the events,
    /// sorted by id.
    pub paths: Vec<(u64, Vec<u32>)>,
}

/// Canonical wire spelling of a [`DropReason`], shared by the trace
/// renderers and the forensics flight recorder so every artifact names
/// reasons identically.
pub fn reason_str(r: DropReason) -> &'static str {
    match r {
        DropReason::QueueTimeout => "queue_timeout",
        DropReason::QueueOverflow => "queue_overflow",
        DropReason::Expired => "expired",
        DropReason::ChannelClosed => "channel_closed",
        DropReason::MessageLost => "message_lost",
        DropReason::HopTimeout => "hop_timeout",
        DropReason::NodeCrashed => "node_crashed",
        DropReason::Shed => "shed",
        DropReason::AdmissionRejected => "admission_rejected",
    }
}

impl Trace {
    /// Iterates events in sequence order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.chunks.iter().flatten()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }

    /// True when the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.chunks.iter().all(|c| c.is_empty())
    }

    /// Renders the JSONL form: one `{"seq":…}` object per line in
    /// sequence order, then one `{"ev":"path",…}` line per referenced
    /// path. Field order is fixed, so equal traces render byte-equal.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.len() * 64);
        for e in self.events() {
            write!(out, "{{\"seq\":{},\"t_us\":{},", e.seq, e.t_us).expect("string write");
            match &e.kind {
                TraceEventKind::PaymentArrival {
                    payment,
                    src,
                    dst,
                    amount,
                } => write!(
                    out,
                    "\"ev\":\"arrival\",\"payment\":{},\"src\":{},\"dst\":{},\"amount_drops\":{}",
                    payment.0,
                    src.0,
                    dst.0,
                    amount.drops()
                ),
                TraceEventKind::RouteProposal {
                    payment,
                    attempt,
                    path,
                    amount,
                } => write!(
                    out,
                    "\"ev\":\"route\",\"payment\":{},\"attempt\":{},\"path\":{},\"amount_drops\":{}",
                    payment.0,
                    attempt,
                    path.0,
                    amount.drops()
                ),
                TraceEventKind::LockOutcome {
                    payment,
                    path,
                    amount,
                    ok,
                } => write!(
                    out,
                    "\"ev\":\"lock\",\"payment\":{},\"path\":{},\"amount_drops\":{},\"ok\":{}",
                    payment.0,
                    path.0,
                    amount.drops(),
                    ok
                ),
                TraceEventKind::UnitInjected {
                    payment,
                    unit,
                    path,
                    amount,
                } => write!(
                    out,
                    "\"ev\":\"inject\",\"payment\":{},\"unit\":{},\"path\":{},\"amount_drops\":{}",
                    payment.0,
                    unit,
                    path.0,
                    amount.drops()
                ),
                TraceEventKind::UnitEnqueued {
                    unit,
                    channel,
                    qlen,
                } => write!(
                    out,
                    "\"ev\":\"enqueue\",\"unit\":{},\"channel\":{},\"qlen\":{}",
                    unit, channel.0, qlen
                ),
                TraceEventKind::UnitForwarded { unit, channel, hop } => write!(
                    out,
                    "\"ev\":\"forward\",\"unit\":{},\"channel\":{},\"hop\":{}",
                    unit, channel.0, hop
                ),
                TraceEventKind::UnitDelivered { unit } => {
                    write!(out, "\"ev\":\"deliver\",\"unit\":{unit}")
                }
                TraceEventKind::UnitSettled { payment, amount } => write!(
                    out,
                    "\"ev\":\"settle\",\"payment\":{},\"amount_drops\":{}",
                    payment.0,
                    amount.drops()
                ),
                TraceEventKind::UnitDropped { unit, reason } => write!(
                    out,
                    "\"ev\":\"drop\",\"unit\":{},\"reason\":\"{}\"",
                    unit,
                    reason_str(*reason)
                ),
                TraceEventKind::UnitAcked {
                    payment,
                    unit,
                    delivered,
                    marked,
                } => write!(
                    out,
                    "\"ev\":\"ack\",\"payment\":{},\"unit\":{},\"delivered\":{},\"marked\":{}",
                    payment.0, unit, delivered, marked
                ),
                TraceEventKind::PaymentCompleted {
                    payment,
                    latency_us,
                } => write!(
                    out,
                    "\"ev\":\"complete\",\"payment\":{},\"latency_us\":{}",
                    payment.0, latency_us
                ),
                TraceEventKind::PaymentExpired { payment, remaining } => write!(
                    out,
                    "\"ev\":\"expire\",\"payment\":{},\"remaining_drops\":{}",
                    payment.0,
                    remaining.drops()
                ),
                TraceEventKind::TopologyChanged {
                    closed,
                    opened,
                    resized,
                } => write!(
                    out,
                    "\"ev\":\"topology\",\"closed\":{closed},\"opened\":{opened},\"resized\":{resized}"
                ),
                TraceEventKind::FaultApplied { node, crashed } => write!(
                    out,
                    "\"ev\":\"fault\",\"node\":{},\"crashed\":{}",
                    node.0, crashed
                ),
                TraceEventKind::UnitRefunded {
                    payment,
                    amount,
                    reason,
                } => write!(
                    out,
                    "\"ev\":\"refund\",\"payment\":{},\"amount_drops\":{},\"reason\":\"{}\"",
                    payment.0,
                    amount.drops(),
                    reason_str(*reason)
                ),
            }
            .expect("string write");
            out.push_str("}\n");
        }
        for (id, nodes) in &self.paths {
            write!(out, "{{\"ev\":\"path\",\"path\":{id},\"nodes\":[").expect("string write");
            for (i, n) in nodes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write!(out, "{n}").expect("string write");
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Renders the Chrome `trace_event` JSON array: each completed
    /// payment becomes a complete (`"X"`) slice from arrival to
    /// completion on its own thread row, each drop an instant (`"i"`)
    /// event. Load in chrome://tracing or Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        let mut emit = |s: String, out: &mut String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push('\n');
            out.push_str(&s);
        };
        // Arrival instants by payment, to anchor the completion slices.
        let mut arrivals: Vec<(u64, u64)> = Vec::new();
        for e in self.events() {
            match &e.kind {
                TraceEventKind::PaymentArrival {
                    payment, amount, ..
                } => {
                    arrivals.push((payment.0, e.t_us));
                    emit(
                        format!(
                            "{{\"name\":\"arrival\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{},\"s\":\"t\",\"args\":{{\"amount_drops\":{}}}}}",
                            e.t_us,
                            payment.0,
                            amount.drops()
                        ),
                        &mut out,
                    );
                }
                TraceEventKind::PaymentCompleted {
                    payment,
                    latency_us,
                } => {
                    let start = arrivals
                        .iter()
                        .rev()
                        .find(|&&(p, _)| p == payment.0)
                        .map(|&(_, t)| t)
                        .unwrap_or(e.t_us.saturating_sub(*latency_us));
                    emit(
                        format!(
                            "{{\"name\":\"payment {}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}}}",
                            payment.0, start, latency_us, payment.0
                        ),
                        &mut out,
                    );
                }
                TraceEventKind::UnitDropped { unit, reason } => {
                    emit(
                        format!(
                            "{{\"name\":\"drop:{}\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{},\"s\":\"t\"}}",
                            reason_str(*reason),
                            e.t_us,
                            unit
                        ),
                        &mut out,
                    );
                }
                TraceEventKind::UnitRefunded {
                    payment, reason, ..
                } => {
                    emit(
                        format!(
                            "{{\"name\":\"refund:{}\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{},\"s\":\"t\"}}",
                            reason_str(*reason),
                            e.t_us,
                            payment.0
                        ),
                        &mut out,
                    );
                }
                TraceEventKind::FaultApplied { node, crashed } => {
                    emit(
                        format!(
                            "{{\"name\":\"{}:{}\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":0,\"s\":\"g\"}}",
                            if *crashed { "crash" } else { "recover" },
                            node.0,
                            e.t_us
                        ),
                        &mut out,
                    );
                }
                _ => {}
            }
        }
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sink() -> TraceSink {
        let mut s = TraceSink::new();
        s.record(
            0,
            TraceEventKind::PaymentArrival {
                payment: PaymentId(0),
                src: NodeId(1),
                dst: NodeId(2),
                amount: Amount::from_xrp(5),
            },
        );
        s.record(
            100,
            TraceEventKind::RouteProposal {
                payment: PaymentId(0),
                attempt: 0,
                path: PathId(3),
                amount: Amount::from_xrp(5),
            },
        );
        s.record(
            900,
            TraceEventKind::UnitDropped {
                unit: 7,
                reason: DropReason::QueueTimeout,
            },
        );
        s.record(
            1_000,
            TraceEventKind::PaymentCompleted {
                payment: PaymentId(0),
                latency_us: 1_000,
            },
        );
        s
    }

    #[test]
    fn sequence_numbers_follow_record_order() {
        let s = sample_sink();
        assert_eq!(s.len(), 4);
        let seqs: Vec<u64> = s.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn chunking_preserves_order_across_boundaries() {
        let mut s = TraceSink::new();
        for i in 0..(CHUNK as u64 * 2 + 10) {
            s.record(i, TraceEventKind::UnitDelivered { unit: i });
        }
        assert_eq!(s.len(), CHUNK as u64 * 2 + 10);
        let t = s.finish(Vec::new());
        for (i, e) in t.events().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.t_us, i as u64);
        }
    }

    #[test]
    fn jsonl_is_deterministic_and_line_per_event() {
        let t = sample_sink().finish(vec![(3, vec![1, 0, 2])]);
        let a = t.to_jsonl();
        let b = t.to_jsonl();
        assert_eq!(a, b, "rendering must be pure");
        // 4 events + 1 path line.
        assert_eq!(a.lines().count(), 5);
        assert!(a.contains("\"ev\":\"arrival\""), "{a}");
        assert!(a.contains("\"reason\":\"queue_timeout\""), "{a}");
        assert!(
            a.contains("{\"ev\":\"path\",\"path\":3,\"nodes\":[1,0,2]}"),
            "{a}"
        );
        // Every line is an object.
        for line in a.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn chrome_trace_is_a_json_array_with_slices() {
        let t = sample_sink().finish(Vec::new());
        let c = t.to_chrome_trace();
        assert!(c.trim_start().starts_with('['), "{c}");
        assert!(c.trim_end().ends_with(']'), "{c}");
        assert!(c.contains("\"ph\":\"X\""), "completion slice: {c}");
        assert!(c.contains("\"dur\":1000"), "{c}");
        assert!(c.contains("drop:queue_timeout"), "{c}");
    }

    #[test]
    fn empty_trace_renders_empty_outputs() {
        let t = TraceSink::new().finish(Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.to_jsonl(), "");
        assert_eq!(t.to_chrome_trace(), "[\n]\n");
    }
}
