//! # spider-overload
//!
//! Deterministic adversarial-load generation for the Spider reproduction:
//! flash-crowd rate spikes, Zipf-skewed hot-pair demand, one-way
//! liquidity-draining flows, and griefing payments whose units are
//! deliberately held by a hop until the sender's timeout fires — all
//! derived from a [`DetRng`] fork so the same experiment seed always
//! produces the same attack.
//!
//! The paper evaluates offered load up to the feasible envelope; this
//! crate opens the *beyond-capacity* axis the same way `spider-dynamics`
//! opened churn and `spider-faults` opened loss. An [`OverloadPlan`] is
//! generated once from an [`OverloadConfig`] (mirroring
//! `FaultPlan::generate`) and applied in two places:
//!
//! * **workload transforms** — [`OverloadPlan::warp_secs`] compresses
//!   arrival times into the flash-crowd window and
//!   [`OverloadPlan::transform_pair`] redirects a deterministic fraction
//!   of (src, dst) pairs onto the hot/drain pairs, drawing from the
//!   plan's own `transform_seed` stream;
//! * **engine griefing** — the engine draws per-payment griefing from the
//!   plan's `runtime_seed` stream and holds the payment's units at their
//!   first hop until [`OverloadPlan::griefing_hold`] expires (reusing the
//!   stuck-unit hop-timeout plumbing of `spider-faults`).
//!
//! Determinism contract: the overload streams are independent of the
//! workload, scheme, churn and fault streams (labeled forks), and **no
//! plan installed means no draw ever happens** — overload-free configs
//! stay bit-identical to the overload-unaware engine. A quiet plan
//! (zero intensity) draws only `chance(0.0)`, which never fires, so its
//! outcomes equal a no-plan run.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use spider_topology::Topology;
use spider_types::{DetRng, NodeId, Result, SimDuration, SpiderError};

/// Flash-crowd parameters: a time window during which the arrival rate is
/// multiplied by compressing later arrivals into it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowdConfig {
    /// When the crowd arrives (seconds into the run).
    pub start_secs: f64,
    /// How long the spike lasts (seconds).
    pub duration_secs: f64,
    /// Arrival-rate multiplier inside the window (`1.0` = no spike).
    pub rate_multiplier: f64,
}

impl Default for FlashCrowdConfig {
    fn default() -> Self {
        FlashCrowdConfig {
            start_secs: 5.0,
            duration_secs: 5.0,
            rate_multiplier: 4.0,
        }
    }
}

/// Zipf-skewed hot-pair parameters: a fraction of all transactions is
/// redirected onto a small set of (src, dst) pairs with Zipf weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HotPairsConfig {
    /// Fraction of transactions redirected onto the hot set.
    pub fraction: f64,
    /// Number of hot (src, dst) pairs.
    pub pairs: usize,
    /// Zipf exponent over the hot set (`0.0` = uniform; larger = the
    /// first pair dominates).
    pub zipf_exponent: f64,
}

impl Default for HotPairsConfig {
    fn default() -> Self {
        HotPairsConfig {
            fraction: 0.3,
            pairs: 8,
            zipf_exponent: 1.0,
        }
    }
}

/// One-way liquidity-drain parameters: a fraction of transactions is
/// redirected onto fixed one-way flows, steadily emptying the channel
/// directions they cross (pure DAG demand — the component Spider cannot
/// sustain off-chain).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrainConfig {
    /// Number of one-way (src, dst) drain flows.
    pub flows: usize,
    /// Fraction of transactions redirected onto the drain flows.
    pub fraction: f64,
}

impl Default for DrainConfig {
    fn default() -> Self {
        DrainConfig {
            flows: 4,
            fraction: 0.1,
        }
    }
}

/// Griefing parameters: a fraction of payments whose units a hop silently
/// holds until the sender-side timeout cancels them, pinning liquidity
/// for the whole hold window at zero goodput cost to the attacker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GriefingConfig {
    /// Fraction of payments that grief.
    pub fraction: f64,
    /// How long the hop holds each griefing unit before the sender's
    /// timeout refunds it (seconds).
    pub hold_secs: f64,
}

impl Default for GriefingConfig {
    fn default() -> Self {
        GriefingConfig {
            fraction: 0.02,
            hold_secs: 1.0,
        }
    }
}

/// Parameters of an overload plan. Each sub-attack is optional; `None`
/// disables it entirely.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadConfig {
    /// Flash-crowd rate spike. `None` = arrivals keep their Poisson times.
    pub flash_crowd: Option<FlashCrowdConfig>,
    /// Zipf-skewed hot-pair demand. `None` = pairs are untouched.
    pub hot_pairs: Option<HotPairsConfig>,
    /// One-way liquidity-draining flows. `None` = no drain.
    pub drain: Option<DrainConfig>,
    /// Griefing payments. `None` = no griefing.
    pub griefing: Option<GriefingConfig>,
    /// Plan horizon (seconds): the flash window is clamped inside it.
    pub horizon_secs: f64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            flash_crowd: Some(FlashCrowdConfig::default()),
            hot_pairs: Some(HotPairsConfig::default()),
            drain: Some(DrainConfig::default()),
            griefing: Some(GriefingConfig::default()),
            horizon_secs: 20.0,
        }
    }
}

impl OverloadConfig {
    /// A copy with every redirect/griefing fraction scaled by `intensity`
    /// (clamped to a valid probability) and the flash-crowd multiplier
    /// interpolated between `1.0` and its configured value — the knob the
    /// `overload_resilience` benchmark sweeps. `0.0` yields a plan that
    /// never changes anything.
    pub fn scaled(&self, intensity: f64) -> OverloadConfig {
        let p = |base: f64| (base * intensity).min(1.0);
        OverloadConfig {
            flash_crowd: self.flash_crowd.as_ref().map(|f| FlashCrowdConfig {
                rate_multiplier: (1.0 + (f.rate_multiplier - 1.0) * intensity).max(1.0),
                ..f.clone()
            }),
            hot_pairs: self.hot_pairs.as_ref().map(|h| HotPairsConfig {
                fraction: p(h.fraction),
                ..h.clone()
            }),
            drain: self.drain.as_ref().map(|d| DrainConfig {
                fraction: p(d.fraction),
                ..d.clone()
            }),
            griefing: self.griefing.as_ref().map(|g| GriefingConfig {
                fraction: p(g.fraction),
                ..g.clone()
            }),
            horizon_secs: self.horizon_secs,
        }
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<()> {
        let bad = |msg: &str| Err(SpiderError::InvalidConfig(msg.into()));
        if let Some(f) = &self.flash_crowd {
            if f.start_secs < 0.0 || f.duration_secs <= 0.0 {
                return bad("flash crowd window must be non-negative and non-empty");
            }
            if f.rate_multiplier < 1.0 {
                return bad("flash crowd multiplier must be >= 1");
            }
        }
        if let Some(h) = &self.hot_pairs {
            if !(0.0..=1.0).contains(&h.fraction) {
                return bad("hot-pair fraction must be in [0, 1]");
            }
            if h.pairs == 0 {
                return bad("hot-pair count must be positive");
            }
            if h.zipf_exponent < 0.0 {
                return bad("zipf exponent must be non-negative");
            }
        }
        if let Some(d) = &self.drain {
            if !(0.0..=1.0).contains(&d.fraction) {
                return bad("drain fraction must be in [0, 1]");
            }
            if d.flows == 0 {
                return bad("drain flow count must be positive");
            }
        }
        if let Some(g) = &self.griefing {
            if !(0.0..=1.0).contains(&g.fraction) {
                return bad("griefing fraction must be in [0, 1]");
            }
            if g.hold_secs <= 0.0 {
                return bad("griefing hold must be positive");
            }
        }
        if self.horizon_secs <= 0.0 {
            return bad("overload horizon must be positive");
        }
        Ok(())
    }
}

/// A directed (src, dst) demand pair targeted by an attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetPair {
    /// Paying node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
}

/// A generated, deterministic overload plan: the targeted pairs, the
/// flash window, and the seeds of the two runtime draw streams.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadPlan {
    /// Flash window start (seconds); `f64::INFINITY` disables the warp.
    pub flash_start: f64,
    /// Flash window end (seconds).
    pub flash_end: f64,
    /// Rate multiplier inside the window (`1.0` = identity warp).
    pub flash_multiplier: f64,
    /// The Zipf-weighted hot pairs (distinct src ≠ dst).
    pub hot_pairs: Vec<TargetPair>,
    /// Cumulative Zipf weights over `hot_pairs` (last entry = 1.0).
    pub hot_cdf: Vec<f64>,
    /// Fraction of transactions redirected onto the hot set.
    pub hot_fraction: f64,
    /// The one-way drain flows (distinct src ≠ dst).
    pub drain_pairs: Vec<TargetPair>,
    /// Fraction of transactions redirected onto the drain flows.
    pub drain_fraction: f64,
    /// Per-payment griefing probability the engine draws against.
    pub griefing_prob: f64,
    /// How long a hop holds a griefing unit before the sender-side
    /// timeout refunds it.
    pub griefing_hold: SimDuration,
    /// Seed of the workload-transform draw stream (hot/drain redirects).
    pub transform_seed: u64,
    /// Seed of the engine's runtime draw stream (per-payment griefing).
    pub runtime_seed: u64,
}

impl OverloadPlan {
    /// Generates the deterministic plan for `topo` under `cfg`, drawing
    /// every random choice from `rng`. The same (topology, config, rng
    /// state) always yields the same plan.
    pub fn generate(topo: &Topology, cfg: &OverloadConfig, rng: &mut DetRng) -> Result<Self> {
        cfg.validate()?;
        let n_nodes = topo.node_count();
        if n_nodes < 2 {
            return Err(SpiderError::InvalidConfig(
                "overload plan needs at least 2 nodes".into(),
            ));
        }
        let draw_pairs = |rng: &mut DetRng, count: usize| -> Vec<TargetPair> {
            (0..count)
                .map(|_| {
                    let src = rng.index(n_nodes);
                    let mut dst = rng.index(n_nodes);
                    while dst == src {
                        dst = rng.index(n_nodes);
                    }
                    TargetPair {
                        src: NodeId::from_index(src),
                        dst: NodeId::from_index(dst),
                    }
                })
                .collect()
        };

        let (flash_start, flash_end, flash_multiplier) = match &cfg.flash_crowd {
            Some(f) => {
                let start = f.start_secs.min(cfg.horizon_secs);
                let end = (start + f.duration_secs).min(cfg.horizon_secs);
                (start, end, f.rate_multiplier)
            }
            None => (f64::INFINITY, f64::INFINITY, 1.0),
        };

        let mut hot_rng = rng.fork("hot");
        let (hot_pairs, hot_cdf, hot_fraction) = match &cfg.hot_pairs {
            Some(h) => {
                let pairs = draw_pairs(&mut hot_rng, h.pairs);
                // Zipf weights w_i = 1/(i+1)^s, normalized to a CDF.
                let weights: Vec<f64> = (0..pairs.len())
                    .map(|i| 1.0 / ((i + 1) as f64).powf(h.zipf_exponent))
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut acc = 0.0;
                let cdf: Vec<f64> = weights
                    .iter()
                    .map(|w| {
                        acc += w / total;
                        acc
                    })
                    .collect();
                (pairs, cdf, h.fraction)
            }
            None => (Vec::new(), Vec::new(), 0.0),
        };

        let mut drain_rng = rng.fork("drain");
        let (drain_pairs, drain_fraction) = match &cfg.drain {
            Some(d) => (draw_pairs(&mut drain_rng, d.flows), d.fraction),
            None => (Vec::new(), 0.0),
        };

        let (griefing_prob, griefing_hold) = match &cfg.griefing {
            Some(g) => (g.fraction, SimDuration::from_secs_f64(g.hold_secs)),
            None => (0.0, SimDuration::from_secs(1)),
        };

        Ok(OverloadPlan {
            flash_start,
            flash_end,
            flash_multiplier,
            hot_pairs,
            hot_cdf,
            hot_fraction,
            drain_pairs,
            drain_fraction,
            griefing_prob,
            griefing_hold,
            transform_seed: rng.fork("transform").seed(),
            runtime_seed: rng.fork("runtime").seed(),
        })
    }

    /// True when the plan can never change anything: identity time warp,
    /// zero redirect fractions, zero griefing. The engine and workload
    /// transform still run for a quiet plan (draws happen on independent
    /// streams), but `chance(0.0)` never fires and the warp is the
    /// identity, so outcomes match an overload-free run.
    pub fn is_quiet(&self) -> bool {
        self.flash_multiplier == 1.0
            && self.hot_fraction == 0.0
            && self.drain_fraction == 0.0
            && self.griefing_prob == 0.0
    }

    /// The flash-crowd time warp: a monotone, order-preserving map of
    /// arrival seconds. Arrivals originally in
    /// `[start, start + (end − start) · m)` are compressed into
    /// `[start, end)` (an m× rate inside the window); later arrivals
    /// shift earlier by the compressed slack. Identity when the
    /// multiplier is `1.0` or the window is unreachable.
    pub fn warp_secs(&self, t: f64) -> f64 {
        let (s, e, m) = (self.flash_start, self.flash_end, self.flash_multiplier);
        if m <= 1.0 || !s.is_finite() || e <= s || t < s {
            return t;
        }
        let span = e - s;
        if t < s + span * m {
            s + (t - s) / m
        } else {
            t - span * (m - 1.0)
        }
    }

    /// The hot/drain redirect for one transaction, drawing from `rng`
    /// (seed it with [`OverloadPlan::transform_seed`]). Draw order is
    /// fixed — hot chance, hot index, drain chance, drain index — and a
    /// drain hit overrides a hot hit. With both fractions zero the input
    /// pair is returned untouched (no draw ever fires).
    pub fn transform_pair(&self, src: NodeId, dst: NodeId, rng: &mut DetRng) -> (NodeId, NodeId) {
        let mut out = (src, dst);
        if !self.hot_pairs.is_empty() && rng.chance(self.hot_fraction) {
            let u = rng.uniform();
            let i = self
                .hot_cdf
                .iter()
                .position(|&c| u <= c)
                .unwrap_or(self.hot_cdf.len() - 1);
            out = (self.hot_pairs[i].src, self.hot_pairs[i].dst);
        }
        if !self.drain_pairs.is_empty() && rng.chance(self.drain_fraction) {
            let p = self.drain_pairs[rng.index(self.drain_pairs.len())];
            out = (p.src, p.dst);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_topology::gen;
    use spider_types::Amount;

    fn topo() -> Topology {
        gen::isp_topology(Amount::from_xrp(100))
    }

    #[test]
    fn generation_is_deterministic() {
        let t = topo();
        let cfg = OverloadConfig::default();
        let a = OverloadPlan::generate(&t, &cfg, &mut DetRng::new(7)).unwrap();
        let b = OverloadPlan::generate(&t, &cfg, &mut DetRng::new(7)).unwrap();
        assert_eq!(a, b);
        let c = OverloadPlan::generate(&t, &cfg, &mut DetRng::new(8)).unwrap();
        assert_ne!(a, c, "different seeds must differ");
        // Targeted pairs are valid and directed src != dst.
        for p in a.hot_pairs.iter().chain(&a.drain_pairs) {
            assert!(p.src.index() < t.node_count());
            assert!(p.dst.index() < t.node_count());
            assert_ne!(p.src, p.dst);
        }
        // The Zipf CDF is monotone and ends at 1.
        for w in a.hot_cdf.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!((a.hot_cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intensity_scales_the_attack() {
        let t = topo();
        let base = OverloadConfig::default();
        let quiet = OverloadPlan::generate(&t, &base.scaled(0.0), &mut DetRng::new(5)).unwrap();
        assert!(quiet.is_quiet(), "zero intensity must be a quiet plan");
        assert_eq!(quiet.flash_multiplier, 1.0);
        let mild = OverloadPlan::generate(&t, &base.scaled(0.5), &mut DetRng::new(5)).unwrap();
        let harsh = OverloadPlan::generate(&t, &base.scaled(2.0), &mut DetRng::new(5)).unwrap();
        assert!(!harsh.is_quiet());
        assert!(harsh.hot_fraction > mild.hot_fraction);
        assert!(harsh.flash_multiplier > mild.flash_multiplier);
        // Scaling clamps fractions to 1.
        let extreme = base.scaled(1e9);
        assert!(extreme.hot_pairs.as_ref().unwrap().fraction <= 1.0);
        assert!(extreme.validate().is_ok());
    }

    #[test]
    fn time_warp_is_monotone_and_compresses_the_window() {
        let t = topo();
        let cfg = OverloadConfig {
            flash_crowd: Some(FlashCrowdConfig {
                start_secs: 5.0,
                duration_secs: 5.0,
                rate_multiplier: 4.0,
            }),
            ..OverloadConfig::default()
        };
        let plan = OverloadPlan::generate(&t, &cfg, &mut DetRng::new(1)).unwrap();
        // Before the window: identity.
        assert_eq!(plan.warp_secs(3.0), 3.0);
        // The base span [5, 25) compresses into [5, 10).
        assert_eq!(plan.warp_secs(5.0), 5.0);
        assert!((plan.warp_secs(25.0) - 10.0).abs() < 1e-12);
        assert!((plan.warp_secs(15.0) - 7.5).abs() < 1e-12);
        // After the compressed span: shifted earlier by the slack (15 s).
        assert!((plan.warp_secs(40.0) - 25.0).abs() < 1e-12);
        // Monotone everywhere.
        let mut prev = f64::NEG_INFINITY;
        for i in 0..400 {
            let w = plan.warp_secs(i as f64 * 0.1);
            assert!(w >= prev, "warp must be monotone");
            prev = w;
        }
        // A quiet plan's warp is the identity.
        let quiet = OverloadPlan::generate(&t, &cfg.scaled(0.0), &mut DetRng::new(1)).unwrap();
        assert_eq!(quiet.warp_secs(15.0), 15.0);
    }

    #[test]
    fn transform_redirects_the_configured_fraction() {
        let t = topo();
        let cfg = OverloadConfig {
            flash_crowd: None,
            hot_pairs: Some(HotPairsConfig {
                fraction: 0.5,
                pairs: 4,
                zipf_exponent: 1.2,
            }),
            drain: Some(DrainConfig {
                flows: 2,
                fraction: 0.1,
            }),
            griefing: None,
            ..OverloadConfig::default()
        };
        let plan = OverloadPlan::generate(&t, &cfg, &mut DetRng::new(3)).unwrap();
        let mut rng = DetRng::new(plan.transform_seed);
        let n = 20_000;
        let mut redirected = 0;
        let mut hot_hits = vec![0usize; plan.hot_pairs.len()];
        for i in 0..n {
            let src = NodeId::from_index(i % t.node_count());
            let dst = NodeId::from_index((i + 1) % t.node_count());
            let (s, d) = plan.transform_pair(src, dst, &mut rng);
            if (s, d) != (src, dst) {
                redirected += 1;
            }
            if let Some(k) = plan.hot_pairs.iter().position(|p| p.src == s && p.dst == d) {
                hot_hits[k] += 1;
            }
        }
        let frac = redirected as f64 / n as f64;
        // Hot 0.5 + drain 0.1 (minus overlap/self-hits): a loose band.
        assert!((0.4..0.7).contains(&frac), "redirect fraction {frac}");
        // Zipf skew: the first hot pair dominates the last.
        assert!(hot_hits[0] > hot_hits[3], "{hot_hits:?}");
        // Same seed → same redirects.
        let mut rng2 = DetRng::new(plan.transform_seed);
        let a = plan.transform_pair(NodeId(0), NodeId(1), &mut rng2);
        let mut rng3 = DetRng::new(plan.transform_seed);
        let b = plan.transform_pair(NodeId(0), NodeId(1), &mut rng3);
        assert_eq!(a, b);
    }

    #[test]
    fn quiet_plan_never_changes_a_pair() {
        let t = topo();
        let plan = OverloadPlan::generate(
            &t,
            &OverloadConfig::default().scaled(0.0),
            &mut DetRng::new(9),
        )
        .unwrap();
        let mut rng = DetRng::new(plan.transform_seed);
        for i in 0..1_000 {
            let src = NodeId::from_index(i % t.node_count());
            let dst = NodeId::from_index((i + 3) % t.node_count());
            assert_eq!(plan.transform_pair(src, dst, &mut rng), (src, dst));
        }
    }

    #[test]
    fn validation_rejects_nonsense() {
        let t = topo();
        for cfg in [
            OverloadConfig {
                flash_crowd: Some(FlashCrowdConfig {
                    rate_multiplier: 0.5,
                    ..FlashCrowdConfig::default()
                }),
                ..OverloadConfig::default()
            },
            OverloadConfig {
                flash_crowd: Some(FlashCrowdConfig {
                    duration_secs: 0.0,
                    ..FlashCrowdConfig::default()
                }),
                ..OverloadConfig::default()
            },
            OverloadConfig {
                hot_pairs: Some(HotPairsConfig {
                    fraction: 1.5,
                    ..HotPairsConfig::default()
                }),
                ..OverloadConfig::default()
            },
            OverloadConfig {
                hot_pairs: Some(HotPairsConfig {
                    pairs: 0,
                    ..HotPairsConfig::default()
                }),
                ..OverloadConfig::default()
            },
            OverloadConfig {
                drain: Some(DrainConfig {
                    fraction: -0.1,
                    ..DrainConfig::default()
                }),
                ..OverloadConfig::default()
            },
            OverloadConfig {
                griefing: Some(GriefingConfig {
                    hold_secs: 0.0,
                    ..GriefingConfig::default()
                }),
                ..OverloadConfig::default()
            },
            OverloadConfig {
                horizon_secs: 0.0,
                ..OverloadConfig::default()
            },
        ] {
            assert!(OverloadPlan::generate(&t, &cfg, &mut DetRng::new(0)).is_err());
        }
    }

    #[test]
    fn config_and_plan_serde_round_trip() {
        for cfg in [
            OverloadConfig::default(),
            OverloadConfig {
                flash_crowd: None,
                hot_pairs: None,
                drain: None,
                griefing: None,
                ..OverloadConfig::default()
            },
        ] {
            let json = serde_json::to_string(&cfg).unwrap();
            let back: OverloadConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(back, cfg);
        }
        let t = topo();
        let plan =
            OverloadPlan::generate(&t, &OverloadConfig::default(), &mut DetRng::new(5)).unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: OverloadPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
