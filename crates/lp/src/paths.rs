//! Path oracles (§5.3.1).
//!
//! "Practical implementations would restrict the set of paths considered
//! between each source and destination … e.g., the K shortest paths or the
//! K highest-capacity paths." This module provides:
//!
//! * [`k_shortest_paths`] — Yen's algorithm over hop counts (loopless);
//! * [`k_edge_disjoint_paths`] — successive shortest paths with used
//!   channels removed (the "4 disjoint shortest paths" of §6.1);
//! * [`k_widest_paths`] — highest-bottleneck-capacity paths, the building
//!   block of the waterfilling heuristic.
//!
//! All oracles are deterministic: ties break toward fewer hops, then the
//! lexicographically smallest node sequence.

use spider_topology::Topology;
use spider_types::{ChannelId, Direction, NodeId};
use std::collections::{HashSet, VecDeque};

/// A loop-free path through the topology (node sequence, both endpoints
/// included).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path {
    /// Visited nodes, source first.
    pub nodes: Vec<NodeId>,
}

impl Path {
    /// Creates a path from a node sequence (≥ 1 node, no repeats).
    pub fn new(nodes: Vec<NodeId>) -> Self {
        debug_assert!(!nodes.is_empty());
        debug_assert!(
            {
                let mut s = nodes.clone();
                s.sort_unstable();
                s.dedup();
                s.len() == nodes.len()
            },
            "path has repeated nodes"
        );
        Path { nodes }
    }

    /// Number of hops (edges).
    pub fn hop_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Source node.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Destination node.
    pub fn dest(&self) -> NodeId {
        *self.nodes.last().expect("non-empty")
    }

    /// The channel hops traversed, with directions. Panics if consecutive
    /// nodes are not adjacent in `topo`.
    pub fn channels(&self, topo: &Topology) -> Vec<(ChannelId, Direction)> {
        topo.path_channels(&self.nodes)
            .expect("path follows topology edges")
    }

    /// Allocation-free variant of [`Path::channels`]: iterates the hops
    /// without materializing a vector. Panics on non-adjacent nodes.
    pub fn channels_iter<'a>(
        &'a self,
        topo: &'a Topology,
    ) -> impl Iterator<Item = (ChannelId, Direction)> + 'a {
        self.nodes.windows(2).map(move |w| {
            let id = topo
                .channel_between(w[0], w[1])
                .expect("path follows topology edges");
            (id, topo.channel(id).direction_from(w[0]))
        })
    }
}

/// Reusable BFS state with dense ban flags.
///
/// The oracles below run BFS once per candidate path per pair; hashing a
/// `HashSet<ChannelId>` per traversed edge dominated their profile at
/// Ripple scale (3,774 nodes, ~12.5k channels). Dense `Vec<bool>` bans
/// keyed by the ids' dense indices make the membership test a load, and
/// the buffers are reused across calls within one oracle invocation.
/// Traversal order is unchanged, so results are bit-identical.
struct BfsWorkspace {
    banned_channel: Vec<bool>,
    banned_node: Vec<bool>,
    parent: Vec<Option<NodeId>>,
    seen: Vec<bool>,
    queue: VecDeque<NodeId>,
}

impl BfsWorkspace {
    fn new(topo: &Topology) -> Self {
        BfsWorkspace {
            banned_channel: vec![false; topo.channel_count()],
            banned_node: vec![false; topo.node_count()],
            parent: vec![None; topo.node_count()],
            seen: vec![false; topo.node_count()],
            queue: VecDeque::new(),
        }
    }

    /// BFS shortest path from `src` to `dst` honoring the ban flags.
    /// Adjacency lists are sorted, so the result is deterministic
    /// (smallest-id tie-breaks).
    fn bfs(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<Path> {
        if self.banned_node[src.index()] || self.banned_node[dst.index()] {
            return None;
        }
        if src == dst {
            return Some(Path::new(vec![src]));
        }
        self.parent.fill(None);
        self.seen.fill(false);
        self.seen[src.index()] = true;
        self.queue.clear();
        self.queue.push_back(src);
        while let Some(u) = self.queue.pop_front() {
            for adj in topo.neighbors(u) {
                if self.banned_channel[adj.channel.index()]
                    || self.banned_node[adj.neighbor.index()]
                {
                    continue;
                }
                if !self.seen[adj.neighbor.index()] {
                    self.seen[adj.neighbor.index()] = true;
                    self.parent[adj.neighbor.index()] = Some(u);
                    if adj.neighbor == dst {
                        let mut nodes = vec![dst];
                        let mut cur = dst;
                        while let Some(p) = self.parent[cur.index()] {
                            nodes.push(p);
                            cur = p;
                        }
                        nodes.reverse();
                        return Some(Path::new(nodes));
                    }
                    self.queue.push_back(adj.neighbor);
                }
            }
        }
        None
    }
}

/// Yen's algorithm: up to `k` loopless shortest paths by hop count, in
/// non-decreasing length (ties: lexicographic node order).
pub fn k_shortest_paths(topo: &Topology, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    if k == 0 || src == dst {
        return Vec::new();
    }
    let mut ws = BfsWorkspace::new(topo);
    let mut accepted: Vec<Path> = Vec::new();
    let Some(first) = ws.bfs(topo, src, dst) else {
        return Vec::new();
    };
    accepted.push(first);
    // Candidate pool, kept sorted by (hops, nodes).
    let mut candidates: Vec<Path> = Vec::new();
    while accepted.len() < k {
        let prev = accepted.last().expect("at least one accepted").clone();
        for i in 0..prev.hop_count() {
            let spur_node = prev.nodes[i];
            let root = &prev.nodes[..=i];
            // Ban the outgoing channel of every accepted path sharing this
            // root, and the root nodes except the spur node (looplessness).
            let mut set_channels: Vec<ChannelId> = Vec::new();
            for p in &accepted {
                if p.nodes.len() > i + 1 && p.nodes[..=i] == *root {
                    if let Some(c) = topo.channel_between(p.nodes[i], p.nodes[i + 1]) {
                        ws.banned_channel[c.index()] = true;
                        set_channels.push(c);
                    }
                }
            }
            for n in &root[..i] {
                ws.banned_node[n.index()] = true;
            }
            let spur = ws.bfs(topo, spur_node, dst);
            for c in set_channels {
                ws.banned_channel[c.index()] = false;
            }
            for n in &root[..i] {
                ws.banned_node[n.index()] = false;
            }
            if let Some(spur) = spur {
                let mut nodes = root[..i].to_vec();
                nodes.extend(spur.nodes);
                let cand = Path::new(nodes);
                if !accepted.contains(&cand) && !candidates.contains(&cand) {
                    candidates.push(cand);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by(|a, b| {
            a.hop_count()
                .cmp(&b.hop_count())
                .then_with(|| a.nodes.cmp(&b.nodes))
        });
        accepted.push(candidates.remove(0));
    }
    accepted
}

/// Up to `k` pairwise edge-disjoint paths, found by repeatedly taking the
/// shortest path and deleting its channels (§6.1's "4 disjoint shortest
/// paths" between every pair).
pub fn k_edge_disjoint_paths(topo: &Topology, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    let mut ws = BfsWorkspace::new(topo);
    let mut out = Vec::new();
    while out.len() < k {
        let Some(p) = ws.bfs(topo, src, dst) else {
            break;
        };
        for (c, _) in p.channels_iter(topo) {
            ws.banned_channel[c.index()] = true;
        }
        out.push(p);
    }
    out
}

/// The widest path from `src` to `dst`, where a path's width is the minimum
/// of `width(channel)` over its hops. Ties break toward fewer hops, then
/// smaller node ids. Channels with zero width are unusable.
pub fn widest_path(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    width: impl Fn(ChannelId, Direction) -> u64,
) -> Option<Path> {
    if src == dst {
        return Some(Path::new(vec![src]));
    }
    let n = topo.node_count();
    // best[(node)] = (width, neg hops) maximized lexicographically.
    let mut best: Vec<(u64, i64)> = vec![(0, 0); n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut done = vec![false; n];
    best[src.index()] = (u64::MAX, 0);
    loop {
        // Extract the unfinished node with the best (width, -hops, -id).
        let mut pick: Option<usize> = None;
        for i in 0..n {
            if !done[i] && best[i].0 > 0 {
                let better = match pick {
                    None => true,
                    Some(p) => best[i] > best[p] || (best[i] == best[p] && i < p),
                };
                if better {
                    pick = Some(i);
                }
            }
        }
        let Some(u) = pick else { break };
        if u == dst.index() {
            break;
        }
        done[u] = true;
        let (wu, hu) = best[u];
        for adj in topo.neighbors(NodeId::from_index(u)) {
            let dir = topo
                .channel(adj.channel)
                .direction_from(NodeId::from_index(u));
            let w = width(adj.channel, dir).min(wu);
            let cand = (w, hu - 1);
            let vi = adj.neighbor.index();
            if !done[vi] && w > 0 && cand > best[vi] {
                best[vi] = cand;
                parent[vi] = Some(NodeId::from_index(u));
            }
        }
    }
    if best[dst.index()].0 == 0 {
        return None;
    }
    let mut nodes = vec![dst];
    let mut cur = dst;
    while let Some(p) = parent[cur.index()] {
        nodes.push(p);
        cur = p;
    }
    if cur != src {
        return None;
    }
    nodes.reverse();
    Some(Path::new(nodes))
}

/// Up to `k` high-capacity paths: repeatedly take the widest path, then
/// remove its bottleneck channel and repeat. Not globally optimal (that
/// problem is harder), but matches what a practical host probing "the K
/// highest-capacity paths" would discover.
pub fn k_widest_paths(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    k: usize,
    width: impl Fn(ChannelId, Direction) -> u64,
) -> Vec<Path> {
    let mut removed: HashSet<ChannelId> = HashSet::new();
    let mut out: Vec<Path> = Vec::new();
    while out.len() < k {
        let w = |c: ChannelId, d: Direction| if removed.contains(&c) { 0 } else { width(c, d) };
        let Some(p) = widest_path(topo, src, dst, w) else {
            break;
        };
        // Identify and remove the bottleneck channel.
        let (bottleneck_channel, _) = p
            .channels(topo)
            .into_iter()
            .min_by_key(|&(c, d)| width(c, d))
            .expect("path has at least one hop");
        removed.insert(bottleneck_channel);
        if !out.contains(&p) {
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_topology::gen;
    use spider_types::Amount;

    const CAP: Amount = Amount::from_xrp(100);

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Diamond: 0-1-3, 0-2-3, plus direct 0-3.
    fn diamond() -> Topology {
        let mut b = Topology::builder(4);
        b.channel(n(0), n(1), CAP).unwrap();
        b.channel(n(1), n(3), CAP).unwrap();
        b.channel(n(0), n(2), CAP).unwrap();
        b.channel(n(2), n(3), CAP).unwrap();
        b.channel(n(0), n(3), CAP).unwrap();
        b.build()
    }

    #[test]
    fn path_basics() {
        let p = Path::new(vec![n(0), n(1), n(3)]);
        assert_eq!(p.hop_count(), 2);
        assert_eq!(p.source(), n(0));
        assert_eq!(p.dest(), n(3));
        let hops = p.channels(&diamond());
        assert_eq!(hops.len(), 2);
    }

    #[test]
    fn yen_orders_by_length_then_lex() {
        let t = diamond();
        let paths = k_shortest_paths(&t, n(0), n(3), 5);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].nodes, vec![n(0), n(3)]);
        assert_eq!(paths[1].nodes, vec![n(0), n(1), n(3)]);
        assert_eq!(paths[2].nodes, vec![n(0), n(2), n(3)]);
    }

    #[test]
    fn yen_k_limits_output() {
        let t = diamond();
        assert_eq!(k_shortest_paths(&t, n(0), n(3), 2).len(), 2);
        assert_eq!(k_shortest_paths(&t, n(0), n(3), 0).len(), 0);
        assert_eq!(k_shortest_paths(&t, n(0), n(0), 4).len(), 0);
    }

    #[test]
    fn yen_paths_are_loopless_and_distinct() {
        let t = gen::isp_topology(CAP);
        let paths = k_shortest_paths(&t, n(8), n(20), 8);
        assert!(paths.len() >= 4);
        let mut seen = HashSet::new();
        for p in &paths {
            assert!(seen.insert(p.nodes.clone()), "duplicate path");
            let mut s = p.nodes.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), p.nodes.len(), "loop in path");
            assert_eq!(p.source(), n(8));
            assert_eq!(p.dest(), n(20));
        }
        // Non-decreasing length.
        for w in paths.windows(2) {
            assert!(w[0].hop_count() <= w[1].hop_count());
        }
    }

    #[test]
    fn yen_on_disconnected_pair() {
        let mut b = Topology::builder(4);
        b.channel(n(0), n(1), CAP).unwrap();
        b.channel(n(2), n(3), CAP).unwrap();
        let t = b.build();
        assert!(k_shortest_paths(&t, n(0), n(3), 3).is_empty());
    }

    #[test]
    fn edge_disjoint_paths_share_no_channel() {
        let t = diamond();
        let paths = k_edge_disjoint_paths(&t, n(0), n(3), 4);
        assert_eq!(paths.len(), 3); // direct, via 1, via 2
        let mut used = HashSet::new();
        for p in &paths {
            for (c, _) in p.channels(&t) {
                assert!(used.insert(c), "channel reused across paths");
            }
        }
    }

    #[test]
    fn edge_disjoint_respects_k() {
        let t = diamond();
        assert_eq!(k_edge_disjoint_paths(&t, n(0), n(3), 2).len(), 2);
    }

    #[test]
    fn paper_uses_4_disjoint_paths_on_isp() {
        let t = gen::isp_topology(CAP);
        // Core nodes have many disjoint routes; 4 must exist.
        let paths = k_edge_disjoint_paths(&t, n(0), n(5), 4);
        assert_eq!(paths.len(), 4);
    }

    #[test]
    fn widest_path_prefers_capacity_over_hops() {
        // 0-1 thin direct; 0-2-1 fat detour.
        let mut b = Topology::builder(3);
        b.channel(n(0), n(1), CAP).unwrap();
        b.channel(n(0), n(2), CAP).unwrap();
        b.channel(n(2), n(1), CAP).unwrap();
        let t = b.build();
        let thin = t.channel_between(n(0), n(1)).unwrap();
        let width = |c: ChannelId, _d: Direction| if c == thin { 5 } else { 50 };
        let p = widest_path(&t, n(0), n(1), width).unwrap();
        assert_eq!(p.nodes, vec![n(0), n(2), n(1)]);
    }

    #[test]
    fn widest_path_tie_breaks_to_fewer_hops() {
        let t = diamond();
        let p = widest_path(&t, n(0), n(3), |_, _| 7).unwrap();
        assert_eq!(p.nodes, vec![n(0), n(3)]);
    }

    #[test]
    fn widest_path_none_when_zero_capacity() {
        let t = diamond();
        assert!(widest_path(&t, n(0), n(3), |_, _| 0).is_none());
    }

    #[test]
    fn widest_path_directional_widths() {
        // Width depends on direction: 0→1 wide, 1→0 zero.
        let mut b = Topology::builder(2);
        b.channel(n(0), n(1), CAP).unwrap();
        let t = b.build();
        let w = |_c: ChannelId, d: Direction| if d == Direction::Forward { 9 } else { 0 };
        assert!(widest_path(&t, n(0), n(1), w).is_some());
        assert!(widest_path(&t, n(1), n(0), w).is_none());
    }

    #[test]
    fn k_widest_returns_decent_set() {
        let t = diamond();
        let paths = k_widest_paths(&t, n(0), n(3), 3, |_, _| 10);
        assert_eq!(paths.len(), 3);
        let mut seen: HashSet<Vec<NodeId>> = HashSet::new();
        for p in &paths {
            assert!(seen.insert(p.nodes.clone()));
        }
    }
}
