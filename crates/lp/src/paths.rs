//! Path oracles (§5.3.1).
//!
//! "Practical implementations would restrict the set of paths considered
//! between each source and destination … e.g., the K shortest paths or the
//! K highest-capacity paths." This module provides:
//!
//! * [`k_shortest_paths`] — Yen's algorithm over hop counts (loopless);
//! * [`k_edge_disjoint_paths`] — successive shortest paths with used
//!   channels removed (the "4 disjoint shortest paths" of §6.1);
//! * [`k_widest_paths`] — highest-bottleneck-capacity paths, the building
//!   block of the waterfilling heuristic;
//! * [`SourceOracle`] — the batched per-source form of the first two: one
//!   BFS tree and one reusable workspace answer *every* destination of a
//!   source, which is what makes precomputing a whole workload's candidate
//!   sets affordable (see `spider_routing::PathOracle`).
//!
//! All oracles are deterministic: ties break toward fewer hops, then the
//! lexicographically smallest node sequence. A degenerate `src == dst`
//! query has no usable candidate paths: the multi-path oracles
//! (edge-disjoint, Yen, widest) yield the empty set, while the
//! single-shortest-path oracle returns the zero-hop path exactly as
//! `Topology::shortest_path` does.

use spider_topology::Topology;
use spider_types::{ChannelId, Direction, NodeId};
use std::collections::HashSet;

// (Channel liveness: every oracle in this module searches only *enabled*
// channels — see [`CsrGraph::set_channel_enabled`] — so candidate sets on
// a churned network are exactly what a cold build over the live subgraph
// would produce, without reflattening anything.)

/// A loop-free path through the topology (node sequence, both endpoints
/// included).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path {
    /// Visited nodes, source first.
    pub nodes: Vec<NodeId>,
}

impl Path {
    /// Creates a path from a node sequence (≥ 1 node, no repeats).
    pub fn new(nodes: Vec<NodeId>) -> Self {
        debug_assert!(!nodes.is_empty());
        debug_assert!(
            {
                let mut s = nodes.clone();
                s.sort_unstable();
                s.dedup();
                s.len() == nodes.len()
            },
            "path has repeated nodes"
        );
        Path { nodes }
    }

    /// Number of hops (edges).
    pub fn hop_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Source node.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Destination node.
    pub fn dest(&self) -> NodeId {
        *self.nodes.last().expect("non-empty")
    }

    /// The channel hops traversed, with directions. Panics if consecutive
    /// nodes are not adjacent in `topo`.
    pub fn channels(&self, topo: &Topology) -> Vec<(ChannelId, Direction)> {
        topo.path_channels(&self.nodes)
            .expect("path follows topology edges")
    }

    /// Allocation-free variant of [`Path::channels`]: iterates the hops
    /// without materializing a vector. Panics on non-adjacent nodes.
    pub fn channels_iter<'a>(
        &'a self,
        topo: &'a Topology,
    ) -> impl Iterator<Item = (ChannelId, Direction)> + 'a {
        self.nodes.windows(2).map(move |w| {
            let id = topo
                .channel_between(w[0], w[1])
                .expect("path follows topology edges");
            (id, topo.channel(id).direction_from(w[0]))
        })
    }
}

/// Nodes at or above this degree get an adjacency *bitset* row next to
/// their CSR row: the reverse layer sweep ORs 64 neighbors per word
/// instead of scanning the row edge by edge, which is where the hub-heavy
/// scale-free graphs spend most of their BFS time.
const HUB_MIN_DEG: usize = 16;

/// Upper bound on the hub-bitset arena (in 8-byte words, 32 MiB) so giant
/// graphs degrade to pure row scans instead of exploding memory.
const HUB_BITS_MAX_WORDS: usize = 1 << 22;

/// Flattened (CSR) copy of the topology's adjacency lists.
///
/// `Topology` stores one `Vec<Adjacency>` per node; a BFS over it chases a
/// pointer per visited node. The oracles here run *many* traversals over
/// the same static graph, so they scan this single contiguous
/// `(neighbor, channel)` array instead — same entries, same per-node
/// sorted order (traversal order, and therefore every result, is
/// unchanged) — plus adjacency *bitset* rows for hubs, which the reverse
/// layer sweep folds in 64 neighbors at a time. Build it once and share
/// it across every [`SourceOracle`] of a batch; it is immutable and
/// `Sync`.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// `offsets[u]..offsets[u + 1]` indexes node `u`'s adjacency slice.
    offsets: Vec<u32>,
    /// Packed adjacency entry: neighbor node index in the low 32 bits,
    /// channel index in the high 32 — one sequential load per edge
    /// instead of two parallel-array loads.
    entries: Vec<u64>,
    /// Neighbor indices alone (parallel to `entries`): the ban-free sweep
    /// tiers touch half the bytes per edge.
    neighbors: Vec<u32>,
    /// Bitset words per node set (`ceil(node_count / 64)`).
    words: usize,
    /// Per node: word offset of its adjacency bitset row in `hub_bits`,
    /// or `u32::MAX` for nodes swept through their CSR row.
    hub_row: Vec<u32>,
    /// Adjacency bitset rows of high-degree nodes.
    hub_bits: Vec<u64>,
    /// Channels disabled by topology churn (bitset by channel id). The
    /// CSR arrays are never reflattened; every search tier checks this
    /// mask (hub rows have the endpoint bits of disabled edges cleared,
    /// so whole-word ORs stay exact for free).
    disabled_bits: Vec<u64>,
    /// Per node: how many of its incident channels are disabled (powers
    /// the check-free row tier and the hub feasibility shortcut).
    disabled_deg: Vec<u32>,
}

impl CsrGraph {
    /// Flattens `topo`'s adjacency lists (preserving their sorted order).
    pub fn new(topo: &Topology) -> Self {
        let n = topo.node_count();
        let total = 2 * topo.channel_count();
        let words = n.div_ceil(64);
        let mut offsets = Vec::with_capacity(n + 1);
        let mut entries = Vec::with_capacity(total);
        let mut neighbors = Vec::with_capacity(total);
        let mut hub_row = vec![u32::MAX; n];
        let mut hub_bits = Vec::new();
        offsets.push(0);
        for (u, row_slot) in hub_row.iter_mut().enumerate() {
            let adj = topo.neighbors(NodeId::from_index(u));
            if adj.len() >= HUB_MIN_DEG && hub_bits.len() + words <= HUB_BITS_MAX_WORDS {
                *row_slot = hub_bits.len() as u32;
                let start = hub_bits.len();
                hub_bits.resize(start + words, 0);
                for a in adj {
                    let v = a.neighbor.0 as usize;
                    hub_bits[start + v / 64] |= 1u64 << (v % 64);
                }
            }
            for a in adj {
                entries.push(a.neighbor.0 as u64 | ((a.channel.0 as u64) << 32));
                neighbors.push(a.neighbor.0);
            }
            offsets.push(entries.len() as u32);
        }
        let n_channels = topo.channel_count();
        CsrGraph {
            offsets,
            entries,
            neighbors,
            words,
            hub_row,
            hub_bits,
            disabled_bits: vec![0; n_channels.div_ceil(64)],
            disabled_deg: vec![0; n],
        }
    }

    /// Enables or disables one channel in O(1) — no reflattening. A
    /// disabled channel is invisible to every oracle rooted on this graph:
    /// CSR-row sweeps skip it, hub bitset rows have its endpoint bits
    /// cleared, feasibility probes discount it. Results over the enabled
    /// subgraph are bit-identical (as node sequences) to a cold build of
    /// the filtered topology.
    pub fn set_channel_enabled(&mut self, topo: &Topology, c: ChannelId, enabled: bool) {
        let ci = c.index() as u32;
        let currently_enabled = !bit_get(&self.disabled_bits, ci);
        if currently_enabled == enabled {
            return;
        }
        let ch = topo.channel(c);
        let (u, v) = (ch.u.0, ch.v.0);
        if enabled {
            bit_clear(&mut self.disabled_bits, ci);
            self.disabled_deg[u as usize] -= 1;
            self.disabled_deg[v as usize] -= 1;
        } else {
            bit_set(&mut self.disabled_bits, ci);
            self.disabled_deg[u as usize] += 1;
            self.disabled_deg[v as usize] += 1;
        }
        // Keep hub bitset rows exact: cleared bits mean whole-word ORs can
        // never traverse a disabled edge, so no per-search correction is
        // ever needed for liveness.
        for (a, b) in [(u, v), (v, u)] {
            let off = self.hub_row[a as usize];
            if off != u32::MAX {
                let row = &mut self.hub_bits[off as usize..off as usize + self.words];
                if enabled {
                    bit_set(row, b);
                } else {
                    bit_clear(row, b);
                }
            }
        }
    }

    /// True when the channel is enabled (the default for every channel).
    pub fn channel_enabled(&self, c: ChannelId) -> bool {
        !bit_get(&self.disabled_bits, c.index() as u32)
    }

    /// Disabled-channel probe by raw channel index.
    #[inline]
    fn is_disabled(&self, c: u32) -> bool {
        bit_get(&self.disabled_bits, c)
    }

    /// How many of `u`'s incident channels are disabled.
    #[inline]
    fn disabled_at(&self, u: u32) -> usize {
        self.disabled_deg[u as usize] as usize
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of channels (undirected edges).
    pub fn channel_count(&self) -> usize {
        self.entries.len() / 2
    }

    /// Node `u`'s packed adjacency slice, in sorted neighbor order.
    #[inline]
    fn row(&self, u: u32) -> &[u64] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.entries[lo..hi]
    }

    /// Node `u`'s neighbor indices alone, in sorted order.
    #[inline]
    fn neighbor_row(&self, u: u32) -> &[u32] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// `u`'s adjacency bitset row, if it is a hub.
    #[inline]
    fn hub_bits_row(&self, u: u32) -> Option<&[u64]> {
        let off = self.hub_row[u as usize];
        if off == u32::MAX {
            return None;
        }
        Some(&self.hub_bits[off as usize..off as usize + self.words])
    }

    #[inline]
    fn neighbor(entry: u64) -> u32 {
        entry as u32
    }

    #[inline]
    fn channel(entry: u64) -> u32 {
        (entry >> 32) as u32
    }
}

#[inline]
fn bit_get(bits: &[u64], i: u32) -> bool {
    bits[(i / 64) as usize] >> (i % 64) & 1 == 1
}

#[inline]
fn bit_set(bits: &mut [u64], i: u32) {
    bits[(i / 64) as usize] |= 1u64 << (i % 64);
}

#[inline]
fn bit_clear(bits: &mut [u64], i: u32) {
    bits[(i / 64) as usize] &= !(1u64 << (i % 64));
}

/// Reusable search state: epoch-stamped ban flags, the tree-build BFS
/// buffers, and the reverse layer sweep's bitsets.
///
/// The oracles run several searches per destination and serve many
/// destinations per source. Instead of clearing ban/visited arrays
/// between searches (O(n + m) writes each), channel bans are one-byte
/// stamps compared against the current epoch — bumping the epoch
/// invalidates them in O(1) (with a full clear every 255 generations) —
/// and the arrays are small enough to stay cache-resident at Ripple
/// scale. Bans accumulate across the successive searches of one
/// destination (edge disjointness) while each search gets fresh visited
/// state. The membership *semantics* are the ones BFS over sorted
/// adjacency always had, so results are bit-identical to the per-pair
/// oracles of earlier trees.
#[derive(Debug)]
struct BfsWorkspace {
    banned_channel: Vec<u8>,
    /// Banned nodes (bitset; Yen's spur roots). Swept layers are masked
    /// against it, which is exactly BFS refusing to visit those nodes.
    banned_node_bits: Vec<u64>,
    seen: Vec<u8>,
    /// Fixed-size FIFO for the tree build (manual length, one slot of
    /// slack).
    fifo: Vec<u32>,
    /// Nodes discovered by the reverse layer sweep (bitset, cleared per
    /// search — a handful of word writes).
    visited_bits: Vec<u64>,
    /// Endpoints of currently banned channels (bitset, cleared per ban
    /// epoch). A swept node outside this set has only unbanned channels,
    /// so its row is folded in without per-edge ban checks.
    ban_touched_bits: Vec<u64>,
    /// Distance layers of the reverse sweep: `layer_bits[t]` holds the
    /// nodes at residual distance `t` from the sweep's root.
    layer_bits: Vec<Vec<u64>>,
    /// Recycled layer buffers.
    spare_bits: Vec<Vec<u64>>,
    ban_epoch: u8,
    bfs_epoch: u8,
    /// Whether any node ban is set this ban epoch (channel-only ban sets
    /// — the edge-disjoint oracle — skip the node masking entirely).
    node_bans: bool,
}

impl BfsWorkspace {
    fn new(n_nodes: usize, n_channels: usize) -> Self {
        BfsWorkspace {
            banned_channel: vec![0; n_channels],
            banned_node_bits: vec![0; n_nodes.div_ceil(64)],
            seen: vec![0; n_nodes],
            fifo: vec![0; n_nodes + 1],
            visited_bits: vec![0; n_nodes.div_ceil(64)],
            ban_touched_bits: vec![0; n_nodes.div_ceil(64)],
            layer_bits: Vec::new(),
            spare_bits: Vec::new(),
            // Stamps start at 0, so the first valid epoch is 1.
            ban_epoch: 1,
            bfs_epoch: 0,
            node_bans: false,
        }
    }

    /// Invalidates every ban in O(1) (with a wrap-around reset every 255
    /// generations).
    fn new_ban_epoch(&mut self) {
        if self.node_bans {
            self.banned_node_bits.fill(0);
            self.node_bans = false;
        }
        self.ban_touched_bits.fill(0);
        if self.ban_epoch == u8::MAX {
            self.banned_channel.fill(0);
            self.ban_epoch = 1;
        } else {
            self.ban_epoch += 1;
        }
    }

    fn next_bfs_epoch(&mut self) {
        if self.bfs_epoch == u8::MAX {
            self.seen.fill(0);
            self.bfs_epoch = 1;
        } else {
            self.bfs_epoch += 1;
        }
    }

    /// Bans channel `c` (endpoints `a`, `b`) for this epoch. Endpoint
    /// tracking powers the sweep's check-free row tier: a node outside
    /// `ban_touched_bits` provably has no banned channel.
    #[inline]
    fn ban_channel(&mut self, c: u32, a: u32, b: u32) {
        self.banned_channel[c as usize] = self.ban_epoch;
        bit_set(&mut self.ban_touched_bits, a);
        bit_set(&mut self.ban_touched_bits, b);
    }

    #[inline]
    fn ban_node(&mut self, n: u32) {
        bit_set(&mut self.banned_node_bits, n);
        self.node_bans = true;
    }

    /// True when at least one of `u`'s channels is not banned this epoch.
    /// An exact feasibility probe: a further path to/from `u` must cross
    /// one of them, so a `false` here is a search failure the caller can
    /// take for free. `banned_count` (an upper bound on the channels
    /// banned this epoch) short-circuits hubs: more channels than bans
    /// means one is necessarily free.
    fn has_unbanned_channel(&self, csr: &CsrGraph, u: u32, banned_count: usize) -> bool {
        let row = csr.row(u);
        row.len() > banned_count + csr.disabled_at(u)
            || row.iter().any(|&e| {
                let c = CsrGraph::channel(e);
                self.banned_channel[c as usize] != self.ban_epoch && !csr.is_disabled(c)
            })
    }

    /// A cleared bitset buffer of `words` words, recycled when possible.
    fn grab_bits(&mut self, words: usize) -> Vec<u64> {
        match self.spare_bits.pop() {
            Some(mut b) => {
                b.clear();
                b.resize(words, 0);
                b
            }
            None => vec![0; words],
        }
    }

    /// True when `node` has an unbanned channel to a node of `frontier`
    /// — the exact membership test for the next reverse-sweep layer.
    fn linked_to_frontier(&self, csr: &CsrGraph, node: u32, frontier: &[u64]) -> bool {
        csr.row(node).iter().any(|&e| {
            let c = CsrGraph::channel(e);
            self.banned_channel[c as usize] != self.ban_epoch
                && !csr.is_disabled(c)
                && bit_get(frontier, CsrGraph::neighbor(e))
        })
    }

    /// The shortest path from `src` to `dst` on the channel-banned
    /// residual graph, with the exact tie-breaks of [`BfsWorkspace::bfs`]
    /// — computed without simulating the BFS.
    ///
    /// BFS over id-sorted adjacency returns *the lexicographically
    /// smallest (by node sequence) shortest path*: discovery order within
    /// a layer is lexicographic in (parent's discovery order, node id),
    /// so each node's parent pointer — its earliest-discovered
    /// predecessor — is the predecessor whose own ancestor chain is
    /// lex-smallest, and the chain reaching `dst` is the lex-min shortest
    /// path (this is the documented tie-break contract of this module,
    /// and the reference tests pin it against a literal BFS). That
    /// characterization is order-free, which unlocks a much cheaper
    /// computation:
    ///
    /// 1. a *reverse* layer-synchronous sweep from `dst` records the
    ///    distance layers of the residual graph as bitsets — no visited
    ///    checks or parent bookkeeping per edge, and hub rows
    ///    ([`HUB_MIN_DEG`]) are folded in as whole-word ORs, 64 neighbors
    ///    at a time (the bulk of all edges in a scale-free graph);
    /// 2. a forward greedy walk picks, at each step, the smallest-id
    ///    unbanned neighbor one layer closer to `dst` — the lex-min path.
    ///
    /// Hub ORs ignore bans, so each swept layer is corrected against
    /// `banned_edges` (`(channel, endpoint, endpoint)` of every banned
    /// channel): an endpoint set by a hub OR keeps its bit only if some
    /// unbanned channel really links it to the frontier. A destination
    /// cut off in a small residual pocket exhausts the sweep after a few
    /// tiny layers — failure costs the *pocket's* size, not a sweep of
    /// `src`'s whole component.
    fn lexmin_path(
        &mut self,
        csr: &CsrGraph,
        src: u32,
        dst: u32,
        banned_edges: &[(u32, u32, u32)],
    ) -> Option<(Vec<NodeId>, Vec<u32>)> {
        debug_assert_ne!(src, dst);
        if self.node_bans
            && (bit_get(&self.banned_node_bits, src) || bit_get(&self.banned_node_bits, dst))
        {
            return None;
        }
        let words = csr.words;
        let ban = self.ban_epoch;
        // Recycle the previous search's layers.
        self.spare_bits.append(&mut self.layer_bits);
        self.visited_bits.clear();
        self.visited_bits.resize(words, 0);
        let mut frontier = self.grab_bits(words);
        bit_set(&mut frontier, dst);
        bit_set(&mut self.visited_bits, dst);
        let depth = loop {
            let t = self.layer_bits.len();
            let mut next = self.grab_bits(words);
            // Sweep the frontier into `next`. `src`'s bit is polled once
            // per frontier *word* (at most 63 nodes of overshoot — the
            // layer stays exact either way, see below).
            let mut src_settled = false;
            let mut found = false;
            'sweep: for w_idx in 0..words {
                let mut word = frontier[w_idx];
                if word == 0 {
                    continue;
                }
                while word != 0 {
                    let u = (w_idx * 64) as u32 + word.trailing_zeros();
                    word &= word - 1;
                    match csr.hub_bits_row(u) {
                        Some(row) => {
                            for (n, &r) in next.iter_mut().zip(row) {
                                *n |= r;
                            }
                        }
                        None if !bit_get(&self.ban_touched_bits, u) && csr.disabled_at(u) == 0 => {
                            // Neither a ban nor a disabled channel touches
                            // `u`: fold its row in without per-edge checks.
                            for &v in csr.neighbor_row(u) {
                                bit_set(&mut next, v);
                            }
                        }
                        None => {
                            for &e in csr.row(u) {
                                let c = CsrGraph::channel(e);
                                if self.banned_channel[c as usize] != ban && !csr.is_disabled(c) {
                                    bit_set(&mut next, CsrGraph::neighbor(e));
                                }
                            }
                        }
                    }
                }
                // `src` reached? Its bit is trustworthy unless a banned
                // channel at `src` leads to a frontier hub (whose OR
                // ignores bans) — only then arbitrate against the
                // (complete) frontier, once per layer.
                if !src_settled && bit_get(&next, src) {
                    src_settled = true;
                    let maybe_spurious = banned_edges.iter().any(|&(_, a, b)| {
                        (a == src && csr.hub_row[b as usize] != u32::MAX && bit_get(&frontier, b))
                            || (b == src
                                && csr.hub_row[a as usize] != u32::MAX
                                && bit_get(&frontier, a))
                    });
                    if !maybe_spurious || self.linked_to_frontier(csr, src, &frontier) {
                        found = true;
                        break 'sweep;
                    }
                    bit_clear(&mut next, src);
                }
            }
            if found {
                // Layers 1..=t (the greedy walk's working set) are
                // complete; `src` sits in the partial layer t + 1.
                self.layer_bits.push(frontier);
                self.spare_bits.push(next);
                break t + 2;
            }
            // The verification above is definitive for this layer: a
            // re-set of `src`'s bit by a later hub OR is equally
            // spurious, and must not leak into the layer (it would mark
            // `src` visited and hide it from every later layer).
            if src_settled {
                bit_clear(&mut next, src);
            }
            // Keep only genuinely new nodes — and never banned ones
            // (masking a layer is exactly BFS refusing to visit them) —
            // then audit hub-OR bits that may exist only through a banned
            // channel.
            for (n, v) in next.iter_mut().zip(&self.visited_bits) {
                *n &= !v;
            }
            if self.node_bans {
                for (n, b) in next.iter_mut().zip(&self.banned_node_bits) {
                    *n &= !b;
                }
            }
            for &(_, a, b) in banned_edges {
                for (x, y) in [(a, b), (b, a)] {
                    if csr.hub_row[x as usize] != u32::MAX
                        && bit_get(&frontier, x)
                        && bit_get(&next, y)
                        && !self.linked_to_frontier(csr, y, &frontier)
                    {
                        bit_clear(&mut next, y);
                    }
                }
            }
            let mut any = 0u64;
            for (v, n) in self.visited_bits.iter_mut().zip(&next) {
                *v |= n;
                any |= n;
            }
            if any == 0 {
                // `dst`'s residual component is exhausted: unreachable.
                self.layer_bits.push(frontier);
                self.spare_bits.push(next);
                return None;
            }
            self.layer_bits.push(frontier);
            frontier = next;
        };
        // Forward greedy walk: from `src`, repeatedly take the
        // smallest-id unbanned neighbor one layer closer to `dst`.
        // `layer_bits[t]` holds distance-t nodes; `src` is at `depth - 1`.
        // Bitset order and sorted-row order are both ascending node id,
        // so a hub step can AND its adjacency bitset against the layer
        // instead of scanning hundreds of entries.
        let mut nodes = vec![NodeId(src)];
        let mut channels = Vec::new();
        let mut cur = src;
        for t in (0..depth - 1).rev() {
            let layer = &self.layer_bits[t];
            let mut step = None;
            match csr.hub_bits_row(cur) {
                Some(hubrow) => {
                    'hub: for (w, (&h, &l)) in hubrow.iter().zip(layer.iter()).enumerate() {
                        let mut cand = h & l;
                        while cand != 0 {
                            let v = (w * 64) as u32 + cand.trailing_zeros();
                            cand &= cand - 1;
                            let row = csr.neighbor_row(cur);
                            let idx = row.binary_search(&v).expect("bitset row matches CSR");
                            let c = CsrGraph::channel(csr.row(cur)[idx]);
                            if self.banned_channel[c as usize] != ban {
                                step = Some((v, c));
                                break 'hub;
                            }
                        }
                    }
                }
                None => {
                    for &e in csr.row(cur) {
                        let v = CsrGraph::neighbor(e);
                        let c = CsrGraph::channel(e);
                        if self.banned_channel[c as usize] != ban
                            && !csr.is_disabled(c)
                            && bit_get(layer, v)
                        {
                            step = Some((v, c));
                            break;
                        }
                    }
                }
            }
            let (v, c) = step.expect("complete layer precedes the walk");
            nodes.push(NodeId(v));
            channels.push(c);
            cur = v;
        }
        debug_assert_eq!(cur, dst);
        Some((nodes, channels))
    }
}

/// Batched per-source path oracle: one BFS tree and one reusable
/// [`BfsWorkspace`] answer every destination of a source.
///
/// The lazy per-pair oracles pay, for *each* pair, a workspace allocation
/// plus `k` BFS traversals — and the first of those traversals is always
/// the same unbanned shortest-path search from the source. Rooting the
/// oracle at a source amortizes exactly that: the unbanned BFS runs once
/// as a full parent tree (identical tie-breaks, so the extracted first
/// path is bit-identical to what the per-pair search finds), and the
/// workspace with its epoch-stamped flags is reused across destinations
/// and, via [`SourceOracle::retarget`], across sources.
///
/// Candidate sets produced here are bit-identical to [`k_shortest_paths`]
/// and [`k_edge_disjoint_paths`] — the per-pair functions are themselves
/// thin wrappers over a single-destination oracle.
#[derive(Debug)]
pub struct SourceOracle<'a> {
    topo: &'a Topology,
    csr: &'a CsrGraph,
    ws: BfsWorkspace,
    src: u32,
    /// Unbanned BFS parent tree from `src`, as [`Topology::bfs_parents`]
    /// builds it: packed `(parent, via-channel)` per node (`u64::MAX` =
    /// unreached; the source points at itself). Built lazily: a source
    /// asked about only a destination or two gets per-destination reverse
    /// sweeps (identical results — both compute the lex-min shortest
    /// path) instead of paying a full-graph traversal up front.
    tree: Vec<u64>,
    tree_built: bool,
    /// First-path queries served for this source (drives tree laziness).
    queries: u32,
}

/// After this many first-path queries for one source, amortizing a full
/// BFS tree beats per-destination sweeps.
const TREE_AFTER_QUERIES: u32 = 3;

impl<'a> SourceOracle<'a> {
    /// Roots an oracle at `src`. `csr` must be [`CsrGraph::new`] of `topo`.
    pub fn new(topo: &'a Topology, csr: &'a CsrGraph, src: NodeId) -> Self {
        debug_assert_eq!(csr.node_count(), topo.node_count());
        let n = topo.node_count();
        SourceOracle {
            topo,
            csr,
            ws: BfsWorkspace::new(n, topo.channel_count()),
            src: src.0,
            tree: vec![u64::MAX; n],
            tree_built: false,
            queries: 0,
        }
    }

    /// Re-roots the oracle at a different source, reusing every buffer.
    pub fn retarget(&mut self, src: NodeId) {
        if src.0 == self.src {
            return;
        }
        self.src = src.0;
        self.tree_built = false;
        self.queries = 0;
    }

    /// The unbanned lex-min shortest path to `dst` with its hop channels:
    /// from the tree when built, by one reverse sweep otherwise (building
    /// the tree once a source proves hot). Requires a fresh ban epoch.
    fn first_path(&mut self, dst: u32) -> Option<(Vec<NodeId>, Vec<u32>)> {
        self.queries += 1;
        if !self.tree_built && self.queries > TREE_AFTER_QUERIES {
            self.build_tree();
        }
        if self.tree_built {
            self.tree_path(dst)
        } else {
            self.ws.lexmin_path(self.csr, self.src, dst, &[])
        }
    }

    /// The source this oracle is rooted at.
    pub fn source(&self) -> NodeId {
        NodeId(self.src)
    }

    /// Full unbanned BFS parent tree from `src` — the same traversal (and
    /// tie-breaks) as [`Topology::bfs_parents`].
    fn build_tree(&mut self) {
        self.tree_built = true;
        self.tree.fill(u64::MAX);
        self.tree[self.src as usize] = self.src as u64;
        // Visited flags through the L1-resident epoch bytes; the 8-byte
        // `tree` entries are only written on discovery.
        self.ws.next_bfs_epoch();
        let epoch = self.ws.bfs_epoch;
        self.ws.seen[self.src as usize] = epoch;
        self.ws.fifo[0] = self.src;
        let mut len = 1usize;
        let mut head = 0;
        while head < len {
            let u = self.ws.fifo[head];
            head += 1;
            for &e in self.csr.row(u) {
                if self.csr.is_disabled(CsrGraph::channel(e)) {
                    continue;
                }
                let v = CsrGraph::neighbor(e);
                if self.ws.seen[v as usize] != epoch {
                    self.ws.seen[v as usize] = epoch;
                    self.tree[v as usize] = u as u64 | ((CsrGraph::channel(e) as u64) << 32);
                    self.ws.fifo[len] = v;
                    len += 1;
                }
            }
        }
    }

    /// The tree path to `dst` (nodes plus hop channels), or `None` when
    /// unreached. `dst == src` yields the single-node path, as
    /// [`Topology::shortest_path`] does.
    fn tree_path(&self, dst: u32) -> Option<(Vec<NodeId>, Vec<u32>)> {
        if self.tree[dst as usize] == u64::MAX {
            return None;
        }
        let mut nodes = vec![NodeId(dst)];
        let mut channels = Vec::new();
        let mut cur = dst;
        while cur != self.src {
            let packed = self.tree[cur as usize];
            channels.push((packed >> 32) as u32);
            cur = packed as u32;
            nodes.push(NodeId(cur));
        }
        nodes.reverse();
        channels.reverse();
        Some((nodes, channels))
    }

    /// The single BFS shortest path to `dst`, exactly as
    /// [`Topology::shortest_path`] computes it (including the single-node
    /// `dst == src` path).
    pub fn shortest(&mut self, dst: NodeId) -> Option<Path> {
        if dst.0 == self.src {
            return Some(Path::new(vec![dst]));
        }
        self.ws.new_ban_epoch();
        self.first_path(dst.0).map(|(nodes, _)| Path::new(nodes))
    }

    /// Up to `k` pairwise edge-disjoint paths to `dst` — bit-identical to
    /// [`k_edge_disjoint_paths`].
    pub fn edge_disjoint(&mut self, dst: NodeId, k: usize) -> Vec<Path> {
        if k == 0 || dst.0 == self.src {
            return Vec::new();
        }
        self.ws.new_ban_epoch();
        let Some((nodes, channels)) = self.first_path(dst.0) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(k);
        // Channels every accepted path used, with their endpoints (the
        // sweep corrects hub-OR overreach against this list).
        let mut banned_edges: Vec<(u32, u32, u32)> = Vec::new();
        for (i, c) in channels.into_iter().enumerate() {
            self.ws.ban_channel(c, nodes[i].0, nodes[i + 1].0);
            banned_edges.push((c, nodes[i].0, nodes[i + 1].0));
        }
        out.push(Path::new(nodes));
        while out.len() < k {
            // Exact pruning: a further edge-disjoint path must leave `src`
            // and enter `dst` over channels no earlier path used. When
            // either endpoint is exhausted — the overwhelmingly common way
            // low-degree pairs run out of paths — the search below could
            // only fail; skip it.
            if !self
                .ws
                .has_unbanned_channel(self.csr, self.src, banned_edges.len())
                || !self
                    .ws
                    .has_unbanned_channel(self.csr, dst.0, banned_edges.len())
            {
                break;
            }
            let Some((nodes, channels)) =
                self.ws
                    .lexmin_path(self.csr, self.src, dst.0, &banned_edges)
            else {
                break;
            };
            for (i, c) in channels.into_iter().enumerate() {
                self.ws.ban_channel(c, nodes[i].0, nodes[i + 1].0);
                banned_edges.push((c, nodes[i].0, nodes[i + 1].0));
            }
            out.push(Path::new(nodes));
        }
        out
    }

    /// Yen's algorithm: up to `k` loopless shortest paths to `dst`, in
    /// non-decreasing length — bit-identical to [`k_shortest_paths`].
    pub fn k_shortest(&mut self, dst: NodeId, k: usize) -> Vec<Path> {
        if k == 0 || dst.0 == self.src {
            return Vec::new();
        }
        self.ws.new_ban_epoch();
        let Some((nodes, _)) = self.first_path(dst.0) else {
            return Vec::new();
        };
        let first = Path::new(nodes);
        let mut accepted: Vec<Path> = vec![first.clone()];
        // Hashed membership of every path ever accepted or pooled: the
        // per-spur dedup used to scan `accepted` and `candidates` linearly
        // (quadratic in the candidate pool at Ripple scale); one set
        // membership test admits exactly the same candidates.
        let mut seen: HashSet<Path> = HashSet::new();
        seen.insert(first);
        // Candidate pool, kept sorted by (hops, nodes).
        let mut candidates: Vec<Path> = Vec::new();
        while accepted.len() < k {
            let prev = accepted.last().expect("at least one accepted").clone();
            for i in 0..prev.hop_count() {
                let spur_node = prev.nodes[i];
                let root = &prev.nodes[..=i];
                // Ban the outgoing channel of every accepted path sharing
                // this root, and the root nodes except the spur node
                // (looplessness). A fresh epoch clears the previous spur's
                // bans.
                self.ws.new_ban_epoch();
                let mut banned_edges: Vec<(u32, u32, u32)> = Vec::new();
                for p in &accepted {
                    if p.nodes.len() > i + 1 && p.nodes[..=i] == *root {
                        if let Some(c) = self.topo.channel_between(p.nodes[i], p.nodes[i + 1]) {
                            self.ws.ban_channel(c.0, p.nodes[i].0, p.nodes[i + 1].0);
                            banned_edges.push((c.0, p.nodes[i].0, p.nodes[i + 1].0));
                        }
                    }
                }
                for n in &root[..i] {
                    self.ws.ban_node(n.0);
                }
                if let Some((spur_nodes, _)) =
                    self.ws
                        .lexmin_path(self.csr, spur_node.0, dst.0, &banned_edges)
                {
                    let mut nodes = root[..i].to_vec();
                    nodes.extend(spur_nodes);
                    let cand = Path::new(nodes);
                    if seen.insert(cand.clone()) {
                        candidates.push(cand);
                    }
                }
            }
            // Leave no stale bans behind for the next caller.
            self.ws.new_ban_epoch();
            if candidates.is_empty() {
                break;
            }
            candidates.sort_by(|a, b| {
                a.hop_count()
                    .cmp(&b.hop_count())
                    .then_with(|| a.nodes.cmp(&b.nodes))
            });
            accepted.push(candidates.remove(0));
        }
        accepted
    }
}

/// Yen's algorithm: up to `k` loopless shortest paths by hop count, in
/// non-decreasing length (ties: lexicographic node order).
pub fn k_shortest_paths(topo: &Topology, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    if k == 0 || src == dst {
        return Vec::new();
    }
    let csr = CsrGraph::new(topo);
    SourceOracle::new(topo, &csr, src).k_shortest(dst, k)
}

/// Up to `k` pairwise edge-disjoint paths, found by repeatedly taking the
/// shortest path and deleting its channels (§6.1's "4 disjoint shortest
/// paths" between every pair).
///
/// A degenerate `src == dst` query returns the empty set (it used to
/// return `k` copies of the zero-hop path: the single-node path has no
/// channels to delete, so the successive-shortest-path loop never made
/// progress).
pub fn k_edge_disjoint_paths(topo: &Topology, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    if k == 0 || src == dst {
        return Vec::new();
    }
    let csr = CsrGraph::new(topo);
    SourceOracle::new(topo, &csr, src).edge_disjoint(dst, k)
}

/// The widest path from `src` to `dst`, where a path's width is the minimum
/// of `width(channel)` over its hops. Ties break toward fewer hops, then
/// smaller node ids. Channels with zero width are unusable. A degenerate
/// `src == dst` query has no usable path and returns `None`, mirroring the
/// other oracles (the zero-hop path has no channels, hence no width).
pub fn widest_path(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    width: impl Fn(ChannelId, Direction) -> u64,
) -> Option<Path> {
    if src == dst {
        return None;
    }
    let n = topo.node_count();
    // best[(node)] = (width, neg hops) maximized lexicographically.
    let mut best: Vec<(u64, i64)> = vec![(0, 0); n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut done = vec![false; n];
    best[src.index()] = (u64::MAX, 0);
    loop {
        // Extract the unfinished node with the best (width, -hops, -id).
        let mut pick: Option<usize> = None;
        for i in 0..n {
            if !done[i] && best[i].0 > 0 {
                let better = match pick {
                    None => true,
                    Some(p) => best[i] > best[p] || (best[i] == best[p] && i < p),
                };
                if better {
                    pick = Some(i);
                }
            }
        }
        let Some(u) = pick else { break };
        if u == dst.index() {
            break;
        }
        done[u] = true;
        let (wu, hu) = best[u];
        for adj in topo.neighbors(NodeId::from_index(u)) {
            let dir = topo
                .channel(adj.channel)
                .direction_from(NodeId::from_index(u));
            let w = width(adj.channel, dir).min(wu);
            let cand = (w, hu - 1);
            let vi = adj.neighbor.index();
            if !done[vi] && w > 0 && cand > best[vi] {
                best[vi] = cand;
                parent[vi] = Some(NodeId::from_index(u));
            }
        }
    }
    if best[dst.index()].0 == 0 {
        return None;
    }
    let mut nodes = vec![dst];
    let mut cur = dst;
    while let Some(p) = parent[cur.index()] {
        nodes.push(p);
        cur = p;
    }
    if cur != src {
        return None;
    }
    nodes.reverse();
    Some(Path::new(nodes))
}

/// Up to `k` high-capacity paths: repeatedly take the widest path, then
/// remove its bottleneck channel and repeat. Not globally optimal (that
/// problem is harder), but matches what a practical host probing "the K
/// highest-capacity paths" would discover. `src == dst` yields the empty
/// set (it used to panic looking for the zero-hop path's bottleneck).
pub fn k_widest_paths(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    k: usize,
    width: impl Fn(ChannelId, Direction) -> u64,
) -> Vec<Path> {
    if k == 0 || src == dst {
        return Vec::new();
    }
    let mut removed: HashSet<ChannelId> = HashSet::new();
    let mut out: Vec<Path> = Vec::new();
    while out.len() < k {
        let w = |c: ChannelId, d: Direction| if removed.contains(&c) { 0 } else { width(c, d) };
        let Some(p) = widest_path(topo, src, dst, w) else {
            break;
        };
        // Identify and remove the bottleneck channel.
        let (bottleneck_channel, _) = p
            .channels(topo)
            .into_iter()
            .min_by_key(|&(c, d)| width(c, d))
            .expect("path has at least one hop");
        removed.insert(bottleneck_channel);
        if !out.contains(&p) {
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_topology::gen;
    use spider_types::Amount;

    const CAP: Amount = Amount::from_xrp(100);

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Diamond: 0-1-3, 0-2-3, plus direct 0-3.
    fn diamond() -> Topology {
        let mut b = Topology::builder(4);
        b.channel(n(0), n(1), CAP).unwrap();
        b.channel(n(1), n(3), CAP).unwrap();
        b.channel(n(0), n(2), CAP).unwrap();
        b.channel(n(2), n(3), CAP).unwrap();
        b.channel(n(0), n(3), CAP).unwrap();
        b.build()
    }

    #[test]
    fn path_basics() {
        let p = Path::new(vec![n(0), n(1), n(3)]);
        assert_eq!(p.hop_count(), 2);
        assert_eq!(p.source(), n(0));
        assert_eq!(p.dest(), n(3));
        let hops = p.channels(&diamond());
        assert_eq!(hops.len(), 2);
    }

    #[test]
    fn yen_orders_by_length_then_lex() {
        let t = diamond();
        let paths = k_shortest_paths(&t, n(0), n(3), 5);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].nodes, vec![n(0), n(3)]);
        assert_eq!(paths[1].nodes, vec![n(0), n(1), n(3)]);
        assert_eq!(paths[2].nodes, vec![n(0), n(2), n(3)]);
    }

    #[test]
    fn yen_k_limits_output() {
        let t = diamond();
        assert_eq!(k_shortest_paths(&t, n(0), n(3), 2).len(), 2);
        assert_eq!(k_shortest_paths(&t, n(0), n(3), 0).len(), 0);
        assert_eq!(k_shortest_paths(&t, n(0), n(0), 4).len(), 0);
    }

    #[test]
    fn yen_paths_are_loopless_and_distinct() {
        let t = gen::isp_topology(CAP);
        let paths = k_shortest_paths(&t, n(8), n(20), 8);
        assert!(paths.len() >= 4);
        let mut seen = HashSet::new();
        for p in &paths {
            assert!(seen.insert(p.nodes.clone()), "duplicate path");
            let mut s = p.nodes.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), p.nodes.len(), "loop in path");
            assert_eq!(p.source(), n(8));
            assert_eq!(p.dest(), n(20));
        }
        // Non-decreasing length.
        for w in paths.windows(2) {
            assert!(w[0].hop_count() <= w[1].hop_count());
        }
    }

    #[test]
    fn yen_on_disconnected_pair() {
        let mut b = Topology::builder(4);
        b.channel(n(0), n(1), CAP).unwrap();
        b.channel(n(2), n(3), CAP).unwrap();
        let t = b.build();
        assert!(k_shortest_paths(&t, n(0), n(3), 3).is_empty());
    }

    #[test]
    fn edge_disjoint_paths_share_no_channel() {
        let t = diamond();
        let paths = k_edge_disjoint_paths(&t, n(0), n(3), 4);
        assert_eq!(paths.len(), 3); // direct, via 1, via 2
        let mut used = HashSet::new();
        for p in &paths {
            for (c, _) in p.channels(&t) {
                assert!(used.insert(c), "channel reused across paths");
            }
        }
    }

    #[test]
    fn edge_disjoint_respects_k() {
        let t = diamond();
        assert_eq!(k_edge_disjoint_paths(&t, n(0), n(3), 2).len(), 2);
    }

    /// Regression: the degenerate self-pair used to loop `k` times on the
    /// zero-hop path (no channels to ban ⇒ no progress) and return `k`
    /// duplicates.
    #[test]
    fn edge_disjoint_self_pair_is_empty() {
        let t = diamond();
        assert!(k_edge_disjoint_paths(&t, n(0), n(0), 4).is_empty());
        let csr = CsrGraph::new(&t);
        assert!(SourceOracle::new(&t, &csr, n(2))
            .edge_disjoint(n(2), 4)
            .is_empty());
    }

    /// Regression: `k_widest_paths(s, s, …)` used to panic unwrapping the
    /// zero-hop path's bottleneck channel; `widest_path(s, s, …)` returned
    /// a zero-hop "path" no routing scheme can use.
    #[test]
    fn widest_self_pair_has_no_paths() {
        let t = diamond();
        assert!(widest_path(&t, n(1), n(1), |_, _| 7).is_none());
        assert!(k_widest_paths(&t, n(1), n(1), 3, |_, _| 7).is_empty());
        assert!(k_widest_paths(&t, n(0), n(3), 0, |_, _| 7).is_empty());
    }

    #[test]
    fn paper_uses_4_disjoint_paths_on_isp() {
        let t = gen::isp_topology(CAP);
        // Core nodes have many disjoint routes; 4 must exist.
        let paths = k_edge_disjoint_paths(&t, n(0), n(5), 4);
        assert_eq!(paths.len(), 4);
    }

    /// The batched per-source oracle must agree with the per-pair oracles
    /// on every destination — including after a `retarget`, and with calls
    /// of both kinds interleaved on one workspace (stale bans from a
    /// previous destination or algorithm must never leak).
    #[test]
    fn source_oracle_matches_per_pair_oracles() {
        let t = gen::isp_topology(CAP);
        let csr = CsrGraph::new(&t);
        let mut oracle = SourceOracle::new(&t, &csr, n(8));
        for src in [8u32, 0, 31] {
            oracle.retarget(n(src));
            assert_eq!(oracle.source(), n(src));
            for dst in 0..t.node_count() as u32 {
                assert_eq!(
                    oracle.edge_disjoint(n(dst), 4),
                    k_edge_disjoint_paths(&t, n(src), n(dst), 4),
                    "edge-disjoint {src}->{dst}"
                );
                assert_eq!(
                    oracle.k_shortest(n(dst), 4),
                    k_shortest_paths(&t, n(src), n(dst), 4),
                    "yen {src}->{dst}"
                );
                assert_eq!(
                    oracle.shortest(n(dst)).map(|p| p.nodes),
                    t.shortest_path(n(src), n(dst)),
                    "shortest {src}->{dst}"
                );
            }
        }
    }

    /// Literal successive-shortest-path BFS, kept deliberately naive: one
    /// `VecDeque` BFS per path over `HashSet` bans. The production oracle
    /// computes the same paths through the reverse layer sweep; this
    /// reference pins the "BFS over sorted adjacency = lex-min shortest
    /// path" equivalence the sweep relies on.
    fn reference_edge_disjoint(topo: &Topology, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
        use std::collections::VecDeque;
        if k == 0 || src == dst {
            return Vec::new();
        }
        let mut banned: HashSet<ChannelId> = HashSet::new();
        let mut out = Vec::new();
        while out.len() < k {
            let mut parent: Vec<Option<NodeId>> = vec![None; topo.node_count()];
            let mut seen = vec![false; topo.node_count()];
            seen[src.index()] = true;
            let mut q = VecDeque::from([src]);
            let mut found = false;
            'bfs: while let Some(u) = q.pop_front() {
                for adj in topo.neighbors(u) {
                    if banned.contains(&adj.channel) || seen[adj.neighbor.index()] {
                        continue;
                    }
                    seen[adj.neighbor.index()] = true;
                    parent[adj.neighbor.index()] = Some(u);
                    if adj.neighbor == dst {
                        found = true;
                        break 'bfs;
                    }
                    q.push_back(adj.neighbor);
                }
            }
            if !found {
                break;
            }
            let mut nodes = vec![dst];
            let mut cur = dst;
            while let Some(p) = parent[cur.index()] {
                nodes.push(p);
                cur = p;
            }
            nodes.reverse();
            let p = Path::new(nodes);
            for (c, _) in p.channels(topo) {
                banned.insert(c);
            }
            out.push(p);
        }
        out
    }

    /// Literal Yen over a naive BFS with `HashSet` bans (the shape of the
    /// pre-sweep implementation), for pinning `k_shortest_paths`.
    fn reference_k_shortest(topo: &Topology, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
        use std::collections::VecDeque;
        fn bfs(
            topo: &Topology,
            src: NodeId,
            dst: NodeId,
            banned_c: &HashSet<ChannelId>,
            banned_n: &HashSet<NodeId>,
        ) -> Option<Path> {
            if banned_n.contains(&src) || banned_n.contains(&dst) {
                return None;
            }
            if src == dst {
                return Some(Path::new(vec![src]));
            }
            let mut parent: Vec<Option<NodeId>> = vec![None; topo.node_count()];
            let mut seen = vec![false; topo.node_count()];
            seen[src.index()] = true;
            let mut q = VecDeque::from([src]);
            while let Some(u) = q.pop_front() {
                for adj in topo.neighbors(u) {
                    if banned_c.contains(&adj.channel)
                        || banned_n.contains(&adj.neighbor)
                        || seen[adj.neighbor.index()]
                    {
                        continue;
                    }
                    seen[adj.neighbor.index()] = true;
                    parent[adj.neighbor.index()] = Some(u);
                    if adj.neighbor == dst {
                        let mut nodes = vec![dst];
                        let mut cur = dst;
                        while let Some(p) = parent[cur.index()] {
                            nodes.push(p);
                            cur = p;
                        }
                        nodes.reverse();
                        return Some(Path::new(nodes));
                    }
                    q.push_back(adj.neighbor);
                }
            }
            None
        }
        if k == 0 || src == dst {
            return Vec::new();
        }
        let Some(first) = bfs(topo, src, dst, &HashSet::new(), &HashSet::new()) else {
            return Vec::new();
        };
        let mut accepted = vec![first];
        let mut candidates: Vec<Path> = Vec::new();
        while accepted.len() < k {
            let prev = accepted.last().unwrap().clone();
            for i in 0..prev.hop_count() {
                let root = &prev.nodes[..=i];
                let mut banned_c = HashSet::new();
                let mut banned_n = HashSet::new();
                for p in &accepted {
                    if p.nodes.len() > i + 1 && p.nodes[..=i] == *root {
                        if let Some(c) = topo.channel_between(p.nodes[i], p.nodes[i + 1]) {
                            banned_c.insert(c);
                        }
                    }
                }
                for n in &root[..i] {
                    banned_n.insert(*n);
                }
                if let Some(spur) = bfs(topo, prev.nodes[i], dst, &banned_c, &banned_n) {
                    let mut nodes = root[..i].to_vec();
                    nodes.extend(spur.nodes);
                    let cand = Path::new(nodes);
                    if !accepted.contains(&cand) && !candidates.contains(&cand) {
                        candidates.push(cand);
                    }
                }
            }
            if candidates.is_empty() {
                break;
            }
            candidates.sort_by(|a, b| {
                a.hop_count()
                    .cmp(&b.hop_count())
                    .then_with(|| a.nodes.cmp(&b.nodes))
            });
            accepted.push(candidates.remove(0));
        }
        accepted
    }

    /// Yen over the layer sweep must match the literal implementation —
    /// node bans (spur roots) and channel bans together.
    #[test]
    fn k_shortest_matches_literal_yen() {
        use spider_types::DetRng;
        let mut rng = DetRng::new(1234);
        let graphs = vec![
            diamond(),
            gen::isp_topology(CAP),
            gen::barabasi_albert(200, 2, CAP, &mut rng),
        ];
        for t in &graphs {
            for _ in 0..150 {
                let src = NodeId(rng.index(t.node_count()) as u32);
                let dst = NodeId(rng.index(t.node_count()) as u32);
                let k = 1 + rng.index(4);
                assert_eq!(
                    k_shortest_paths(t, src, dst, k),
                    reference_k_shortest(t, src, dst, k),
                    "{src}->{dst} k={k} on {} nodes",
                    t.node_count()
                );
            }
        }
    }

    /// The layer-sweep oracle must reproduce the literal BFS bit for bit,
    /// including on hub-heavy graphs where the sweep's whole-word OR path
    /// and its banned-edge corrections are exercised.
    #[test]
    fn edge_disjoint_matches_literal_bfs() {
        use spider_types::DetRng;
        let mut rng = DetRng::new(77);
        // Scale-free graphs cross HUB_MIN_DEG at their hubs; the ISP graph
        // and the diamond cover the dense and the tiny end.
        let mut graphs = vec![diamond(), gen::isp_topology(CAP)];
        graphs.push(gen::barabasi_albert(300, 3, CAP, &mut rng));
        graphs.push(gen::barabasi_albert(150, 1, CAP, &mut rng));
        for t in &graphs {
            assert!(
                t.node_count() < 320,
                "keep the exhaustive comparison affordable"
            );
            for _ in 0..600 {
                let src = NodeId(rng.index(t.node_count()) as u32);
                let dst = NodeId(rng.index(t.node_count()) as u32);
                let k = 1 + rng.index(4);
                assert_eq!(
                    k_edge_disjoint_paths(t, src, dst, k),
                    reference_edge_disjoint(t, src, dst, k),
                    "{src}->{dst} k={k} on {} nodes",
                    t.node_count()
                );
            }
        }
    }

    /// A masked `CsrGraph` (channels disabled in place, no reflattening)
    /// must answer every oracle exactly like a cold build of the filtered
    /// topology — compared as node sequences, since channel ids shift in
    /// the rebuilt graph. Random masks over hub-heavy graphs exercise the
    /// cleared hub-bitset rows, the check-free-tier gating, and the
    /// feasibility shortcuts.
    #[test]
    fn disabled_channels_match_cold_filtered_rebuild() {
        use spider_types::DetRng;
        let mut rng = DetRng::new(2026);
        let graphs = vec![
            diamond(),
            gen::isp_topology(CAP),
            gen::barabasi_albert(250, 3, CAP, &mut rng),
        ];
        for t in &graphs {
            for _case in 0..6 {
                // Disable a random ~20 % of channels.
                let disabled: Vec<ChannelId> = t
                    .channels()
                    .map(|(id, _)| id)
                    .filter(|_| rng.chance(0.2))
                    .collect();
                let mut csr = CsrGraph::new(t);
                for &c in &disabled {
                    csr.set_channel_enabled(t, c, false);
                }
                // Cold rebuild without the disabled channels.
                let disabled_set: HashSet<ChannelId> = disabled.iter().copied().collect();
                let mut b = Topology::builder(t.node_count());
                for (id, ch) in t.channels() {
                    if !disabled_set.contains(&id) {
                        b.channel(ch.u, ch.v, ch.capacity).unwrap();
                    }
                }
                let filtered = b.build();
                let fcsr = CsrGraph::new(&filtered);
                for _ in 0..40 {
                    let src = NodeId(rng.index(t.node_count()) as u32);
                    let dst = NodeId(rng.index(t.node_count()) as u32);
                    if src == dst {
                        continue;
                    }
                    let k = 1 + rng.index(4);
                    let mut masked = SourceOracle::new(t, &csr, src);
                    let mut cold = SourceOracle::new(&filtered, &fcsr, src);
                    let as_nodes =
                        |ps: Vec<Path>| ps.into_iter().map(|p| p.nodes).collect::<Vec<_>>();
                    assert_eq!(
                        as_nodes(masked.edge_disjoint(dst, k)),
                        as_nodes(cold.edge_disjoint(dst, k)),
                        "edge-disjoint {src}->{dst} k={k}"
                    );
                    assert_eq!(
                        as_nodes(masked.k_shortest(dst, k)),
                        as_nodes(cold.k_shortest(dst, k)),
                        "yen {src}->{dst} k={k}"
                    );
                    assert_eq!(
                        masked.shortest(dst).map(|p| p.nodes),
                        cold.shortest(dst).map(|p| p.nodes),
                        "shortest {src}->{dst}"
                    );
                }
                // Re-enabling restores the unmasked answers.
                for &c in &disabled {
                    csr.set_channel_enabled(t, c, true);
                }
                assert!(t.channels().all(|(id, _)| csr.channel_enabled(id)));
                let full = CsrGraph::new(t);
                let src = NodeId(0);
                let dst = NodeId((t.node_count() - 1) as u32);
                assert_eq!(
                    SourceOracle::new(t, &csr, src).edge_disjoint(dst, 4),
                    SourceOracle::new(t, &full, src).edge_disjoint(dst, 4),
                );
            }
        }
    }

    #[test]
    fn source_oracle_on_disconnected_graph() {
        let mut b = Topology::builder(4);
        b.channel(n(0), n(1), CAP).unwrap();
        b.channel(n(2), n(3), CAP).unwrap();
        let t = b.build();
        let csr = CsrGraph::new(&t);
        let mut oracle = SourceOracle::new(&t, &csr, n(0));
        assert!(oracle.edge_disjoint(n(3), 4).is_empty());
        assert!(oracle.k_shortest(n(3), 4).is_empty());
        assert!(oracle.shortest(n(3)).is_none());
        assert_eq!(oracle.shortest(n(1)).unwrap().nodes, vec![n(0), n(1)]);
    }

    #[test]
    fn csr_matches_topology() {
        let t = gen::isp_topology(CAP);
        let csr = CsrGraph::new(&t);
        assert_eq!(csr.node_count(), t.node_count());
        assert_eq!(csr.channel_count(), t.channel_count());
        for u in 0..t.node_count() as u32 {
            let row = csr.row(u);
            let adj = t.neighbors(NodeId(u));
            assert_eq!(row.len(), adj.len());
            for (&e, a) in row.iter().zip(adj) {
                assert_eq!(CsrGraph::neighbor(e), a.neighbor.0);
                assert_eq!(CsrGraph::channel(e), a.channel.0);
            }
        }
    }

    #[test]
    fn widest_path_prefers_capacity_over_hops() {
        // 0-1 thin direct; 0-2-1 fat detour.
        let mut b = Topology::builder(3);
        b.channel(n(0), n(1), CAP).unwrap();
        b.channel(n(0), n(2), CAP).unwrap();
        b.channel(n(2), n(1), CAP).unwrap();
        let t = b.build();
        let thin = t.channel_between(n(0), n(1)).unwrap();
        let width = |c: ChannelId, _d: Direction| if c == thin { 5 } else { 50 };
        let p = widest_path(&t, n(0), n(1), width).unwrap();
        assert_eq!(p.nodes, vec![n(0), n(2), n(1)]);
    }

    #[test]
    fn widest_path_tie_breaks_to_fewer_hops() {
        let t = diamond();
        let p = widest_path(&t, n(0), n(3), |_, _| 7).unwrap();
        assert_eq!(p.nodes, vec![n(0), n(3)]);
    }

    #[test]
    fn widest_path_none_when_zero_capacity() {
        let t = diamond();
        assert!(widest_path(&t, n(0), n(3), |_, _| 0).is_none());
    }

    #[test]
    fn widest_path_directional_widths() {
        // Width depends on direction: 0→1 wide, 1→0 zero.
        let mut b = Topology::builder(2);
        b.channel(n(0), n(1), CAP).unwrap();
        let t = b.build();
        let w = |_c: ChannelId, d: Direction| if d == Direction::Forward { 9 } else { 0 };
        assert!(widest_path(&t, n(0), n(1), w).is_some());
        assert!(widest_path(&t, n(1), n(0), w).is_none());
    }

    #[test]
    fn k_widest_returns_decent_set() {
        let t = diamond();
        let paths = k_widest_paths(&t, n(0), n(3), 3, |_, _| 10);
        assert_eq!(paths.len(), 3);
        let mut seen: HashSet<Vec<NodeId>> = HashSet::new();
        for p in &paths {
            assert!(seen.insert(p.nodes.clone()));
        }
    }
}
