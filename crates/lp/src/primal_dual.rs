//! The decentralized primal-dual algorithm of §5.3 (eqs. 21–24).
//!
//! Each channel direction keeps two prices: λ (capacity congestion) and µ
//! (imbalance). The price of traversing edge `(u,v)` is
//! `z_(u,v) = λ_(u,v) + λ_(v,u) + µ_(u,v) − µ_(v,u)`; a path's price is the
//! sum over its hops. End-hosts nudge each path's rate toward cheap paths
//! (`x_p += α(1 − z_p)`, projected onto the demand simplex), routers update
//! prices from what they observe locally, and — when on-chain rebalancing
//! is enabled — each channel adapts its top-up rate `b_(u,v)` by comparing
//! its imbalance price µ against the rebalancing cost γ.
//!
//! For small step sizes the iterates converge to the optimum of the LP in
//! eqs. (6)–(11); the tests verify convergence against the simplex solver.

use crate::fluid::{FluidProblem, FluidSolution, PathFlow, PathSelection};
use crate::paths::Path;
use spider_paygraph::PaymentGraph;
use spider_topology::Topology;
use spider_types::{Direction, NodeId};

/// Step sizes and run length for the primal-dual iteration.
#[derive(Debug, Clone)]
pub struct PrimalDualConfig {
    /// Path-rate step size α (eq. 21).
    pub alpha: f64,
    /// Rebalancing-rate step size β (eq. 22).
    pub beta: f64,
    /// Capacity-price step size η (eq. 23).
    pub eta: f64,
    /// Imbalance-price step size κ (eq. 24).
    pub kappa: f64,
    /// On-chain rebalancing cost γ; ignored unless `rebalancing`.
    pub gamma: f64,
    /// Whether channels may rebalance on-chain (b > 0).
    pub rebalancing: bool,
    /// Number of iterations.
    pub iterations: usize,
    /// Record the throughput every `sample_every` iterations.
    pub sample_every: usize,
}

impl PrimalDualConfig {
    /// Step sizes that converge reliably when demands are O(`scale`) units
    /// per second: rate steps proportional to the demand scale, price steps
    /// inversely proportional (so prices move O(1) per round trip).
    pub fn for_demand_scale(scale: f64) -> Self {
        assert!(scale > 0.0 && scale.is_finite(), "invalid demand scale");
        PrimalDualConfig {
            alpha: 0.01 * scale,
            beta: 0.01 * scale,
            eta: 0.01 / scale,
            kappa: 0.01 / scale,
            gamma: 0.0,
            rebalancing: false,
            iterations: 20_000,
            sample_every: 100,
        }
    }
}

/// Result of a primal-dual run.
#[derive(Debug, Clone)]
pub struct PrimalDualSolution {
    /// Final total rate (Σ x_p).
    pub throughput: f64,
    /// Final per-path rates (zero-rate paths omitted).
    pub flows: Vec<PathFlow>,
    /// Final total on-chain rebalancing rate (0 unless enabled).
    pub total_rebalancing: f64,
    /// `(iteration, throughput)` samples for convergence plots.
    pub trajectory: Vec<(usize, f64)>,
}

impl PrimalDualSolution {
    /// Converts into the [`FluidSolution`] shape for comparisons.
    pub fn as_fluid(&self) -> FluidSolution {
        FluidSolution {
            throughput: self.throughput,
            flows: self.flows.clone(),
        }
    }
}

/// Runs the primal-dual algorithm on `topo`/`demands` with candidate paths
/// chosen by `selection`.
pub fn solve(
    topo: &Topology,
    demands: &PaymentGraph,
    delta: f64,
    selection: PathSelection,
    cfg: &PrimalDualConfig,
) -> PrimalDualSolution {
    let problem = FluidProblem::new(topo, demands, delta, selection);
    solve_problem(topo, demands, delta, &problem, cfg)
}

/// Runs the algorithm on an explicit [`FluidProblem`] (so callers can
/// hand-pick paths and compare against [`FluidProblem::solve_balanced`]).
pub fn solve_problem(
    topo: &Topology,
    demands: &PaymentGraph,
    delta: f64,
    problem: &FluidProblem,
    cfg: &PrimalDualConfig,
) -> PrimalDualSolution {
    // Flatten variables: (pair index, path) with contiguous ids.
    let mut pair_paths: Vec<(NodeId, NodeId, f64, Vec<Path>)> = Vec::new();
    for e in demands.edges() {
        let paths = problem.paths_for(e.src, e.dst).to_vec();
        if !paths.is_empty() {
            pair_paths.push((e.src, e.dst, e.rate, paths));
        }
    }
    // Precompute hop lists per variable.
    let mut var_pair: Vec<usize> = Vec::new();
    let mut var_hops: Vec<Vec<(usize, Direction)>> = Vec::new();
    let mut pair_vars: Vec<Vec<usize>> = vec![Vec::new(); pair_paths.len()];
    let mut var_paths: Vec<&Path> = Vec::new();
    for (pi, (_, _, _, paths)) in pair_paths.iter().enumerate() {
        for p in paths {
            let v = var_pair.len();
            var_pair.push(pi);
            var_hops.push(
                p.channels(topo)
                    .into_iter()
                    .map(|(c, d)| (c.index(), d))
                    .collect(),
            );
            pair_vars[pi].push(v);
            var_paths.push(p);
        }
    }
    let n_vars = var_pair.len();
    let m = topo.channel_count();
    let cap_rate: Vec<f64> = topo
        .channels()
        .map(|(_, c)| c.capacity.as_xrp() / delta)
        .collect();

    // State: per channel, per direction-index.
    let mut lambda = vec![[0.0f64; 2]; m];
    let mut mu = vec![[0.0f64; 2]; m];
    let mut b = vec![[0.0f64; 2]; m];
    let mut x = vec![0.0f64; n_vars];
    let mut trajectory = Vec::new();

    // Undamped primal-dual iterates oscillate around the optimum; the
    // ergodic average over a tail window converges, so we report that
    // (standard practice for saddle-point methods).
    let avg_start = cfg.iterations - (cfg.iterations / 4).max(1).min(cfg.iterations);
    let mut x_acc = vec![0.0f64; n_vars];
    let mut b_acc = vec![[0.0f64; 2]; m];
    let mut acc_count = 0usize;

    for it in 0..cfg.iterations {
        // Edge prices z for each direction.
        // z[c][d] = λ[c][d] + λ[c][!d] + µ[c][d] − µ[c][!d].
        let z = |c: usize, d: usize, lambda: &Vec<[f64; 2]>, mu: &Vec<[f64; 2]>| {
            lambda[c][d] + lambda[c][1 - d] + mu[c][d] - mu[c][1 - d]
        };

        // Primal step: rates.
        for v in 0..n_vars {
            let zp: f64 = var_hops[v]
                .iter()
                .map(|&(c, dir)| z(c, dir.index(), &lambda, &mu))
                .sum();
            x[v] += cfg.alpha * (1.0 - zp);
        }
        // Projection onto {x ≥ 0, Σ_pair x ≤ d} per pair.
        for (pi, vars) in pair_vars.iter().enumerate() {
            let d = pair_paths[pi].2;
            project_capped_simplex(&mut x, vars, d);
        }
        // Primal step: rebalancing rates (eq. 22).
        if cfg.rebalancing {
            for c in 0..m {
                for d in 0..2 {
                    b[c][d] = (b[c][d] + cfg.beta * (mu[c][d] - cfg.gamma)).max(0.0);
                }
            }
        }

        // Dual step: aggregate per-direction rates.
        let mut rate = vec![[0.0f64; 2]; m];
        for v in 0..n_vars {
            for &(c, dir) in &var_hops[v] {
                rate[c][dir.index()] += x[v];
            }
        }
        for c in 0..m {
            let total = rate[c][0] + rate[c][1];
            for d in 0..2 {
                lambda[c][d] = (lambda[c][d] + cfg.eta * (total - cap_rate[c])).max(0.0);
                mu[c][d] =
                    (mu[c][d] + cfg.kappa * (rate[c][d] - rate[c][1 - d] - b[c][d])).max(0.0);
            }
        }

        if it % cfg.sample_every.max(1) == 0 {
            trajectory.push((it, x.iter().sum()));
        }
        if it >= avg_start {
            for v in 0..n_vars {
                x_acc[v] += x[v];
            }
            for c in 0..m {
                b_acc[c][0] += b[c][0];
                b_acc[c][1] += b[c][1];
            }
            acc_count += 1;
        }
    }

    let scale = 1.0 / acc_count.max(1) as f64;
    let x_avg: Vec<f64> = x_acc.iter().map(|v| v * scale).collect();
    let throughput: f64 = x_avg.iter().sum();
    trajectory.push((cfg.iterations, throughput));
    let mut flows = Vec::new();
    for v in 0..n_vars {
        if x_avg[v] > 1e-9 {
            let (src, dst, _, _) = pair_paths[var_pair[v]];
            flows.push(PathFlow {
                src,
                dst,
                path: var_paths[v].clone(),
                rate: x_avg[v],
            });
        }
    }
    let total_rebalancing = b_acc.iter().map(|pair| (pair[0] + pair[1]) * scale).sum();
    PrimalDualSolution {
        throughput,
        flows,
        total_rebalancing,
        trajectory,
    }
}

/// Projects the sub-vector `x[vars]` onto `{y ≥ 0, Σ y ≤ cap}` (Euclidean
/// projection). Clips negatives first; if the sum still exceeds `cap`,
/// projects onto the simplex `Σ y = cap` with the standard sort-based rule.
fn project_capped_simplex(x: &mut [f64], vars: &[usize], cap: f64) {
    for &v in vars {
        if x[v] < 0.0 {
            x[v] = 0.0;
        }
    }
    let sum: f64 = vars.iter().map(|&v| x[v]).sum();
    if sum <= cap {
        return;
    }
    // Sort values descending, find threshold tau.
    let mut vals: Vec<f64> = vars.iter().map(|&v| x[v]).collect();
    vals.sort_by(|a, b| b.partial_cmp(a).expect("finite rates"));
    let mut acc = 0.0;
    let mut tau = 0.0;
    for (k, &val) in vals.iter().enumerate() {
        acc += val;
        let candidate = (acc - cap) / (k + 1) as f64;
        if val - candidate > 0.0 {
            tau = candidate;
        }
    }
    for &v in vars {
        x[v] = (x[v] - tau).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_paygraph::examples;
    use spider_topology::gen;
    use spider_types::Amount;

    const DELTA: f64 = 0.5;
    const BIG: Amount = Amount::from_xrp(1_000_000);

    #[test]
    fn projection_noop_when_inside() {
        let mut x = vec![0.5, 0.3];
        project_capped_simplex(&mut x, &[0, 1], 1.0);
        assert_eq!(x, vec![0.5, 0.3]);
    }

    #[test]
    fn projection_clips_negatives() {
        let mut x = vec![-0.5, 0.3];
        project_capped_simplex(&mut x, &[0, 1], 1.0);
        assert_eq!(x, vec![0.0, 0.3]);
    }

    #[test]
    fn projection_onto_simplex_when_over() {
        let mut x = vec![2.0, 1.0];
        project_capped_simplex(&mut x, &[0, 1], 1.0);
        let sum: f64 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Euclidean projection of (2,1) onto the simplex Σ=1: (1, 0).
        assert!((x[0] - 1.0).abs() < 1e-9 && x[1].abs() < 1e-9, "{x:?}");
    }

    #[test]
    fn projection_preserves_order() {
        let mut x = vec![3.0, 2.0, 1.0];
        project_capped_simplex(&mut x, &[0, 1, 2], 3.0);
        assert!(x[0] >= x[1] && x[1] >= x[2]);
        assert!((x.iter().sum::<f64>() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn two_node_circulation_converges_to_full_demand() {
        let mut b = Topology::builder(2);
        b.channel(NodeId(0), NodeId(1), BIG).unwrap();
        let t = b.build();
        let mut d = PaymentGraph::new(2);
        d.add_demand(NodeId(0), NodeId(1), 2.0);
        d.add_demand(NodeId(1), NodeId(0), 2.0);
        let cfg = PrimalDualConfig::for_demand_scale(2.0);
        let sol = solve(&t, &d, DELTA, PathSelection::ShortestOnly, &cfg);
        assert!(
            (sol.throughput - 4.0).abs() < 0.1,
            "throughput {}",
            sol.throughput
        );
    }

    #[test]
    fn pure_dag_demand_converges_to_zero() {
        // One-way demand on one channel: any sustained rate is imbalanced,
        // so µ grows until the rate collapses to ~0.
        let mut b = Topology::builder(2);
        b.channel(NodeId(0), NodeId(1), BIG).unwrap();
        let t = b.build();
        let mut d = PaymentGraph::new(2);
        d.add_demand(NodeId(0), NodeId(1), 2.0);
        let mut cfg = PrimalDualConfig::for_demand_scale(2.0);
        cfg.iterations = 60_000;
        let sol = solve(&t, &d, DELTA, PathSelection::ShortestOnly, &cfg);
        assert!(sol.throughput < 0.25, "throughput {}", sol.throughput);
    }

    #[test]
    fn paper_example_converges_near_lp_optimum() {
        let t = gen::paper_example_topology(BIG);
        let d = examples::paper_example_demands();
        let mut cfg = PrimalDualConfig::for_demand_scale(2.0);
        cfg.iterations = 60_000;
        let sol = solve(&t, &d, DELTA, PathSelection::KShortest(4), &cfg);
        // LP optimum is 8 (ν(C*)); primal-dual oscillates mildly around it.
        assert!(
            (sol.throughput - examples::MAX_CIRCULATION).abs() < 0.4,
            "throughput {}",
            sol.throughput
        );
    }

    #[test]
    fn capacity_price_throttles_rate() {
        // Tiny channel: c/Δ = 1; circulation demand 5 each way must be
        // squeezed to a total of ~1.
        let mut b = Topology::builder(2);
        b.channel(NodeId(0), NodeId(1), Amount::from_drops(500_000))
            .unwrap();
        let t = b.build();
        let mut d = PaymentGraph::new(2);
        d.add_demand(NodeId(0), NodeId(1), 5.0);
        d.add_demand(NodeId(1), NodeId(0), 5.0);
        let mut cfg = PrimalDualConfig::for_demand_scale(5.0);
        cfg.iterations = 60_000;
        let sol = solve(&t, &d, DELTA, PathSelection::ShortestOnly, &cfg);
        assert!(sol.throughput < 1.3, "throughput {}", sol.throughput);
    }

    #[test]
    fn rebalancing_lifts_dag_throughput_when_cheap() {
        // One-way demand again, but rebalancing at γ = 0.1 is cheap, so the
        // channel tops itself up and the demand flows.
        let mut b = Topology::builder(2);
        b.channel(NodeId(0), NodeId(1), BIG).unwrap();
        let t = b.build();
        let mut d = PaymentGraph::new(2);
        d.add_demand(NodeId(0), NodeId(1), 2.0);
        let mut cfg = PrimalDualConfig::for_demand_scale(2.0);
        cfg.rebalancing = true;
        cfg.gamma = 0.1;
        cfg.iterations = 60_000;
        let sol = solve(&t, &d, DELTA, PathSelection::ShortestOnly, &cfg);
        assert!(sol.throughput > 1.5, "throughput {}", sol.throughput);
        assert!(
            sol.total_rebalancing > 1.0,
            "rebalancing {}",
            sol.total_rebalancing
        );
    }

    #[test]
    fn trajectory_is_recorded() {
        let t = gen::paper_example_topology(BIG);
        let d = examples::paper_example_demands();
        let mut cfg = PrimalDualConfig::for_demand_scale(2.0);
        cfg.iterations = 1000;
        cfg.sample_every = 100;
        let sol = solve(&t, &d, DELTA, PathSelection::KShortest(4), &cfg);
        assert!(sol.trajectory.len() >= 10);
        assert_eq!(sol.trajectory.last().unwrap().0, 1000);
    }

    #[test]
    fn matches_simplex_on_random_instances() {
        use spider_paygraph::generate::mixed_demand;
        use spider_types::DetRng;
        let mut rng = DetRng::new(21);
        let t = gen::cycle(6, BIG);
        for trial in 0..3 {
            let d = mixed_demand(6, 6.0, 0.7, &mut rng);
            let problem = FluidProblem::new(&t, &d, DELTA, PathSelection::KShortest(3));
            let lp = problem.solve_balanced().unwrap();
            let mut cfg = PrimalDualConfig::for_demand_scale(2.0);
            cfg.iterations = 80_000;
            let pd = solve_problem(&t, &d, DELTA, &problem, &cfg);
            assert!(
                (pd.throughput - lp.throughput).abs() < 0.15 * lp.throughput.max(1.0),
                "trial {trial}: pd {} vs lp {}",
                pd.throughput,
                lp.throughput
            );
        }
    }
}
