//! A dense two-phase simplex solver.
//!
//! Solves `maximize c·x subject to Ax {≤,=,≥} b, x ≥ 0`. Phase 1 finds a
//! basic feasible solution by minimizing artificial variables; phase 2
//! optimizes the real objective. Bland's rule guarantees termination on
//! degenerate problems (the fluid-model LPs are heavily degenerate: many
//! path flows sit at zero).
//!
//! The implementation favours clarity and robustness over asymptotics: a
//! dense tableau with `O(m·n)` pivots is comfortably fast for the paper's
//! ISP-scale instances (thousands of variables). For the Ripple-scale
//! network, Spider's own decentralized algorithm ([`crate::primal_dual`])
//! is the intended solver, exactly as in the paper.

use spider_types::{Result, SpiderError};

/// Comparison operator of one constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

#[derive(Debug, Clone)]
struct Row {
    // Sparse coefficients (var, coef); duplicate vars are summed.
    coeffs: Vec<(usize, f64)>,
    op: ConstraintOp,
    rhs: f64,
}

/// A linear program over non-negative variables.
///
/// ```
/// use spider_lp::simplex::{LinearProgram, ConstraintOp};
/// // maximize 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6
/// let mut lp = LinearProgram::new(2);
/// lp.set_objective(0, 3.0);
/// lp.set_objective(1, 2.0);
/// lp.constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Le, 4.0);
/// lp.constraint(&[(0, 1.0), (1, 3.0)], ConstraintOp::Le, 6.0);
/// let sol = lp.solve().unwrap();
/// assert!((sol.objective - 12.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct LinearProgram {
    n_vars: usize,
    objective: Vec<f64>,
    rows: Vec<Row>,
}

/// An optimal solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal objective value (of the maximization).
    pub objective: f64,
    /// Optimal variable assignment, length = number of variables.
    pub x: Vec<f64>,
}

const EPS: f64 = 1e-9;

impl LinearProgram {
    /// A program with `n_vars` non-negative variables and zero objective.
    pub fn new(n_vars: usize) -> Self {
        LinearProgram {
            n_vars,
            objective: vec![0.0; n_vars],
            rows: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of constraints.
    pub fn n_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Sets the objective coefficient of `var` (maximization).
    pub fn set_objective(&mut self, var: usize, coef: f64) {
        assert!(var < self.n_vars, "variable out of range");
        self.objective[var] = coef;
    }

    /// Adds the constraint `Σ coeffs[i].1 · x[coeffs[i].0]  op  rhs`.
    /// Duplicate variable entries are summed.
    pub fn constraint(&mut self, coeffs: &[(usize, f64)], op: ConstraintOp, rhs: f64) {
        for &(v, c) in coeffs {
            assert!(v < self.n_vars, "variable out of range");
            assert!(c.is_finite(), "non-finite coefficient");
        }
        assert!(rhs.is_finite(), "non-finite rhs");
        self.rows.push(Row {
            coeffs: coeffs.to_vec(),
            op,
            rhs,
        });
    }

    /// Solves the program. Errors with [`SpiderError::Infeasible`] or
    /// [`SpiderError::Unbounded`] as appropriate.
    pub fn solve(&self) -> Result<LpSolution> {
        Tableau::build(self).solve()
    }
}

/// Dense simplex tableau.
///
/// Column layout: `[structural | slack/surplus | artificial | rhs]`.
/// `basis[i]` is the variable currently basic in row `i`.
struct Tableau {
    n_struct: usize,
    n_total: usize, // structural + slack + artificial
    m: usize,
    a: Vec<Vec<f64>>, // m rows × (n_total + 1); last column = rhs
    basis: Vec<usize>,
    artificial_start: usize,
    objective: Vec<f64>, // structural objective (maximization)
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Tableau {
        let m = lp.rows.len();
        let n_struct = lp.n_vars;
        // Count slack/surplus and artificial columns.
        let mut n_slack = 0;
        let mut n_art = 0;
        for row in &lp.rows {
            // Normalize rhs to be >= 0 first (flips the operator).
            let (op, _) = normalized_op(row);
            match op {
                ConstraintOp::Le => n_slack += 1,
                ConstraintOp::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                ConstraintOp::Eq => n_art += 1,
            }
        }
        let n_total = n_struct + n_slack + n_art;
        let mut a = vec![vec![0.0; n_total + 1]; m];
        let mut basis = vec![usize::MAX; m];
        let mut slack_cursor = n_struct;
        let artificial_start = n_struct + n_slack;
        let mut art_cursor = artificial_start;

        for (i, row) in lp.rows.iter().enumerate() {
            let (op, flip) = normalized_op(row);
            let sign = if flip { -1.0 } else { 1.0 };
            for &(v, c) in &row.coeffs {
                a[i][v] += sign * c;
            }
            a[i][n_total] = sign * row.rhs;
            match op {
                ConstraintOp::Le => {
                    a[i][slack_cursor] = 1.0;
                    basis[i] = slack_cursor;
                    slack_cursor += 1;
                }
                ConstraintOp::Ge => {
                    a[i][slack_cursor] = -1.0; // surplus
                    slack_cursor += 1;
                    a[i][art_cursor] = 1.0;
                    basis[i] = art_cursor;
                    art_cursor += 1;
                }
                ConstraintOp::Eq => {
                    a[i][art_cursor] = 1.0;
                    basis[i] = art_cursor;
                    art_cursor += 1;
                }
            }
        }
        Tableau {
            n_struct,
            n_total,
            m,
            a,
            basis,
            artificial_start,
            objective: lp.objective.clone(),
        }
    }

    fn solve(mut self) -> Result<LpSolution> {
        // ---- Phase 1: minimize sum of artificials. ----
        if self.artificial_start < self.n_total {
            // Cost row: +1 for each artificial (minimization), expressed as
            // reduced costs z_j - c_j for a minimization tableau.
            let mut cost = vec![0.0; self.n_total + 1];
            for c in &mut cost[self.artificial_start..self.n_total] {
                *c = -1.0; // minimizing sum(artificials) == maximizing -sum
            }
            // Price out basic artificials.
            for i in 0..self.m {
                if self.basis[i] >= self.artificial_start {
                    for (c, &a) in cost.iter_mut().zip(&self.a[i]) {
                        *c += a;
                    }
                }
            }
            self.iterate(&mut cost, self.n_total)?;
            if cost[self.n_total] > EPS {
                return Err(SpiderError::Infeasible);
            }
            self.evict_basic_artificials();
        }

        // ---- Phase 2: maximize the structural objective. ----
        let mut cost = vec![0.0; self.n_total + 1];
        for (j, &c) in self.objective.iter().enumerate() {
            cost[j] = c;
        }
        // Price out current basis.
        for i in 0..self.m {
            let b = self.basis[i];
            let cb = if b < self.n_struct {
                self.objective[b]
            } else {
                0.0
            };
            if cb != 0.0 {
                for (c, &a) in cost.iter_mut().zip(&self.a[i]) {
                    *c -= cb * a;
                }
            }
        }
        // Forbid artificials from re-entering.
        self.iterate(&mut cost, self.artificial_start)?;

        // Read out the solution.
        let mut x = vec![0.0; self.n_struct];
        for i in 0..self.m {
            if self.basis[i] < self.n_struct {
                x[self.basis[i]] = self.a[i][self.n_total];
            }
        }
        let objective = x
            .iter()
            .zip(&self.objective)
            .map(|(xi, ci)| xi * ci)
            .sum::<f64>();
        Ok(LpSolution { objective, x })
    }

    /// Runs simplex pivots until optimal. `cost` holds reduced costs for a
    /// *maximization* (entering columns have cost > EPS); only columns
    /// `< col_limit` may enter (used to lock out artificials in phase 2).
    /// Uses Bland's rule: smallest eligible entering column; smallest basis
    /// variable on ratio ties.
    fn iterate(&mut self, cost: &mut [f64], col_limit: usize) -> Result<()> {
        loop {
            // Entering column (Bland).
            let Some(enter) = (0..col_limit).find(|&j| cost[j] > EPS) else {
                return Ok(());
            };
            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best = f64::INFINITY;
            for i in 0..self.m {
                if self.a[i][enter] > EPS {
                    let ratio = self.a[i][self.n_total] / self.a[i][enter];
                    let better = ratio < best - EPS
                        || (ratio < best + EPS
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]));
                    if better {
                        best = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(leave) = leave else {
                return Err(SpiderError::Unbounded);
            };
            self.pivot(leave, enter, cost);
        }
    }

    fn pivot(&mut self, row: usize, col: usize, cost: &mut [f64]) {
        let pivot = self.a[row][col];
        debug_assert!(pivot.abs() > EPS);
        for j in 0..=self.n_total {
            self.a[row][j] /= pivot;
        }
        self.a[row][col] = 1.0; // exactness
        for i in 0..self.m {
            if i != row {
                let factor = self.a[i][col];
                if factor != 0.0 {
                    for j in 0..=self.n_total {
                        self.a[i][j] -= factor * self.a[row][j];
                    }
                    self.a[i][col] = 0.0;
                }
            }
        }
        let factor = cost[col];
        if factor != 0.0 {
            for (c, &a) in cost.iter_mut().zip(&self.a[row]) {
                *c -= factor * a;
            }
            cost[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// After phase 1, pivot any artificial still basic (at value 0) out of
    /// the basis, or drop its (redundant) row.
    fn evict_basic_artificials(&mut self) {
        for i in 0..self.m {
            if self.basis[i] < self.artificial_start {
                continue;
            }
            // Find a non-artificial column with a nonzero entry.
            if let Some(col) = (0..self.artificial_start).find(|&j| self.a[i][j].abs() > EPS) {
                let mut dummy = vec![0.0; self.n_total + 1];
                self.pivot(i, col, &mut dummy);
            } else {
                // Redundant row: zero it so it never constrains anything.
                for j in 0..=self.n_total {
                    self.a[i][j] = 0.0;
                }
            }
        }
    }
}

/// Normalizes a row to non-negative rhs, returning the effective operator
/// and whether the row was flipped.
fn normalized_op(row: &Row) -> (ConstraintOp, bool) {
    if row.rhs >= 0.0 {
        (row.op, false)
    } else {
        let flipped = match row.op {
            ConstraintOp::Le => ConstraintOp::Ge,
            ConstraintOp::Ge => ConstraintOp::Le,
            ConstraintOp::Eq => ConstraintOp::Eq,
        };
        (flipped, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} vs {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → (2, 6), z = 36.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 3.0);
        lp.set_objective(1, 5.0);
        lp.constraint(&[(0, 1.0)], ConstraintOp::Le, 4.0);
        lp.constraint(&[(1, 2.0)], ConstraintOp::Le, 12.0);
        lp.constraint(&[(0, 3.0), (1, 2.0)], ConstraintOp::Le, 18.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 36.0);
        assert_close(sol.x[0], 2.0);
        assert_close(sol.x[1], 6.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 5, x - y = 1 → (3, 2), z = 5.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 5.0);
        lp.constraint(&[(0, 1.0), (1, -1.0)], ConstraintOp::Eq, 1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 5.0);
        assert_close(sol.x[0], 3.0);
        assert_close(sol.x[1], 2.0);
    }

    #[test]
    fn ge_constraints_and_minimization_shape() {
        // max -(x + y) s.t. x + 2y >= 4, 3x + y >= 6  (i.e. min x+y).
        // Optimum x = 8/5, y = 6/5, objective = -14/5.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, -1.0);
        lp.set_objective(1, -1.0);
        lp.constraint(&[(0, 1.0), (1, 2.0)], ConstraintOp::Ge, 4.0);
        lp.constraint(&[(0, 3.0), (1, 1.0)], ConstraintOp::Ge, 6.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, -14.0 / 5.0);
        assert_close(sol.x[0], 8.0 / 5.0);
        assert_close(sol.x[1], 6.0 / 5.0);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // max x s.t. -x <= -2, x <= 5  (i.e. x >= 2) → 5.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(0, 1.0);
        lp.constraint(&[(0, -1.0)], ConstraintOp::Le, -2.0);
        lp.constraint(&[(0, 1.0)], ConstraintOp::Le, 5.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 5.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(0, 1.0);
        lp.constraint(&[(0, 1.0)], ConstraintOp::Le, 1.0);
        lp.constraint(&[(0, 1.0)], ConstraintOp::Ge, 2.0);
        assert_eq!(lp.solve().unwrap_err(), SpiderError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.constraint(&[(1, 1.0)], ConstraintOp::Le, 1.0);
        assert_eq!(lp.solve().unwrap_err(), SpiderError::Unbounded);
    }

    #[test]
    fn degenerate_cycling_guard() {
        // Beale's classic cycling example (cycles without Bland's rule).
        let mut lp = LinearProgram::new(4);
        lp.set_objective(0, 0.75);
        lp.set_objective(1, -150.0);
        lp.set_objective(2, 0.02);
        lp.set_objective(3, -6.0);
        lp.constraint(
            &[(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
            ConstraintOp::Le,
            0.0,
        );
        lp.constraint(
            &[(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
            ConstraintOp::Le,
            0.0,
        );
        lp.constraint(&[(2, 1.0)], ConstraintOp::Le, 1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 0.05);
    }

    #[test]
    fn zero_objective_feasibility_check() {
        let mut lp = LinearProgram::new(2);
        lp.constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 3.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 0.0);
        assert_close(sol.x[0] + sol.x[1], 3.0);
    }

    #[test]
    fn redundant_equalities() {
        // x + y = 2 twice (redundant) plus max x.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 2.0);
        lp.constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 2.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn duplicate_coefficients_sum() {
        // max x s.t. (0.5 + 0.5)x <= 3.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(0, 1.0);
        lp.constraint(&[(0, 0.5), (0, 0.5)], ConstraintOp::Le, 3.0);
        assert_close(lp.solve().unwrap().objective, 3.0);
    }

    #[test]
    fn transportation_like_problem() {
        // 2 suppliers (cap 10, 15), 2 consumers (need >= 8, >= 12),
        // maximize total shipped with per-lane caps; x[s][c] as 4 vars.
        let mut lp = LinearProgram::new(4); // x00 x01 x10 x11
        for v in 0..4 {
            lp.set_objective(v, 1.0);
        }
        lp.constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Le, 10.0);
        lp.constraint(&[(2, 1.0), (3, 1.0)], ConstraintOp::Le, 15.0);
        lp.constraint(&[(0, 1.0), (2, 1.0)], ConstraintOp::Le, 8.0);
        lp.constraint(&[(1, 1.0), (3, 1.0)], ConstraintOp::Le, 12.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 20.0);
    }

    #[test]
    fn solution_respects_constraints() {
        use spider_types::DetRng;
        let mut rng = DetRng::new(5);
        for _ in 0..20 {
            let n = 4;
            let mut lp = LinearProgram::new(n);
            for v in 0..n {
                lp.set_objective(v, rng.uniform() * 2.0 - 0.5);
            }
            let mut rows = Vec::new();
            for _ in 0..5 {
                let coeffs: Vec<(usize, f64)> = (0..n).map(|v| (v, rng.uniform())).collect();
                let rhs = 1.0 + rng.uniform() * 5.0;
                rows.push((coeffs.clone(), rhs));
                lp.constraint(&coeffs, ConstraintOp::Le, rhs);
            }
            // All-≤ with positive rhs: always feasible (x = 0); bounded when
            // every variable with positive objective has a binding row —
            // random coefficients are all positive, so bounded.
            let sol = lp.solve().unwrap();
            for (coeffs, rhs) in rows {
                let lhs: f64 = coeffs.iter().map(|&(v, c)| c * sol.x[v]).sum();
                assert!(lhs <= rhs + 1e-6, "constraint violated: {lhs} > {rhs}");
            }
            assert!(sol.x.iter().all(|&xi| xi >= -1e-9));
        }
    }
}
