//! # spider-lp
//!
//! The optimization layer of the Spider reproduction:
//!
//! * [`simplex`] — a dense two-phase simplex solver for general linear
//!   programs, built from scratch (no external LP dependency);
//! * [`paths`] — the path oracles of §5.3.1: Yen's k-shortest paths,
//!   k edge-disjoint shortest paths, and k widest (highest-capacity) paths;
//! * [`fluid`] — the fluid-model routing LPs: maximum balanced throughput
//!   (eqs. 1–5), routing with on-chain rebalancing (eqs. 6–11), and the
//!   throughput-vs-rebalancing-budget curve t(B) (eqs. 12–18);
//! * [`primal_dual`] — the decentralized primal-dual algorithm (eqs. 21–24)
//!   that routers and end-hosts can run with only local information, which
//!   converges to the LP optimum for small step sizes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fluid;
pub mod paths;
pub mod primal_dual;
pub mod simplex;

pub use fluid::{FluidProblem, FluidSolution};
pub use paths::Path;
pub use simplex::{ConstraintOp, LinearProgram, LpSolution};
