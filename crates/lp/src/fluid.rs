//! Fluid-model routing LPs (§5.2).
//!
//! Transactions between each pair are modeled as continuous flows over a
//! set of candidate paths. Three problems are exposed:
//!
//! * [`FluidProblem::solve_balanced`] — eqs. (1)–(5): maximize throughput
//!   subject to demand, capacity (`c_e/Δ`) and *perfect balance* on every
//!   channel;
//! * [`FluidProblem::solve_with_rebalancing`] — eqs. (6)–(11): allow an
//!   on-chain rebalancing rate `b_(u,v) ≥ 0` per channel direction, paying
//!   `γ` per unit in the objective;
//! * [`FluidProblem::throughput_with_budget`] — eqs. (12)–(18): the
//!   throughput curve `t(B)` under a total rebalancing budget `B`
//!   (non-decreasing and concave — verified in tests).

use crate::paths::{k_edge_disjoint_paths, k_shortest_paths, Path};
use crate::simplex::{ConstraintOp, LinearProgram};
use spider_paygraph::PaymentGraph;
use spider_topology::Topology;
use spider_types::{Direction, NodeId, Result};
use std::collections::BTreeMap;

/// How candidate paths are generated for each demand pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathSelection {
    /// Only the (BFS) shortest path — the paper's "shortest-path balanced
    /// routing" of Fig. 4b.
    ShortestOnly,
    /// Yen's k shortest loopless paths.
    KShortest(usize),
    /// k edge-disjoint shortest paths — §6.1 uses 4.
    KEdgeDisjoint(usize),
}

/// A fluid-model routing problem instance.
#[derive(Debug, Clone)]
pub struct FluidProblem {
    topo: Topology,
    demands: PaymentGraph,
    /// Mean confirmation latency Δ in seconds (capacity = c_e/Δ).
    delta: f64,
    paths: BTreeMap<(NodeId, NodeId), Vec<Path>>,
}

/// One path's optimal rate.
#[derive(Debug, Clone)]
pub struct PathFlow {
    /// Demand source.
    pub src: NodeId,
    /// Demand destination.
    pub dst: NodeId,
    /// The path carrying the flow.
    pub path: Path,
    /// Rate on this path (demand units per second).
    pub rate: f64,
}

/// Solution of the balanced-routing LP.
#[derive(Debug, Clone)]
pub struct FluidSolution {
    /// Total delivered rate Σ_p x_p.
    pub throughput: f64,
    /// Per-path rates (zero-rate paths omitted).
    pub flows: Vec<PathFlow>,
}

/// Solution of the rebalancing LP (eqs. 6–11).
#[derive(Debug, Clone)]
pub struct RebalancingSolution {
    /// Total delivered rate.
    pub throughput: f64,
    /// Total on-chain rebalancing rate Σ b.
    pub total_rebalancing: f64,
    /// Objective value: throughput − γ · total_rebalancing.
    pub objective: f64,
    /// Per-path rates.
    pub flows: Vec<PathFlow>,
}

impl FluidProblem {
    /// Builds a problem over `topo` and `demands` with confirmation latency
    /// `delta` (seconds) and the given path-selection policy.
    pub fn new(
        topo: &Topology,
        demands: &PaymentGraph,
        delta: f64,
        selection: PathSelection,
    ) -> Self {
        assert!(delta > 0.0 && delta.is_finite(), "invalid delta");
        let mut paths = BTreeMap::new();
        for e in demands.edges() {
            let ps = match selection {
                PathSelection::ShortestOnly => topo
                    .shortest_path(e.src, e.dst)
                    .map(Path::new)
                    .into_iter()
                    .collect(),
                PathSelection::KShortest(k) => k_shortest_paths(topo, e.src, e.dst, k),
                PathSelection::KEdgeDisjoint(k) => k_edge_disjoint_paths(topo, e.src, e.dst, k),
            };
            paths.insert((e.src, e.dst), ps);
        }
        FluidProblem {
            topo: topo.clone(),
            demands: demands.clone(),
            delta,
            paths,
        }
    }

    /// Overrides the candidate paths for one pair (for experiments that
    /// hand-pick routes).
    pub fn set_paths(&mut self, src: NodeId, dst: NodeId, paths: Vec<Path>) {
        self.paths.insert((src, dst), paths);
    }

    /// The candidate paths of a pair.
    pub fn paths_for(&self, src: NodeId, dst: NodeId) -> &[Path] {
        self.paths
            .get(&(src, dst))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Flattens (pair, path) into LP variable indices; also returns, per
    /// channel, the variables crossing it forward / backward.
    fn variables(&self) -> VariableLayout {
        let mut vars = Vec::new();
        let mut per_pair: Vec<(NodeId, NodeId, Vec<usize>)> = Vec::new();
        let m = self.topo.channel_count();
        let mut fwd: Vec<Vec<usize>> = vec![Vec::new(); m];
        let mut bwd: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (&(src, dst), paths) in &self.paths {
            let mut ids = Vec::with_capacity(paths.len());
            for p in paths {
                let v = vars.len();
                ids.push(v);
                for (c, dir) in p.channels(&self.topo) {
                    match dir {
                        Direction::Forward => fwd[c.index()].push(v),
                        Direction::Backward => bwd[c.index()].push(v),
                    }
                }
                vars.push((src, dst, p.clone()));
            }
            per_pair.push((src, dst, ids));
        }
        VariableLayout {
            vars,
            per_pair,
            fwd,
            bwd,
        }
    }

    fn base_lp(&self, layout: &VariableLayout, extra_vars: usize) -> LinearProgram {
        let n = layout.vars.len();
        let mut lp = LinearProgram::new(n + extra_vars);
        // Objective: maximize total path rate.
        for v in 0..n {
            lp.set_objective(v, 1.0);
        }
        // Demand constraints (eq. 2).
        for (src, dst, ids) in &layout.per_pair {
            let coeffs: Vec<(usize, f64)> = ids.iter().map(|&v| (v, 1.0)).collect();
            lp.constraint(&coeffs, ConstraintOp::Le, self.demands.demand(*src, *dst));
        }
        // Capacity constraints (eq. 3), one per channel (the directed pair
        // yields the same inequality twice).
        for (c, ch) in self.topo.channels() {
            let mut coeffs: Vec<(usize, f64)> = Vec::new();
            for &v in &layout.fwd[c.index()] {
                coeffs.push((v, 1.0));
            }
            for &v in &layout.bwd[c.index()] {
                coeffs.push((v, 1.0));
            }
            if !coeffs.is_empty() {
                lp.constraint(&coeffs, ConstraintOp::Le, ch.capacity.as_xrp() / self.delta);
            }
        }
        lp
    }

    fn extract_flows(&self, layout: &VariableLayout, x: &[f64]) -> (f64, Vec<PathFlow>) {
        let mut flows = Vec::new();
        let mut throughput = 0.0;
        for (v, (src, dst, path)) in layout.vars.iter().enumerate() {
            if x[v] > 1e-9 {
                throughput += x[v];
                flows.push(PathFlow {
                    src: *src,
                    dst: *dst,
                    path: path.clone(),
                    rate: x[v],
                });
            }
        }
        (throughput, flows)
    }

    /// Solves the perfectly balanced LP (eqs. 1–5).
    pub fn solve_balanced(&self) -> Result<FluidSolution> {
        let layout = self.variables();
        let mut lp = self.base_lp(&layout, 0);
        // Balance constraints (eq. 4): forward − backward ≤ 0, both ways,
        // i.e. equality.
        for c in 0..self.topo.channel_count() {
            let mut coeffs: Vec<(usize, f64)> = Vec::new();
            for &v in &layout.fwd[c] {
                coeffs.push((v, 1.0));
            }
            for &v in &layout.bwd[c] {
                coeffs.push((v, -1.0));
            }
            if !coeffs.is_empty() {
                lp.constraint(&coeffs, ConstraintOp::Eq, 0.0);
            }
        }
        let sol = lp.solve()?;
        let (throughput, flows) = self.extract_flows(&layout, &sol.x);
        Ok(FluidSolution { throughput, flows })
    }

    /// Solves the rebalancing LP (eqs. 6–11) with rebalancing cost `gamma`.
    ///
    /// Adds one `b` variable per channel direction: variable
    /// `n + 2c + dir` is the on-chain top-up rate of channel `c` in
    /// direction `dir`.
    pub fn solve_with_rebalancing(&self, gamma: f64) -> Result<RebalancingSolution> {
        assert!(gamma >= 0.0 && gamma.is_finite(), "invalid gamma");
        let layout = self.variables();
        let n = layout.vars.len();
        let m = self.topo.channel_count();
        let mut lp = self.base_lp(&layout, 2 * m);
        for b in 0..2 * m {
            lp.set_objective(n + b, -gamma);
        }
        self.add_rebalancing_constraints(&layout, &mut lp, n);
        let sol = lp.solve()?;
        let (throughput, flows) = self.extract_flows(&layout, &sol.x);
        let total_rebalancing: f64 = sol.x[n..].iter().sum();
        Ok(RebalancingSolution {
            throughput,
            total_rebalancing,
            objective: sol.objective,
            flows,
        })
    }

    /// The maximum throughput under a total rebalancing budget `B`
    /// (eqs. 12–18): `t(B)` is non-decreasing and concave in `B`.
    pub fn throughput_with_budget(&self, budget: f64) -> Result<f64> {
        assert!(budget >= 0.0 && budget.is_finite(), "invalid budget");
        let layout = self.variables();
        let n = layout.vars.len();
        let m = self.topo.channel_count();
        let mut lp = self.base_lp(&layout, 2 * m);
        self.add_rebalancing_constraints(&layout, &mut lp, n);
        // Σ b ≤ B (eq. 16).
        let coeffs: Vec<(usize, f64)> = (0..2 * m).map(|b| (n + b, 1.0)).collect();
        lp.constraint(&coeffs, ConstraintOp::Le, budget);
        Ok(lp.solve()?.objective)
    }

    /// Balance-with-rebalancing constraints (eq. 9):
    /// `fwd − bwd ≤ b_fwd` and `bwd − fwd ≤ b_bwd` per channel.
    fn add_rebalancing_constraints(
        &self,
        layout: &VariableLayout,
        lp: &mut LinearProgram,
        n: usize,
    ) {
        for c in 0..self.topo.channel_count() {
            for (dir_idx, sign) in [(0usize, 1.0f64), (1, -1.0)] {
                let mut coeffs: Vec<(usize, f64)> = Vec::new();
                for &v in &layout.fwd[c] {
                    coeffs.push((v, sign));
                }
                for &v in &layout.bwd[c] {
                    coeffs.push((v, -sign));
                }
                coeffs.push((n + 2 * c + dir_idx, -1.0));
                lp.constraint(&coeffs, ConstraintOp::Le, 0.0);
            }
        }
    }
}

struct VariableLayout {
    vars: Vec<(NodeId, NodeId, Path)>,
    per_pair: Vec<(NodeId, NodeId, Vec<usize>)>,
    fwd: Vec<Vec<usize>>,
    bwd: Vec<Vec<usize>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_paygraph::decompose::max_circulation_value;
    use spider_paygraph::examples;
    use spider_topology::gen;
    use spider_types::Amount;

    const DELTA: f64 = 0.5;
    /// Large enough that c/Δ never binds in the example tests.
    const BIG: Amount = Amount::from_xrp(1_000_000);

    fn example() -> (Topology, PaymentGraph) {
        (
            gen::paper_example_topology(BIG),
            examples::paper_example_demands(),
        )
    }

    #[test]
    fn paper_example_shortest_path_is_5() {
        let (t, d) = example();
        let p = FluidProblem::new(&t, &d, DELTA, PathSelection::ShortestOnly);
        let sol = p.solve_balanced().unwrap();
        assert!(
            (sol.throughput - examples::SHORTEST_PATH_THROUGHPUT).abs() < 1e-6,
            "throughput {}",
            sol.throughput
        );
    }

    #[test]
    fn paper_example_multipath_is_8() {
        let (t, d) = example();
        let p = FluidProblem::new(&t, &d, DELTA, PathSelection::KShortest(4));
        let sol = p.solve_balanced().unwrap();
        assert!(
            (sol.throughput - examples::MAX_CIRCULATION).abs() < 1e-6,
            "throughput {}",
            sol.throughput
        );
    }

    #[test]
    fn balanced_throughput_never_exceeds_circulation() {
        // Proposition 1 upper bound, with generous capacity.
        let (t, d) = example();
        let nu = max_circulation_value(&d, 1e-6);
        for sel in [
            PathSelection::ShortestOnly,
            PathSelection::KShortest(2),
            PathSelection::KShortest(6),
            PathSelection::KEdgeDisjoint(4),
        ] {
            let sol = FluidProblem::new(&t, &d, DELTA, sel)
                .solve_balanced()
                .unwrap();
            assert!(
                sol.throughput <= nu + 1e-6,
                "{sel:?}: {} > {nu}",
                sol.throughput
            );
        }
    }

    #[test]
    fn flows_are_balanced_per_channel() {
        let (t, d) = example();
        let p = FluidProblem::new(&t, &d, DELTA, PathSelection::KShortest(4));
        let sol = p.solve_balanced().unwrap();
        let mut net = vec![0.0; t.channel_count()];
        for f in &sol.flows {
            for (c, dir) in f.path.channels(&t) {
                match dir {
                    Direction::Forward => net[c.index()] += f.rate,
                    Direction::Backward => net[c.index()] -= f.rate,
                }
            }
        }
        for (i, x) in net.iter().enumerate() {
            assert!(x.abs() < 1e-6, "channel {i} imbalance {x}");
        }
    }

    #[test]
    fn flows_respect_demands() {
        let (t, d) = example();
        let p = FluidProblem::new(&t, &d, DELTA, PathSelection::KShortest(4));
        let sol = p.solve_balanced().unwrap();
        let mut per_pair: BTreeMap<(NodeId, NodeId), f64> = BTreeMap::new();
        for f in &sol.flows {
            *per_pair.entry((f.src, f.dst)).or_insert(0.0) += f.rate;
        }
        for ((s, dst), rate) in per_pair {
            assert!(rate <= d.demand(s, dst) + 1e-6);
        }
    }

    #[test]
    fn capacity_constraint_binds() {
        // Two nodes, one channel, circulation demand 10 each way, but
        // c/Δ = 4: total flow (both directions) must be ≤ 4.
        let mut b = Topology::builder(2);
        b.channel(NodeId(0), NodeId(1), Amount::from_xrp(2))
            .unwrap(); // c/Δ = 4
        let t = b.build();
        let mut d = PaymentGraph::new(2);
        d.add_demand(NodeId(0), NodeId(1), 10.0);
        d.add_demand(NodeId(1), NodeId(0), 10.0);
        let p = FluidProblem::new(&t, &d, DELTA, PathSelection::ShortestOnly);
        let sol = p.solve_balanced().unwrap();
        assert!(
            (sol.throughput - 4.0).abs() < 1e-6,
            "throughput {}",
            sol.throughput
        );
    }

    #[test]
    fn rebalancing_gamma_zero_routes_everything_feasible() {
        let (t, d) = example();
        let p = FluidProblem::new(&t, &d, DELTA, PathSelection::KShortest(4));
        let sol = p.solve_with_rebalancing(0.0).unwrap();
        // With free rebalancing and ample capacity the whole demand ships.
        assert!(
            (sol.throughput - examples::TOTAL_DEMAND).abs() < 1e-6,
            "throughput {}",
            sol.throughput
        );
        assert!(sol.total_rebalancing > 0.0);
    }

    #[test]
    fn rebalancing_large_gamma_reduces_to_balanced() {
        let (t, d) = example();
        let p = FluidProblem::new(&t, &d, DELTA, PathSelection::KShortest(4));
        let sol = p.solve_with_rebalancing(100.0).unwrap();
        assert!(
            (sol.throughput - examples::MAX_CIRCULATION).abs() < 1e-6,
            "throughput {}",
            sol.throughput
        );
        assert!(sol.total_rebalancing < 1e-6);
    }

    #[test]
    fn throughput_budget_curve_is_monotone_concave() {
        let (t, d) = example();
        let p = FluidProblem::new(&t, &d, DELTA, PathSelection::KShortest(4));
        let budgets = [0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 10.0];
        let ts: Vec<f64> = budgets
            .iter()
            .map(|&b| p.throughput_with_budget(b).unwrap())
            .collect();
        // t(0) = balanced optimum; t(∞) = total demand.
        assert!((ts[0] - examples::MAX_CIRCULATION).abs() < 1e-6);
        assert!((ts.last().unwrap() - examples::TOTAL_DEMAND).abs() < 1e-6);
        // Non-decreasing.
        for w in ts.windows(2) {
            assert!(w[1] >= w[0] - 1e-9);
        }
        // Concavity along equally-informative triples.
        for i in 1..budgets.len() - 1 {
            let (b0, b1, b2) = (budgets[i - 1], budgets[i], budgets[i + 1]);
            let lam = (b1 - b0) / (b2 - b0);
            let interp = (1.0 - lam) * ts[i - 1] + lam * ts[i + 1];
            assert!(ts[i] >= interp - 1e-6, "not concave at {b1}");
        }
    }

    #[test]
    fn isp_scale_lp_solves() {
        // A moderately sized instance: ISP topology with a skewed demand
        // matrix; just verifies the solver handles hundreds of variables.
        use spider_paygraph::generate::skewed_demand;
        use spider_types::DetRng;
        let t = gen::isp_topology(Amount::from_xrp(30_000));
        let mut rng = DetRng::new(11);
        let d = skewed_demand(32, 60, 500.0, 4.0, &mut rng);
        let p = FluidProblem::new(&t, &d, DELTA, PathSelection::KEdgeDisjoint(4));
        let sol = p.solve_balanced().unwrap();
        assert!(sol.throughput >= 0.0);
        assert!(sol.throughput <= d.total_demand() + 1e-6);
        let nu = max_circulation_value(&d, 1e-9);
        assert!(sol.throughput <= nu + 1e-6);
    }

    #[test]
    fn empty_demands_give_zero() {
        let t = gen::paper_example_topology(BIG);
        let d = PaymentGraph::new(5);
        let p = FluidProblem::new(&t, &d, DELTA, PathSelection::KShortest(4));
        assert_eq!(p.solve_balanced().unwrap().throughput, 0.0);
    }

    #[test]
    fn set_paths_overrides() {
        let (t, d) = example();
        let mut p = FluidProblem::new(&t, &d, DELTA, PathSelection::KShortest(4));
        // Starve pair (2→4) of paths entirely. Every circulation cycle of
        // the example except 1→5→1 passes through demand (2,4), so the
        // optimum collapses to 2.
        p.set_paths(NodeId(1), NodeId(3), Vec::new());
        let sol = p.solve_balanced().unwrap();
        assert!(
            (sol.throughput - 2.0).abs() < 1e-6,
            "throughput {}",
            sol.throughput
        );
        assert_eq!(p.paths_for(NodeId(1), NodeId(3)).len(), 0);
    }
}
