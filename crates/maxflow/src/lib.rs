//! # spider-maxflow
//!
//! Maximum-flow algorithms over directed networks with integer capacities
//! (drops). This is the substrate for the paper's max-flow routing
//! benchmark (§3): "for each transaction, max-flow uses a distributed
//! implementation of the Ford–Fulkerson method to find source–destination
//! paths that support the largest transaction volume".
//!
//! Two solvers are provided — Edmonds–Karp (BFS Ford–Fulkerson, the
//! textbook benchmark) and Dinic's algorithm (used by default for speed) —
//! plus a flow decomposition that turns a flow assignment back into the
//! explicit paths a payment-channel network needs in order to actually
//! forward HTLCs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use spider_types::NodeId;
use std::collections::VecDeque;

/// Identifies an arc added with [`FlowNetwork::add_edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArcId(usize);

/// A directed flow network with integer (drop) capacities.
///
/// Arcs are stored with their reverse twins (residual representation), so
/// `arc ^ 1` is always the reverse of `arc`.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    n: usize,
    // to, cap, flow; arc 2k and 2k+1 are twins.
    to: Vec<usize>,
    cap: Vec<u64>,
    flow: Vec<u64>,
    adj: Vec<Vec<usize>>,
}

impl FlowNetwork {
    /// An empty network on `n` nodes.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            n,
            to: Vec::new(),
            cap: Vec::new(),
            flow: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Adds a directed arc `from → to` with capacity `cap` and returns its
    /// id. A zero-capacity reverse twin is added automatically. Parallel
    /// arcs are allowed (balances in both channel directions become two
    /// independent arcs).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cap: u64) -> ArcId {
        assert!(
            from.index() < self.n && to.index() < self.n,
            "node out of range"
        );
        assert_ne!(from, to, "self-loop");
        let id = self.to.len();
        self.to.push(to.index());
        self.cap.push(cap);
        self.flow.push(0);
        self.adj[from.index()].push(id);
        self.to.push(from.index());
        self.cap.push(0);
        self.flow.push(0);
        self.adj[to.index()].push(id + 1);
        ArcId(id)
    }

    /// Adds both directions of a payment channel as two independent arcs
    /// (`cap_uv` for `u → v`, `cap_vu` for `v → u`), returning both ids.
    pub fn add_bidirectional(
        &mut self,
        u: NodeId,
        v: NodeId,
        cap_uv: u64,
        cap_vu: u64,
    ) -> (ArcId, ArcId) {
        (self.add_edge(u, v, cap_uv), self.add_edge(v, u, cap_vu))
    }

    /// Current flow on the arc.
    pub fn arc_flow(&self, arc: ArcId) -> u64 {
        self.flow[arc.0]
    }

    /// Zeroes all flow (capacities are kept).
    pub fn reset(&mut self) {
        self.flow.iter_mut().for_each(|f| *f = 0);
    }

    /// Maximum flow from `s` to `t` via Edmonds–Karp (BFS augmenting
    /// paths). `O(V · E²)`, deterministic.
    pub fn max_flow_edmonds_karp(&mut self, s: NodeId, t: NodeId) -> u64 {
        assert_ne!(s, t, "source equals sink");
        let (s, t) = (s.index(), t.index());
        let mut total = 0u64;
        loop {
            // BFS for an augmenting path in the residual graph.
            let mut pred: Vec<Option<usize>> = vec![None; self.n];
            let mut seen = vec![false; self.n];
            seen[s] = true;
            let mut queue = VecDeque::from([s]);
            'bfs: while let Some(u) = queue.pop_front() {
                for &arc in &self.adj[u] {
                    let v = self.to[arc];
                    if !seen[v] && self.res_cap(arc) > 0 {
                        seen[v] = true;
                        pred[v] = Some(arc);
                        if v == t {
                            break 'bfs;
                        }
                        queue.push_back(v);
                    }
                }
            }
            if !seen[t] {
                return total;
            }
            // Find bottleneck and augment.
            let mut bottleneck = u64::MAX;
            let mut v = t;
            while v != s {
                let arc = pred[v].expect("path reaches source");
                bottleneck = bottleneck.min(self.res_cap(arc));
                v = self.to[arc ^ 1];
            }
            let mut v = t;
            while v != s {
                let arc = pred[v].expect("path reaches source");
                self.augment(arc, bottleneck);
                v = self.to[arc ^ 1];
            }
            total += bottleneck;
        }
    }

    /// Residual capacity of arc `a` (forward: cap−flow; reverse twin: the
    /// forward arc's flow).
    fn res_cap(&self, a: usize) -> u64 {
        self.cap[a] - self.flow[a] + self.flow[a ^ 1]
    }

    /// Pushes `amount` through residual arc `a`: first cancels reverse
    /// flow, then adds forward flow.
    fn augment(&mut self, a: usize, amount: u64) {
        let twin = a ^ 1;
        let cancel = amount.min(self.flow[twin]);
        self.flow[twin] -= cancel;
        self.flow[a] += amount - cancel;
        debug_assert!(self.flow[a] <= self.cap[a]);
    }

    /// Maximum flow from `s` to `t` via Dinic's algorithm (level graph +
    /// blocking flows). `O(V² · E)` worst case, much faster in practice.
    pub fn max_flow_dinic(&mut self, s: NodeId, t: NodeId) -> u64 {
        assert_ne!(s, t, "source equals sink");
        let (s, t) = (s.index(), t.index());
        let mut total = 0u64;
        loop {
            // Build level graph.
            let mut level = vec![u32::MAX; self.n];
            level[s] = 0;
            let mut queue = VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for &arc in &self.adj[u] {
                    let v = self.to[arc];
                    if level[v] == u32::MAX && self.res_cap(arc) > 0 {
                        level[v] = level[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            if level[t] == u32::MAX {
                return total;
            }
            // Blocking flow with iteration pointers.
            let mut iter = vec![0usize; self.n];
            loop {
                let pushed = self.dinic_dfs(s, t, u64::MAX, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
    }

    fn dinic_dfs(
        &mut self,
        u: usize,
        t: usize,
        limit: u64,
        level: &[u32],
        iter: &mut [usize],
    ) -> u64 {
        if u == t {
            return limit;
        }
        while iter[u] < self.adj[u].len() {
            let arc = self.adj[u][iter[u]];
            let v = self.to[arc];
            if level[v] == level[u] + 1 && self.res_cap(arc) > 0 {
                let pushed = self.dinic_dfs(v, t, limit.min(self.res_cap(arc)), level, iter);
                if pushed > 0 {
                    self.augment(arc, pushed);
                    return pushed;
                }
            }
            iter[u] += 1;
        }
        0
    }

    /// Decomposes the current flow into explicit `s → t` paths.
    ///
    /// Returns `(node_path, amount)` pairs whose amounts sum to the flow
    /// value. Flow cycles (possible in principle, harmless to the value)
    /// are canceled and discarded first, so the returned paths are simple.
    pub fn flow_paths(&mut self, s: NodeId, t: NodeId) -> Vec<(Vec<NodeId>, u64)> {
        let (s, t) = (s.index(), t.index());
        // Net flow per arc pair (forward only).
        let mut net: Vec<u64> = (0..self.to.len() / 2)
            .map(|k| self.flow[2 * k].saturating_sub(self.flow[2 * k + 1]))
            .collect();
        self.cancel_flow_cycles(&mut net);
        let mut paths = Vec::new();
        loop {
            // Greedy walk from s along positive-net arcs.
            let mut path_nodes = vec![s];
            let mut path_arcs: Vec<usize> = Vec::new();
            let mut u = s;
            let mut visited = vec![false; self.n];
            visited[s] = true;
            while u != t {
                let mut advanced = false;
                for &arc in &self.adj[u] {
                    if arc % 2 == 0 && net[arc / 2] > 0 {
                        let v = self.to[arc];
                        if !visited[v] {
                            visited[v] = true;
                            path_nodes.push(v);
                            path_arcs.push(arc);
                            u = v;
                            advanced = true;
                            break;
                        }
                    }
                }
                if !advanced {
                    break;
                }
            }
            if u != t {
                return paths; // no more s→t flow
            }
            let bottleneck = path_arcs
                .iter()
                .map(|&a| net[a / 2])
                .min()
                .expect("non-empty path");
            for &a in &path_arcs {
                net[a / 2] -= bottleneck;
            }
            paths.push((
                path_nodes.into_iter().map(NodeId::from_index).collect(),
                bottleneck,
            ));
        }
    }

    /// Cancels directed cycles in the net-flow graph (they carry no s→t
    /// value). Iterative DFS identical in spirit to the circulation finder.
    fn cancel_flow_cycles(&self, net: &mut [u64]) {
        loop {
            // Build adjacency of positive-net arcs.
            let mut out: Vec<Vec<usize>> = vec![Vec::new(); self.n];
            for k in 0..net.len() {
                if net[k] > 0 {
                    out[self.to[2 * k + 1]].push(2 * k); // from = to of twin
                }
            }
            let mut color = vec![0u8; self.n]; // 0 white, 1 gray, 2 black
            let mut found: Option<Vec<usize>> = None;
            'outer: for start in 0..self.n {
                if color[start] != 0 {
                    continue;
                }
                let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
                let mut path_arcs: Vec<usize> = Vec::new();
                color[start] = 1;
                while let Some(&mut (u, ref mut next)) = stack.last_mut() {
                    if *next < out[u].len() {
                        let arc = out[u][*next];
                        *next += 1;
                        let v = self.to[arc];
                        match color[v] {
                            0 => {
                                color[v] = 1;
                                stack.push((v, 0));
                                path_arcs.push(arc);
                            }
                            1 => {
                                let pos = stack
                                    .iter()
                                    .position(|&(node, _)| node == v)
                                    .expect("gray node on stack");
                                let mut cycle = path_arcs[pos..].to_vec();
                                cycle.push(arc);
                                found = Some(cycle);
                                break 'outer;
                            }
                            _ => {}
                        }
                    } else {
                        color[u] = 2;
                        stack.pop();
                        path_arcs.pop();
                    }
                }
            }
            match found {
                Some(cycle) => {
                    let bottleneck = cycle
                        .iter()
                        .map(|&a| net[a / 2])
                        .min()
                        .expect("non-empty cycle");
                    for &a in &cycle {
                        net[a / 2] -= bottleneck;
                    }
                }
                None => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_types::DetRng;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// The classic CLRS example network (max flow 23).
    fn clrs() -> FlowNetwork {
        let mut f = FlowNetwork::new(6);
        f.add_edge(n(0), n(1), 16);
        f.add_edge(n(0), n(2), 13);
        f.add_edge(n(1), n(2), 10);
        f.add_edge(n(2), n(1), 4);
        f.add_edge(n(1), n(3), 12);
        f.add_edge(n(3), n(2), 9);
        f.add_edge(n(2), n(4), 14);
        f.add_edge(n(4), n(3), 7);
        f.add_edge(n(3), n(5), 20);
        f.add_edge(n(4), n(5), 4);
        f
    }

    #[test]
    fn clrs_example_both_algorithms() {
        assert_eq!(clrs().max_flow_edmonds_karp(n(0), n(5)), 23);
        assert_eq!(clrs().max_flow_dinic(n(0), n(5)), 23);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut f = FlowNetwork::new(4);
        f.add_edge(n(0), n(1), 10);
        f.add_edge(n(2), n(3), 10);
        assert_eq!(f.max_flow_dinic(n(0), n(3)), 0);
        assert_eq!(f.max_flow_edmonds_karp(n(0), n(3)), 0);
    }

    #[test]
    fn single_path_bottleneck() {
        let mut f = FlowNetwork::new(4);
        f.add_edge(n(0), n(1), 10);
        f.add_edge(n(1), n(2), 3);
        f.add_edge(n(2), n(3), 7);
        assert_eq!(f.max_flow_dinic(n(0), n(3)), 3);
    }

    #[test]
    fn parallel_arcs_accumulate() {
        let mut f = FlowNetwork::new(2);
        f.add_edge(n(0), n(1), 5);
        f.add_edge(n(0), n(1), 7);
        assert_eq!(f.max_flow_dinic(n(0), n(1)), 12);
    }

    #[test]
    fn bidirectional_channel_arcs() {
        let mut f = FlowNetwork::new(3);
        f.add_bidirectional(n(0), n(1), 10, 2);
        f.add_bidirectional(n(1), n(2), 4, 8);
        assert_eq!(f.max_flow_dinic(n(0), n(2)), 4);
        f.reset();
        assert_eq!(f.max_flow_dinic(n(2), n(0)), 2);
    }

    #[test]
    fn reset_clears_flow() {
        let mut f = clrs();
        assert_eq!(f.max_flow_dinic(n(0), n(5)), 23);
        f.reset();
        assert_eq!(f.max_flow_dinic(n(0), n(5)), 23);
    }

    #[test]
    fn zero_capacity_edges_carry_nothing() {
        let mut f = FlowNetwork::new(2);
        let a = f.add_edge(n(0), n(1), 0);
        assert_eq!(f.max_flow_dinic(n(0), n(1)), 0);
        assert_eq!(f.arc_flow(a), 0);
    }

    #[test]
    fn dinic_equals_edmonds_karp_on_random_graphs() {
        let mut rng = DetRng::new(31);
        for _ in 0..25 {
            let nodes = 8;
            let mut a = FlowNetwork::new(nodes);
            let mut b = FlowNetwork::new(nodes);
            for _ in 0..20 {
                let u = rng.index(nodes);
                let v = rng.index(nodes);
                if u != v {
                    let cap = rng.range_u64(0, 20);
                    a.add_edge(NodeId::from_index(u), NodeId::from_index(v), cap);
                    b.add_edge(NodeId::from_index(u), NodeId::from_index(v), cap);
                }
            }
            let fa = a.max_flow_dinic(n(0), n(7));
            let fb = b.max_flow_edmonds_karp(n(0), n(7));
            assert_eq!(fa, fb);
        }
    }

    #[test]
    fn flow_paths_sum_to_value() {
        let mut f = clrs();
        let value = f.max_flow_dinic(n(0), n(5));
        let paths = f.flow_paths(n(0), n(5));
        let total: u64 = paths.iter().map(|(_, amt)| amt).sum();
        assert_eq!(total, value);
        for (path, amt) in &paths {
            assert!(*amt > 0);
            assert_eq!(path.first(), Some(&n(0)));
            assert_eq!(path.last(), Some(&n(5)));
            // Paths are simple.
            let mut sorted: Vec<_> = path.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), path.len());
        }
    }

    #[test]
    fn flow_paths_on_random_graphs_account_for_value() {
        let mut rng = DetRng::new(77);
        for _ in 0..20 {
            let nodes = 10;
            let mut f = FlowNetwork::new(nodes);
            for _ in 0..30 {
                let u = rng.index(nodes);
                let v = rng.index(nodes);
                if u != v {
                    f.add_edge(
                        NodeId::from_index(u),
                        NodeId::from_index(v),
                        rng.range_u64(1, 15),
                    );
                }
            }
            let value = f.max_flow_dinic(n(0), n(9));
            let paths = f.flow_paths(n(0), n(9));
            assert_eq!(paths.iter().map(|(_, a)| a).sum::<u64>(), value);
        }
    }

    #[test]
    fn large_line_network_is_fast_and_exact() {
        let nodes = 1000;
        let mut f = FlowNetwork::new(nodes);
        for i in 0..nodes - 1 {
            f.add_edge(NodeId::from_index(i), NodeId::from_index(i + 1), 42);
        }
        assert_eq!(f.max_flow_dinic(n(0), NodeId::from_index(nodes - 1)), 42);
    }
}
