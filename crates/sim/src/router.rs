//! The routing interface between the simulator and routing schemes.
//!
//! The engine asks the scheme where to send (the remainder of) a payment;
//! the scheme answers with `(path, amount)` proposals based on what it can
//! observe. Observability is mediated by [`NetworkView`], which exposes the
//! topology and per-channel available balances — the information a Spider
//! host gets by probing its candidate paths.

use crate::channel::ChannelState;
use crate::paths::{PathEntry, PathTable};
use spider_topology::Topology;
use spider_types::{
    Amount, ChannelId, Direction, DropReason, MarkStamp, NodeId, PathId, PaymentId, Result,
    SimDuration, SimTime,
};
use std::rc::Rc;

/// Read-only view of the network given to routers.
pub struct NetworkView<'a> {
    /// The channel topology.
    pub topo: &'a Topology,
    /// Per-channel balance state (indexed by [`ChannelId`]).
    pub channels: &'a [ChannelState],
    /// The simulation's shared path interner: routers intern candidate
    /// paths here and hand back [`PathId`]s in their proposals.
    pub paths: &'a PathTable,
    /// Current simulation time.
    pub now: SimTime,
}

impl<'a> NetworkView<'a> {
    /// Available balance for the sender in `dir` on `channel`.
    pub fn available(&self, channel: ChannelId, dir: Direction) -> Amount {
        self.channels[channel.index()].available(dir)
    }

    /// Interns a node path known to follow topology edges (panics
    /// otherwise; use [`NetworkView::try_intern`] for candidates that may
    /// be off-topology).
    #[inline]
    pub fn intern(&self, nodes: &[NodeId]) -> PathId {
        self.paths.intern(self.topo, nodes)
    }

    /// Fallible interning for paths that may not follow topology edges.
    #[inline]
    pub fn try_intern(&self, nodes: &[NodeId]) -> Result<PathId> {
        self.paths.try_intern(self.topo, nodes)
    }

    /// The interned entry behind a [`PathId`] (a cheap `Rc` clone).
    #[inline]
    pub fn path(&self, id: PathId) -> Rc<PathEntry> {
        self.paths.entry(id)
    }

    /// The bottleneck (minimum available balance) along an interned path,
    /// computed over its pre-resolved hops — no per-hop adjacency lookups.
    pub fn bottleneck(&self, id: PathId) -> Amount {
        self.paths.map_entry(id, |entry| {
            let mut min = Amount::MAX;
            for &(c, dir) in entry.hops() {
                min = min.min(self.available(c, dir));
            }
            min
        })
    }

    /// The bottleneck (minimum available balance) along a node path, or
    /// `None` if consecutive nodes are not adjacent. Prefer
    /// [`NetworkView::bottleneck`] on interned paths — it skips the
    /// per-hop `channel_between` resolution this does.
    pub fn path_bottleneck(&self, path: &[NodeId]) -> Option<Amount> {
        let mut min = Amount::MAX;
        for w in path.windows(2) {
            let c = self.topo.channel_between(w[0], w[1])?;
            let dir = self.topo.channel(c).direction_from(w[0]);
            min = min.min(self.available(c, dir));
        }
        Some(min)
    }
}

/// A request to route (part of) a payment.
#[derive(Debug, Clone)]
pub struct RouteRequest {
    /// The payment being routed.
    pub payment: PaymentId,
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Amount still to deliver (≤ original payment amount).
    pub remaining: Amount,
    /// Original payment amount.
    pub total: Amount,
    /// Maximum transaction-unit size; proposals larger than this are split
    /// by the engine.
    pub mtu: Amount,
    /// Number of times this payment has been (re)attempted.
    pub attempt: u32,
}

/// One `(path, amount)` proposal from a router.
///
/// A `PathId` is valid by construction (interning resolves the hops), so
/// the engine trusts proposals blindly. Routers whose candidate paths
/// might go stale or skip edges (recomputed against a different topology,
/// assembled from external state) should intern through
/// [`NetworkView::try_intern`] and drop failures instead of letting
/// [`NetworkView::intern`] panic.
#[derive(Debug, Clone, Copy)]
pub struct RouteProposal {
    /// Interned path from source to destination (resolve via
    /// [`NetworkView::path`]).
    pub path: PathId,
    /// Amount to send along it.
    pub amount: Amount,
}

/// Outcome notification for adaptive routers.
#[derive(Debug, Clone, Copy)]
pub struct UnitOutcome {
    /// The payment the unit belonged to.
    pub payment: PaymentId,
    /// The path attempted.
    pub path: PathId,
    /// The unit value.
    pub amount: Amount,
    /// Whether funds were successfully locked end-to-end (settlement then
    /// follows after Δ unconditionally in this model).
    pub locked: bool,
    /// Set when the unit was lost to an injected transport fault *after*
    /// locking (message loss, hop timeout, node crash): `locked` reports
    /// the lock result, `fault` reports the post-lock fate. Routers use
    /// this to cool down the failed path (`spider_routing::PathPenalties`)
    /// without reacting to ordinary lock contention. Always `None` in
    /// fault-free runs.
    pub fault: Option<DropReason>,
}

/// End-to-end acknowledgement for one transaction unit (§5 queueing mode).
///
/// Emitted once per injected unit when the engine runs with
/// [`QueueingMode::PerChannelFifo`](crate::config::QueueingMode): either the
/// unit settled (`delivered`) or it was dropped/refunded (queue timeout,
/// queue overflow mid-path, or payment expiry). The [`MarkStamp`] carries
/// the price and mark bit routers along the path stamped onto the unit;
/// dropped units always come back marked.
#[derive(Debug, Clone, Copy)]
pub struct UnitAck {
    /// The payment the unit belonged to.
    pub payment: PaymentId,
    /// The interned path the unit was injected on.
    pub path: PathId,
    /// The unit value.
    pub amount: Amount,
    /// True iff the unit settled end-to-end.
    pub delivered: bool,
    /// Aggregated price/mark metadata stamped by the routers on the path.
    pub stamp: MarkStamp,
    /// Why the unit was dropped, when `delivered` is false.
    pub drop_reason: Option<DropReason>,
    /// The failing hop of a dropped unit — the channel it was queued at
    /// or traveling toward — or `None` for delivered units and
    /// whole-path failures (expiry after locking, griefing holds).
    /// Lets routers attribute sheds to the congested channel
    /// (`spider_routing::ChannelBreakers`) instead of the whole path.
    pub drop_channel: Option<ChannelId>,
    /// Time from injection to this acknowledgement.
    pub rtt: SimDuration,
}

/// Summary of one applied topology-churn event: the channels that
/// actually changed state (idempotent no-ops are filtered out). Handed to
/// [`Router::on_topology_change`] so schemes can repair candidate caches
/// and per-path controller state incrementally.
#[derive(Debug, Clone, Default)]
pub struct TopologyUpdate {
    /// Channels that transitioned open → closed.
    pub closed: Vec<ChannelId>,
    /// Channels that transitioned closed → open.
    pub opened: Vec<ChannelId>,
    /// Channels whose capacity was resized (connectivity unchanged — the
    /// hop-count path oracles never need invalidation for these).
    pub resized: Vec<ChannelId>,
}

/// End-of-run observability snapshot a router hands the engine (see
/// [`Router::observability`]): scheme-internal counters and the live
/// per-path/per-pair AIMD window sizes. Order must be deterministic
/// (sorted keys, not hash order) — the snapshot lands in `SimReport` and
/// golden-tested outputs.
#[derive(Debug, Clone, Default)]
pub struct RouterObs {
    /// Name–value counter pairs (cache hits/misses, repairs…).
    pub counters: Vec<(String, u64)>,
    /// Live AIMD window sizes in XRP, one per controller, in a
    /// deterministic scheme-defined order. Empty for windowless schemes.
    pub windows_xrp: Vec<f64>,
}

impl TopologyUpdate {
    /// True when the event changed nothing (every mutation was a no-op).
    pub fn is_empty(&self) -> bool {
        self.closed.is_empty() && self.opened.is_empty() && self.resized.is_empty()
    }

    /// True when connectivity changed (a cache built on hop counts may be
    /// stale).
    pub fn connectivity_changed(&self) -> bool {
        !self.closed.is_empty() || !self.opened.is_empty()
    }
}

/// A routing scheme.
///
/// Implementations live in `spider-routing`; the engine drives them through
/// this object-safe trait.
pub trait Router {
    /// Human-readable scheme name (used in reports).
    fn name(&self) -> &'static str;

    /// Called once before [`Router::initialize`] with engine-mode
    /// information: `queueing` is true when units travel hop by hop
    /// through router queues and definitive feedback arrives via
    /// [`Router::on_unit_ack`] rather than lock outcomes. Wrappers must
    /// forward to their inner scheme.
    fn configure(&mut self, _queueing: bool) {}

    /// Called once with the initial network state before any payment.
    fn initialize(&mut self, _view: &NetworkView<'_>) {}

    /// True when this scheme implements [`Router::prewarm`]; the engine
    /// only collects the workload's pair list when someone will use it.
    /// Wrappers must forward to their inner scheme.
    fn wants_prewarm(&self) -> bool {
        false
    }

    /// Called once after [`Router::initialize`] with every distinct
    /// `(src, dst)` pair the workload will route, in first-arrival order
    /// — only when [`Router::wants_prewarm`] returns true. Schemes with
    /// per-pair candidate caches warm them here in one batched,
    /// per-source pass (`spider_routing::PathCache::prefill`) instead of
    /// paying k BFS traversals per pair on the routing hot path. Purely a
    /// performance hook: candidate sets (and outcomes) must be identical
    /// with or without it. Wrappers must forward to their inner scheme.
    /// Default: no-op.
    fn prewarm(&mut self, _pairs: &[(NodeId, NodeId)], _view: &NetworkView<'_>) {}

    /// Proposes how to route `req.remaining`. Proposals are attempted in
    /// order; those that fail to lock are skipped (non-atomic) or abort the
    /// payment (atomic schemes).
    fn route(&mut self, req: &RouteRequest, view: &NetworkView<'_>) -> Vec<RouteProposal>;

    /// Observation hook invoked after every unit lock attempt. In queueing
    /// mode `locked` means *accepted for forwarding* (possibly queued at
    /// the first hop); the definitive outcome arrives via
    /// [`Router::on_unit_ack`].
    fn on_unit_outcome(&mut self, _outcome: &UnitOutcome, _view: &NetworkView<'_>) {}

    /// True when [`Router::on_unit_outcome`] does something. Schemes that
    /// keep the default no-op hook should return `false`: the engine then
    /// elides the calls — and, since a failed lock rolls back completely,
    /// batch-counts the identical failures of remaining same-size chunks
    /// instead of re-walking the path for each. Purely a performance
    /// hint: with a no-op hook, outcomes are identical either way.
    /// Wrappers must forward to their inner scheme if they forward the
    /// outcome hook (and return `true` if they observe outcomes
    /// themselves).
    fn observes_unit_outcomes(&self) -> bool {
        true
    }

    /// Acknowledgement hook for the §5 queueing mode: called exactly once
    /// per accepted unit with its delivery outcome and price stamp. Never
    /// called in lockstep mode.
    fn on_unit_ack(&mut self, _ack: &UnitAck, _view: &NetworkView<'_>) {}

    /// Called after every applied topology-churn event (and once before
    /// [`Router::prewarm`] when the schedule closes channels at `t = 0`),
    /// with the channels that actually changed state. Schemes with
    /// candidate-path caches repair them here (see
    /// `spider_routing::PathCache::on_topology_change`); schemes with
    /// per-path controller state migrate it across the path-set change.
    /// Wrappers must forward to their inner scheme. Default: no-op —
    /// proposals over dead channels then simply fail to lock.
    fn on_topology_change(&mut self, _update: &TopologyUpdate, _view: &NetworkView<'_>) {}

    /// Atomic schemes deliver a payment in one attempt, entirely or not at
    /// all (SilentWhispers, SpeedyMurmurs, max-flow). Non-atomic schemes
    /// (packet-switched Spider and the shortest-path baseline) may deliver
    /// partially and retry from the pending queue.
    fn atomic(&self) -> bool {
        false
    }

    /// The sum of this scheme's live AIMD window sizes in XRP, probed by
    /// the engine's series sampler each cadence; `None` for windowless
    /// schemes (the series then reads 0). Wrappers should add their own
    /// windows to the inner scheme's. Default: `None`.
    fn window_gauge(&self) -> Option<f64> {
        None
    }

    /// End-of-run observability snapshot: internal counters and live
    /// window sizes, in a deterministic order. Wrappers should merge
    /// their own snapshot with the inner scheme's. Default: empty.
    fn observability(&self) -> RouterObs {
        RouterObs::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_topology::gen;

    #[test]
    fn view_bottleneck() {
        let t = gen::line(3, Amount::from_xrp(10));
        let channels: Vec<ChannelState> = t
            .channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &channels,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let b = view
            .path_bottleneck(&[NodeId(0), NodeId(1), NodeId(2)])
            .unwrap();
        assert_eq!(b, Amount::from_xrp(5));
        assert!(view.path_bottleneck(&[NodeId(0), NodeId(2)]).is_none());
        // Interned paths give the same bottleneck without adjacency lookups.
        let id = view.intern(&[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(view.bottleneck(id), Amount::from_xrp(5));
        assert!(view.try_intern(&[NodeId(0), NodeId(2)]).is_err());
    }

    #[test]
    fn view_directional_balances() {
        let t = gen::line(2, Amount::from_xrp(10));
        let mut channels: Vec<ChannelState> = t
            .channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect();
        assert!(channels[0].lock(Direction::Forward, Amount::from_xrp(5)));
        channels[0].settle(Direction::Forward, Amount::from_xrp(5));
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &channels,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let c = ChannelId(0);
        assert_eq!(view.available(c, Direction::Forward), Amount::ZERO);
        assert_eq!(view.available(c, Direction::Backward), Amount::from_xrp(10));
    }
}
