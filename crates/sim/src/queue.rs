//! Router-local price signaling for the §5 queueing model.
//!
//! When the engine runs with [`QueueingMode::PerChannelFifo`], every
//! channel direction owns a FIFO queue of transaction units. As a unit is
//! serviced (balance becomes available and it crosses the hop), the router
//! computes a **local congestion signal** from two observables:
//!
//! * the unit's **queueing delay** at this hop — the `q_(u,v)` term the
//!   paper estimates from queue growth; and
//! * the channel's **flow imbalance** — the normalized difference of the
//!   volumes serviced in the two directions, the paper's `x_u − x_v` term:
//!   a direction that persistently carries more volume than its reverse
//!   will deplete the channel no matter how large the queue is.
//!
//! The signal has two outputs: a scalar **price** stamped (summed) onto
//! the unit, and a **mark** bit set when either observable crosses its
//! threshold. Senders see the aggregated stamp on the unit's ack and run
//! AIMD per-path rate control on it (`spider-protocol`).
//!
//! [`QueueingMode::PerChannelFifo`]: crate::config::QueueingMode::PerChannelFifo

use crate::config::QueueConfig;
use spider_types::{Amount, SimDuration};

/// One hop's local congestion signal for a transiting unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueSignal {
    /// The hop's price contribution (≥ 0).
    pub price: f64,
    /// Whether the hop marks the unit.
    pub marked: bool,
}

/// Normalized flow imbalance of a channel direction:
/// `(sent − sent_reverse) / (sent + sent_reverse)` ∈ [−1, 1], zero when the
/// channel has carried no volume yet.
pub fn flow_imbalance(sent: Amount, sent_reverse: Amount) -> f64 {
    let total = sent.drops() as f64 + sent_reverse.drops() as f64;
    if total <= 0.0 {
        0.0
    } else {
        (sent.drops() as f64 - sent_reverse.drops() as f64) / total
    }
}

/// Computes one hop's local signal for a unit serviced after waiting
/// `queue_delay`, on a channel that has serviced `sent` volume in the
/// unit's direction and `sent_reverse` the other way, and whose sending
/// side retains `available_fraction` of capacity after the unit's lock.
pub fn local_signal(
    queue_delay: SimDuration,
    sent: Amount,
    sent_reverse: Amount,
    available_fraction: f64,
    cfg: &QueueConfig,
) -> QueueSignal {
    let imbalance = flow_imbalance(sent, sent_reverse);
    // Price: delay plus only the *adverse* part of imbalance (sending in
    // the direction that already carried more volume is what depletes).
    let price = cfg.queue_price_weight * queue_delay.as_secs_f64()
        + cfg.imbalance_price_weight * imbalance.max(0.0);
    // Imbalance alone is a steering signal, not a congestion signal: it
    // marks only when the flow skew is actually about to drain the side
    // it is sending from.
    let depleting =
        imbalance > cfg.imbalance_threshold && available_fraction < cfg.depletion_fraction;
    let marked = queue_delay > cfg.marking_delay || depleting;
    QueueSignal { price, marked }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xrp(x: u64) -> Amount {
        Amount::from_xrp(x)
    }

    #[test]
    fn imbalance_is_normalized_and_signed() {
        assert_eq!(flow_imbalance(Amount::ZERO, Amount::ZERO), 0.0);
        assert_eq!(flow_imbalance(xrp(10), Amount::ZERO), 1.0);
        assert_eq!(flow_imbalance(Amount::ZERO, xrp(10)), -1.0);
        assert!((flow_imbalance(xrp(30), xrp(10)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fresh_hop_is_unmarked_and_free() {
        let cfg = QueueConfig::default();
        let s = local_signal(SimDuration::ZERO, Amount::ZERO, Amount::ZERO, 0.5, &cfg);
        assert!(!s.marked);
        assert_eq!(s.price, 0.0);
    }

    #[test]
    fn delay_past_threshold_marks() {
        let cfg = QueueConfig::default();
        let just_under = local_signal(cfg.marking_delay, xrp(1), xrp(1), 0.5, &cfg);
        assert!(!just_under.marked, "delay equal to threshold does not mark");
        let over = local_signal(
            cfg.marking_delay + SimDuration::from_micros(1),
            xrp(1),
            xrp(1),
            0.5,
            &cfg,
        );
        assert!(over.marked);
    }

    #[test]
    fn imbalance_marks_only_near_depletion() {
        let cfg = QueueConfig {
            imbalance_threshold: 0.5,
            depletion_fraction: 0.2,
            ..QueueConfig::default()
        };
        // 4:1 flow skew (0.6 > 0.5) with plenty of balance left: steering
        // price, but no mark.
        let healthy = local_signal(SimDuration::ZERO, xrp(40), xrp(10), 0.5, &cfg);
        assert!(!healthy.marked);
        assert!(healthy.price > 0.0);
        // Same skew with the sending side nearly drained: marked.
        let draining = local_signal(SimDuration::ZERO, xrp(40), xrp(10), 0.1, &cfg);
        assert!(draining.marked);
        // Skew at the threshold does not mark even when drained.
        let at = local_signal(SimDuration::ZERO, xrp(30), xrp(10), 0.1, &cfg);
        assert!(!at.marked);
        // Rebalancing direction (negative imbalance) never marks.
        let heal = local_signal(SimDuration::ZERO, xrp(10), xrp(40), 0.1, &cfg);
        assert!(!heal.marked);
        assert_eq!(heal.price, 0.0, "rebalancing traffic is not priced");
    }

    #[test]
    fn price_combines_delay_and_imbalance() {
        let cfg = QueueConfig {
            queue_price_weight: 2.0,
            imbalance_price_weight: 1.0,
            ..QueueConfig::default()
        };
        let s = local_signal(SimDuration::from_millis(250), xrp(30), xrp(10), 0.5, &cfg);
        // 2.0 * 0.25s + 1.0 * 0.5 = 1.0
        assert!((s.price - 1.0).abs() < 1e-12);
    }
}
