//! The shared path interner.
//!
//! Every routed path in a simulation is interned exactly once into a
//! [`PathTable`]: the node sequence is stored next to its pre-resolved
//! `(ChannelId, Direction)` hop array, and everything downstream — route
//! proposals, per-unit state, settle events, acknowledgements — carries a
//! copyable [`PathId`] instead of cloning node vectors and re-running
//! `channel_between` per hop per unit.
//!
//! The table lives on the [`Simulation`](crate::Simulation) and is exposed
//! to routers through [`NetworkView`](crate::NetworkView), so routing and
//! the engine resolve against the same dense id space. Interning is
//! idempotent: the same node sequence always yields the same id, which is
//! what lets adaptive routers compare an acknowledged path against their
//! candidate set with a single integer comparison.
//!
//! Entries are handed out as `Rc<PathEntry>` clones, so callers can hold a
//! resolved path across arbitrary engine mutations without borrowing the
//! table.

use spider_topology::Topology;
use spider_types::{ChannelId, Direction, NodeId, PathId, Result};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// One interned path: the node sequence and its hops, resolved once.
/// The node slice is shared with the table's dedup index, so each path's
/// nodes are stored exactly once.
#[derive(Debug, PartialEq, Eq)]
pub struct PathEntry {
    nodes: Rc<[NodeId]>,
    hops: Vec<(ChannelId, Direction)>,
}

impl PathEntry {
    /// The node sequence, source first.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The pre-resolved channel hops, in travel order.
    #[inline]
    pub fn hops(&self) -> &[(ChannelId, Direction)] {
        &self.hops
    }

    /// Number of hops (edges).
    #[inline]
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// Source node.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Destination node.
    #[inline]
    pub fn dest(&self) -> NodeId {
        *self.nodes.last().expect("paths are non-empty")
    }
}

#[derive(Debug, Default)]
struct Inner {
    entries: Vec<Rc<PathEntry>>,
    index: HashMap<Rc<[NodeId]>, PathId>,
}

/// Append-only, deduplicating store of resolved paths.
///
/// Uses interior mutability so routers can intern through the shared
/// [`NetworkView`](crate::NetworkView) reference; lookups hand out
/// `Rc<PathEntry>` clones and never hold a borrow across caller code.
#[derive(Debug, Default)]
pub struct PathTable {
    inner: RefCell<Inner>,
}

impl PathTable {
    /// An empty table.
    pub fn new() -> Self {
        PathTable::default()
    }

    /// Interns a node path, resolving its hops against `topo` on first
    /// sight. Returns an error if consecutive nodes are not adjacent.
    pub fn try_intern(&self, topo: &Topology, nodes: &[NodeId]) -> Result<PathId> {
        debug_assert!(!nodes.is_empty(), "cannot intern an empty path");
        if let Some(&id) = self.inner.borrow().index.get(nodes) {
            return Ok(id);
        }
        let hops = topo.path_channels(nodes)?;
        let mut inner = self.inner.borrow_mut();
        let id = PathId::from_index(inner.entries.len());
        let nodes: Rc<[NodeId]> = Rc::from(nodes);
        inner.entries.push(Rc::new(PathEntry {
            nodes: Rc::clone(&nodes),
            hops,
        }));
        inner.index.insert(nodes, id);
        Ok(id)
    }

    /// Interns a node path known to follow topology edges. Panics
    /// otherwise — routers that can produce off-topology candidates should
    /// use [`PathTable::try_intern`].
    pub fn intern(&self, topo: &Topology, nodes: &[NodeId]) -> PathId {
        self.try_intern(topo, nodes)
            .expect("path follows topology edges")
    }

    /// Interns a batch of node paths known to follow topology edges,
    /// holding the table borrow once across the whole batch instead of
    /// re-borrowing per path. Used by the batched candidate-path oracle to
    /// bulk-load worker-thread results; ids come back in input order, with
    /// duplicates resolving to the same id exactly as
    /// [`PathTable::intern`] would assign them one at a time.
    pub fn intern_batch<'a>(
        &self,
        topo: &Topology,
        seqs: impl IntoIterator<Item = &'a [NodeId]>,
    ) -> Vec<PathId> {
        let mut inner = self.inner.borrow_mut();
        seqs.into_iter()
            .map(|nodes| {
                debug_assert!(!nodes.is_empty(), "cannot intern an empty path");
                if let Some(&id) = inner.index.get(nodes) {
                    return id;
                }
                let hops = topo
                    .path_channels(nodes)
                    .expect("path follows topology edges");
                let id = PathId::from_index(inner.entries.len());
                let nodes: Rc<[NodeId]> = Rc::from(nodes);
                inner.entries.push(Rc::new(PathEntry {
                    nodes: Rc::clone(&nodes),
                    hops,
                }));
                inner.index.insert(nodes, id);
                id
            })
            .collect()
    }

    /// The entry for an interned id (a cheap `Rc` clone).
    #[inline]
    pub fn entry(&self, id: PathId) -> Rc<PathEntry> {
        Rc::clone(&self.inner.borrow().entries[id.index()])
    }

    /// Runs `f` on the entry for `id` under the table borrow — no `Rc`
    /// refcount traffic. For tight read-only loops (bottleneck probes);
    /// `f` must not call back into the table.
    #[inline]
    pub fn map_entry<R>(&self, id: PathId, f: impl FnOnce(&PathEntry) -> R) -> R {
        f(&self.inner.borrow().entries[id.index()])
    }

    /// Number of distinct paths interned.
    pub fn len(&self) -> usize {
        self.inner.borrow().entries.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_topology::gen;
    use spider_types::Amount;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn interning_is_idempotent() {
        let t = gen::line(4, Amount::from_xrp(10));
        let table = PathTable::new();
        let a = table.intern(&t, &[n(0), n(1), n(2)]);
        let b = table.intern(&t, &[n(0), n(1), n(2)]);
        assert_eq!(a, b);
        assert_eq!(table.len(), 1);
        let c = table.intern(&t, &[n(2), n(1), n(0)]);
        assert_ne!(a, c, "direction matters");
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn entry_resolves_hops_once() {
        let t = gen::line(3, Amount::from_xrp(10));
        let table = PathTable::new();
        let id = table.intern(&t, &[n(0), n(1), n(2)]);
        let e = table.entry(id);
        assert_eq!(e.nodes(), &[n(0), n(1), n(2)]);
        assert_eq!(e.hop_count(), 2);
        assert_eq!(e.source(), n(0));
        assert_eq!(e.dest(), n(2));
        assert_eq!(e.hops(), t.path_channels(&[n(0), n(1), n(2)]).unwrap());
    }

    #[test]
    fn off_topology_paths_are_rejected() {
        let t = gen::line(3, Amount::from_xrp(10));
        let table = PathTable::new();
        assert!(table.try_intern(&t, &[n(0), n(2)]).is_err());
        assert!(table.is_empty());
    }

    #[test]
    fn intern_batch_matches_one_at_a_time() {
        let t = gen::line(4, Amount::from_xrp(10));
        let batch_table = PathTable::new();
        let seqs: Vec<Vec<NodeId>> = vec![
            vec![n(0), n(1), n(2)],
            vec![n(1), n(2)],
            vec![n(0), n(1), n(2)], // duplicate
            vec![n(3), n(2)],
        ];
        let batch_ids = batch_table.intern_batch(&t, seqs.iter().map(|s| s.as_slice()));
        let one_table = PathTable::new();
        let one_ids: Vec<PathId> = seqs.iter().map(|s| one_table.intern(&t, s)).collect();
        assert_eq!(batch_ids, one_ids);
        assert_eq!(batch_table.len(), one_table.len());
        assert_eq!(batch_table.len(), 3, "duplicate dedups");
        // A later batch sees earlier interning.
        let more = batch_table.intern_batch(&t, [&seqs[1][..], &[n(2), n(3)][..]]);
        assert_eq!(more[0], batch_ids[1]);
        assert_eq!(batch_table.len(), 4);
    }

    #[test]
    fn single_node_path_has_no_hops() {
        let t = gen::line(2, Amount::from_xrp(10));
        let table = PathTable::new();
        let id = table.intern(&t, &[n(1)]);
        let e = table.entry(id);
        assert_eq!(e.hop_count(), 0);
        assert_eq!(e.source(), e.dest());
    }
}
