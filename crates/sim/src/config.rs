//! Simulation configuration.

use serde::{Deserialize, Serialize};
use spider_obs::SamplerConfig;
use spider_types::{Amount, SimDuration};

/// Order in which queued (incomplete, non-atomic) payments are retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// Shortest remaining processing time — smallest incomplete amount
    /// first. The paper's default: "scheduled in order of increasing
    /// incomplete payment amount, i.e. according to SRPT".
    Srpt,
    /// First-come-first-served by arrival time.
    Fifo,
    /// Most recent arrival first.
    Lifo,
    /// Earliest deadline first.
    EarliestDeadline,
    /// Largest remaining amount first (anti-SRPT, for ablations).
    LargestRemaining,
}

/// On-chain rebalancing policy (§5.2.3): routers may top up a depleted
/// channel direction with fresh on-chain funds, paying confirmation
/// latency — the `b_(u,v)` mechanism of eqs. (6)–(11) in event form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RebalancingConfig {
    /// How often channel balances are checked for depletion.
    pub check_interval: SimDuration,
    /// A direction is "depleted" when its available balance falls below
    /// this fraction of total channel capacity.
    pub trigger_fraction: f64,
    /// Deposits top the direction back up to this fraction of capacity.
    pub target_fraction: f64,
    /// On-chain confirmation latency (blockchain delay; minutes on
    /// Bitcoin, configurable here).
    pub confirmation_delay: SimDuration,
}

impl Default for RebalancingConfig {
    fn default() -> Self {
        RebalancingConfig {
            check_interval: SimDuration::from_millis(500),
            trigger_fraction: 0.05,
            target_fraction: 0.5,
            confirmation_delay: SimDuration::from_secs(10),
        }
    }
}

/// How transaction units claim channel balance along their path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueueingMode {
    /// The seed behavior: a unit locks its entire path instantly at
    /// routing time and fails immediately when any hop lacks balance.
    Lockstep,
    /// The §5 router model: units travel hop by hop and wait in
    /// per-channel FIFO queues when the outgoing direction lacks balance;
    /// routers stamp prices and marks onto transiting units.
    ///
    /// Applies to non-atomic schemes; atomic schemes (max-flow,
    /// SilentWhispers, SpeedyMurmurs) keep lockstep all-or-nothing
    /// semantics, which queueing would break.
    PerChannelFifo(QueueConfig),
}

/// Parameters of the per-channel queueing/marking model (§5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Per-hop forwarding/processing latency once balance is available.
    pub hop_delay: SimDuration,
    /// Units whose queueing delay at a hop exceeds this are marked
    /// (the router's threshold rule on queue delay).
    pub marking_delay: SimDuration,
    /// Units are also marked when the channel's one-way flow share
    /// `(x_d − x_rev) / (x_d + x_rev)` exceeds this (the paper's
    /// imbalance term `x_u − x_v`, normalized) *and* the sending
    /// direction is close to depletion (see `depletion_fraction`).
    pub imbalance_threshold: f64,
    /// Imbalance marking fires only when the sending side's available
    /// balance is below this fraction of channel capacity: persistent
    /// one-way flow is only a congestion signal once it threatens to
    /// drain the channel.
    pub depletion_fraction: f64,
    /// A unit queued longer than this is dropped and nacked.
    pub max_queue_delay: SimDuration,
    /// Maximum units queued per channel direction; arrivals beyond this
    /// are dropped immediately.
    pub max_queue_units: usize,
    /// Weight of queueing delay (seconds) in the stamped price.
    pub queue_price_weight: f64,
    /// Weight of the normalized flow imbalance in the stamped price.
    pub imbalance_price_weight: f64,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            hop_delay: SimDuration::from_millis(10),
            marking_delay: SimDuration::from_millis(150),
            imbalance_threshold: 0.4,
            depletion_fraction: 0.2,
            max_queue_delay: SimDuration::from_millis(1_500),
            max_queue_units: 4_096,
            queue_price_weight: 1.0,
            imbalance_price_weight: 0.5,
        }
    }
}

impl QueueConfig {
    fn validate(&self) -> spider_types::Result<()> {
        use spider_types::SpiderError::InvalidConfig;
        if self.max_queue_delay.is_zero() {
            return Err(InvalidConfig("max queue delay must be positive".into()));
        }
        if self.max_queue_units == 0 {
            return Err(InvalidConfig("queue capacity must be positive".into()));
        }
        if self.marking_delay > self.max_queue_delay {
            return Err(InvalidConfig(
                "marking delay must not exceed max queue delay".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.imbalance_threshold) {
            return Err(InvalidConfig(
                "imbalance threshold must be in [0, 1]".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.depletion_fraction) {
            return Err(InvalidConfig("depletion fraction must be in [0, 1]".into()));
        }
        if self.queue_price_weight < 0.0 || self.imbalance_price_weight < 0.0 {
            return Err(InvalidConfig("price weights must be non-negative".into()));
        }
        Ok(())
    }
}

/// Sender-side admission control: a token bucket plus a global
/// queue-occupancy gate that stops payments *before* they enter any
/// queue, so under overload the network carries only what it can
/// deliver instead of letting every payment rot toward its deadline.
/// `None` (the default) leaves arrivals ungated.
///
/// Two postures toward a gated payment:
///
/// * **policing** (`defer: false`) — fail-fast with
///   `DropReason::AdmissionRejected`; the sender gives up immediately;
/// * **shaping** (`defer: true`) — the arrival is re-offered at the
///   deterministic time the bucket next has a token (deferred arrivals
///   are paced at exactly `rate_per_sec`, FIFO), so a burst spreads out
///   instead of dying. The payment's deadline runs from the deferred
///   offer — it has not entered the network while it waits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Sustained admission rate of the token bucket, payments per second.
    pub rate_per_sec: f64,
    /// Token-bucket burst size (maximum tokens banked while idle).
    pub burst: f64,
    /// Policing mode only: new payments are also rejected while global
    /// queue occupancy (queued units across every channel direction, as
    /// a fraction of total queue capacity) exceeds this — the
    /// queue-gradient signal that the token rate alone cannot see.
    /// Shaping bounds intake by time, not rejection, and ignores it.
    pub max_queue_fraction: f64,
    /// Shape instead of police: defer gated arrivals to the bucket's
    /// next-token time instead of fail-fasting them.
    pub defer: bool,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            rate_per_sec: 2_000.0,
            burst: 256.0,
            max_queue_fraction: 0.5,
            defer: false,
        }
    }
}

impl AdmissionConfig {
    fn validate(&self) -> spider_types::Result<()> {
        use spider_types::SpiderError::InvalidConfig;
        if self.rate_per_sec <= 0.0 {
            return Err(InvalidConfig("admission rate must be positive".into()));
        }
        if self.burst < 1.0 {
            return Err(InvalidConfig("admission burst must be at least 1".into()));
        }
        if !(0.0..=1.0).contains(&self.max_queue_fraction) {
            return Err(InvalidConfig(
                "admission queue fraction must be in [0, 1]".into(),
            ));
        }
        Ok(())
    }
}

/// Observability switches (see the `spider-obs` crate).
///
/// Everything here is off by default and each switch is zero-cost when
/// disabled: tracing and profiling cost one branch per would-be record,
/// and the [`SamplerConfig`]'s scalar probes are O(channels) once per
/// cadence (the same work the legacy imbalance sampler already did).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Record a payment-lifecycle trace
    /// ([`spider_obs::TraceSink`](spider_obs::trace::TraceSink)); collect
    /// it after the run with `Simulation::take_trace`.
    pub trace: bool,
    /// Time engine phases with monotonic clocks into
    /// [`ProfileStats`](spider_obs::ProfileStats), reported in
    /// `SimReport::profile`.
    pub profile: bool,
    /// Time-series sampling cadence and per-channel depth opt-in.
    pub sampler: SamplerConfig,
    /// Accumulate per-channel hotspot attribution
    /// ([`spider_obs::ChannelAttribution`]) — utilization/starvation/
    /// imbalance integrals advanced on the sampler cadence, plus queue
    /// residency, drop, and bottleneck counts — reduced into the
    /// `SimReport::hotspots` top-K table.
    pub attribution: bool,
    /// Keep the last N drops in a forensics flight recorder
    /// ([`spider_obs::FlightRecorder`]); collect it after the run with
    /// `Simulation::take_forensics`. `0` (the default) disables the
    /// recorder entirely.
    pub forensics_capacity: usize,
    /// Run the runtime invariant monitor every this many executed engine
    /// events, recording violations (conservation, queue bounds,
    /// unit-state legality, payment accounting) into a structured report
    /// collected with `Simulation::take_invariant_report`. `0` (the
    /// default) disables the monitor entirely; enabled or not, it never
    /// changes simulation outcomes.
    pub invariants_every: u64,
}

/// Engine parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// End-to-end confirmation delay Δ: time between locking funds along a
    /// path and the key release that settles them (paper: 0.5 s).
    pub confirmation_delay: SimDuration,
    /// How often the pending-payment queue is polled ("periodically polled
    /// to see if they can make any further progress").
    pub poll_interval: SimDuration,
    /// Maximum transaction unit: payments are packetized into units of at
    /// most this value before routing.
    pub mtu: Amount,
    /// Relative deadline applied to every payment; the un-delivered
    /// remainder is canceled when it expires. `None` = payments wait until
    /// the horizon.
    pub deadline: Option<SimDuration>,
    /// Queue scheduling policy.
    pub scheduling: SchedulingPolicy,
    /// Simulation horizon: events after this instant are not processed,
    /// matching the paper's "results collected at the end of 200 s".
    pub horizon: SimDuration,
    /// Cap on (path, amount) proposals attempted per payment per poll,
    /// bounding worst-case work for adversarial routers.
    pub max_proposals_per_poll: usize,
    /// Optional on-chain rebalancing (§5.2.3). `None` = pure off-chain
    /// operation, the paper's default evaluation mode.
    pub rebalancing: Option<RebalancingConfig>,
    /// How units claim balance along their path: instant whole-path
    /// locking (the offline-scheme model) or the §5 per-channel queues.
    pub queueing: QueueingMode,
    /// Deadline-aware load shedding (queueing mode): when a queue is
    /// full, evict the queued unit least likely to meet its deadline
    /// (with `DropReason::Shed`) instead of blindly tail-dropping the
    /// newcomer. Off by default — the seed's tail-drop behavior.
    pub shedding: bool,
    /// Sender-side admission control; `None` (the default) gates nothing.
    pub admission: Option<AdmissionConfig>,
    /// Observability: tracing, profiling, and series sampling.
    pub obs: ObsConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            confirmation_delay: SimDuration::from_millis(500),
            poll_interval: SimDuration::from_millis(100),
            mtu: Amount::from_xrp(10),
            deadline: Some(SimDuration::from_secs(5)),
            scheduling: SchedulingPolicy::Srpt,
            horizon: SimDuration::from_secs(200),
            max_proposals_per_poll: 64,
            rebalancing: None,
            queueing: QueueingMode::Lockstep,
            shedding: false,
            admission: None,
            obs: ObsConfig::default(),
        }
    }
}

impl SimConfig {
    /// Validates parameter sanity; call before running.
    pub fn validate(&self) -> spider_types::Result<()> {
        use spider_types::SpiderError::InvalidConfig;
        if self.mtu.is_zero() {
            return Err(InvalidConfig("MTU must be positive".into()));
        }
        if self.poll_interval.is_zero() {
            return Err(InvalidConfig("poll interval must be positive".into()));
        }
        if self.horizon.is_zero() {
            return Err(InvalidConfig("horizon must be positive".into()));
        }
        if self.max_proposals_per_poll == 0 {
            return Err(InvalidConfig("max proposals must be positive".into()));
        }
        if let QueueingMode::PerChannelFifo(qc) = &self.queueing {
            qc.validate()?;
        }
        if let Some(adm) = &self.admission {
            adm.validate()?;
        }
        if self.obs.sampler.cadence.is_zero() {
            return Err(InvalidConfig("sampling cadence must be positive".into()));
        }
        if let Some(rb) = &self.rebalancing {
            if rb.check_interval.is_zero() {
                return Err(InvalidConfig(
                    "rebalancing interval must be positive".into(),
                ));
            }
            if !(0.0..=1.0).contains(&rb.trigger_fraction)
                || !(0.0..=1.0).contains(&rb.target_fraction)
                || rb.trigger_fraction > rb.target_fraction
            {
                return Err(InvalidConfig(
                    "rebalancing fractions must satisfy 0 <= trigger <= target <= 1".into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SimConfig::default();
        assert_eq!(c.confirmation_delay, SimDuration::from_millis(500));
        assert_eq!(c.scheduling, SchedulingPolicy::Srpt);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_zeroes() {
        let broken = [
            SimConfig {
                mtu: Amount::ZERO,
                ..SimConfig::default()
            },
            SimConfig {
                poll_interval: SimDuration::ZERO,
                ..SimConfig::default()
            },
            SimConfig {
                horizon: SimDuration::ZERO,
                ..SimConfig::default()
            },
            SimConfig {
                max_proposals_per_poll: 0,
                ..SimConfig::default()
            },
            SimConfig {
                admission: Some(AdmissionConfig {
                    rate_per_sec: 0.0,
                    ..AdmissionConfig::default()
                }),
                ..SimConfig::default()
            },
            SimConfig {
                admission: Some(AdmissionConfig {
                    max_queue_fraction: 1.5,
                    ..AdmissionConfig::default()
                }),
                ..SimConfig::default()
            },
        ];
        for c in broken {
            assert!(c.validate().is_err());
        }
    }
}
