//! # spider-sim
//!
//! A deterministic discrete-event simulator for payment channel networks,
//! modeled on the simulator of §6.1:
//!
//! * bidirectional channels whose funds are split between the endpoints;
//! * source-routed transaction units that **lock funds in-flight along the
//!   whole path** and release them to the downstream parties after the
//!   confirmation delay Δ = 0.5 s (the hash-lock key round trip);
//! * a global queue of incomplete (non-atomic) payments, polled
//!   periodically and scheduled by SRPT (or FIFO / LIFO / EDF);
//! * per-payment deadlines after which the un-delivered remainder is
//!   canceled;
//! * pluggable routing via the [`Router`] trait (implementations live in
//!   `spider-routing`).
//!
//! Everything is driven by one seed; runs are bit-reproducible. Fund
//! conservation is asserted per channel after every state transition in
//! debug builds and checkable explicitly via
//! [`engine::Simulation::check_conservation`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calendar;
pub mod chanindex;
pub mod channel;
pub mod config;
pub mod engine;
pub mod metrics;
pub mod monitor;
pub mod paths;
pub mod queue;
pub mod router;
pub mod workload;

pub use calendar::CalendarQueue;
pub use chanindex::ChannelIndex;
pub use channel::ChannelState;
pub use config::{
    AdmissionConfig, ObsConfig, QueueConfig, QueueingMode, SchedulingPolicy, SimConfig,
};
pub use engine::{Simulation, SlabStats};
pub use metrics::{DropBreakdown, SimReport};
pub use monitor::{InvariantMonitor, InvariantReport, InvariantViolation, VIOLATION_HEADER};
pub use paths::{PathEntry, PathTable};
pub use router::{
    NetworkView, RouteProposal, RouteRequest, Router, RouterObs, TopologyUpdate, UnitAck,
    UnitOutcome,
};
pub use spider_obs::{
    ChannelHotspot, DiffThresholds, DropRecord, FlightRecorder, Histogram, PhaseStats,
    ProfileStats, RootCauseRow, RunDiff, RunRecord, SampleSet, Trace, FORENSICS_HEADER,
    HOTSPOT_HEADER, ROOTCAUSE_HEADER,
};
pub use workload::{
    ArrivalSource, SizeDistribution, StreamingWorkload, TxnSpec, Workload, WorkloadConfig,
};
