//! Measurement: the paper's two headline metrics plus supporting detail.
//!
//! * **Success ratio** — completed payments / attempted payments;
//! * **Success volume** — delivered value / attempted value (partial
//!   deliveries of non-atomic payments count their delivered part).

use serde::{Deserialize, Serialize};
use spider_obs::{ChannelHotspot, Histogram, ProfileStats, SampleSet};
use spider_types::{Amount, DropReason, SimDuration, SimTime};

/// Per-[`DropReason`] counts of units dropped in transit.
///
/// Every dropped unit carries exactly one reason, so
/// [`DropBreakdown::total`] always equals
/// [`SimReport::units_dropped`] — the drop-reason conservation law the
/// integration tests assert, including under churn.
///
/// Exhaustiveness is enforced statically: spider-lint's consistency rule
/// checks that every `DropReason` variant is referenced in this file (the
/// match arms below) and in the trace renderers, so adding a variant
/// without extending the breakdown fails
/// `cargo run -p spider-lint -- --check` rather than silently leaking
/// drops out of the conservation law.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DropBreakdown {
    /// Units that waited in a router queue past the configured bound.
    pub queue_timeout: u64,
    /// Units that found a full queue mid-path.
    pub queue_overflow: u64,
    /// Units whose payment's deadline passed in flight.
    pub expired: u64,
    /// Units failed back because a channel on their path closed.
    pub channel_closed: u64,
    /// Units whose forwarding message (or ack) was lost to fault
    /// injection; the hop timeout refunded them.
    pub message_lost: u64,
    /// Units silently held by a hop (stuck) until the hop timeout fired.
    pub hop_timeout: u64,
    /// Units dropped because a node on their path crashed.
    pub node_crashed: u64,
    /// Units evicted by deadline-aware overload shedding.
    pub shed: u64,
    /// Payments fail-fasted by sender-side admission control.
    pub admission_rejected: u64,
}

impl DropBreakdown {
    /// Sum over all reasons.
    pub fn total(&self) -> u64 {
        self.queue_timeout
            + self.queue_overflow
            + self.expired
            + self.channel_closed
            + self.message_lost
            + self.hop_timeout
            + self.node_crashed
            + self.shed
            + self.admission_rejected
    }

    /// Sum over the fault-injected reasons only (see
    /// [`DropReason::is_fault`]).
    pub fn fault_total(&self) -> u64 {
        self.message_lost + self.hop_timeout + self.node_crashed
    }

    /// Counts one drop.
    fn count(&mut self, reason: DropReason) {
        match reason {
            DropReason::QueueTimeout => self.queue_timeout += 1,
            DropReason::QueueOverflow => self.queue_overflow += 1,
            DropReason::Expired => self.expired += 1,
            DropReason::ChannelClosed => self.channel_closed += 1,
            DropReason::MessageLost => self.message_lost += 1,
            DropReason::HopTimeout => self.hop_timeout += 1,
            DropReason::NodeCrashed => self.node_crashed += 1,
            DropReason::Shed => self.shed += 1,
            DropReason::AdmissionRejected => self.admission_rejected += 1,
        }
    }
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Routing scheme name.
    pub scheme: String,
    /// Payments injected.
    pub attempted_payments: u64,
    /// Payments fully delivered.
    pub completed_payments: u64,
    /// Total value injected.
    pub attempted_volume: Amount,
    /// Total value settled end-to-end (includes partial deliveries).
    pub delivered_volume: Amount,
    /// Total value of fully completed payments — the goodput numerator.
    /// Excludes partial deliveries of payments that never finished, so
    /// under overload this is what separates useful work from waste.
    pub completed_volume: Amount,
    /// Arrivals the shaping admission gate (`AdmissionConfig::defer`)
    /// pushed to a later slot instead of rejecting. Deferral is not a
    /// drop: the payment is re-offered and counted once on admission.
    pub admission_deferred: u64,
    /// Transaction units whose path lock succeeded.
    pub units_locked: u64,
    /// Transaction units that failed to lock (insufficient balance).
    pub units_failed: u64,
    /// Total retries (payment re-attempts from the pending queue).
    pub retries: u64,
    /// Sum of hop counts over all locked units (for average path length).
    pub unit_hops_sum: u64,
    /// Fresh funds deposited by on-chain rebalancing (0 when disabled).
    pub onchain_deposited: Amount,
    /// Number of on-chain rebalancing operations.
    pub rebalance_ops: u64,
    /// Unit acknowledgements delivered to the sender (§5 queueing mode
    /// only): one per accepted unit, whether it settled or dropped.
    pub units_acked: u64,
    /// Units marked by router price signaling (§5 queueing mode only).
    pub units_marked: u64,
    /// Units dropped in transit: queue timeout, queue overflow mid-path,
    /// or payment expiry (§5 queueing mode), plus churn failbacks in
    /// either mode — always ≥ [`SimReport::units_dropped_churn`].
    pub units_dropped: u64,
    /// Units that waited in at least one router queue before settling or
    /// dropping.
    pub units_queued: u64,
    /// Topology-churn events that actually changed something (idempotent
    /// no-ops excluded; `t = 0` initial-state events excluded).
    pub topology_events: u64,
    /// Channel open → closed transitions applied by churn.
    pub churn_channels_closed: u64,
    /// Channel closed → open transitions applied by churn.
    pub churn_channels_opened: u64,
    /// Channel capacity resizes applied by churn.
    pub churn_channels_resized: u64,
    /// In-flight units failed back because a channel on their path closed
    /// (both engine modes).
    pub units_dropped_churn: u64,
    /// Payments that lost at least one in-flight unit to a channel close
    /// and never completed — the headline disruption count.
    pub payments_failed_churn: u64,
    /// Mid-run fault-plan events applied (node crash/recover toggles).
    pub fault_events: u64,
    /// Injected transport faults: lost forwarding messages, lost acks,
    /// stuck units, and crash intercepts of in-flight units. A single
    /// unit counts at most once.
    pub faults_injected: u64,
    /// Units dropped with a fault [`DropReason`] (`MessageLost`,
    /// `HopTimeout`, `NodeCrashed`); always equals
    /// `drops_by_reason.fault_total()` and ≤ [`SimReport::units_dropped`].
    pub units_dropped_fault: u64,
    /// Instants (seconds) of the applied mid-run churn events, for
    /// recovery-time analysis against [`SimReport::throughput_series`]
    /// (see [`SimReport::churn_recovery_times`]).
    pub topology_event_times_s: Vec<f64>,
    /// Total queueing delay accumulated across all hops of all units (s).
    pub queue_delay_sum_s: f64,
    /// Completion times of fully delivered payments, seconds.
    pub completion_times: Vec<f64>,
    /// Delivered volume per 1-second bucket (throughput time series).
    pub throughput_series: Vec<f64>,
    /// Dropped-unit counts broken down by [`DropReason`];
    /// `drops_by_reason.total() == units_dropped` always.
    pub drops_by_reason: DropBreakdown,
    /// Payment completion latencies (seconds).
    pub latency_hist: Histogram,
    /// Per-hop queueing delays of serviced units (seconds; §5 queueing
    /// mode).
    pub queue_delay_hist: Histogram,
    /// Hop counts of successfully locked units.
    pub path_length_hist: Histogram,
    /// Live AIMD window sizes (XRP) at end of run, for window-capable
    /// schemes; empty otherwise.
    pub window_hist: Histogram,
    /// Scheme-internal counters (cache hits/misses/prefills/repairs…),
    /// name-value pairs in a scheme-defined but deterministic order.
    pub router_counters: Vec<(String, u64)>,
    /// Every sampled time series, index-aligned on one cadence (see
    /// [`spider_obs::SERIES_NAMES`] and the accessor methods below).
    pub samples: SampleSet,
    /// Engine phase timing (all zeros unless profiling was enabled).
    pub profile: ProfileStats,
    /// Top-K channel hotspots by attribution score, sorted by descending
    /// score with ascending channel id as tie-break; empty unless
    /// [`ObsConfig::attribution`](crate::config::ObsConfig) was on.
    pub hotspots: Vec<ChannelHotspot>,
    /// Wall-clock-free simulated horizon actually processed.
    pub horizon: SimDuration,
}

impl SimReport {
    /// Completed / attempted payments (the paper's success ratio), in 0..=1.
    pub fn success_ratio(&self) -> f64 {
        if self.attempted_payments == 0 {
            0.0
        } else {
            self.completed_payments as f64 / self.attempted_payments as f64
        }
    }

    /// Delivered / attempted volume (the paper's success volume), in 0..=1.
    pub fn success_volume(&self) -> f64 {
        self.delivered_volume.ratio(self.attempted_volume)
    }

    /// Goodput: completed-payment volume per simulated second (XRP/s).
    /// Partial deliveries of payments that never completed are excluded —
    /// under overload they are waste, not goodput.
    pub fn goodput_xrp_per_sec(&self) -> f64 {
        self.completed_volume.as_xrp() / self.horizon.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Mean completion time of completed payments (seconds).
    pub fn avg_completion_time(&self) -> Option<f64> {
        spider_types::stats::mean(&self.completion_times)
    }

    /// Average hops per successfully locked unit.
    pub fn avg_path_length(&self) -> Option<f64> {
        (self.units_locked > 0).then(|| self.unit_hops_sum as f64 / self.units_locked as f64)
    }

    /// Fraction of acknowledged units that came back marked (§5 queueing
    /// mode): the congestion signal senders react to.
    pub fn marking_rate(&self) -> f64 {
        if self.units_acked == 0 {
            0.0
        } else {
            self.units_marked as f64 / self.units_acked as f64
        }
    }

    /// Mean per-unit total queueing delay in seconds, over units that
    /// queued at least once. `None` when nothing queued.
    pub fn avg_queue_delay(&self) -> Option<f64> {
        (self.units_queued > 0).then(|| self.queue_delay_sum_s / self.units_queued as f64)
    }

    /// Network-wide mean absolute channel imbalance
    /// (`|fwd − bwd| / capacity` ∈ [0, 1]) per sampling instant — the
    /// quantity imbalance-aware routing tries to keep small.
    pub fn imbalance_series(&self) -> &[f64] {
        self.samples.series("imbalance")
    }

    /// Total transaction units resident in router queues per sampling
    /// instant (§5 queueing mode; all zeros in lockstep mode).
    pub fn queue_occupancy_series(&self) -> &[f64] {
        self.samples.series("queue_occupancy")
    }

    /// Per-channel queue depths (both directions summed) per sampling
    /// instant — empty unless the sampler's `queue_depths` switch was on
    /// (see [`ObsConfig`](crate::config::ObsConfig)). Outer index:
    /// sample; inner index: [`ChannelId`](spider_types::ChannelId).
    pub fn queue_depth_series(&self) -> &[Vec<u32>] {
        &self.samples.queue_depths
    }

    /// Per-churn-event recovery time: for each entry of
    /// `topology_event_times_s`, the seconds until per-second delivered
    /// throughput first returns to `threshold` × its pre-event baseline
    /// (the mean over the `baseline_window_s` seconds before the event).
    /// `None` when throughput never recovers within the recorded series;
    /// `Some(0.0)` when the event caused no dip (or nothing was flowing
    /// before it).
    pub fn churn_recovery_times(
        &self,
        baseline_window_s: usize,
        threshold: f64,
    ) -> Vec<Option<f64>> {
        let series = &self.throughput_series;
        self.topology_event_times_s
            .iter()
            .map(|&te| {
                let t = te as usize;
                let lo = t.saturating_sub(baseline_window_s.max(1));
                let window = &series[lo.min(series.len())..t.min(series.len())];
                let baseline = spider_types::stats::mean(window).unwrap_or(0.0);
                if baseline <= 0.0 {
                    return Some(0.0);
                }
                let target = threshold * baseline;
                // The event's own bucket is mostly pre-event volume (te is
                // rarely integral); the first bucket that can witness
                // recovery is the first one entirely after the event.
                let start = te.ceil() as usize;
                (start..series.len())
                    .find(|&s| series[s] >= target)
                    .map(|s| (s as f64 - te).max(0.0))
            })
            .collect()
    }

    /// Fraction of unit lock attempts that succeeded.
    pub fn unit_lock_rate(&self) -> f64 {
        let total = self.units_locked + self.units_failed;
        if total == 0 {
            0.0
        } else {
            self.units_locked as f64 / total as f64
        }
    }

    /// One-line summary for harness output.
    pub fn summary(&self) -> String {
        format!(
            "{:<22} success_ratio={:6.2}% success_volume={:6.2}% completed={}/{} delivered={:.0}/{:.0} XRP",
            self.scheme,
            100.0 * self.success_ratio(),
            100.0 * self.success_volume(),
            self.completed_payments,
            self.attempted_payments,
            self.delivered_volume.as_xrp(),
            self.attempted_volume.as_xrp(),
        )
    }
}

/// Streaming collector used by the engine.
#[derive(Debug, Clone, Default)]
pub struct MetricsCollector {
    attempted_payments: u64,
    completed_payments: u64,
    attempted_volume: Amount,
    delivered_volume: Amount,
    completed_volume: Amount,
    admission_deferred: u64,
    units_locked: u64,
    units_failed: u64,
    retries: u64,
    unit_hops_sum: u64,
    onchain_deposited: Amount,
    rebalance_ops: u64,
    units_acked: u64,
    units_marked: u64,
    units_dropped: u64,
    units_queued: u64,
    topology_events: u64,
    churn_channels_closed: u64,
    churn_channels_opened: u64,
    churn_channels_resized: u64,
    units_dropped_churn: u64,
    payments_failed_churn: u64,
    fault_events: u64,
    faults_injected: u64,
    topology_event_times_s: Vec<f64>,
    queue_delay_sum_s: f64,
    completion_times: Vec<f64>,
    throughput_buckets: Vec<f64>,
    drops_by_reason: DropBreakdown,
    latency_hist: Histogram,
    queue_delay_hist: Histogram,
    path_length_hist: Histogram,
    window_hist: Histogram,
    router_counters: Vec<(String, u64)>,
    samples: SampleSet,
    profile: ProfileStats,
    hotspots: Vec<ChannelHotspot>,
}

impl MetricsCollector {
    /// Fresh collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an injected payment.
    pub fn payment_arrived(&mut self, amount: Amount) {
        self.attempted_payments += 1;
        self.attempted_volume += amount;
    }

    /// Records an arrival deferred by the shaping admission gate.
    pub fn admission_deferred(&mut self) {
        self.admission_deferred += 1;
    }

    /// Records a settled unit (value delivered end-to-end).
    pub fn unit_settled(&mut self, amount: Amount, at: SimTime) {
        self.delivered_volume += amount;
        let bucket = at.as_secs_f64() as usize;
        if self.throughput_buckets.len() <= bucket {
            self.throughput_buckets.resize(bucket + 1, 0.0);
        }
        self.throughput_buckets[bucket] += amount.as_xrp();
    }

    /// Records a fully completed payment with its total value and latency.
    pub fn payment_completed(&mut self, amount: Amount, latency: SimDuration) {
        self.completed_payments += 1;
        self.completed_volume += amount;
        let secs = latency.as_secs_f64();
        self.completion_times.push(secs);
        self.latency_hist.record(secs);
    }

    /// Records a unit lock success (with its hop count) or failure.
    pub fn unit_lock(&mut self, hops: usize, success: bool) {
        if success {
            self.units_locked += 1;
            self.unit_hops_sum += hops as u64;
            self.path_length_hist.record(hops as f64);
        } else {
            self.units_failed += 1;
        }
    }

    /// Records `n` failed unit locks at once (the engine's batched
    /// skip of identical full-MTU failures); equivalent to `n` calls to
    /// [`MetricsCollector::unit_lock`] with `success = false`.
    pub fn unit_lock_failures(&mut self, n: u64) {
        self.units_failed += n;
    }

    /// Records one pending-queue retry.
    pub fn retry(&mut self) {
        self.retries += 1;
    }

    /// Records an on-chain rebalancing deposit.
    pub fn rebalanced(&mut self, amount: Amount) {
        self.onchain_deposited += amount;
        self.rebalance_ops += 1;
    }

    /// Records a unit acknowledgement's marking state (queueing mode).
    pub fn unit_acked(&mut self, marked: bool) {
        self.units_acked += 1;
        if marked {
            self.units_marked += 1;
        }
    }

    /// Records a unit dropped in transit with its (mandatory) reason —
    /// per-reason counts must sum to the drop total.
    pub fn unit_dropped(&mut self, reason: DropReason) {
        self.units_dropped += 1;
        self.drops_by_reason.count(reason);
    }

    /// Records one hop's queueing delay for a serviced unit; `first_wait`
    /// is true the first time this particular unit waited in any queue.
    pub fn unit_queued(&mut self, delay_s: f64, first_wait: bool) {
        if first_wait {
            self.units_queued += 1;
        }
        self.queue_delay_sum_s += delay_s;
        self.queue_delay_hist.record(delay_s);
    }

    /// Records one applied mid-run topology-churn event: how many channels
    /// it closed / opened / resized, and when it fired.
    pub fn topology_event(&mut self, closed: usize, opened: usize, resized: usize, at: SimTime) {
        self.topology_events += 1;
        self.churn_channels_closed += closed as u64;
        self.churn_channels_opened += opened as u64;
        self.churn_channels_resized += resized as u64;
        self.topology_event_times_s.push(at.as_secs_f64());
    }

    /// Records channel-liveness transitions applied before the run starts
    /// (`t = 0` schedule entries) — counted in the churn totals but not as
    /// mid-run events.
    pub fn initial_topology_state(&mut self, closed: usize, opened: usize, resized: usize) {
        self.churn_channels_closed += closed as u64;
        self.churn_channels_opened += opened as u64;
        self.churn_channels_resized += resized as u64;
    }

    /// Records an in-flight unit failed back by a channel close.
    pub fn unit_dropped_churn(&mut self) {
        self.units_dropped_churn += 1;
    }

    /// Records the final count of payments that lost a unit to churn and
    /// never completed.
    pub fn payments_failed_churn(&mut self, count: u64) {
        self.payments_failed_churn = count;
    }

    /// Records one applied fault-plan event (a node crash or recovery).
    pub fn fault_event(&mut self) {
        self.fault_events += 1;
    }

    /// Records one injected per-unit transport fault (lost message, lost
    /// ack, stuck unit, or crash intercept).
    pub fn fault_injected(&mut self) {
        self.faults_injected += 1;
    }

    /// Installs the router's end-of-run observability snapshot: internal
    /// counters and live AIMD window sizes (the latter feed
    /// [`SimReport::window_hist`]).
    pub fn set_router_obs(&mut self, obs: crate::router::RouterObs) {
        for w in &obs.windows_xrp {
            self.window_hist.record(*w);
        }
        self.router_counters = obs.counters;
    }

    /// Installs the run's sampled time series.
    pub fn set_samples(&mut self, samples: SampleSet) {
        self.samples = samples;
    }

    /// Installs the run's phase-timing stats.
    pub fn set_profile(&mut self, profile: ProfileStats) {
        self.profile = profile;
    }

    /// Installs the attribution layer's top-K hotspot table.
    pub fn set_hotspots(&mut self, hotspots: Vec<ChannelHotspot>) {
        self.hotspots = hotspots;
    }

    /// Finalizes into a report.
    pub fn finish(self, scheme: &str, horizon: SimDuration) -> SimReport {
        SimReport {
            scheme: scheme.to_string(),
            attempted_payments: self.attempted_payments,
            completed_payments: self.completed_payments,
            attempted_volume: self.attempted_volume,
            delivered_volume: self.delivered_volume,
            completed_volume: self.completed_volume,
            admission_deferred: self.admission_deferred,
            units_locked: self.units_locked,
            units_failed: self.units_failed,
            retries: self.retries,
            unit_hops_sum: self.unit_hops_sum,
            onchain_deposited: self.onchain_deposited,
            rebalance_ops: self.rebalance_ops,
            units_acked: self.units_acked,
            units_marked: self.units_marked,
            units_dropped: self.units_dropped,
            units_queued: self.units_queued,
            topology_events: self.topology_events,
            churn_channels_closed: self.churn_channels_closed,
            churn_channels_opened: self.churn_channels_opened,
            churn_channels_resized: self.churn_channels_resized,
            units_dropped_churn: self.units_dropped_churn,
            payments_failed_churn: self.payments_failed_churn,
            fault_events: self.fault_events,
            faults_injected: self.faults_injected,
            units_dropped_fault: self.drops_by_reason.fault_total(),
            topology_event_times_s: self.topology_event_times_s,
            queue_delay_sum_s: self.queue_delay_sum_s,
            completion_times: self.completion_times,
            throughput_series: self.throughput_buckets,
            drops_by_reason: self.drops_by_reason,
            latency_hist: self.latency_hist,
            queue_delay_hist: self.queue_delay_hist,
            path_length_hist: self.path_length_hist,
            window_hist: self.window_hist,
            router_counters: self.router_counters,
            samples: self.samples,
            profile: self.profile,
            hotspots: self.hotspots,
            horizon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let mut m = MetricsCollector::new();
        m.payment_arrived(Amount::from_xrp(10));
        m.payment_arrived(Amount::from_xrp(30));
        m.unit_settled(Amount::from_xrp(10), SimTime::from_secs(1));
        m.payment_completed(Amount::from_xrp(10), SimDuration::from_millis(700));
        m.unit_settled(Amount::from_xrp(15), SimTime::from_secs(2));
        let r = m.finish("test", SimDuration::from_secs(10));
        assert_eq!(r.attempted_payments, 2);
        assert_eq!(r.completed_payments, 1);
        assert!((r.success_ratio() - 0.5).abs() < 1e-12);
        assert!((r.success_volume() - 25.0 / 40.0).abs() < 1e-12);
        // Goodput counts only the completed payment's 10 XRP over the
        // 10 s horizon — the partially delivered 15 XRP is waste.
        assert_eq!(r.completed_volume, Amount::from_xrp(10));
        assert!((r.goodput_xrp_per_sec() - 1.0).abs() < 1e-12);
        assert_eq!(r.avg_completion_time(), Some(0.7));
    }

    #[test]
    fn empty_report_is_zero() {
        let r = MetricsCollector::new().finish("empty", SimDuration::from_secs(1));
        assert_eq!(r.success_ratio(), 0.0);
        assert_eq!(r.success_volume(), 0.0);
        assert_eq!(r.avg_completion_time(), None);
        assert_eq!(r.avg_path_length(), None);
        assert_eq!(r.unit_lock_rate(), 0.0);
    }

    #[test]
    fn throughput_buckets_accumulate() {
        let mut m = MetricsCollector::new();
        m.unit_settled(Amount::from_xrp(5), SimTime::from_secs_f64(0.2));
        m.unit_settled(Amount::from_xrp(7), SimTime::from_secs_f64(0.9));
        m.unit_settled(Amount::from_xrp(1), SimTime::from_secs_f64(2.5));
        let r = m.finish("b", SimDuration::from_secs(3));
        assert_eq!(r.throughput_series.len(), 3);
        assert!((r.throughput_series[0] - 12.0).abs() < 1e-12);
        assert_eq!(r.throughput_series[1], 0.0);
        assert!((r.throughput_series[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lock_stats() {
        let mut m = MetricsCollector::new();
        m.unit_lock(3, true);
        m.unit_lock(2, true);
        m.unit_lock(5, false);
        m.retry();
        let r = m.finish("l", SimDuration::from_secs(1));
        assert_eq!(r.units_locked, 2);
        assert_eq!(r.units_failed, 1);
        assert_eq!(r.retries, 1);
        assert_eq!(r.avg_path_length(), Some(2.5));
        assert!((r.unit_lock_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn recovery_time_reads_the_throughput_series() {
        let mut m = MetricsCollector::new();
        // Steady 10 XRP/s for 5 s, a churn event at t = 5 knocks
        // throughput to 2 for two seconds, recovery at t = 7.
        for (t, x) in [10.0, 10.0, 10.0, 10.0, 10.0, 2.0, 2.0, 9.5, 10.0]
            .into_iter()
            .enumerate()
        {
            m.unit_settled(Amount::from_xrp_f64(x), SimTime::from_secs(t as u64));
        }
        m.topology_event(1, 0, 0, SimTime::from_secs(5));
        let r = m.finish("t", SimDuration::from_secs(9));
        assert_eq!(r.topology_events, 1);
        assert_eq!(r.churn_channels_closed, 1);
        let rec = r.churn_recovery_times(3, 0.9);
        assert_eq!(rec, vec![Some(2.0)]);
        // An unrecoverable dip reports None.
        let mut m = MetricsCollector::new();
        for (t, x) in [10.0, 10.0, 1.0, 1.0].into_iter().enumerate() {
            m.unit_settled(Amount::from_xrp_f64(x), SimTime::from_secs(t as u64));
        }
        m.topology_event(1, 0, 0, SimTime::from_secs(2));
        let r = m.finish("t", SimDuration::from_secs(4));
        assert_eq!(r.churn_recovery_times(2, 0.9), vec![None]);
    }

    #[test]
    fn summary_contains_scheme() {
        let r = MetricsCollector::new().finish("spider-wf", SimDuration::from_secs(1));
        assert!(r.summary().contains("spider-wf"));
    }

    #[test]
    fn drop_reasons_sum_to_total() {
        let mut m = MetricsCollector::new();
        m.unit_dropped(DropReason::QueueTimeout);
        m.unit_dropped(DropReason::QueueTimeout);
        m.unit_dropped(DropReason::QueueOverflow);
        m.unit_dropped(DropReason::Expired);
        m.unit_dropped(DropReason::ChannelClosed);
        m.unit_dropped(DropReason::MessageLost);
        m.unit_dropped(DropReason::MessageLost);
        m.unit_dropped(DropReason::HopTimeout);
        m.unit_dropped(DropReason::NodeCrashed);
        m.unit_dropped(DropReason::Shed);
        m.unit_dropped(DropReason::Shed);
        m.unit_dropped(DropReason::AdmissionRejected);
        let r = m.finish("d", SimDuration::from_secs(1));
        assert_eq!(r.units_dropped, 12);
        assert_eq!(r.drops_by_reason.queue_timeout, 2);
        assert_eq!(r.drops_by_reason.queue_overflow, 1);
        assert_eq!(r.drops_by_reason.expired, 1);
        assert_eq!(r.drops_by_reason.channel_closed, 1);
        assert_eq!(r.drops_by_reason.message_lost, 2);
        assert_eq!(r.drops_by_reason.hop_timeout, 1);
        assert_eq!(r.drops_by_reason.node_crashed, 1);
        assert_eq!(r.drops_by_reason.shed, 2);
        assert_eq!(r.drops_by_reason.admission_rejected, 1);
        assert_eq!(r.drops_by_reason.total(), r.units_dropped);
        assert_eq!(r.drops_by_reason.fault_total(), 4);
        assert_eq!(r.units_dropped_fault, 4);
    }

    #[test]
    fn histograms_mirror_the_scalar_aggregates() {
        let mut m = MetricsCollector::new();
        m.payment_completed(Amount::from_xrp(1), SimDuration::from_millis(700));
        m.payment_completed(Amount::from_xrp(1), SimDuration::from_millis(300));
        m.unit_lock(3, true);
        m.unit_lock(4, true);
        m.unit_lock(2, false);
        m.unit_queued(0.05, true);
        m.unit_queued(0.10, false);
        let r = m.finish("h", SimDuration::from_secs(1));
        assert_eq!(r.latency_hist.count, r.completed_payments);
        assert!((r.latency_hist.sum - 1.0).abs() < 1e-9);
        assert_eq!(r.path_length_hist.count, r.units_locked);
        assert!((r.path_length_hist.sum - r.unit_hops_sum as f64).abs() < 1e-9);
        // Queue-delay histogram counts hops, not units.
        assert_eq!(r.queue_delay_hist.count, 2);
        assert_eq!(r.units_queued, 1);
        assert!((r.queue_delay_hist.sum - r.queue_delay_sum_s).abs() < 1e-12);
    }

    #[test]
    fn router_obs_feeds_counters_and_window_hist() {
        let mut m = MetricsCollector::new();
        m.set_router_obs(crate::router::RouterObs {
            counters: vec![
                ("cache_hits".to_string(), 10),
                ("cache_misses".to_string(), 2),
            ],
            windows_xrp: vec![40.0, 55.0, 10.0],
        });
        let r = m.finish("w", SimDuration::from_secs(1));
        assert_eq!(r.router_counters[0], ("cache_hits".to_string(), 10));
        assert_eq!(r.window_hist.count, 3);
        assert_eq!(r.window_hist.max, 55.0);
    }

    #[test]
    fn series_accessors_read_the_sample_set() {
        let mut m = MetricsCollector::new();
        let mut s = spider_obs::Sampler::new(spider_obs::SamplerConfig::default());
        s.push_row([0.25, 7.0, 1.0, 2.0, 0.0, 0.0]);
        m.set_samples(s.finish());
        let r = m.finish("s", SimDuration::from_secs(1));
        assert_eq!(r.imbalance_series(), &[0.25]);
        assert_eq!(r.queue_occupancy_series(), &[7.0]);
        assert!(r.queue_depth_series().is_empty());
    }
}
