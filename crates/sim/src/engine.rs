//! The discrete-event simulation engine.
//!
//! Event model (matching §6.1's simulator):
//!
//! * **Arrival** — a transaction arrives and is routed immediately; funds
//!   are locked along every hop of each accepted `(path, amount)` unit.
//! * **Settle** — Δ seconds after locking, the hash-lock key has propagated
//!   and each hop's funds move to the downstream party. If the payment's
//!   deadline has passed in the meantime, the sender withholds the key and
//!   the hops are refunded instead (§4.1's non-atomic cancellation).
//! * **Poll** — every `poll_interval`, incomplete non-atomic payments are
//!   re-attempted in scheduling-policy order (SRPT by default).
//!
//! Ties in event time are broken by insertion sequence, so runs are fully
//! deterministic.
//!
//! ## Hot-path layout
//!
//! Paths are interned once into the shared [`PathTable`]: every event,
//! unit, and router callback carries a copyable [`PathId`] whose hops were
//! resolved to `(ChannelId, Direction)` exactly once. Event and unit slab
//! slots are recycled through free lists as soon as their last reference
//! (the pending calendar entry, the in-flight unit) dies, so resident
//! memory is bounded by *in-flight* work rather than by everything ever
//! scheduled; [`Simulation::slab_stats`] exposes the high-water marks the
//! throughput benchmarks track.
//!
//! Scheduling runs through a bucketed [`CalendarQueue`] (O(1) amortized
//! push/pop; exact `(time, seq)` order). Arrivals are **streamed**: the
//! workload is merged into the calendar one arrival at a time (each
//! arrival schedules its successor from a reserved seq band that keeps
//! tie-breaks bit-identical to the old pre-seeded calendar), so the live
//! event population is bounded by in-flight work, not total payments.
//! Pending lockstep settles and in-flight hop-by-hop units are also
//! indexed per channel ([`ChannelIndex`]), so a topology-churn close
//! touches only its own channel's work instead of walking the slabs.

use crate::calendar::CalendarQueue;
use crate::chanindex::ChannelIndex;
use crate::channel::ChannelState;
use crate::config::{AdmissionConfig, QueueConfig, QueueingMode, SchedulingPolicy, SimConfig};
use crate::metrics::{MetricsCollector, SimReport};
use crate::monitor::{InvariantMonitor, InvariantReport};
use crate::paths::{PathEntry, PathTable};
use crate::queue::local_signal;
use crate::router::{NetworkView, RouteRequest, Router, TopologyUpdate, UnitAck, UnitOutcome};
use crate::workload::{ArrivalSource, TxnSpec};
use spider_faults::{FaultChange, FaultPlan};
use spider_obs::trace::TraceEventKind;
use spider_obs::{
    ChannelAttribution, ChannelSample, DropRecord, FlightRecorder, Phase, Profiler, Sampler, Trace,
    TraceSink, HOTSPOT_K, NUM_SERIES,
};
use spider_overload::OverloadPlan;
use spider_topology::Topology;
use spider_types::{
    Amount, ChannelId, DetRng, Direction, DropReason, MarkStamp, NodeId, PathId, PaymentId,
    SimTime, TopologyChange, TopologyEvent,
};
use std::cmp::Reverse;
use std::collections::VecDeque;
use std::rc::Rc;

/// First sequence number handed to events scheduled mid-run. Arrivals
/// draw from a reserved band below this (starting right after the churn
/// schedule's seqs), so a streamed arrival keeps exactly the tie-break
/// rank the old pre-seeded calendar gave it: at equal instants, topology
/// changes beat arrivals, and arrivals beat every event scheduled while
/// the run is underway.
const RUNTIME_SEQ_BASE: u64 = 1 << 32;

/// Internal payment bookkeeping.
#[derive(Debug, Clone)]
struct PaymentState {
    src: NodeId,
    dst: NodeId,
    total: Amount,
    delivered: Amount,
    inflight: Amount,
    arrival: SimTime,
    deadline: SimTime,
    attempts: u32,
    completed: bool,
    /// Deadline passed with work outstanding; remainder canceled.
    expired: bool,
    /// Lost at least one in-flight unit to a channel close (topology
    /// churn); if the payment never completes it counts as failed-by-churn.
    churn_hit: bool,
    /// Overload injection: the payment griefs — its units are silently
    /// held at the final hop until the sender-side timeout refunds them,
    /// pinning the whole path's liquidity. Drawn once per arrival from
    /// the installed [`OverloadPlan`]'s runtime stream.
    griefing: bool,
}

impl PaymentState {
    fn unassigned(&self) -> Amount {
        self.total - self.delivered - self.inflight
    }
    fn active(&self) -> bool {
        !self.completed && !self.expired && !self.unassigned().is_zero()
    }
}

#[derive(Debug)]
enum EventKind {
    /// A transaction arrives (streamed from the workload source; each
    /// arrival schedules its successor).
    Arrival(TxnSpec),
    /// An arrival the shaping admission gate deferred, re-offered at the
    /// bucket's promised slot (does *not* advance the workload stream —
    /// its original `Arrival` already did).
    DeferredArrival(TxnSpec),
    Settle {
        payment: usize,
        amount: Amount,
        path: PathId,
    },
    Poll,
    /// Periodic scan for depleted channel directions (on-chain
    /// rebalancing enabled).
    RebalanceScan,
    /// An on-chain deposit confirms after the blockchain delay.
    RebalanceSettle {
        channel: ChannelId,
        dir: Direction,
        amount: Amount,
    },
    /// Queueing mode: a unit arrives at the node before hop `next_hop`
    /// after the per-hop forwarding delay and attempts to cross.
    HopArrive {
        unit: usize,
    },
    /// Queueing mode: a fully locked unit settles Δ after reaching its
    /// destination (or is refunded if its payment expired meanwhile).
    UnitDeliver {
        unit: usize,
    },
    /// Queueing mode: a queued unit exceeded the maximum queueing delay.
    QueueTimeout {
        unit: usize,
    },
    /// Queueing mode, fault injection: the unit's forwarding message (or
    /// its delivery ack) was lost, or a hop silently holds it; the
    /// sender's per-hop timeout fires, cancels the unit, and refunds
    /// every locked upstream hop.
    HopTimeout {
        unit: usize,
        reason: DropReason,
    },
    /// A scheduled topology-churn event (index into
    /// `Simulation::topo_events`) takes effect.
    Topology(usize),
    /// A scheduled fault-plan event (index into the installed
    /// [`FaultPlan`]'s events — a node crash or recovery) takes effect.
    Fault(usize),
}

/// A transaction unit traveling hop by hop under
/// [`QueueingMode::PerChannelFifo`].
///
/// An alive unit always has exactly one pending event (`HopArrive`,
/// `QueueTimeout`, or `UnitDeliver`); retiring a unit therefore happens
/// only after that event was consumed or canceled, which is what makes
/// the slab slot safely recyclable.
#[derive(Debug)]
struct UnitState {
    payment: usize,
    amount: Amount,
    /// Interned path; hops resolve through the shared [`PathTable`].
    path: PathId,
    /// The resolved entry for `path`, pinned once at injection so the
    /// per-hop events skip the table lookup.
    entry: Rc<PathEntry>,
    /// Hops already locked; the unit currently sits before hop `next_hop`
    /// (or at the destination when `next_hop == hop_count`).
    next_hop: usize,
    injected_at: SimTime,
    /// When the unit joined its current queue (valid while queued).
    enqueued_at: SimTime,
    /// Pending `QueueTimeout` event id, cancelable on service.
    timeout_event: Option<usize>,
    /// Pending `HopArrive`/`UnitDeliver` event id while the unit travels,
    /// cancelable when a channel close fails the unit back mid-flight.
    hop_event: Option<usize>,
    /// True once the unit has waited in any queue (for metrics).
    waited: bool,
    stamp: MarkStamp,
    /// Why the unit was dropped (set just before its nack).
    drop_reason: Option<DropReason>,
    /// Settled or dropped; the slot is back on the free list.
    done: bool,
}

/// Token-bucket state for sender-side admission control.
#[derive(Debug, Clone)]
struct AdmissionState {
    cfg: AdmissionConfig,
    /// Tokens banked; refilled lazily on each arrival.
    tokens: f64,
    /// When the bucket was last refilled.
    last_refill: SimTime,
    /// Shaping mode: the time slot promised to the most recently
    /// deferred arrival; later deferrals queue behind it (FIFO pacing
    /// at exactly `rate_per_sec`).
    defer_horizon: SimTime,
}

impl AdmissionState {
    fn new(cfg: AdmissionConfig) -> Self {
        let tokens = cfg.burst;
        AdmissionState {
            cfg,
            tokens,
            last_refill: SimTime::ZERO,
            defer_horizon: SimTime::ZERO,
        }
    }

    /// Shaping mode only: decides whether an arrival at `now` must wait.
    /// `None` admits immediately; `Some(t)` defers the arrival to `t`,
    /// the deterministic time the bucket next frees a slot — behind
    /// every earlier deferral, so deferred arrivals drain in FIFO order
    /// at exactly the sustained rate.
    ///
    /// In shaping mode this function owns the bucket entirely: the
    /// token is spent here on both outcomes (a promised slot spends its
    /// token at schedule time, driving `tokens` negative — debt — under
    /// backlog), and a deferred re-offer never re-enters the gate. The
    /// occupancy gate (`max_queue_fraction`) is a policing-mode
    /// concept; shaping bounds intake by time, not by rejection.
    fn defer_until(&mut self, now: SimTime) -> Option<SimTime> {
        debug_assert!(self.cfg.defer, "defer_until requires shaping mode");
        let dt = (now - self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + dt * self.cfg.rate_per_sec).min(self.cfg.burst);
        let backlogged = self.defer_horizon > now;
        if !backlogged && self.tokens >= 1.0 {
            self.tokens -= 1.0;
            return None;
        }
        let at = if backlogged {
            self.defer_horizon
        } else {
            let token_wait = (1.0 - self.tokens).max(0.0) / self.cfg.rate_per_sec;
            now + spider_types::SimDuration::from_secs_f64(token_wait)
        };
        self.tokens -= 1.0;
        self.defer_horizon =
            at + spider_types::SimDuration::from_secs_f64(1.0 / self.cfg.rate_per_sec);
        Some(at)
    }

    /// Refills the bucket to `now`, then decides one payment: `true`
    /// admits (consuming a token), `false` rejects. `queue_fraction` is
    /// the global queue occupancy in [0, 1].
    fn admit(&mut self, now: SimTime, queue_fraction: f64) -> bool {
        let dt = (now - self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + dt * self.cfg.rate_per_sec).min(self.cfg.burst);
        if queue_fraction > self.cfg.max_queue_fraction || self.tokens < 1.0 {
            return false;
        }
        self.tokens -= 1.0;
        true
    }
}

/// Slab occupancy and lifetime counters (see [`Simulation::slab_stats`]).
///
/// The invariant the regression tests assert: `event_slots` and
/// `unit_slots` track the *peak in-flight* population, not the total ever
/// scheduled — a long run must not grow them linearly with
/// `events_scheduled` / `units_injected`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlabStats {
    /// Events ever pushed onto the calendar.
    pub events_scheduled: u64,
    /// Events popped and executed (canceled events excluded).
    pub events_executed: u64,
    /// Event slab slots allocated (recycled slots are not re-counted).
    pub event_slots: usize,
    /// Events scheduled but not yet executed or canceled — the **true**
    /// live population (canceled-in-place entries whose calendar slot has
    /// not popped yet are excluded; they occupy a slab slot but are dead).
    pub live_events: usize,
    /// High-water mark of `live_events` — with streamed arrivals this is
    /// bounded by in-flight work, not by total payments.
    pub peak_live_events: usize,
    /// Hop-by-hop units ever injected (queueing mode).
    pub units_injected: u64,
    /// Unit slab slots allocated.
    pub unit_slots: usize,
    /// Unit slots occupied right now.
    pub live_units: usize,
    /// High-water mark of occupied unit slots.
    pub peak_live_units: usize,
    /// Distinct paths interned into the shared table.
    pub interned_paths: usize,
    /// Index entries examined while handling topology-churn closes (and
    /// amortized index compaction). The churn regression tests assert
    /// this scales with the closed channels' *live* work, not with the
    /// slab sizes the pre-index engine scanned.
    pub churn_scan_steps: u64,
}

/// The simulator.
pub struct Simulation {
    topo: Topology,
    channels: Vec<ChannelState>,
    config: SimConfig,
    router: Box<dyn Router>,
    /// Where arrivals come from (materialized list or lazy stream);
    /// merged into the calendar one arrival at a time.
    source: ArrivalSource,
    /// In-horizon arrival indices in `(time, index)` order
    /// ([`ArrivalSource::Fixed`] only).
    arrival_order: Vec<u32>,
    arrival_cursor: usize,
    /// Next reserved arrival sequence number (see [`RUNTIME_SEQ_BASE`]).
    arrival_seq: u64,
    payments: Vec<PaymentState>,
    pending: Vec<usize>,
    /// `in_pending[pid]` ⇔ `pid ∈ pending` — O(1) membership for the
    /// drop/failback paths that re-queue payments.
    in_pending: Vec<bool>,
    events: CalendarQueue,
    event_store: Vec<Option<EventKind>>,
    /// Slot generation, bumped on every (re)allocation: per-channel index
    /// entries are validated against it so recycled slots cannot alias.
    event_gen: Vec<u32>,
    /// Event slots whose calendar entry has been consumed; reused by the
    /// next `schedule`. Slots canceled in place (`event_store[id] = None`)
    /// are reclaimed when their calendar entry pops, never earlier, so a
    /// pending calendar entry always refers to the event that scheduled it.
    free_events: Vec<usize>,
    seq: u64,
    now: SimTime,
    metrics: MetricsCollector,
    /// Per (channel, direction): an on-chain deposit is in flight, so
    /// don't schedule another.
    rebalance_pending: Vec<[bool; 2]>,
    /// Next time a series sample is due (once per sampler cadence).
    next_sample: SimTime,
    /// Unified series sampler (see [`spider_obs::SERIES_NAMES`]).
    sampler: Sampler,
    /// Payment-lifecycle trace sink; `None` unless
    /// [`ObsConfig::trace`](crate::config::ObsConfig) — every record site
    /// is behind one `if let`, so disabled tracing costs a branch.
    trace: Option<TraceSink>,
    /// Stable per-run trace ids for unit slab slots (slots recycle, trace
    /// ids don't); maintained only while tracing.
    unit_trace_ids: Vec<u64>,
    /// Engine phase timers (zero-cost when disabled).
    profiler: Profiler,
    /// Per-channel hotspot accumulators; `None` unless
    /// [`ObsConfig::attribution`](crate::config::ObsConfig) — like the
    /// trace, every feed site is one `if let` branch when disabled.
    attribution: Option<ChannelAttribution>,
    /// Drop-forensics flight recorder; `None` unless
    /// [`ObsConfig::forensics_capacity`](crate::config::ObsConfig) > 0.
    forensics: Option<FlightRecorder>,
    /// Queueing parameters when running in `PerChannelFifo` mode.
    qcfg: Option<QueueConfig>,
    /// Per channel, per direction: FIFO of queued unit indices.
    queues: Vec<[VecDeque<usize>; 2]>,
    /// Slab of hop-by-hop units (queueing mode only).
    units: Vec<UnitState>,
    /// Unit-slot generation (same rôle as `event_gen`).
    unit_gen: Vec<u32>,
    /// Retired unit slots awaiting reuse.
    free_units: Vec<usize>,
    /// Cumulative volume serviced per channel direction (the `x_u − x_v`
    /// flow-imbalance observable of §5.3).
    flow: Vec<[Amount; 2]>,
    /// The shared path interner (routers reach it via [`NetworkView`]).
    paths: PathTable,
    /// Topology-churn schedule (sorted by instant; see
    /// [`Simulation::set_topology_events`]).
    topo_events: Vec<TopologyEvent>,
    /// Pending lockstep `Settle` event ids indexed by traversed channel
    /// (maintained only while a churn schedule is installed).
    settle_index: ChannelIndex,
    /// In-flight hop-by-hop unit ids indexed by traversed channel
    /// (likewise churn-only).
    unit_index: ChannelIndex,
    /// True while the per-channel indices are maintained — exactly when
    /// the run has a churn schedule that could close channels.
    track_channels: bool,
    /// Installed fault plan (see [`Simulation::set_fault_plan`]). `None`
    /// leaves the fault machinery entirely inert: no draw is ever made,
    /// no timer armed — fault-free runs stay bit-identical to the
    /// fault-unaware engine.
    fault_plan: Option<FaultPlan>,
    /// Runtime draw stream for per-unit fault decisions, seeded from the
    /// plan (untouched when no plan is installed).
    fault_rng: DetRng,
    /// Per-node crashed flag, toggled by [`EventKind::Fault`] events;
    /// empty when no fault plan is installed.
    crashed_nodes: Vec<bool>,
    /// Installed overload plan (see [`Simulation::set_overload_plan`]).
    /// `None` leaves the overload machinery entirely inert — like the
    /// fault plan, no draw is ever made without one.
    overload_plan: Option<OverloadPlan>,
    /// Runtime draw stream for per-payment griefing decisions, seeded
    /// from the plan (untouched when no plan is installed).
    overload_rng: DetRng,
    /// Token-bucket state for sender-side admission control; `None`
    /// unless [`SimConfig::admission`] is set.
    admission: Option<AdmissionState>,
    /// Units resident in router queues right now, across every channel
    /// direction — O(1) occupancy for the admission gate.
    queued_units_total: usize,
    /// Runtime invariant monitor; `None` unless
    /// [`ObsConfig::invariants_every`](crate::config::ObsConfig) > 0.
    monitor: Option<InvariantMonitor>,
    /// Cached `Router::observes_unit_outcomes` for the run.
    router_observes: bool,
    /// Reusable released-direction worklist for `drain`/drop cascades.
    drain_scratch: VecDeque<(ChannelId, Direction)>,
    /// Reusable hit list for indexed churn closes.
    close_scratch: Vec<u32>,
    events_scheduled: u64,
    events_executed: u64,
    live_events: usize,
    peak_live_events: usize,
    units_injected: u64,
    peak_live_units: usize,
}

impl Simulation {
    /// Builds a simulation. Channels start equally split
    /// (paper §6.2). Fails on invalid configuration.
    ///
    /// `workload` accepts a materialized [`Workload`](crate::Workload) or
    /// a lazy [`StreamingWorkload`](crate::StreamingWorkload); either way
    /// arrivals are merged into the calendar as they become due.
    pub fn new(
        topo: Topology,
        workload: impl Into<ArrivalSource>,
        router: Box<dyn Router>,
        config: SimConfig,
    ) -> spider_types::Result<Self> {
        config.validate()?;
        let source = workload.into();
        let channels: Vec<ChannelState> = topo
            .channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect();
        let n_channels = channels.len();
        let rebalance_pending = vec![[false; 2]; n_channels];
        let qcfg = match &config.queueing {
            QueueingMode::Lockstep => None,
            QueueingMode::PerChannelFifo(qc) => Some(qc.clone()),
        };
        let queues = channels
            .iter()
            .map(|_| [VecDeque::new(), VecDeque::new()])
            .collect();
        let flow = vec![[Amount::ZERO; 2]; n_channels];
        let sampler = Sampler::new(config.obs.sampler.clone());
        let trace = config.obs.trace.then(TraceSink::new);
        let profiler = Profiler::new(config.obs.profile);
        let attribution = config
            .obs
            .attribution
            .then(|| ChannelAttribution::new(n_channels));
        let forensics = (config.obs.forensics_capacity > 0)
            .then(|| FlightRecorder::new(config.obs.forensics_capacity));
        let admission = config.admission.clone().map(AdmissionState::new);
        let monitor = (config.obs.invariants_every > 0)
            .then(|| InvariantMonitor::new(config.obs.invariants_every));
        // Payments accumulate per arrival; the event slab only ever holds
        // in-flight work (arrivals are streamed), so it sizes itself.
        let n_txns = source.count();
        Ok(Simulation {
            topo,
            channels,
            config,
            router,
            source,
            arrival_order: Vec::new(),
            arrival_cursor: 0,
            arrival_seq: 0,
            payments: Vec::with_capacity(n_txns),
            pending: Vec::new(),
            in_pending: Vec::with_capacity(n_txns),
            events: CalendarQueue::new(),
            event_store: Vec::new(),
            event_gen: Vec::new(),
            free_events: Vec::new(),
            seq: 0,
            now: SimTime::ZERO,
            metrics: MetricsCollector::new(),
            rebalance_pending,
            next_sample: SimTime::ZERO,
            sampler,
            trace,
            unit_trace_ids: Vec::new(),
            profiler,
            attribution,
            forensics,
            qcfg,
            queues,
            units: Vec::new(),
            unit_gen: Vec::new(),
            free_units: Vec::new(),
            flow,
            paths: PathTable::new(),
            topo_events: Vec::new(),
            settle_index: ChannelIndex::new(n_channels),
            unit_index: ChannelIndex::new(n_channels),
            track_channels: false,
            fault_plan: None,
            fault_rng: DetRng::new(0),
            crashed_nodes: Vec::new(),
            overload_plan: None,
            overload_rng: DetRng::new(0),
            admission,
            queued_units_total: 0,
            monitor,
            router_observes: true,
            drain_scratch: VecDeque::new(),
            close_scratch: Vec::new(),
            events_scheduled: 0,
            events_executed: 0,
            live_events: 0,
            peak_live_events: 0,
            units_injected: 0,
            peak_live_units: 0,
        })
    }

    /// True when units travel hop by hop through router queues: queueing
    /// mode is configured and the scheme is non-atomic (atomic schemes keep
    /// lockstep all-or-nothing semantics).
    fn hop_by_hop(&self) -> bool {
        self.qcfg.is_some() && !self.router.atomic()
    }

    /// Schedules an event with the next runtime sequence number and
    /// returns its id (needed by callers that may cancel it).
    fn schedule(&mut self, at: SimTime, kind: EventKind) -> usize {
        let seq = self.seq;
        self.seq += 1;
        self.schedule_at(at, seq, kind)
    }

    /// Schedules an event under an explicit sequence number, reusing a
    /// retired slab slot when one is free.
    fn schedule_at(&mut self, at: SimTime, seq: u64, kind: EventKind) -> usize {
        let id = match self.free_events.pop() {
            Some(id) => {
                debug_assert!(self.event_store[id].is_none());
                self.event_store[id] = Some(kind);
                self.event_gen[id] = self.event_gen[id].wrapping_add(1);
                id
            }
            None => {
                self.event_store.push(Some(kind));
                self.event_gen.push(0);
                self.event_store.len() - 1
            }
        };
        self.events.push(at, seq, id);
        self.events_scheduled += 1;
        self.live_events += 1;
        if self.live_events > self.peak_live_events {
            self.peak_live_events = self.live_events;
        }
        id
    }

    /// Cancels a pending event in place. The slot itself is reclaimed when
    /// the calendar entry pops (so the calendar never refers to a reused
    /// slot).
    fn cancel_event(&mut self, id: usize) {
        debug_assert!(self.event_store[id].is_some(), "double cancel");
        self.event_store[id] = None;
        self.live_events -= 1;
    }

    /// Installs a topology-churn schedule (see
    /// [`TopologyEvent`]); call before [`Simulation::run`]. Events are
    /// applied in `(at, list-order)` order. Entries at `t = 0` describe the
    /// initial liveness state (channels that exist in the union topology
    /// but have not opened yet) and are applied before any routing or
    /// prewarm; later entries fire from the calendar mid-run.
    pub fn set_topology_events(&mut self, mut events: Vec<TopologyEvent>) {
        // Stable by instant: same-instant events keep their list order.
        events.sort_by_key(|e| e.at);
        self.topo_events = events;
    }

    /// Installs a fault plan (see [`FaultPlan`]); call before
    /// [`Simulation::run`]. Crash/recover toggles fire from the calendar;
    /// per-unit loss/stuck/jitter decisions draw from the plan's own
    /// runtime stream, so the workload and scheme streams are unaffected.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert_eq!(
            plan.message_loss.len(),
            self.topo.channel_count(),
            "fault plan was generated for a different topology"
        );
        self.fault_rng = DetRng::new(plan.runtime_seed);
        self.crashed_nodes = vec![false; self.topo.node_count()];
        self.fault_plan = Some(plan);
    }

    /// Installs an overload plan (see [`OverloadPlan`]); call before
    /// [`Simulation::run`]. The engine draws per-payment griefing from
    /// the plan's own runtime stream, so the workload, scheme, churn and
    /// fault streams are unaffected; the plan's workload transforms
    /// (time warp, pair redirects) are applied by the caller before the
    /// workload reaches the engine.
    pub fn set_overload_plan(&mut self, plan: OverloadPlan) {
        self.overload_rng = DetRng::new(plan.runtime_seed);
        self.overload_plan = Some(plan);
    }

    /// Runs to the horizon and produces the report. The simulation object
    /// remains inspectable afterwards (channel states, conservation).
    pub fn run(&mut self) -> SimReport {
        let horizon = SimTime::ZERO + self.config.horizon;
        // The per-channel indices are maintained exactly when the run has
        // a churn schedule (the only source of channel closes).
        self.track_channels = !self.topo_events.is_empty();
        self.router_observes = self.router.observes_unit_outcomes();
        // Apply the initial-state slice of the churn schedule (t = 0)
        // before anything routes: nothing is in flight, so no failback.
        let mut initial = TopologyUpdate::default();
        for i in 0..self.topo_events.len() {
            if self.topo_events[i].at == SimTime::ZERO {
                let change = self.topo_events[i].change;
                self.apply_topology_change(change, &mut initial, false);
            }
        }
        if !initial.is_empty() {
            self.metrics.initial_topology_state(
                initial.closed.len(),
                initial.opened.len(),
                initial.resized.len(),
            );
        }
        // Mid-run churn fires from the calendar; sequenced before the
        // arrivals so a change at instant t applies before payments
        // arriving at t are routed.
        for i in 0..self.topo_events.len() {
            let at = self.topo_events[i].at;
            if at > SimTime::ZERO && at <= horizon {
                self.schedule(at, EventKind::Topology(i));
            }
        }
        // Fault-plan crash/recover toggles fire from the calendar too,
        // sequenced after same-instant churn but before same-instant
        // arrivals.
        let n_fault_events = self.fault_plan.as_ref().map_or(0, |p| p.events.len());
        for i in 0..n_fault_events {
            let at = self.fault_plan.as_ref().expect("plan present").events[i].at;
            if at <= horizon {
                self.schedule(at, EventKind::Fault(i));
            }
        }
        // Partition the sequence space: arrivals draw reserved seqs right
        // after the churn schedule's, runtime events from a disjoint
        // upper band. A streamed arrival therefore keeps exactly the
        // tie-break rank the old pre-seeded calendar gave it.
        debug_assert!(self.seq < RUNTIME_SEQ_BASE, "churn schedule too large");
        self.arrival_seq = self.seq;
        self.seq = RUNTIME_SEQ_BASE;
        // Snapshot the prewarm pairs before any arrival is consumed (a
        // streaming source enumerates them from a pristine clone).
        let prewarm_pairs = self
            .router
            .wants_prewarm()
            .then(|| self.source.distinct_pairs(Some(horizon)));
        // Merge the first arrival; each arrival schedules its successor.
        self.init_arrivals(horizon);
        self.schedule(SimTime::ZERO + self.config.poll_interval, EventKind::Poll);
        if let Some(rb) = &self.config.rebalancing {
            self.schedule(SimTime::ZERO + rb.check_interval, EventKind::RebalanceScan);
        }

        self.router.configure(self.hop_by_hop());
        {
            let view = NetworkView {
                topo: &self.topo,
                channels: &self.channels,
                paths: &self.paths,
                now: self.now,
            };
            self.router.initialize(&view);
            // The schedule's initial closes happened before the router
            // existed; tell it now, so prewarmed candidate sets respect
            // the t = 0 liveness state.
            if !initial.is_empty() {
                self.router.on_topology_change(&initial, &view);
            }
            // Hand the router the distinct pairs it will be asked to
            // route, in first-arrival order (the order the lazy per-pair
            // caches would have seen them), so candidate sets are
            // precomputed in one batched pass instead of per pair on the
            // routing hot path. Skipped when the scheme keeps the
            // default no-op hook.
            if let Some(pairs) = prewarm_pairs {
                self.router.prewarm(&pairs, &view);
            }
        }

        loop {
            let t0 = self.profiler.start();
            let popped = self.events.pop();
            self.profiler.stop(Phase::CalendarPop, t0);
            let Some((t, _, id)) = popped else {
                break;
            };
            if t > horizon {
                break;
            }
            self.now = t;
            // The calendar entry is consumed: the slot is reusable from
            // here on.
            let kind = self.event_store[id].take();
            self.free_events.push(id);
            // Canceled events (atomic rollback, serviced timeouts) leave a
            // `None` behind.
            let Some(kind) = kind else {
                continue;
            };
            self.live_events -= 1;
            self.events_executed += 1;
            match kind {
                EventKind::Arrival(spec) => {
                    let t0 = self.profiler.start();
                    self.schedule_next_arrival(horizon);
                    self.on_arrival(spec, false);
                    self.profiler.stop(Phase::Routing, t0);
                }
                EventKind::DeferredArrival(spec) => {
                    let t0 = self.profiler.start();
                    self.on_arrival(spec, true);
                    self.profiler.stop(Phase::Routing, t0);
                }
                EventKind::Settle {
                    payment,
                    amount,
                    path,
                } => {
                    let t0 = self.profiler.start();
                    self.on_settle(payment, amount, path);
                    self.profiler.stop(Phase::Settlement, t0);
                }
                EventKind::Poll => {
                    self.on_poll();
                    let next = self.now + self.config.poll_interval;
                    if next <= horizon {
                        self.schedule(next, EventKind::Poll);
                    }
                }
                EventKind::RebalanceScan => {
                    self.on_rebalance_scan();
                    if let Some(rb) = &self.config.rebalancing {
                        let next = self.now + rb.check_interval;
                        if next <= horizon {
                            self.schedule(next, EventKind::RebalanceScan);
                        }
                    }
                }
                EventKind::RebalanceSettle {
                    channel,
                    dir,
                    amount,
                } => {
                    self.channels[channel.index()].deposit(dir, amount);
                    self.rebalance_pending[channel.index()][dir.index()] = false;
                    self.metrics.rebalanced(amount);
                    debug_assert!(self.drain_scratch.is_empty());
                    self.drain_scratch.push_back((channel, dir));
                    self.drain_from_scratch();
                }
                EventKind::HopArrive { unit } => {
                    let t0 = self.profiler.start();
                    self.on_hop_arrive(unit);
                    self.profiler.stop(Phase::Forwarding, t0);
                }
                EventKind::UnitDeliver { unit } => {
                    let t0 = self.profiler.start();
                    self.on_unit_deliver(unit);
                    self.profiler.stop(Phase::Forwarding, t0);
                }
                EventKind::QueueTimeout { unit } => {
                    let t0 = self.profiler.start();
                    self.on_queue_timeout(unit);
                    self.profiler.stop(Phase::Forwarding, t0);
                }
                EventKind::HopTimeout { unit, reason } => {
                    let t0 = self.profiler.start();
                    self.on_hop_timeout(unit, reason);
                    self.profiler.stop(Phase::Forwarding, t0);
                }
                EventKind::Topology(i) => {
                    let t0 = self.profiler.start();
                    self.on_topology_event(i);
                    self.profiler.stop(Phase::ChurnRepair, t0);
                }
                EventKind::Fault(i) => {
                    let t0 = self.profiler.start();
                    self.on_fault_event(i);
                    self.profiler.stop(Phase::ChurnRepair, t0);
                }
            }
            #[cfg(debug_assertions)]
            self.debug_check_channel_indices();
            // Runtime invariant monitor: a read-only sweep every K
            // executed events when enabled; one branch when not.
            if self.monitor.is_some() {
                self.monitor_step();
            }
        }
        let failed_by_churn = self
            .payments
            .iter()
            .filter(|p| p.churn_hit && !p.completed)
            .count() as u64;
        self.metrics.payments_failed_churn(failed_by_churn);
        self.metrics.set_router_obs(self.router.observability());
        let sampler = std::mem::replace(
            &mut self.sampler,
            Sampler::new(self.config.obs.sampler.clone()),
        );
        self.metrics.set_samples(sampler.finish());
        self.metrics.set_profile(self.profiler.finish());
        if self.attribution.is_some() {
            // Close the final integral segment, then reduce to top-K.
            self.attribution_step();
            let hotspots = self
                .attribution
                .as_ref()
                .expect("attribution checked above")
                .finish(HOTSPOT_K);
            self.metrics.set_hotspots(hotspots);
        }
        std::mem::take(&mut self.metrics).finish(self.router.name(), self.config.horizon)
    }

    /// Advances the attribution time integrals to `now`, one
    /// [`ChannelSample`] per channel in dense-id order. No-op unless
    /// attribution is enabled.
    fn attribution_step(&mut self) {
        let Some(attr) = self.attribution.as_mut() else {
            return;
        };
        let now_s = self.now.as_secs_f64();
        attr.integrate(
            now_s,
            self.channels.iter().map(|ch| {
                let cap = ch.capacity().drops().max(1) as f64;
                let fwd = ch.available(Direction::Forward);
                let bwd = ch.available(Direction::Backward);
                let locked = ch
                    .capacity()
                    .drops()
                    .saturating_sub(fwd.drops())
                    .saturating_sub(bwd.drops());
                ChannelSample {
                    closed: ch.is_closed(),
                    util_frac: locked as f64 / cap,
                    at_zero: fwd.is_zero() || bwd.is_zero(),
                    imbalance_frac: ch.imbalance().drops().unsigned_abs() as f64 / cap,
                }
            }),
        );
    }

    /// Records a drop into the forensics flight recorder. `channel` is
    /// the failing hop (with its balances read in canonical channel
    /// orientation), or `None` for whole-path failures with no single
    /// failing hop. No-op unless forensics is enabled.
    #[inline]
    fn forensic_drop(
        &mut self,
        payment: usize,
        path: PathId,
        channel: Option<ChannelId>,
        reason: DropReason,
    ) {
        let Some(rec) = self.forensics.as_mut() else {
            return;
        };
        let (bal_fwd, bal_rev) = match channel {
            Some(c) => {
                let ch = &self.channels[c.index()];
                (
                    ch.balance(Direction::Forward).drops(),
                    ch.balance(Direction::Backward).drops(),
                )
            }
            None => (0, 0),
        };
        rec.record(DropRecord {
            t_us: self.now.micros(),
            payment: payment as u64,
            path: path.0 as u64,
            channel: channel.map(|c| c.0),
            bal_fwd_drops: bal_fwd,
            bal_rev_drops: bal_rev,
            retries: self.payments[payment].attempts,
            reason,
        });
    }

    /// Takes the payment-lifecycle trace recorded by the run (when
    /// [`ObsConfig::trace`](crate::config::ObsConfig) was set), resolving
    /// every referenced [`PathId`] to its node list. Call once, after
    /// [`Simulation::run`]; subsequent calls (and untraced runs) return
    /// `None`.
    pub fn take_trace(&mut self) -> Option<Trace> {
        let sink = self.trace.take()?;
        let mut ids: Vec<u32> = sink
            .events()
            .filter_map(|e| match &e.kind {
                TraceEventKind::RouteProposal { path, .. }
                | TraceEventKind::LockOutcome { path, .. }
                | TraceEventKind::UnitInjected { path, .. } => Some(path.0),
                _ => None,
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        let paths = ids
            .into_iter()
            .map(|id| {
                let nodes = self
                    .paths
                    .map_entry(PathId(id), |e| e.nodes().iter().map(|n| n.0).collect());
                (id as u64, nodes)
            })
            .collect();
        Some(sink.finish(paths))
    }

    /// Takes the drop-forensics flight recorder (when
    /// [`ObsConfig::forensics_capacity`](crate::config::ObsConfig) was
    /// nonzero). Call once, after [`Simulation::run`]; subsequent calls
    /// (and runs without forensics) return `None`.
    pub fn take_forensics(&mut self) -> Option<FlightRecorder> {
        self.forensics.take()
    }

    /// Takes the runtime invariant monitor's report (when
    /// [`ObsConfig::invariants_every`](crate::config::ObsConfig) was
    /// nonzero). Call once, after [`Simulation::run`]; subsequent calls
    /// (and unmonitored runs) return `None`.
    pub fn take_invariant_report(&mut self) -> Option<InvariantReport> {
        self.monitor.take().map(InvariantMonitor::finish)
    }

    /// Advances the invariant monitor one executed event, running a full
    /// sweep when one is due. The sweep only reads engine state:
    /// monitored and unmonitored runs produce bit-identical reports.
    fn monitor_step(&mut self) {
        let mut mon = self.monitor.take().expect("caller checked the monitor");
        if mon.step_due() {
            self.run_invariant_checks(&mut mon);
        }
        self.monitor = Some(mon);
    }

    /// One full invariant sweep (see [`crate::monitor`]): conservation,
    /// queue bounds, unit-state legality, payment accounting.
    fn run_invariant_checks(&self, mon: &mut InvariantMonitor) {
        mon.note_check();
        let t_us = self.now.micros();
        // Conservation: available + in-flight = escrowed capacity.
        for (i, ch) in self.channels.iter().enumerate() {
            if ch.total() != ch.capacity() {
                mon.record(
                    t_us,
                    "conservation",
                    format!(
                        "channel {i}: total {} drops != capacity {} drops",
                        ch.total().drops(),
                        ch.capacity().drops()
                    ),
                );
            }
        }
        // Queue bounds: per-direction occupancy within the configured
        // cap, and the O(1) occupancy counter consistent with a recount.
        if let Some(qc) = &self.qcfg {
            let mut total = 0usize;
            for (i, q) in self.queues.iter().enumerate() {
                for (dir, dq) in q.iter().enumerate() {
                    let len = dq.len();
                    total += len;
                    if len > qc.max_queue_units {
                        mon.record(
                            t_us,
                            "queue_bounds",
                            format!(
                                "channel {i} dir {dir}: {len} queued > cap {}",
                                qc.max_queue_units
                            ),
                        );
                    }
                }
            }
            if total != self.queued_units_total {
                mon.record(
                    t_us,
                    "queue_bounds",
                    format!(
                        "occupancy counter {} != recount {total}",
                        self.queued_units_total
                    ),
                );
            }
        }
        // Unit-state legality: an alive unit has exactly one pending
        // event and a hop cursor inside its path.
        for (uid, u) in self.units.iter().enumerate() {
            if u.done {
                continue;
            }
            let pending = u.timeout_event.is_some() as u8 + u.hop_event.is_some() as u8;
            if pending != 1 {
                mon.record(
                    t_us,
                    "unit_state",
                    format!("unit {uid}: {pending} pending events (want exactly 1)"),
                );
            }
            if u.next_hop > u.entry.hop_count() {
                mon.record(
                    t_us,
                    "unit_state",
                    format!(
                        "unit {uid}: hop cursor {} past path length {}",
                        u.next_hop,
                        u.entry.hop_count()
                    ),
                );
            }
        }
        // Payment accounting: delivered + inflight never exceeds the
        // payment total, and completion implies full delivery.
        for (pid, p) in self.payments.iter().enumerate() {
            if p.delivered.drops() + p.inflight.drops() > p.total.drops() {
                mon.record(
                    t_us,
                    "payment_accounting",
                    format!(
                        "payment {pid}: delivered {} + inflight {} > total {} drops",
                        p.delivered.drops(),
                        p.inflight.drops(),
                        p.total.drops()
                    ),
                );
            }
            if p.completed && p.delivered != p.total {
                mon.record(
                    t_us,
                    "payment_accounting",
                    format!("payment {pid}: completed but not fully delivered"),
                );
            }
        }
    }

    /// Prepares the arrival stream (ordering fixed workloads by `(time,
    /// index)`) and merges the first in-horizon arrival into the calendar.
    fn init_arrivals(&mut self, horizon: SimTime) {
        if let ArrivalSource::Fixed(w) = &self.source {
            // Generated workloads are already time-sorted (identity
            // permutation); hand-built ones are normalized here so lazy
            // merging cannot reorder them. Ties keep index order — the
            // seq rank the pre-seeded calendar assigned.
            let mut order: Vec<u32> = (0..w.txns.len() as u32)
                .filter(|&i| w.txns[i as usize].time <= horizon)
                .collect();
            order.sort_by_key(|&i| (w.txns[i as usize].time, i));
            self.arrival_order = order;
            self.arrival_cursor = 0;
        }
        self.schedule_next_arrival(horizon);
    }

    /// Merges the next due arrival (if any) into the calendar under its
    /// reserved sequence number.
    fn schedule_next_arrival(&mut self, horizon: SimTime) {
        let spec = match &mut self.source {
            ArrivalSource::Fixed(w) => {
                let Some(&i) = self.arrival_order.get(self.arrival_cursor) else {
                    return;
                };
                self.arrival_cursor += 1;
                w.txns[i as usize]
            }
            ArrivalSource::Streaming(s) => {
                // Arrival times are non-decreasing: the first one past the
                // horizon ends the stream.
                match s.next_txn() {
                    Some(spec) if spec.time <= horizon => spec,
                    _ => return,
                }
            }
        };
        let seq = self.arrival_seq;
        self.arrival_seq += 1;
        debug_assert!(
            self.arrival_seq <= RUNTIME_SEQ_BASE,
            "arrival seqs overflow"
        );
        self.schedule_at(spec.time, seq, EventKind::Arrival(spec));
    }

    /// Channel states (for inspection after a run).
    pub fn channel_states(&self) -> &[ChannelState] {
        &self.channels
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The shared path interner (for inspection after a run).
    pub fn paths(&self) -> &PathTable {
        &self.paths
    }

    /// Slab occupancy and event-loop counters: the quantities the
    /// engine-throughput benchmark and the slab-bound regression tests
    /// observe.
    pub fn slab_stats(&self) -> SlabStats {
        SlabStats {
            events_scheduled: self.events_scheduled,
            events_executed: self.events_executed,
            event_slots: self.event_store.len(),
            live_events: self.live_events,
            peak_live_events: self.peak_live_events,
            units_injected: self.units_injected,
            unit_slots: self.units.len(),
            live_units: self.units.len() - self.free_units.len(),
            peak_live_units: self.peak_live_units,
            interned_paths: self.paths.len(),
            churn_scan_steps: self.settle_index.scan_steps() + self.unit_index.scan_steps(),
        }
    }

    /// Units currently resident in router queues (queueing mode; zero in
    /// lockstep mode). Inspectable after a run: units may legitimately end
    /// the horizon still queued, with their upstream locks conserved.
    pub fn queued_units(&self) -> usize {
        self.queues.iter().map(|q| q[0].len() + q[1].len()).sum()
    }

    fn on_arrival(&mut self, mut spec: TxnSpec, deferred: bool) {
        // Shaping admission (defer mode): re-offer the arrival at the
        // bucket's promised slot before any payment state exists. The
        // re-offered spec carries the deferred time, so the payment's
        // arrival stamp — and therefore its deadline — runs from when it
        // actually enters the network. A deferred re-offer bypasses the
        // gate: its slot already spent its token when it was promised.
        if !deferred {
            if let Some(adm) = self.admission.as_mut() {
                if adm.cfg.defer {
                    if let Some(at) = adm.defer_until(self.now) {
                        self.metrics.admission_deferred();
                        spec.time = at;
                        self.schedule(at, EventKind::DeferredArrival(spec));
                        return;
                    }
                }
            }
        }
        let deadline = match self.config.deadline {
            Some(d) => spec.time + d,
            None => SimTime::FAR_FUTURE,
        };
        // Overload griefing: one draw per arrival from the plan's own
        // runtime stream (no plan, no draw).
        let griefing = match &self.overload_plan {
            Some(plan) => self.overload_rng.chance(plan.griefing_prob),
            None => false,
        };
        let pid = self.payments.len();
        self.payments.push(PaymentState {
            src: spec.src,
            dst: spec.dst,
            total: spec.amount,
            delivered: Amount::ZERO,
            inflight: Amount::ZERO,
            arrival: spec.time,
            deadline,
            attempts: 0,
            completed: false,
            expired: false,
            churn_hit: false,
            griefing,
        });
        self.in_pending.push(false);
        self.metrics.payment_arrived(spec.amount);
        if let Some(t) = self.trace.as_mut() {
            t.record(
                self.now.micros(),
                TraceEventKind::PaymentArrival {
                    payment: PaymentId(pid as u64),
                    src: spec.src,
                    dst: spec.dst,
                    amount: spec.amount,
                },
            );
        }
        // Sender-side admission control, policing mode: fail-fast before
        // any routing work, so a rejected payment never occupies a
        // queue. Shaping mode already made its decision above — by
        // deferral, never by rejection.
        let policing = self.admission.as_ref().is_some_and(|a| !a.cfg.defer);
        if policing && !self.admit_payment(pid) {
            return;
        }
        self.attempt_payment(pid);
        // Queue the remainder for retries (non-atomic only).
        if !self.router.atomic() && self.payments[pid].active() {
            self.pending_push(pid);
        }
    }

    /// Global queue occupancy in [0, 1] — the admission gate's
    /// congestion signal; zero under lockstep queueing, where no
    /// per-channel queues exist.
    fn queue_fraction(&self) -> f64 {
        match &self.qcfg {
            Some(qc) => {
                let capacity = qc.max_queue_units * self.channels.len() * 2;
                self.queued_units_total as f64 / capacity.max(1) as f64
            }
            None => 0.0,
        }
    }

    /// The sender-side admission gate: refills the token bucket and
    /// either admits the payment (consuming a token) or fail-fasts it
    /// with [`DropReason::AdmissionRejected`] before it enters any
    /// queue. Returns whether the payment was admitted.
    fn admit_payment(&mut self, pid: usize) -> bool {
        let queue_fraction = self.queue_fraction();
        let adm = self.admission.as_mut().expect("caller checked the gate");
        if adm.admit(self.now, queue_fraction) {
            return true;
        }
        self.payments[pid].expired = true;
        self.metrics.unit_dropped(DropReason::AdmissionRejected);
        // No path was ever proposed: a whole-payment forensic record
        // under the reserved no-path id, with no failing channel.
        self.forensic_drop(pid, PathId(u32::MAX), None, DropReason::AdmissionRejected);
        if let Some(t) = self.trace.as_mut() {
            t.record(
                self.now.micros(),
                TraceEventKind::PaymentExpired {
                    payment: PaymentId(pid as u64),
                    remaining: self.payments[pid].total,
                },
            );
        }
        false
    }

    /// Appends `pid` to the pending retry queue unless already present.
    fn pending_push(&mut self, pid: usize) {
        if !self.in_pending[pid] {
            self.in_pending[pid] = true;
            self.pending.push(pid);
        }
    }

    /// One routing attempt for the payment's currently unassigned amount.
    fn attempt_payment(&mut self, pid: usize) {
        let p = &self.payments[pid];
        if p.completed || p.expired {
            return;
        }
        let unassigned = p.unassigned();
        if unassigned.is_zero() {
            return;
        }
        let req = RouteRequest {
            payment: PaymentId(pid as u64),
            src: p.src,
            dst: p.dst,
            remaining: unassigned,
            total: p.total,
            mtu: self.config.mtu,
            attempt: p.attempts,
        };
        self.payments[pid].attempts += 1;
        let proposals = {
            let view = NetworkView {
                topo: &self.topo,
                channels: &self.channels,
                paths: &self.paths,
                now: self.now,
            };
            self.router.route(&req, &view)
        };
        if let Some(t) = self.trace.as_mut() {
            for prop in proposals.iter().take(self.config.max_proposals_per_poll) {
                t.record(
                    self.now.micros(),
                    TraceEventKind::RouteProposal {
                        payment: req.payment,
                        attempt: req.attempt,
                        path: prop.path,
                        amount: prop.amount,
                    },
                );
            }
        }
        if self.hop_by_hop() {
            self.inject_proposals(pid, proposals, unassigned);
            return;
        }
        let atomic = self.router.atomic();
        let mut budget = unassigned;
        // Units locked in this attempt: (amount, path, settle event id),
        // kept for atomic rollback.
        let mut locked_units: Vec<(Amount, PathId, usize)> = Vec::new();
        let mut aborted = false;

        'proposals: for prop in proposals
            .into_iter()
            .take(self.config.max_proposals_per_poll)
        {
            if budget.is_zero() {
                break;
            }
            {
                let entry = self.paths.entry(prop.path);
                if entry.hop_count() == 0 || entry.source() != self.payments[pid].src {
                    continue;
                }
            }
            let want = prop.amount.min(budget);
            let mut chunks = want.mtu_chunks(self.config.mtu);
            while let Some(unit) = chunks.next() {
                match self.try_lock_unit(pid, unit, prop.path) {
                    Some(event_id) => {
                        locked_units.push((unit, prop.path, event_id));
                        budget -= unit;
                    }
                    None if atomic => {
                        aborted = true;
                        break 'proposals;
                    }
                    None => {
                        // A failed lock rolled back completely, so every
                        // further full-MTU chunk on this path fails the
                        // same way. When no router hook observes per-unit
                        // outcomes, count those failures instead of
                        // re-walking the path for each.
                        if !self.router_observes && unit == self.config.mtu {
                            let skipped = chunks.skip_full_chunks();
                            if skipped > 0 {
                                self.metrics.unit_lock_failures(skipped);
                            }
                        }
                    }
                }
            }
        }

        if atomic && (aborted || !budget.is_zero()) {
            // All-or-nothing: roll back every unit locked in this attempt
            // and cancel its scheduled settlement.
            for (amount, path, event_id) in locked_units {
                self.cancel_event(event_id);
                let entry = self.paths.entry(path);
                for &(c, dir) in entry.hops() {
                    self.channels[c.index()].refund(dir, amount);
                    if self.track_channels {
                        self.settle_index.note_removed(c.index());
                    }
                }
                self.payments[pid].inflight -= amount;
            }
            self.payments[pid].expired = true;
        }
    }

    /// Attempts to lock one unit along the path; on success schedules its
    /// settlement (returning the settle event's id) and updates payment
    /// accounting.
    fn try_lock_unit(&mut self, pid: usize, amount: Amount, path: PathId) -> Option<usize> {
        let entry = self.paths.entry(path);
        let hops = entry.hops();
        // Lock hop by hop; roll back on the first failure.
        let mut locked = 0;
        let mut ok = true;
        for (i, &(c, dir)) in hops.iter().enumerate() {
            if self.channels[c.index()].lock(dir, amount) {
                locked = i + 1;
            } else {
                ok = false;
                break;
            }
        }
        if !ok {
            for &(c, dir) in &hops[..locked] {
                self.channels[c.index()].refund(dir, amount);
            }
        }
        self.metrics.unit_lock(hops.len(), ok);
        if let Some(t) = self.trace.as_mut() {
            t.record(
                self.now.micros(),
                TraceEventKind::LockOutcome {
                    payment: PaymentId(pid as u64),
                    path,
                    amount,
                    ok,
                },
            );
        }
        if self.router_observes {
            let outcome = UnitOutcome {
                payment: PaymentId(pid as u64),
                path,
                amount,
                locked: ok,
                fault: None,
            };
            let view = NetworkView {
                topo: &self.topo,
                channels: &self.channels,
                paths: &self.paths,
                now: self.now,
            };
            self.router.on_unit_outcome(&outcome, &view);
        }
        if ok {
            self.payments[pid].inflight += amount;
            let event_id = self.schedule(
                self.now + self.config.confirmation_delay,
                EventKind::Settle {
                    payment: pid,
                    amount,
                    path,
                },
            );
            if self.track_channels {
                let gen = self.event_gen[event_id];
                let store = &self.event_store;
                let gens = &self.event_gen;
                for &(c, _) in entry.hops() {
                    self.settle_index
                        .insert(c.index(), event_id as u32, gen, |s, g| {
                            gens[s as usize] == g && store[s as usize].is_some()
                        });
                }
            }
            Some(event_id)
        } else {
            None
        }
    }

    fn on_settle(&mut self, pid: usize, amount: Amount, path: PathId) {
        let entry = self.paths.entry(path);
        if self.track_channels {
            // The settle event was just consumed either way (delivery or
            // expiry rollback): its index entries are dead.
            for &(c, _) in entry.hops() {
                self.settle_index.note_removed(c.index());
            }
        }
        // A unit whose payment deadline passed between lock and settle is
        // a real drop (counted and traced, exactly like the queueing-mode
        // expiry path); an atomic rollback is pure bookkeeping and stays
        // silent.
        let deadline_expired = self.now > self.payments[pid].deadline;
        if self.payments[pid].expired || deadline_expired {
            for &(c, dir) in entry.hops() {
                self.channels[c.index()].refund(dir, amount);
            }
            let p = &mut self.payments[pid];
            p.inflight -= amount;
            p.expired = true;
            if deadline_expired {
                self.metrics.unit_dropped(DropReason::Expired);
                // Whole-path lockstep refund: no single failing hop.
                self.forensic_drop(pid, path, None, DropReason::Expired);
                if let Some(t) = self.trace.as_mut() {
                    t.record(
                        self.now.micros(),
                        TraceEventKind::UnitRefunded {
                            payment: PaymentId(pid as u64),
                            amount,
                            reason: DropReason::Expired,
                        },
                    );
                }
            }
            return;
        }
        // Overload griefing (lockstep): the receiver withholds the key,
        // so the settle refunds every hop — a stuck unit driven by the
        // overload plan rather than a fault draw (which it preempts).
        if self.overload_plan.is_some() && self.payments[pid].griefing {
            let reason = DropReason::HopTimeout;
            for &(c, dir) in entry.hops() {
                self.channels[c.index()].refund(dir, amount);
            }
            self.payments[pid].inflight -= amount;
            self.metrics.unit_dropped(reason);
            self.forensic_drop(pid, path, None, reason);
            if let Some(t) = self.trace.as_mut() {
                t.record(
                    self.now.micros(),
                    TraceEventKind::UnitRefunded {
                        payment: PaymentId(pid as u64),
                        amount,
                        reason,
                    },
                );
            }
            // Like fault outcomes, griefing bypasses the
            // `router_observes` gate so backoff sees the failure.
            let outcome = UnitOutcome {
                payment: PaymentId(pid as u64),
                path,
                amount,
                locked: true,
                fault: Some(reason),
            };
            let view = NetworkView {
                topo: &self.topo,
                channels: &self.channels,
                paths: &self.paths,
                now: self.now,
            };
            self.router.on_unit_outcome(&outcome, &view);
            if !self.router.atomic() && self.payments[pid].active() {
                self.pending_push(pid);
            }
            return;
        }
        if self.fault_plan.is_some() {
            if let Some(reason) = self.lockstep_fault(path) {
                for &(c, dir) in entry.hops() {
                    self.channels[c.index()].refund(dir, amount);
                }
                self.payments[pid].inflight -= amount;
                self.metrics.fault_injected();
                self.metrics.unit_dropped(reason);
                self.forensic_drop(pid, path, None, reason);
                if let Some(t) = self.trace.as_mut() {
                    t.record(
                        self.now.micros(),
                        TraceEventKind::UnitRefunded {
                            payment: PaymentId(pid as u64),
                            amount,
                            reason,
                        },
                    );
                }
                // Fault outcomes bypass the `router_observes` gate:
                // backoff must see failures even for routers that skip
                // ordinary lock outcomes. Fault-free runs never get here.
                let outcome = UnitOutcome {
                    payment: PaymentId(pid as u64),
                    path,
                    amount,
                    locked: true,
                    fault: Some(reason),
                };
                let view = NetworkView {
                    topo: &self.topo,
                    channels: &self.channels,
                    paths: &self.paths,
                    now: self.now,
                };
                self.router.on_unit_outcome(&outcome, &view);
                if !self.router.atomic() && self.payments[pid].active() {
                    self.pending_push(pid);
                }
                return;
            }
        }
        for &(c, dir) in entry.hops() {
            self.channels[c.index()].settle(dir, amount);
        }
        if let Some(attr) = self.attribution.as_mut() {
            // The delivered path's binding constraint: minimum post-settle
            // availability in the traversed direction, lowest id on ties.
            let bottleneck = entry
                .hops()
                .iter()
                .map(|&(c, dir)| (self.channels[c.index()].available(dir), c.0))
                .min();
            if let Some((_, c)) = bottleneck {
                attr.bottleneck(c as usize);
            }
        }
        let p = &mut self.payments[pid];
        p.inflight -= amount;
        p.delivered += amount;
        self.metrics.unit_settled(amount, self.now);
        let completed = if p.delivered == p.total {
            p.completed = true;
            let latency = self.now - p.arrival;
            self.metrics.payment_completed(p.total, latency);
            Some(latency)
        } else {
            None
        };
        if let Some(t) = self.trace.as_mut() {
            t.record(
                self.now.micros(),
                TraceEventKind::UnitSettled {
                    payment: PaymentId(pid as u64),
                    amount,
                },
            );
            if let Some(latency) = completed {
                t.record(
                    self.now.micros(),
                    TraceEventKind::PaymentCompleted {
                        payment: PaymentId(pid as u64),
                        latency_us: latency.micros(),
                    },
                );
            }
        }
    }

    /// Draws the lockstep-mode fault verdict for one settling unit: a
    /// crashed forwarding node preempts without a draw, then per-channel
    /// message loss hop by hop, then a silently stuck unit, then a lost
    /// settlement ack. The draw order is fixed so identical plans replay
    /// identically.
    fn lockstep_fault(&mut self, path: PathId) -> Option<DropReason> {
        let entry = self.paths.entry(path);
        let plan = self.fault_plan.as_ref().expect("caller checked the plan");
        let nodes = entry.nodes();
        for (i, &(c, _)) in entry.hops().iter().enumerate() {
            if !self.crashed_nodes.is_empty() && self.crashed_nodes[nodes[i].index()] {
                return Some(DropReason::NodeCrashed);
            }
            if self.fault_rng.chance(plan.message_loss[c.index()]) {
                return Some(DropReason::MessageLost);
            }
        }
        if self.fault_rng.chance(plan.stuck_prob) {
            return Some(DropReason::HopTimeout);
        }
        if self.fault_rng.chance(plan.ack_loss_prob) {
            return Some(DropReason::MessageLost);
        }
        None
    }

    // ---- §5 queueing mode: hop-by-hop forwarding through router queues ----

    /// Routes one attempt's proposals by injecting hop-by-hop units.
    fn inject_proposals(
        &mut self,
        pid: usize,
        proposals: Vec<crate::router::RouteProposal>,
        unassigned: Amount,
    ) {
        let mut budget = unassigned;
        for prop in proposals
            .into_iter()
            .take(self.config.max_proposals_per_poll)
        {
            if budget.is_zero() {
                break;
            }
            {
                let entry = self.paths.entry(prop.path);
                if entry.hop_count() == 0 || entry.source() != self.payments[pid].src {
                    continue;
                }
            }
            let want = prop.amount.min(budget);
            for unit in want.mtu_chunks(self.config.mtu) {
                let accepted = self.inject_unit(pid, unit, prop.path);
                if accepted {
                    budget -= unit;
                }
                let outcome = UnitOutcome {
                    payment: PaymentId(pid as u64),
                    path: prop.path,
                    amount: unit,
                    locked: accepted,
                    fault: None,
                };
                let view = NetworkView {
                    topo: &self.topo,
                    channels: &self.channels,
                    paths: &self.paths,
                    now: self.now,
                };
                self.router.on_unit_outcome(&outcome, &view);
            }
        }
    }

    /// Claims a unit slab slot, recycling a retired one when available.
    fn alloc_unit(&mut self, unit: UnitState) -> usize {
        self.units_injected += 1;
        let uid = match self.free_units.pop() {
            Some(i) => {
                debug_assert!(self.units[i].done, "free list holds only dead units");
                self.units[i] = unit;
                self.unit_gen[i] = self.unit_gen[i].wrapping_add(1);
                i
            }
            None => {
                self.units.push(unit);
                self.unit_gen.push(0);
                self.units.len() - 1
            }
        };
        let live = self.units.len() - self.free_units.len();
        if live > self.peak_live_units {
            self.peak_live_units = live;
        }
        if self.trace.is_some() {
            // Slab slots recycle; trace ids are the injection ordinal and
            // never do.
            if self.unit_trace_ids.len() < self.units.len() {
                self.unit_trace_ids.resize(self.units.len(), 0);
            }
            self.unit_trace_ids[uid] = self.units_injected - 1;
        }
        uid
    }

    /// Injects one unit at its first hop: it either starts forwarding,
    /// joins the first hop's queue, or is rejected outright when that queue
    /// is full. Returns whether the unit was accepted.
    fn inject_unit(&mut self, pid: usize, amount: Amount, path: PathId) -> bool {
        let entry = self.paths.entry(path);
        // A path crossing a closed channel is rejected at the ingress
        // (stale proposals can arrive in the same instant as a churn
        // event); injecting would only convert the unit into a drop.
        if entry
            .hops()
            .iter()
            .any(|&(c, _)| self.channels[c.index()].is_closed())
        {
            self.metrics.unit_lock(entry.hop_count(), false);
            return false;
        }
        // A crashed sender can't originate traffic: rejected at the
        // ingress like a closed channel, so no ack follows.
        if self.node_crashed(entry.source()) {
            self.metrics.unit_lock(entry.hop_count(), false);
            return false;
        }
        let (c, d) = entry.hops()[0];
        let queue_len = self.queues[c.index()][d.index()].len();
        let can_cross = queue_len == 0 && self.channels[c.index()].available(d) >= amount;
        if !can_cross && queue_len >= self.qcfg.as_ref().expect("queueing mode").max_queue_units {
            // Rejected at the ingress: never accepted, so no ack follows.
            self.metrics.unit_lock(entry.hop_count(), false);
            return false;
        }
        let uid = self.alloc_unit(UnitState {
            payment: pid,
            amount,
            path,
            entry: Rc::clone(&entry),
            next_hop: 0,
            injected_at: self.now,
            enqueued_at: self.now,
            timeout_event: None,
            hop_event: None,
            waited: false,
            stamp: MarkStamp::CLEAR,
            drop_reason: None,
            done: false,
        });
        if self.track_channels {
            let gen = self.unit_gen[uid];
            let units = &self.units;
            let gens = &self.unit_gen;
            for &(hc, _) in entry.hops() {
                self.unit_index.insert(hc.index(), uid as u32, gen, |s, g| {
                    gens[s as usize] == g && !units[s as usize].done
                });
            }
        }
        self.payments[pid].inflight += amount;
        if let Some(t) = self.trace.as_mut() {
            t.record(
                self.now.micros(),
                TraceEventKind::UnitInjected {
                    payment: PaymentId(pid as u64),
                    unit: self.unit_trace_ids[uid],
                    path,
                    amount,
                },
            );
        }
        if can_cross {
            self.lock_hop(uid, spider_types::SimDuration::ZERO);
        } else {
            self.enqueue_unit(uid, c, d);
        }
        true
    }

    /// Puts a unit at the tail of `(c, d)`'s queue and arms its timeout.
    /// The caller has verified the queue has room.
    fn enqueue_unit(&mut self, uid: usize, c: ChannelId, d: Direction) {
        self.queues[c.index()][d.index()].push_back(uid);
        self.queued_units_total += 1;
        let timeout = self.now + self.qcfg.as_ref().expect("queueing mode").max_queue_delay;
        let event_id = self.schedule(timeout, EventKind::QueueTimeout { unit: uid });
        let u = &mut self.units[uid];
        u.enqueued_at = self.now;
        u.timeout_event = Some(event_id);
        if let Some(t) = self.trace.as_mut() {
            t.record(
                self.now.micros(),
                TraceEventKind::UnitEnqueued {
                    unit: self.unit_trace_ids[uid],
                    channel: c,
                    qlen: self.queues[c.index()][d.index()].len() as u32,
                },
            );
        }
    }

    /// Locks the unit's next hop (the caller has verified balance), stamps
    /// the router's local price signal, and schedules the unit onward.
    fn lock_hop(&mut self, uid: usize, queue_delay: spider_types::SimDuration) {
        let entry = Rc::clone(&self.units[uid].entry);
        let (c, d) = entry.hops()[self.units[uid].next_hop];
        let amount = self.units[uid].amount;
        let locked = self.channels[c.index()].lock(d, amount);
        debug_assert!(locked, "lock_hop caller must verify balance");
        self.flow[c.index()][d.index()] += amount;
        let qcfg = self.qcfg.as_ref().expect("queueing mode");
        let ch = &self.channels[c.index()];
        let available_fraction =
            ch.available(d).drops() as f64 / ch.capacity().drops().max(1) as f64;
        let signal = local_signal(
            queue_delay,
            self.flow[c.index()][d.index()],
            self.flow[c.index()][d.reverse().index()],
            available_fraction,
            qcfg,
        );
        let hop_delay = qcfg.hop_delay;
        let u = &mut self.units[uid];
        u.stamp.absorb(signal.price, signal.marked, queue_delay);
        if !queue_delay.is_zero() {
            let first_wait = !u.waited;
            u.waited = true;
            self.metrics
                .unit_queued(queue_delay.as_secs_f64(), first_wait);
            if let Some(attr) = self.attribution.as_mut() {
                attr.queue_wait(c.index(), queue_delay.as_secs_f64());
            }
        }
        u.next_hop += 1;
        if let Some(t) = self.trace.as_mut() {
            t.record(
                self.now.micros(),
                TraceEventKind::UnitForwarded {
                    unit: self.unit_trace_ids[uid],
                    channel: c,
                    hop: (self.units[uid].next_hop - 1) as u32,
                },
            );
        }
        let final_hop = self.units[uid].next_hop == entry.hop_count();
        if final_hop {
            self.metrics.unit_lock(entry.hop_count(), true);
        }
        // Overload griefing: the final hop silently holds the unit —
        // with the whole path now locked — until the sender-side
        // timeout refunds it (the stuck-unit plumbing of fault
        // injection, driven by the overload plan instead of a fault
        // draw). Checked before the fault draws so a griefing unit
        // consumes none of the fault stream.
        if final_hop && self.payments[self.units[uid].payment].griefing {
            let hold = self
                .overload_plan
                .as_ref()
                .expect("griefing payments exist only under an overload plan")
                .griefing_hold;
            let ev = self.schedule(
                self.now + hold,
                EventKind::HopTimeout {
                    unit: uid,
                    reason: DropReason::HopTimeout,
                },
            );
            self.units[uid].hop_event = Some(ev);
            return;
        }
        // Fault draws (installed plan only; fixed per-hop draw order:
        // loss, stuck, jitter, spike). A lost forwarding message — or, on
        // the final hop, a lost delivery ack — and a silently stuck unit
        // both arm the sender's per-hop timeout *instead of* the
        // forwarding event; when it fires, every locked hop is refunded.
        let mut hop_delay = hop_delay;
        if self.fault_plan.is_some() {
            let (loss_p, stuck_p, jitter, spike_p, spike_ms, hop_timeout) = {
                let plan = self.fault_plan.as_ref().expect("plan present");
                (
                    if final_hop {
                        plan.ack_loss_prob
                    } else {
                        plan.message_loss[c.index()]
                    },
                    plan.stuck_prob,
                    plan.jitter_range_ms,
                    plan.spike_prob,
                    plan.spike_ms,
                    plan.hop_timeout,
                )
            };
            let lost = self.fault_rng.chance(loss_p);
            let stuck = !lost && self.fault_rng.chance(stuck_p);
            if lost || stuck {
                let reason = if lost {
                    DropReason::MessageLost
                } else {
                    DropReason::HopTimeout
                };
                self.metrics.fault_injected();
                let ev = self.schedule(
                    self.now + hop_timeout,
                    EventKind::HopTimeout { unit: uid, reason },
                );
                self.units[uid].hop_event = Some(ev);
                return;
            }
            if !final_hop {
                if let Some([lo, hi]) = jitter {
                    let ms = lo + self.fault_rng.uniform() * (hi - lo);
                    hop_delay += spider_types::SimDuration::from_secs_f64(ms / 1000.0);
                }
                if self.fault_rng.chance(spike_p) {
                    hop_delay += spider_types::SimDuration::from_secs_f64(spike_ms / 1000.0);
                }
            }
        }
        if final_hop {
            let ev = self.schedule(
                self.now + self.config.confirmation_delay,
                EventKind::UnitDeliver { unit: uid },
            );
            self.units[uid].hop_event = Some(ev);
        } else {
            let ev = self.schedule(self.now + hop_delay, EventKind::HopArrive { unit: uid });
            self.units[uid].hop_event = Some(ev);
        }
    }

    /// A unit arrives at an intermediate node and attempts its next hop.
    fn on_hop_arrive(&mut self, uid: usize) {
        if self.units[uid].done {
            return;
        }
        // This event just fired; it is no longer cancelable.
        self.units[uid].hop_event = None;
        let pid = self.units[uid].payment;
        if self.payments[pid].expired || self.now > self.payments[pid].deadline {
            self.drop_unit(uid, DropReason::Expired);
            return;
        }
        let forwarder = self.units[uid].entry.nodes()[self.units[uid].next_hop];
        if self.node_crashed(forwarder) {
            // The node that should forward this unit crashed while the
            // unit was traveling toward it.
            self.metrics.fault_injected();
            self.drop_unit(uid, DropReason::NodeCrashed);
            return;
        }
        let (c, d) = self.units[uid].entry.hops()[self.units[uid].next_hop];
        let amount = self.units[uid].amount;
        if self.channels[c.index()].is_closed() {
            // The next hop closed while the unit was traveling toward it.
            self.drop_unit(uid, DropReason::ChannelClosed);
            return;
        }
        let queue_len = self.queues[c.index()][d.index()].len();
        if queue_len == 0 && self.channels[c.index()].available(d) >= amount {
            self.lock_hop(uid, spider_types::SimDuration::ZERO);
        } else if queue_len >= self.qcfg.as_ref().expect("queueing mode").max_queue_units {
            if self.config.shedding {
                self.shed_into_queue(uid, c, d);
            } else {
                self.drop_unit(uid, DropReason::QueueOverflow);
            }
        } else {
            self.enqueue_unit(uid, c, d);
        }
    }

    /// Deadline-aware shedding: the queue at `(c, d)` is full. Among the
    /// queued units and the newcomer `uid`, evict the one least likely
    /// to meet its deadline — the earliest payment deadline, front-most
    /// on queue ties (it has waited longest for nothing). The newcomer
    /// is dropped when its own deadline is earliest-or-tied; otherwise
    /// the victim is shed and the newcomer takes its place.
    fn shed_into_queue(&mut self, uid: usize, c: ChannelId, d: Direction) {
        let newcomer_deadline = self.payments[self.units[uid].payment].deadline;
        let victim = self.queues[c.index()][d.index()]
            .iter()
            .copied()
            .min_by_key(|&q| self.payments[self.units[q].payment].deadline);
        let victim = match victim {
            Some(v) if self.payments[self.units[v].payment].deadline < newcomer_deadline => v,
            _ => {
                self.drop_unit(uid, DropReason::Shed);
                return;
            }
        };
        self.drop_unit(victim, DropReason::Shed);
        // The eviction's refunds can cascade (upstream queues drain,
        // drop, refund further); re-admit the newcomer against the
        // queue's state as it stands now.
        let amount = self.units[uid].amount;
        let queue_len = self.queues[c.index()][d.index()].len();
        if queue_len == 0 && self.channels[c.index()].available(d) >= amount {
            self.lock_hop(uid, spider_types::SimDuration::ZERO);
        } else if queue_len >= self.qcfg.as_ref().expect("queueing mode").max_queue_units {
            self.drop_unit(uid, DropReason::Shed);
        } else {
            self.enqueue_unit(uid, c, d);
        }
    }

    /// A fully locked unit settles (or is refunded when its payment
    /// expired while the key was in flight).
    fn on_unit_deliver(&mut self, uid: usize) {
        if self.units[uid].done {
            return;
        }
        // This event just fired; it is no longer cancelable.
        self.units[uid].hop_event = None;
        let pid = self.units[uid].payment;
        if self.payments[pid].expired || self.now > self.payments[pid].deadline {
            self.drop_unit(uid, DropReason::Expired);
            return;
        }
        let amount = self.units[uid].amount;
        let entry = Rc::clone(&self.units[uid].entry);
        debug_assert!(self.drain_scratch.is_empty());
        let mut released = std::mem::take(&mut self.drain_scratch);
        for &(c, d) in entry.hops() {
            self.channels[c.index()].settle(d, amount);
            released.push_back((c, d.reverse()));
        }
        self.drain_scratch = released;
        if let Some(attr) = self.attribution.as_mut() {
            // The delivered path's binding constraint: minimum post-settle
            // availability in the traversed direction, lowest id on ties.
            let bottleneck = entry
                .hops()
                .iter()
                .map(|&(c, d)| (self.channels[c.index()].available(d), c.0))
                .min();
            if let Some((_, c)) = bottleneck {
                attr.bottleneck(c as usize);
            }
        }
        self.units[uid].done = true;
        let p = &mut self.payments[pid];
        p.inflight -= amount;
        p.delivered += amount;
        self.metrics.unit_settled(amount, self.now);
        let completed = if p.delivered == p.total {
            p.completed = true;
            let latency = self.now - p.arrival;
            self.metrics.payment_completed(p.total, latency);
            Some(latency)
        } else {
            None
        };
        if let Some(t) = self.trace.as_mut() {
            t.record(
                self.now.micros(),
                TraceEventKind::UnitDelivered {
                    unit: self.unit_trace_ids[uid],
                },
            );
            if let Some(latency) = completed {
                t.record(
                    self.now.micros(),
                    TraceEventKind::PaymentCompleted {
                        payment: PaymentId(pid as u64),
                        latency_us: latency.micros(),
                    },
                );
            }
        }
        self.ack_unit(uid, true);
        self.retire_unit(uid);
        self.drain_from_scratch();
    }

    /// A queued unit waited past the maximum queueing delay.
    fn on_queue_timeout(&mut self, uid: usize) {
        if self.units[uid].done {
            return;
        }
        // The timeout event just fired; don't try to cancel it again.
        self.units[uid].timeout_event = None;
        self.drop_unit(uid, DropReason::QueueTimeout);
    }

    /// A lost or stuck unit's per-hop timeout fires: the sender gives up
    /// on it, cancels it wherever it nominally is, and refunds every
    /// locked hop (fault injection only — see [`Simulation::lock_hop`]).
    fn on_hop_timeout(&mut self, uid: usize, reason: DropReason) {
        if self.units[uid].done {
            return;
        }
        // The timeout was armed in place of the unit's forwarding event;
        // it just fired, so it is no longer cancelable.
        self.units[uid].hop_event = None;
        self.drop_unit(uid, reason);
    }

    /// True when fault injection has `node` crashed right now.
    #[inline]
    fn node_crashed(&self, node: NodeId) -> bool {
        !self.crashed_nodes.is_empty() && self.crashed_nodes[node.index()]
    }

    /// A scheduled fault-plan event (node crash or recovery) takes
    /// effect. Crashes act lazily: in-flight units are dropped when they
    /// next reach the crashed node (`on_hop_arrive`, queue head service,
    /// or lockstep settlement), so no slab scan is needed here.
    fn on_fault_event(&mut self, idx: usize) {
        let ev = self
            .fault_plan
            .as_ref()
            .expect("fault event without a plan")
            .events[idx];
        let (node, crashed) = match ev.change {
            FaultChange::NodeCrash { node } => (node, true),
            FaultChange::NodeRecover { node } => (node, false),
        };
        let was_crashed = self.crashed_nodes[node.index()];
        self.crashed_nodes[node.index()] = crashed;
        self.metrics.fault_event();
        if let Some(t) = self.trace.as_mut() {
            t.record(
                self.now.micros(),
                TraceEventKind::FaultApplied { node, crashed },
            );
        }
        if was_crashed && !crashed {
            // The recovered node can forward again: service every queue
            // it forwards (the frozen heads never left FIFO order).
            debug_assert!(self.drain_scratch.is_empty());
            let mut released = std::mem::take(&mut self.drain_scratch);
            for adj in self.topo.neighbors(node) {
                let dir = self.topo.channel(adj.channel).direction_from(node);
                released.push_back((adj.channel, dir));
            }
            self.drain_scratch = released;
            self.drain_from_scratch();
        }
    }

    /// Drops a unit wherever it is: leaves its queue if queued, refunds
    /// every locked hop, nacks the sender, and drains refilled directions.
    fn drop_unit(&mut self, uid: usize, reason: DropReason) {
        debug_assert!(self.drain_scratch.is_empty());
        let mut released = std::mem::take(&mut self.drain_scratch);
        self.drop_unit_collect(uid, reason, &mut released);
        self.drain_scratch = released;
        self.drain_from_scratch();
    }

    /// [`Self::drop_unit`] without the drain step, for callers already
    /// inside the drain loop: released directions are appended to `out`.
    fn drop_unit_collect(
        &mut self,
        uid: usize,
        reason: DropReason,
        out: &mut VecDeque<(ChannelId, Direction)>,
    ) {
        if let Some(ev) = self.units[uid].timeout_event.take() {
            self.cancel_event(ev);
        }
        if let Some(ev) = self.units[uid].hop_event.take() {
            // Traveling (or awaiting settlement) when a channel close
            // failed it back: its pending hop event must not fire on a
            // recycled slab slot.
            self.cancel_event(ev);
        }
        let entry = Rc::clone(&self.units[uid].entry);
        // Remove from its current queue, if present.
        let next = self.units[uid].next_hop;
        if next < entry.hop_count() {
            let (c, d) = entry.hops()[next];
            let q = &mut self.queues[c.index()][d.index()];
            let before = q.len();
            q.retain(|&q| q != uid);
            self.queued_units_total -= before - q.len();
        }
        let amount = self.units[uid].amount;
        for &(c, d) in &entry.hops()[..next] {
            self.channels[c.index()].refund(d, amount);
            out.push_back((c, d));
        }
        self.units[uid].done = true;
        self.units[uid].stamp.marked = true;
        self.units[uid].drop_reason = Some(reason);
        let pid = self.units[uid].payment;
        self.payments[pid].inflight -= amount;
        if reason == DropReason::ChannelClosed {
            self.payments[pid].churn_hit = true;
            self.metrics.unit_dropped_churn();
        }
        // A unit that never finished locking its path counts as a failed
        // lock; one that fully locked was already counted as a success
        // (it reached the destination) and is only recorded as dropped.
        if next < entry.hop_count() {
            self.metrics.unit_lock(entry.hop_count(), false);
        }
        self.metrics.unit_dropped(reason);
        // The failing hop is the one the unit was queued at or traveling
        // toward; a unit that had fully locked its path has none.
        let failing_hop = (next < entry.hop_count()).then(|| entry.hops()[next].0);
        if let Some(c) = failing_hop {
            if let Some(attr) = self.attribution.as_mut() {
                attr.drop_at(c.index());
            }
        }
        self.forensic_drop(pid, self.units[uid].path, failing_hop, reason);
        if let Some(t) = self.trace.as_mut() {
            t.record(
                self.now.micros(),
                TraceEventKind::UnitDropped {
                    unit: self.unit_trace_ids[uid],
                    reason,
                },
            );
        }
        self.ack_unit(uid, false);
        // The returned value made part of the payment unassigned again;
        // make sure the pending queue will retry it (the payment may have
        // been fully in flight and therefore absent from the queue).
        if self.payments[pid].active() {
            self.pending_push(pid);
        }
        self.retire_unit(uid);
    }

    /// Returns a dead unit's slab slot to the free list. Safe because an
    /// alive unit has exactly one pending event, and every retirement site
    /// runs only after that event was consumed or canceled — no stale
    /// calendar entry can reach a recycled slot.
    fn retire_unit(&mut self, uid: usize) {
        debug_assert!(self.units[uid].done);
        debug_assert!(self.units[uid].timeout_event.is_none());
        debug_assert!(self.units[uid].hop_event.is_none());
        if self.track_channels {
            let entry = Rc::clone(&self.units[uid].entry);
            for &(c, _) in entry.hops() {
                self.unit_index.note_removed(c.index());
            }
        }
        self.free_units.push(uid);
    }

    /// Sends the unit's end-to-end acknowledgement to the router.
    fn ack_unit(&mut self, uid: usize, delivered: bool) {
        let u = &self.units[uid];
        self.metrics.unit_acked(u.stamp.marked);
        // The failing hop of a dropped unit, mirroring the forensics
        // attribution: the channel it was queued at or traveling toward.
        // A unit that fully locked its path (expiry/griefing) has none.
        let drop_channel = (u.drop_reason.is_some() && u.next_hop < u.entry.hop_count())
            .then(|| u.entry.hops()[u.next_hop].0);
        let ack = UnitAck {
            payment: PaymentId(u.payment as u64),
            path: u.path,
            amount: u.amount,
            delivered,
            stamp: u.stamp,
            drop_reason: u.drop_reason,
            drop_channel,
            rtt: self.now - u.injected_at,
        };
        let view = NetworkView {
            topo: &self.topo,
            channels: &self.channels,
            paths: &self.paths,
            now: self.now,
        };
        self.router.on_unit_ack(&ack, &view);
        if let Some(t) = self.trace.as_mut() {
            t.record(
                self.now.micros(),
                TraceEventKind::UnitAcked {
                    payment: PaymentId(self.units[uid].payment as u64),
                    unit: self.unit_trace_ids[uid],
                    delivered,
                    marked: self.units[uid].stamp.marked,
                },
            );
        }
    }

    /// Services queues whose direction gained balance (the released
    /// directions accumulated in `drain_scratch`), in FIFO order, until
    /// each blocks again. Servicing can release further directions (drops
    /// refund upstream hops), so this works through the list; the buffer
    /// is recycled across calls.
    fn drain_from_scratch(&mut self) {
        if self.qcfg.is_none() {
            self.drain_scratch.clear();
            return;
        }
        let mut work = std::mem::take(&mut self.drain_scratch);
        while let Some((c, d)) = work.pop_front() {
            while let Some(&uid) = self.queues[c.index()][d.index()].front() {
                let pid = self.units[uid].payment;
                if self.payments[pid].expired || self.now > self.payments[pid].deadline {
                    self.queues[c.index()][d.index()].pop_front();
                    self.queued_units_total -= 1;
                    self.drop_unit_collect(uid, DropReason::Expired, &mut work);
                    continue;
                }
                let u = &self.units[uid];
                if self.node_crashed(u.entry.nodes()[u.next_hop]) {
                    // The queue's servicing node is down: the whole queue
                    // freezes until recovery (or each unit's timeout).
                    break;
                }
                let amount = self.units[uid].amount;
                if self.channels[c.index()].available(d) < amount {
                    break;
                }
                self.queues[c.index()][d.index()].pop_front();
                self.queued_units_total -= 1;
                if let Some(ev) = self.units[uid].timeout_event.take() {
                    self.cancel_event(ev);
                }
                let queue_delay = self.now - self.units[uid].enqueued_at;
                self.lock_hop(uid, queue_delay);
            }
        }
        self.drain_scratch = work;
    }

    fn on_poll(&mut self) {
        // Time-series telemetry, once per sampling cadence (default 1 s).
        if self.now >= self.next_sample {
            let t0 = self.profiler.start();
            self.sample_series();
            // Attribution integrals advance on the same cadence (with a
            // final catch-up segment at the end of the run).
            self.attribution_step();
            self.profiler.stop(Phase::Sampling, t0);
            self.next_sample = self.now + self.sampler.cadence();
        }
        let t0 = self.profiler.start();
        // Expire overdue payments and drop finished ones from the queue.
        let now = self.now;
        for &pid in &self.pending {
            let p = &mut self.payments[pid];
            if !p.completed && now > p.deadline && !p.unassigned().is_zero() {
                p.expired = true;
                if let Some(t) = self.trace.as_mut() {
                    t.record(
                        now.micros(),
                        TraceEventKind::PaymentExpired {
                            payment: PaymentId(pid as u64),
                            remaining: p.unassigned(),
                        },
                    );
                }
            }
        }
        self.pending_retain_active();
        // Scheduling order: each policy's comparator is a strict total
        // order (index tie-break), so the unstable key sorts below yield
        // exactly the order the old dynamic comparator produced — without
        // re-matching the policy on every comparison.
        let payments = &self.payments;
        let pending = &mut self.pending;
        match self.config.scheduling {
            SchedulingPolicy::Srpt => pending.sort_unstable_by_key(|&pid| {
                let p = &payments[pid];
                (p.unassigned(), p.arrival, pid)
            }),
            SchedulingPolicy::Fifo => {
                pending.sort_unstable_by_key(|&pid| (payments[pid].arrival, pid))
            }
            SchedulingPolicy::Lifo => {
                pending.sort_unstable_by_key(|&pid| (Reverse(payments[pid].arrival), pid))
            }
            SchedulingPolicy::EarliestDeadline => {
                pending.sort_unstable_by_key(|&pid| (payments[pid].deadline, pid))
            }
            SchedulingPolicy::LargestRemaining => pending.sort_unstable_by_key(|&pid| {
                let p = &payments[pid];
                (Reverse(p.unassigned()), p.arrival, pid)
            }),
        }
        let order: Vec<usize> = self.pending.clone();
        for pid in order {
            if self.payments[pid].active() {
                self.metrics.retry();
                self.attempt_payment(pid);
            }
        }
        self.pending_retain_active();
        self.profiler.stop(Phase::Routing, t0);
    }

    /// Records one row of every registered time series (see
    /// [`spider_obs::SERIES_NAMES`] for the schema). Queue-dependent
    /// probes report zero under lockstep queueing, where no per-channel
    /// queues exist.
    fn sample_series(&mut self) {
        let mut row = [0.0f64; NUM_SERIES];
        // imbalance: mean |channel imbalance| / capacity.
        let mut sum = 0.0;
        for ch in &self.channels {
            let cap = ch.capacity().drops().max(1) as f64;
            sum += ch.imbalance().drops().unsigned_abs() as f64 / cap;
        }
        row[0] = sum / self.channels.len().max(1) as f64;
        if let Some(qc) = &self.qcfg {
            // queue_occupancy: total units waiting in per-channel queues.
            let queued: usize = self.queues.iter().map(|q| q[0].len() + q[1].len()).sum();
            row[1] = queued as f64;
            // inflight_units: live slab population (locked or queued).
            row[2] = (self.units.len() - self.free_units.len()) as f64;
            // mean_channel_price: the imbalance component of the stamped
            // price (`local_signal`'s steering term), averaged over open
            // channels.
            let mut price = 0.0;
            let mut open = 0usize;
            for (i, ch) in self.channels.iter().enumerate() {
                if ch.is_closed() {
                    continue;
                }
                open += 1;
                let sent = self.flow[i][0];
                let rev = self.flow[i][1];
                price += qc.imbalance_price_weight * crate::queue::flow_imbalance(sent, rev).abs();
            }
            row[5] = price / open.max(1) as f64;
        }
        // calendar_events: live calendar population.
        row[3] = self.live_events as f64;
        // window_sum_xrp: router-reported AIMD window gauge, if any.
        row[4] = self.router.window_gauge().unwrap_or(0.0);
        self.sampler.push_row(row);
        if self.sampler.wants_queue_depths() && self.qcfg.is_some() {
            let depths: Vec<u32> = self
                .queues
                .iter()
                .map(|q| (q[0].len() + q[1].len()) as u32)
                .collect();
            self.sampler.push_queue_depths(depths);
        }
    }

    /// Drops inactive payments from the pending queue, keeping the O(1)
    /// membership flags in sync.
    fn pending_retain_active(&mut self) {
        let payments = &self.payments;
        let in_pending = &mut self.in_pending;
        self.pending.retain(|&pid| {
            let keep = payments[pid].active();
            if !keep {
                in_pending[pid] = false;
            }
            keep
        });
    }

    /// Periodic depletion scan (§5.2.3): any channel direction whose
    /// available balance fell below the trigger gets an on-chain top-up
    /// back to the target fraction, arriving after the blockchain delay.
    fn on_rebalance_scan(&mut self) {
        let Some(rb) = self.config.rebalancing.clone() else {
            return;
        };
        for i in 0..self.channels.len() {
            if self.channels[i].is_closed() {
                // A closed channel's zero availability is not depletion;
                // topping it up on-chain would strand the deposit.
                continue;
            }
            let capacity = self.channels[i].capacity();
            for dir in [Direction::Forward, Direction::Backward] {
                if self.rebalance_pending[i][dir.index()] {
                    continue;
                }
                let avail = self.channels[i].available(dir);
                if avail < capacity.mul_f64(rb.trigger_fraction) {
                    let target = capacity.mul_f64(rb.target_fraction);
                    let amount = target.saturating_sub(avail);
                    if amount.is_zero() {
                        continue;
                    }
                    self.rebalance_pending[i][dir.index()] = true;
                    self.schedule(
                        self.now + rb.confirmation_delay,
                        EventKind::RebalanceSettle {
                            channel: ChannelId::from_index(i),
                            dir,
                            amount,
                        },
                    );
                }
            }
        }
    }

    // ---- topology churn: live channel open/close/resize mid-run ----

    /// Applies one scheduled churn event: mutate the channel states, fail
    /// back in-flight units crossing closed channels, then notify the
    /// router (which repairs its candidate caches incrementally).
    fn on_topology_event(&mut self, i: usize) {
        let change = self.topo_events[i].change;
        let mut update = TopologyUpdate::default();
        self.apply_topology_change(change, &mut update, true);
        if update.is_empty() {
            // Idempotent no-op (e.g. closing an already-closed channel).
            return;
        }
        self.metrics.topology_event(
            update.closed.len(),
            update.opened.len(),
            update.resized.len(),
            self.now,
        );
        if let Some(t) = self.trace.as_mut() {
            t.record(
                self.now.micros(),
                TraceEventKind::TopologyChanged {
                    closed: update.closed.len() as u32,
                    opened: update.opened.len() as u32,
                    resized: update.resized.len() as u32,
                },
            );
        }
        let view = NetworkView {
            topo: &self.topo,
            channels: &self.channels,
            paths: &self.paths,
            now: self.now,
        };
        self.router.on_topology_change(&update, &view);
    }

    /// Applies one [`TopologyChange`], recording what actually toggled in
    /// `update`. `failback` is false only for `t = 0` initial-state
    /// application, when nothing can be in flight.
    fn apply_topology_change(
        &mut self,
        change: TopologyChange,
        update: &mut TopologyUpdate,
        failback: bool,
    ) {
        match change {
            TopologyChange::ChannelClose { channel } => {
                self.close_channel(channel, update, failback)
            }
            TopologyChange::ChannelOpen { channel } => self.open_channel(channel, update),
            TopologyChange::ChannelResize {
                channel,
                new_capacity,
            } => {
                let ci = channel.index();
                let (deposited, withdrawn) = self.channels[ci].resize(new_capacity);
                if deposited.is_zero() && withdrawn.is_zero() {
                    return;
                }
                update.resized.push(channel);
                // Fresh balance may unblock queued units.
                if !deposited.is_zero() && !self.channels[ci].is_closed() {
                    debug_assert!(self.drain_scratch.is_empty());
                    self.drain_scratch.extend([
                        (channel, Direction::Forward),
                        (channel, Direction::Backward),
                    ]);
                    self.drain_from_scratch();
                }
            }
            TopologyChange::NodeLeave { node } => {
                let incident: Vec<ChannelId> = self
                    .topo
                    .neighbors(node)
                    .iter()
                    .map(|a| a.channel)
                    .collect();
                for c in incident {
                    self.close_channel(c, update, failback);
                }
            }
            TopologyChange::NodeJoin { node } => {
                let incident: Vec<ChannelId> = self
                    .topo
                    .neighbors(node)
                    .iter()
                    .map(|a| a.channel)
                    .collect();
                for c in incident {
                    self.open_channel(c, update);
                }
            }
        }
    }

    /// Closes a channel and fails back every in-flight unit whose path
    /// traverses it: hop-by-hop units are dropped wherever they are
    /// (queued or mid-path) with every locked hop refunded; lockstep
    /// units have their pending settlement canceled and refunded. Either
    /// way the value returns to the payment's unassigned pool (atomic
    /// payments cancel outright), so conservation holds at every instant.
    fn close_channel(&mut self, channel: ChannelId, update: &mut TopologyUpdate, failback: bool) {
        let ci = channel.index();
        if self.channels[ci].is_closed() {
            return;
        }
        self.channels[ci].close();
        update.closed.push(channel);
        if !failback {
            return;
        }
        debug_assert!(self.track_channels, "closes imply a churn schedule");
        if self.hop_by_hop() {
            // Only this channel's in-flight units, from the per-channel
            // index — ascending slab order, exactly the order the old
            // full-slab scan dropped them in.
            let mut hit = std::mem::take(&mut self.close_scratch);
            {
                let units = &self.units;
                let gens = &self.unit_gen;
                self.unit_index.collect_live_sorted(
                    ci,
                    |s, g| gens[s as usize] == g && !units[s as usize].done,
                    &mut hit,
                );
            }
            for &uid in &hit {
                let uid = uid as usize;
                // A drain cascade from an earlier drop may have already
                // retired this unit.
                if self.units[uid].done {
                    continue;
                }
                self.drop_unit(uid, DropReason::ChannelClosed);
            }
            self.close_scratch = hit;
        } else {
            let atomic = self.router.atomic();
            // Only this channel's pending settles (index entries are
            // generation-checked, so recycled slots cannot alias).
            let mut hit = std::mem::take(&mut self.close_scratch);
            {
                let store = &self.event_store;
                let gens = &self.event_gen;
                self.settle_index.collect_live_sorted(
                    ci,
                    |s, g| gens[s as usize] == g && store[s as usize].is_some(),
                    &mut hit,
                );
            }
            for &id in &hit {
                let id = id as usize;
                // Cancel in place (the calendar entry reclaims the slot)
                // and unwind the unit's locks.
                let Some(EventKind::Settle {
                    payment,
                    amount,
                    path,
                }) = self.event_store[id].take()
                else {
                    unreachable!("settle index entries are validated live");
                };
                self.live_events -= 1;
                let entry = self.paths.entry(path);
                for &(c, dir) in entry.hops() {
                    self.channels[c.index()].refund(dir, amount);
                    self.settle_index.note_removed(c.index());
                }
                let p = &mut self.payments[payment];
                p.inflight -= amount;
                p.churn_hit = true;
                // Counted in both the total and the churn-specific drop
                // counters, so `units_dropped_churn <= units_dropped`
                // holds in every engine mode.
                self.metrics.unit_dropped(DropReason::ChannelClosed);
                self.metrics.unit_dropped_churn();
                if let Some(attr) = self.attribution.as_mut() {
                    attr.drop_at(ci);
                }
                self.forensic_drop(payment, path, Some(channel), DropReason::ChannelClosed);
                if atomic {
                    // All-or-nothing schemes cannot partially retry.
                    self.payments[payment].expired = true;
                } else if self.payments[payment].active() {
                    self.pending_push(payment);
                }
            }
            self.close_scratch = hit;
        }
    }

    /// Reopens a closed channel; its frozen balances become spendable
    /// again and its directions are drained in case senders are waiting.
    fn open_channel(&mut self, channel: ChannelId, update: &mut TopologyUpdate) {
        let ci = channel.index();
        if !self.channels[ci].is_closed() {
            return;
        }
        self.channels[ci].reopen();
        update.opened.push(channel);
        debug_assert!(self.drain_scratch.is_empty());
        self.drain_scratch.extend([
            (channel, Direction::Forward),
            (channel, Direction::Backward),
        ]);
        self.drain_from_scratch();
    }

    /// Debug-build invariant: the per-channel indices exactly mirror the
    /// slabs — every live unit/settle crossing a channel is a
    /// generation-valid entry of that channel's list, and the live
    /// counters match the recount. Runs after every engine step while the
    /// slabs are small, and on a stride once they grow (the check itself
    /// is O(slab), so per-step checking at scale would be quadratic).
    #[cfg(debug_assertions)]
    fn debug_check_channel_indices(&self) {
        if !self.track_channels {
            return;
        }
        let slab = self.event_store.len() + self.units.len();
        if slab > 512 && !self.events_executed.is_multiple_of(256) {
            return;
        }
        let n = self.channels.len();
        let mut unit_live = vec![0u32; n];
        for (uid, u) in self.units.iter().enumerate() {
            if u.done {
                continue;
            }
            for &(c, _) in u.entry.hops() {
                unit_live[c.index()] += 1;
                assert!(
                    self.unit_index
                        .entries(c.index())
                        .contains(&(uid as u32, self.unit_gen[uid])),
                    "live unit {uid} missing from channel {c} index"
                );
            }
        }
        let mut settle_live = vec![0u32; n];
        for (id, slot) in self.event_store.iter().enumerate() {
            if let Some(EventKind::Settle { path, .. }) = slot {
                for &(c, _) in self.paths.entry(*path).hops() {
                    settle_live[c.index()] += 1;
                    assert!(
                        self.settle_index
                            .entries(c.index())
                            .contains(&(id as u32, self.event_gen[id])),
                        "pending settle {id} missing from channel {c} index"
                    );
                }
            }
        }
        for c in 0..n {
            assert_eq!(
                unit_live[c],
                self.unit_index.live(c),
                "unit index live count drifted on channel {c}"
            );
            assert_eq!(
                settle_live[c],
                self.settle_index.live(c),
                "settle index live count drifted on channel {c}"
            );
        }
    }

    /// Verifies fund conservation on every channel (available + in-flight
    /// equals escrowed capacity). Panics on violation.
    pub fn check_conservation(&self) {
        for (i, ch) in self.channels.iter().enumerate() {
            assert_eq!(
                ch.total(),
                ch.capacity(),
                "channel {i} violates conservation"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{TxnSpec, Workload};
    use spider_topology::gen;

    /// Test router: always proposes the single BFS shortest path for the
    /// full remaining amount.
    struct DirectRouter {
        atomic: bool,
    }

    impl Router for DirectRouter {
        fn name(&self) -> &'static str {
            "direct-test"
        }
        fn route(
            &mut self,
            req: &RouteRequest,
            view: &NetworkView<'_>,
        ) -> Vec<crate::router::RouteProposal> {
            match view.topo.shortest_path(req.src, req.dst) {
                Some(path) => vec![crate::router::RouteProposal {
                    path: view.intern(&path),
                    amount: req.remaining,
                }],
                None => Vec::new(),
            }
        }
        fn atomic(&self) -> bool {
            self.atomic
        }
        fn observes_unit_outcomes(&self) -> bool {
            false // exercise the engine's batched failed-lock fast path
        }
    }

    fn xrp(x: u64) -> Amount {
        Amount::from_xrp(x)
    }

    fn txn(t_ms: u64, src: u32, dst: u32, amount: Amount) -> TxnSpec {
        TxnSpec {
            time: SimTime::from_micros(t_ms * 1000),
            src: NodeId(src),
            dst: NodeId(dst),
            amount,
        }
    }

    fn base_config() -> SimConfig {
        SimConfig {
            horizon: spider_types::SimDuration::from_secs(30),
            ..SimConfig::default()
        }
    }

    fn run_sim(
        topo: Topology,
        txns: Vec<TxnSpec>,
        atomic: bool,
        config: SimConfig,
    ) -> (SimReport, Simulation) {
        let mut sim = Simulation::new(
            topo,
            Workload { txns },
            Box::new(DirectRouter { atomic }),
            config,
        )
        .expect("test topology and config are valid");
        let report = sim.run();
        sim.check_conservation();
        (report, sim)
    }

    #[test]
    fn single_payment_direct_channel() {
        let t = gen::line(2, xrp(10));
        let (r, _) = run_sim(t, vec![txn(100, 0, 1, xrp(3))], false, base_config());
        assert_eq!(r.attempted_payments, 1);
        assert_eq!(r.completed_payments, 1);
        assert_eq!(r.success_ratio(), 1.0);
        assert_eq!(r.success_volume(), 1.0);
        // Latency = confirmation delay.
        assert!((r.avg_completion_time().expect("at least one txn completed") - 0.5).abs() < 1e-9);
    }

    #[test]
    fn payment_larger_than_balance_fails_atomically() {
        // Channel 10 XRP → 5 XRP per side; an 8 XRP atomic payment fails.
        let t = gen::line(2, xrp(10));
        let (r, sim) = run_sim(t, vec![txn(100, 0, 1, xrp(8))], true, base_config());
        assert_eq!(r.completed_payments, 0);
        assert_eq!(r.delivered_volume, Amount::ZERO);
        // Rollback restored the initial split.
        assert_eq!(
            sim.channel_states()[0].available(Direction::Forward),
            xrp(5)
        );
        assert_eq!(
            sim.channel_states()[0].available(Direction::Backward),
            xrp(5)
        );
    }

    #[test]
    fn multihop_locks_every_hop() {
        let t = gen::line(3, xrp(10));
        let (r, sim) = run_sim(t, vec![txn(50, 0, 2, xrp(4))], false, base_config());
        assert_eq!(r.completed_payments, 1);
        // Both channels moved 4 XRP downstream.
        for c in sim.channel_states() {
            assert_eq!(c.available(Direction::Forward), xrp(1));
            assert_eq!(c.available(Direction::Backward), xrp(9));
        }
        // Two hops per unit, 4 XRP / 10 MTU = one unit.
        assert_eq!(r.units_locked, 1);
        assert_eq!(r.avg_path_length(), Some(2.0));
    }

    #[test]
    fn mtu_splits_units() {
        let mut cfg = base_config();
        cfg.mtu = xrp(1);
        let t = gen::line(2, xrp(20));
        let (r, _) = run_sim(t, vec![txn(10, 0, 1, xrp(5))], false, cfg);
        assert_eq!(r.units_locked, 5);
        assert_eq!(r.completed_payments, 1);
    }

    #[test]
    fn opposing_payments_rebalance_each_other() {
        // 6 XRP per side. 0→1 5 XRP, then 1→0 5 XRP, then 0→1 5 XRP again:
        // each leg is only possible because the previous one refilled it.
        let t = gen::line(2, xrp(12));
        let txns = vec![
            txn(0, 0, 1, xrp(5)),
            txn(1000, 1, 0, xrp(5)),
            txn(2000, 0, 1, xrp(5)),
        ];
        let (r, _) = run_sim(t, txns, false, base_config());
        assert_eq!(r.completed_payments, 3);
    }

    #[test]
    fn unidirectional_traffic_exhausts_channel() {
        // 5 XRP forward budget; three 2-XRP payments: the third finds only
        // 1 XRP available and completes partially (non-atomic), leaving
        // success ratio 2/3.
        let mut cfg = base_config();
        cfg.mtu = xrp(1);
        cfg.deadline = Some(spider_types::SimDuration::from_secs(2));
        let t = gen::line(2, xrp(10));
        let txns = vec![
            txn(0, 0, 1, xrp(2)),
            txn(100, 0, 1, xrp(2)),
            txn(200, 0, 1, xrp(2)),
        ];
        let (r, _) = run_sim(t, txns, false, cfg);
        assert_eq!(r.completed_payments, 2);
        // 5 of 6 XRP delivered (the stranded 1 XRP was sendable).
        assert_eq!(r.delivered_volume, xrp(5));
        assert!((r.success_volume() - 5.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn pending_queue_retries_after_refill() {
        // 0→1 drains; payment 1→0 then refills; queued remainder completes
        // on a later poll.
        let mut cfg = base_config();
        cfg.mtu = xrp(1);
        cfg.deadline = Some(spider_types::SimDuration::from_secs(10));
        let t = gen::line(2, xrp(10));
        let txns = vec![
            txn(0, 0, 1, xrp(5)),    // drains forward side
            txn(100, 0, 1, xrp(3)),  // queued: nothing available
            txn(2000, 1, 0, xrp(4)), // refills forward side
        ];
        let (r, _) = run_sim(t, txns, false, cfg);
        assert_eq!(r.completed_payments, 3);
        assert!(r.retries > 0);
    }

    #[test]
    fn deadline_cancels_remainder() {
        let mut cfg = base_config();
        cfg.mtu = xrp(1);
        cfg.deadline = Some(spider_types::SimDuration::from_millis(800));
        let t = gen::line(2, xrp(10));
        // 5 available; 8 requested; 5 deliver, 3 can never arrive; after
        // the deadline the payment stops retrying.
        let (r, _) = run_sim(t, vec![txn(0, 0, 1, xrp(8))], false, cfg);
        assert_eq!(r.completed_payments, 0);
        assert_eq!(r.delivered_volume, xrp(5));
    }

    #[test]
    fn disconnected_destination_fails_cleanly() {
        let mut b = Topology::builder(3);
        b.channel(NodeId(0), NodeId(1), xrp(10))
            .expect("channel endpoints are distinct known nodes");
        let t = b.build();
        let (r, _) = run_sim(t, vec![txn(0, 0, 2, xrp(1))], false, base_config());
        assert_eq!(r.completed_payments, 0);
        assert_eq!(r.delivered_volume, Amount::ZERO);
    }

    #[test]
    fn determinism_across_runs() {
        let t = gen::cycle(6, xrp(50));
        let mut rng = spider_types::DetRng::new(42);
        let w = Workload::generate(
            6,
            &crate::workload::WorkloadConfig::small(200, 50.0),
            &mut rng,
        );
        let run = |w: Workload| {
            let mut sim = Simulation::new(
                gen::cycle(6, xrp(50)),
                w,
                Box::new(DirectRouter { atomic: false }),
                base_config(),
            )
            .expect("test topology and config are valid");
            sim.run()
        };
        let r1 = run(w.clone());
        let r2 = run(w);
        assert_eq!(r1.completed_payments, r2.completed_payments);
        assert_eq!(r1.delivered_volume, r2.delivered_volume);
        assert_eq!(r1.units_locked, r2.units_locked);
        let _ = t;
    }

    #[test]
    fn horizon_cuts_off_late_arrivals() {
        let mut cfg = base_config();
        cfg.horizon = spider_types::SimDuration::from_secs(1);
        let t = gen::line(2, xrp(100));
        let txns = vec![txn(0, 0, 1, xrp(1)), txn(5_000, 0, 1, xrp(1))];
        let (r, _) = run_sim(t, txns, false, cfg);
        assert_eq!(r.attempted_payments, 1);
    }

    #[test]
    fn conservation_under_random_load() {
        let t = gen::isp_topology(xrp(200));
        let mut rng = spider_types::DetRng::new(7);
        let w = Workload::generate(
            32,
            &crate::workload::WorkloadConfig::small(2_000, 500.0),
            &mut rng,
        );
        let mut cfg = base_config();
        cfg.mtu = xrp(5);
        let mut sim = Simulation::new(t, w, Box::new(DirectRouter { atomic: false }), cfg)
            .expect("test topology and config are valid");
        let r = sim.run();
        sim.check_conservation();
        assert!(r.attempted_payments == 2_000);
        assert!(r.delivered_volume <= r.attempted_volume);
    }

    #[test]
    fn streaming_source_runs_identically_to_materialized() {
        // The same generator seed, fed once as a materialized Workload
        // and once as a lazy stream: every observable must match.
        let cfg = crate::workload::WorkloadConfig::small(1_500, 400.0);
        let run = |src: crate::workload::ArrivalSource| {
            let mut sim = Simulation::new(
                gen::isp_topology(xrp(200)),
                src,
                Box::new(DirectRouter { atomic: false }),
                base_config(),
            )
            .expect("test topology and config are valid");
            let r = sim.run();
            sim.check_conservation();
            (r, sim.slab_stats())
        };
        let w = Workload::generate(32, &cfg, &mut spider_types::DetRng::new(5));
        let stream = crate::workload::StreamingWorkload::new(32, cfg, spider_types::DetRng::new(5));
        let (r1, s1) = run(w.into());
        let (r2, s2) = run(stream.into());
        assert_eq!(r1.completed_payments, r2.completed_payments);
        assert_eq!(r1.delivered_volume, r2.delivered_volume);
        assert_eq!(r1.units_locked, r2.units_locked);
        assert_eq!(r1.units_failed, r2.units_failed);
        assert_eq!(r1.retries, r2.retries);
        assert_eq!(s1.events_scheduled, s2.events_scheduled);
        assert_eq!(s1.peak_live_events, s2.peak_live_events);
    }

    #[test]
    fn failed_lock_batching_preserves_outcomes() {
        // A router with a no-op outcome hook lets the engine batch-count
        // identical failed chunks. Forcing the hook "observed" disables
        // the fast path; every outcome must be unchanged.
        struct Observing;
        impl Router for Observing {
            fn name(&self) -> &'static str {
                "direct-observing"
            }
            fn route(
                &mut self,
                req: &RouteRequest,
                view: &NetworkView<'_>,
            ) -> Vec<crate::router::RouteProposal> {
                match view.topo.shortest_path(req.src, req.dst) {
                    Some(path) => vec![crate::router::RouteProposal {
                        path: view.intern(&path),
                        amount: req.remaining,
                    }],
                    None => Vec::new(),
                }
            }
            fn on_unit_outcome(&mut self, _o: &UnitOutcome, _v: &NetworkView<'_>) {
                // Still a no-op, but overriding flips `observes` to true:
                // the engine must then walk every chunk individually.
            }
        }
        // Repeated over-sized payments at 1-XRP MTU: most chunks fail.
        let mut cfg = base_config();
        cfg.mtu = xrp(1);
        cfg.deadline = Some(spider_types::SimDuration::from_secs(3));
        let txns: Vec<TxnSpec> = (0..20).map(|i| txn(i * 200, 0, 1, xrp(9))).collect();
        let (fast, fast_sim) = run_sim(gen::line(2, xrp(10)), txns.clone(), false, cfg.clone());
        let mut slow_sim = Simulation::new(
            gen::line(2, xrp(10)),
            Workload { txns },
            Box::new(Observing),
            cfg,
        )
        .expect("test topology and config are valid");
        let slow = slow_sim.run();
        slow_sim.check_conservation();
        assert!(fast.units_failed > 100, "needs failing chunks to batch");
        assert_eq!(fast.units_failed, slow.units_failed);
        assert_eq!(fast.units_locked, slow.units_locked);
        assert_eq!(fast.completed_payments, slow.completed_payments);
        assert_eq!(fast.delivered_volume, slow.delivered_volume);
        assert_eq!(fast.retries, slow.retries);
        assert_eq!(
            fast_sim.channel_states()[0],
            slow_sim.channel_states()[0],
            "channel state must be bit-identical"
        );
    }

    #[test]
    fn event_slab_is_bounded_by_in_flight_events() {
        // A long run whose unit churn (one settle event per MTU unit)
        // vastly exceeds the in-flight population: the slab must recycle
        // dead slots instead of growing with the total ever scheduled.
        // 60 alternating 100-XRP payments at 1-XRP MTU → ~6,000 settle
        // events, of which only a confirmation-window's worth is ever
        // simultaneously pending.
        let t = gen::line(2, xrp(20_000));
        let mut cfg = base_config();
        cfg.mtu = xrp(1);
        cfg.horizon = spider_types::SimDuration::from_secs(40);
        let txns: Vec<TxnSpec> = (0..60)
            .map(|i| txn(i * 500, (i % 2) as u32, ((i + 1) % 2) as u32, xrp(100)))
            .collect();
        let (r, sim) = run_sim(t, txns, false, cfg);
        assert_eq!(r.completed_payments, 60);
        let stats = sim.slab_stats();
        assert!(stats.events_scheduled > 6_000, "{stats:?}");
        assert!(
            stats.event_slots < (stats.events_scheduled / 4) as usize,
            "event slab grew with total events: {stats:?}"
        );
        assert_eq!(stats.event_slots, stats.peak_live_events, "{stats:?}");
        // The interner deduplicates: both directions of the one pair.
        assert_eq!(stats.interned_paths, 2, "{stats:?}");
    }
}

#[cfg(test)]
mod queueing_tests {
    use super::*;
    use crate::config::QueueConfig;
    use crate::workload::{TxnSpec, Workload};
    use spider_topology::gen;
    use spider_types::SimDuration;

    struct Direct;
    impl Router for Direct {
        fn name(&self) -> &'static str {
            "direct"
        }
        fn route(
            &mut self,
            req: &RouteRequest,
            view: &NetworkView<'_>,
        ) -> Vec<crate::router::RouteProposal> {
            match view.topo.shortest_path(req.src, req.dst) {
                Some(path) => vec![crate::router::RouteProposal {
                    path: view.intern(&path),
                    amount: req.remaining,
                }],
                None => Vec::new(),
            }
        }
    }

    /// Records every ack for assertion.
    struct AckRecorder {
        acks: std::rc::Rc<std::cell::RefCell<Vec<UnitAck>>>,
        outcomes: std::rc::Rc<std::cell::RefCell<Vec<bool>>>,
    }
    impl Router for AckRecorder {
        fn name(&self) -> &'static str {
            "ack-recorder"
        }
        fn route(
            &mut self,
            req: &RouteRequest,
            view: &NetworkView<'_>,
        ) -> Vec<crate::router::RouteProposal> {
            match view.topo.shortest_path(req.src, req.dst) {
                Some(path) => vec![crate::router::RouteProposal {
                    path: view.intern(&path),
                    amount: req.remaining,
                }],
                None => Vec::new(),
            }
        }
        fn on_unit_outcome(&mut self, outcome: &UnitOutcome, _view: &NetworkView<'_>) {
            self.outcomes.borrow_mut().push(outcome.locked);
        }
        fn on_unit_ack(&mut self, ack: &UnitAck, _view: &NetworkView<'_>) {
            self.acks.borrow_mut().push(*ack);
        }
    }

    fn xrp(x: u64) -> Amount {
        Amount::from_xrp(x)
    }

    fn txn(t_ms: u64, src: u32, dst: u32, amount: Amount) -> TxnSpec {
        TxnSpec {
            time: SimTime::from_micros(t_ms * 1000),
            src: NodeId(src),
            dst: NodeId(dst),
            amount,
        }
    }

    fn qconfig(qc: QueueConfig) -> SimConfig {
        SimConfig {
            horizon: SimDuration::from_secs(30),
            mtu: xrp(1),
            deadline: Some(SimDuration::from_secs(10)),
            queueing: crate::config::QueueingMode::PerChannelFifo(qc),
            ..SimConfig::default()
        }
    }

    fn run_queue_sim(
        topo: Topology,
        txns: Vec<TxnSpec>,
        cfg: SimConfig,
    ) -> (SimReport, Simulation) {
        let mut sim = Simulation::new(topo, Workload { txns }, Box::new(Direct), cfg)
            .expect("test topology and config are valid");
        let report = sim.run();
        sim.check_conservation();
        (report, sim)
    }

    #[test]
    fn queued_unit_completes_after_refill() {
        // 5 XRP forward; the first payment drains it, the second queues at
        // the router instead of failing, and the opposing payment's
        // settlement releases it.
        let t = gen::line(2, xrp(10));
        let txns = vec![
            txn(0, 0, 1, xrp(5)),
            txn(100, 0, 1, xrp(3)),
            txn(1_000, 1, 0, xrp(4)),
        ];
        let (r, sim) = run_queue_sim(t, txns, qconfig(QueueConfig::default()));
        assert_eq!(r.completed_payments, 3);
        assert!(
            r.units_queued > 0,
            "second payment's units must have queued"
        );
        assert!(r.avg_queue_delay().expect("queue delays were recorded") > 0.0);
        assert_eq!(sim.queued_units(), 0);
    }

    #[test]
    fn conservation_holds_with_units_resident_in_queues() {
        // Nothing ever refills the forward direction: the remainder stays
        // queued at the horizon, and every drop is still accounted for.
        let t = gen::line(2, xrp(10));
        let mut cfg = qconfig(QueueConfig {
            max_queue_delay: SimDuration::from_secs(3_600),
            marking_delay: SimDuration::from_secs(3_000),
            ..QueueConfig::default()
        });
        cfg.horizon = SimDuration::from_secs(2);
        cfg.deadline = None;
        let (r, sim) = run_queue_sim(t, vec![txn(0, 0, 1, xrp(8))], cfg);
        assert_eq!(r.delivered_volume, xrp(5));
        assert!(sim.queued_units() > 0, "remainder must sit in the queue");
        sim.check_conservation(); // with units resident in queues
    }

    #[test]
    fn multihop_queues_hold_upstream_locks() {
        // Wide first channel, narrow second: units lock hop 0, queue at
        // hop 1, and the locks show up as in-flight on channel 0 while
        // they wait.
        let mut b = Topology::builder(3);
        b.channel(NodeId(0), NodeId(1), xrp(20))
            .expect("channel endpoints are distinct known nodes"); // 10 per side
        b.channel(NodeId(1), NodeId(2), xrp(10))
            .expect("channel endpoints are distinct known nodes"); // 5 per side
        let t = b.build();
        let mut cfg = qconfig(QueueConfig {
            max_queue_delay: SimDuration::from_secs(3_600),
            marking_delay: SimDuration::from_secs(3_000),
            ..QueueConfig::default()
        });
        cfg.horizon = SimDuration::from_secs(2);
        cfg.deadline = None;
        // 8 XRP: all units cross hop 0, 5 deliver through hop 1, 3 queue
        // there holding their hop-0 locks.
        let (r, sim) = run_queue_sim(t, vec![txn(0, 0, 2, xrp(8))], cfg);
        assert_eq!(r.delivered_volume, xrp(5));
        assert!(sim.queued_units() > 0);
        let inflight_upstream = sim.channel_states()[0].inflight(Direction::Forward);
        assert_eq!(
            inflight_upstream,
            xrp(3),
            "queued units keep their upstream locks"
        );
    }

    #[test]
    fn overload_marks_units() {
        let t = gen::line(2, xrp(10));
        let qc = QueueConfig {
            marking_delay: SimDuration::from_millis(50),
            ..QueueConfig::default()
        };
        // Sustained one-way overload with periodic refills so queued units
        // eventually cross (delayed → marked).
        let mut txns: Vec<TxnSpec> = (0..8).map(|i| txn(i * 100, 0, 1, xrp(1))).collect();
        txns.push(txn(3_000, 1, 0, xrp(4)));
        let (r, _) = run_queue_sim(t, txns, qconfig(qc));
        assert!(r.units_marked > 0, "delayed units must be marked");
        assert!(r.marking_rate() > 0.0);
    }

    #[test]
    fn queue_timeout_drops_and_refunds() {
        let t = gen::line(3, xrp(10));
        let qc = QueueConfig {
            max_queue_delay: SimDuration::from_millis(300),
            marking_delay: SimDuration::from_millis(100),
            ..QueueConfig::default()
        };
        let mut cfg = qconfig(qc);
        // With no deadline, the payment keeps retrying: dropped units
        // return their value to the unassigned pool and the pending queue
        // re-injects it on a later poll (so some units may sit queued
        // again at the horizon — conservation must hold regardless).
        cfg.deadline = None;
        let (r, sim) = run_queue_sim(t, vec![txn(0, 0, 2, xrp(9))], cfg);
        assert_eq!(r.delivered_volume, xrp(5), "only the channel's funds ship");
        assert!(r.units_dropped > 0, "the stuck remainder must time out");
        assert!(r.retries > 0, "dropped value must be re-queued for retry");
        // With a deadline, the remainder expires and everything unwinds.
        let mut cfg = qconfig(QueueConfig {
            max_queue_delay: SimDuration::from_millis(300),
            marking_delay: SimDuration::from_millis(100),
            ..QueueConfig::default()
        });
        cfg.deadline = Some(SimDuration::from_secs(2));
        let (r, sim2) = run_queue_sim(gen::line(3, xrp(10)), vec![txn(0, 0, 2, xrp(9))], cfg);
        assert_eq!(r.delivered_volume, xrp(5));
        assert_eq!(sim2.queued_units(), 0, "expiry unwinds the queues");
        for c in sim2.channel_states() {
            assert_eq!(c.inflight(Direction::Forward), Amount::ZERO);
            assert_eq!(c.inflight(Direction::Backward), Amount::ZERO);
        }
        let _ = sim;
    }

    #[test]
    fn ingress_overflow_rejects_without_ack() {
        let t = gen::line(2, xrp(4));
        let qc = QueueConfig {
            max_queue_units: 2,
            max_queue_delay: SimDuration::from_secs(5),
            ..QueueConfig::default()
        };
        let acks = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let outcomes = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let router = AckRecorder {
            acks: std::rc::Rc::clone(&acks),
            outcomes: std::rc::Rc::clone(&outcomes),
        };
        // 10 one-XRP units against 2 XRP of balance and a 2-deep queue:
        // some are rejected at the ingress.
        let mut cfg = qconfig(qc);
        cfg.deadline = None;
        cfg.horizon = SimDuration::from_secs(3);
        let mut sim = Simulation::new(
            t,
            Workload {
                txns: vec![txn(0, 0, 1, xrp(10))],
            },
            Box::new(router),
            cfg,
        )
        .expect("test topology and config are valid");
        let r = sim.run();
        sim.check_conservation();
        let rejected = outcomes.borrow().iter().filter(|ok| !**ok).count();
        assert!(rejected > 0, "ingress must reject beyond the queue bound");
        assert!(r.units_failed >= rejected as u64);
        // Every *accepted* unit acks exactly once; rejected ones never do.
        let accepted = outcomes.borrow().iter().filter(|ok| **ok).count();
        let settled_or_queued = accepted - sim.queued_units();
        assert_eq!(acks.borrow().len(), settled_or_queued);
        assert!(acks.borrow().iter().all(|a| a.delivered));
    }

    #[test]
    fn queueing_runs_are_deterministic() {
        let _t = gen::isp_topology(xrp(500));
        let mut rng = spider_types::DetRng::new(11);
        let w = Workload::generate(
            32,
            &crate::workload::WorkloadConfig::small(2_000, 500.0),
            &mut rng,
        );
        let run = |w: Workload| {
            let mut cfg = qconfig(QueueConfig::default());
            cfg.mtu = xrp(5);
            let mut sim = Simulation::new(gen::isp_topology(xrp(500)), w, Box::new(Direct), cfg)
                .expect("test topology and config are valid");
            let r = sim.run();
            sim.check_conservation();
            r
        };
        let r1 = run(w.clone());
        let r2 = run(w);
        assert_eq!(r1.completed_payments, r2.completed_payments);
        assert_eq!(r1.delivered_volume, r2.delivered_volume);
        assert_eq!(r1.units_locked, r2.units_locked);
        assert_eq!(r1.units_marked, r2.units_marked);
        assert_eq!(r1.units_dropped, r2.units_dropped);
        assert_eq!(r1.units_queued, r2.units_queued);
    }

    #[test]
    fn queueing_beats_lockstep_on_bursty_one_way_load() {
        // The whole point of router queues: a burst that exceeds the
        // instantaneous balance waits for the opposing flow instead of
        // failing. Same workload, same seeds, queueing on vs off.
        let txns = vec![
            txn(0, 0, 1, xrp(5)),
            txn(10, 0, 1, xrp(4)), // lockstep: fails now; queueing: waits
            txn(1_000, 1, 0, xrp(5)),
        ];
        let t = gen::line(2, xrp(10));
        let (queued, _) = run_queue_sim(t, txns.clone(), qconfig(QueueConfig::default()));
        let mut lockstep_cfg = SimConfig {
            horizon: SimDuration::from_secs(30),
            mtu: xrp(1),
            deadline: Some(SimDuration::from_secs(10)),
            ..SimConfig::default()
        };
        // Disable retries-driven catchup to isolate the queueing effect:
        // poll quickly in both, rely on deadline.
        lockstep_cfg.poll_interval = SimDuration::from_millis(100);
        let mut sim = Simulation::new(
            gen::line(2, xrp(10)),
            Workload { txns },
            Box::new(Direct),
            lockstep_cfg,
        )
        .expect("test topology and config are valid");
        let lockstep = sim.run();
        sim.check_conservation();
        assert!(
            queued.delivered_volume >= lockstep.delivered_volume,
            "queueing {} < lockstep {}",
            queued.delivered_volume,
            lockstep.delivered_volume
        );
        assert_eq!(queued.completed_payments, 3);
    }

    #[test]
    fn unit_slab_recycles_dead_slots() {
        // Heavy churn through a narrow line: far more units are injected
        // than are ever simultaneously alive, so the slab must stay small.
        let t = gen::line(3, xrp(40));
        let mut txns = Vec::new();
        for i in 0..60 {
            txns.push(txn(i * 250, 0, 2, xrp(4)));
            txns.push(txn(i * 250 + 100, 2, 0, xrp(4)));
        }
        let (r, sim) = run_queue_sim(t, txns, qconfig(QueueConfig::default()));
        let stats = sim.slab_stats();
        assert!(r.units_locked > 100);
        assert!(stats.units_injected > 200, "{stats:?}");
        assert_eq!(stats.unit_slots, stats.peak_live_units, "{stats:?}");
        assert!(
            stats.unit_slots < (stats.units_injected / 2) as usize,
            "unit slab grew with total units: {stats:?}"
        );
        assert_eq!(stats.live_units, sim.queued_units());
    }

    #[test]
    fn queue_depth_sampling_is_off_by_default_and_per_channel_when_on() {
        let t = gen::line(3, xrp(10));
        let txns = vec![txn(0, 0, 2, xrp(9))];
        let mut cfg = qconfig(QueueConfig {
            max_queue_delay: SimDuration::from_secs(3_600),
            marking_delay: SimDuration::from_secs(3_000),
            ..QueueConfig::default()
        });
        cfg.horizon = SimDuration::from_secs(3);
        cfg.deadline = None;
        let (r, _) = run_queue_sim(gen::line(3, xrp(10)), txns.clone(), cfg.clone());
        assert!(
            r.queue_depth_series().is_empty(),
            "sampling must cost nothing when off"
        );
        cfg.obs.sampler.queue_depths = true;
        let (r, sim) = run_queue_sim(t, txns, cfg);
        assert!(!r.queue_depth_series().is_empty());
        for sample in r.queue_depth_series() {
            assert_eq!(sample.len(), sim.topology().channel_count());
        }
        // The stuck remainder sits in channel 1's queue at the horizon.
        let last = r
            .queue_depth_series()
            .last()
            .expect("queue-depth series is non-empty");
        assert_eq!(last.iter().sum::<u32>() as usize, sim.queued_units());
    }

    #[test]
    fn drop_reasons_partition_the_drop_counter() {
        // Timeouts: the forward direction never refills, so queued units
        // hit max_queue_delay; the payment then expires at its deadline
        // with the remainder undelivered.
        let t = gen::line(2, xrp(10));
        let txns = vec![txn(0, 0, 1, xrp(9)), txn(100, 0, 1, xrp(9))];
        let mut cfg = qconfig(QueueConfig {
            max_queue_delay: SimDuration::from_secs(1),
            marking_delay: SimDuration::from_millis(500),
            max_queue_units: 4,
            ..QueueConfig::default()
        });
        cfg.deadline = Some(SimDuration::from_secs(3));
        let (r, _) = run_queue_sim(t, txns, cfg);
        assert!(r.units_dropped > 0, "scenario must produce drops");
        assert_eq!(
            r.drops_by_reason.total(),
            r.units_dropped,
            "every dropped unit must carry exactly one reason: {:?}",
            r.drops_by_reason
        );
        assert!(
            r.drops_by_reason.queue_timeout > 0 || r.drops_by_reason.queue_overflow > 0,
            "stuck queue must time out or overflow: {:?}",
            r.drops_by_reason
        );
        assert_eq!(r.drops_by_reason.channel_closed, 0, "no churn here");
    }

    #[test]
    fn trace_capture_records_the_unit_lifecycle() {
        let t = gen::line(3, xrp(10));
        let txns = vec![txn(0, 0, 2, xrp(3))];
        let mut cfg = qconfig(QueueConfig::default());
        cfg.obs.trace = true;
        cfg.obs.profile = true;
        let mut sim = Simulation::new(t, Workload { txns }, Box::new(Direct), cfg)
            .expect("test topology and config are valid");
        let r = sim.run();
        assert_eq!(r.completed_payments, 1);
        assert!(r.profile.enabled);
        assert!(r.profile.total_ns() > 0);
        let trace = sim.take_trace().expect("tracing was enabled");
        let jsonl = trace.to_jsonl();
        for ev in [
            "arrival", "route", "inject", "forward", "deliver", "ack", "complete", "path",
        ] {
            assert!(
                jsonl.contains(&format!("\"ev\":\"{ev}\"")),
                "missing {ev} in:\n{jsonl}"
            );
        }
        // Exactly one arrival and one completion for the single payment.
        assert_eq!(jsonl.matches("\"ev\":\"arrival\"").count(), 1);
        assert_eq!(jsonl.matches("\"ev\":\"complete\"").count(), 1);
        // Second take returns nothing (the sink moved out).
        assert!(sim.take_trace().is_none());
    }
}

#[cfg(test)]
mod churn_tests {
    use super::*;
    use crate::config::QueueConfig;
    use crate::workload::{TxnSpec, Workload};
    use spider_topology::gen;
    use spider_types::SimDuration;

    struct Direct;
    impl Router for Direct {
        fn name(&self) -> &'static str {
            "direct"
        }
        fn route(
            &mut self,
            req: &RouteRequest,
            view: &NetworkView<'_>,
        ) -> Vec<crate::router::RouteProposal> {
            match view.topo.shortest_path(req.src, req.dst) {
                Some(path) => vec![crate::router::RouteProposal {
                    path: view.intern(&path),
                    amount: req.remaining,
                }],
                None => Vec::new(),
            }
        }
    }

    /// `(closed, opened)` channel lists of one recorded notification.
    type RecordedUpdate = (Vec<ChannelId>, Vec<ChannelId>);

    /// Records topology-change notifications for assertions.
    struct ChangeRecorder {
        updates: std::rc::Rc<std::cell::RefCell<Vec<RecordedUpdate>>>,
    }
    impl Router for ChangeRecorder {
        fn name(&self) -> &'static str {
            "change-recorder"
        }
        fn route(
            &mut self,
            req: &RouteRequest,
            view: &NetworkView<'_>,
        ) -> Vec<crate::router::RouteProposal> {
            match view.topo.shortest_path(req.src, req.dst) {
                Some(path) => vec![crate::router::RouteProposal {
                    path: view.intern(&path),
                    amount: req.remaining,
                }],
                None => Vec::new(),
            }
        }
        fn on_topology_change(&mut self, update: &TopologyUpdate, _view: &NetworkView<'_>) {
            self.updates
                .borrow_mut()
                .push((update.closed.clone(), update.opened.clone()));
        }
    }

    fn xrp(x: u64) -> Amount {
        Amount::from_xrp(x)
    }

    fn txn(t_ms: u64, src: u32, dst: u32, amount: Amount) -> TxnSpec {
        TxnSpec {
            time: SimTime::from_micros(t_ms * 1000),
            src: NodeId(src),
            dst: NodeId(dst),
            amount,
        }
    }

    fn close_at(t_ms: u64, c: u32) -> TopologyEvent {
        TopologyEvent {
            at: SimTime::from_micros(t_ms * 1000),
            change: TopologyChange::ChannelClose {
                channel: ChannelId(c),
            },
        }
    }

    fn open_at(t_ms: u64, c: u32) -> TopologyEvent {
        TopologyEvent {
            at: SimTime::from_micros(t_ms * 1000),
            change: TopologyChange::ChannelOpen {
                channel: ChannelId(c),
            },
        }
    }

    #[test]
    fn lockstep_close_fails_back_inflight_and_blocks_traffic() {
        // Payment locks at t=100ms; the only channel closes at t=300ms,
        // before the 500ms settle: the unit must refund, the payment
        // expire at its deadline, and conservation hold throughout.
        let t = gen::line(2, xrp(10));
        let mut cfg = SimConfig {
            horizon: SimDuration::from_secs(10),
            deadline: Some(SimDuration::from_secs(2)),
            ..SimConfig::default()
        };
        cfg.mtu = xrp(5);
        let mut sim = Simulation::new(
            t,
            Workload {
                txns: vec![txn(100, 0, 1, xrp(3))],
            },
            Box::new(Direct),
            cfg,
        )
        .expect("test topology and config are valid");
        sim.set_topology_events(vec![close_at(300, 0)]);
        let r = sim.run();
        sim.check_conservation();
        assert_eq!(r.completed_payments, 0);
        assert_eq!(r.delivered_volume, Amount::ZERO);
        assert_eq!(r.topology_events, 1);
        assert_eq!(r.churn_channels_closed, 1);
        assert_eq!(r.units_dropped_churn, 1);
        assert_eq!(r.drops_by_reason.channel_closed, 1);
        assert_eq!(r.drops_by_reason.total(), r.units_dropped);
        assert_eq!(r.payments_failed_churn, 1);
        assert!(sim.channel_states()[0].is_closed());
        assert_eq!(
            sim.channel_states()[0].inflight(Direction::Forward),
            Amount::ZERO,
            "failback refunded the lock"
        );
    }

    #[test]
    fn reopen_restores_service_and_flap_is_counted() {
        // Close 400ms..1s; a payment arriving at 500ms retries from the
        // pending queue and completes after the reopen.
        let t = gen::line(2, xrp(10));
        let cfg = SimConfig {
            horizon: SimDuration::from_secs(10),
            deadline: Some(SimDuration::from_secs(5)),
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(
            t,
            Workload {
                txns: vec![txn(500, 0, 1, xrp(2))],
            },
            Box::new(Direct),
            cfg,
        )
        .expect("test topology and config are valid");
        sim.set_topology_events(vec![close_at(400, 0), open_at(1_000, 0)]);
        let r = sim.run();
        sim.check_conservation();
        assert_eq!(r.completed_payments, 1, "service resumes after reopen");
        assert!(r.retries > 0, "the closed window forces retries");
        assert_eq!(r.topology_events, 2);
        assert_eq!(r.churn_channels_opened, 1);
        assert!(!sim.channel_states()[0].is_closed());
    }

    #[test]
    fn queueing_close_drops_queued_and_traveling_units() {
        // Wide first hop, narrow second: units queue at hop 1 holding
        // hop-0 locks; closing channel 1 mid-run must fail them all back.
        let mut b = Topology::builder(3);
        b.channel(NodeId(0), NodeId(1), xrp(20))
            .expect("channel endpoints are distinct known nodes");
        b.channel(NodeId(1), NodeId(2), xrp(10))
            .expect("channel endpoints are distinct known nodes");
        let t = b.build();
        let cfg = SimConfig {
            horizon: SimDuration::from_secs(5),
            mtu: xrp(1),
            deadline: None,
            queueing: crate::config::QueueingMode::PerChannelFifo(QueueConfig {
                max_queue_delay: SimDuration::from_secs(3_600),
                marking_delay: SimDuration::from_secs(3_000),
                ..QueueConfig::default()
            }),
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(
            t,
            Workload {
                txns: vec![txn(0, 0, 2, xrp(8))],
            },
            Box::new(Direct),
            cfg,
        )
        .expect("test topology and config are valid");
        sim.set_topology_events(vec![close_at(700, 1)]);
        let r = sim.run();
        sim.check_conservation();
        assert_eq!(r.delivered_volume, xrp(5), "only pre-close units settle");
        assert!(r.units_dropped_churn > 0, "queued units failed back");
        assert_eq!(sim.queued_units(), 0, "the closed channel's queue drained");
        for c in sim.channel_states() {
            assert_eq!(c.inflight(Direction::Forward), Amount::ZERO);
            assert_eq!(c.inflight(Direction::Backward), Amount::ZERO);
        }
        // Reason accounting under churn: close-drops carry ChannelClosed
        // and the per-reason counts still partition the total.
        assert_eq!(r.drops_by_reason.total(), r.units_dropped);
        assert_eq!(
            r.drops_by_reason.channel_closed, r.units_dropped_churn,
            "churn drops all carry the ChannelClosed reason"
        );
    }

    #[test]
    fn resize_event_grows_capacity_midrun() {
        let t = gen::line(2, xrp(10));
        let cfg = SimConfig {
            horizon: SimDuration::from_secs(10),
            deadline: Some(SimDuration::from_secs(6)),
            ..SimConfig::default()
        };
        // 8 XRP wants to cross a 5-XRP side; the resize to 30 XRP at t=1s
        // deposits enough for the remainder to complete on retry.
        let mut sim = Simulation::new(
            t,
            Workload {
                txns: vec![txn(0, 0, 1, xrp(8))],
            },
            Box::new(Direct),
            cfg,
        )
        .expect("test topology and config are valid");
        sim.set_topology_events(vec![TopologyEvent {
            at: SimTime::from_secs(1),
            change: TopologyChange::ChannelResize {
                channel: ChannelId(0),
                new_capacity: xrp(30),
            },
        }]);
        let r = sim.run();
        sim.check_conservation();
        assert_eq!(r.completed_payments, 1);
        assert_eq!(r.churn_channels_resized, 1);
        assert_eq!(sim.channel_states()[0].capacity(), xrp(30));
    }

    #[test]
    fn node_leave_closes_all_incident_channels_and_join_reopens() {
        // Line 0-1-2: node 1 leaving severs everything.
        let t = gen::line(3, xrp(10));
        let updates = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let router = ChangeRecorder {
            updates: std::rc::Rc::clone(&updates),
        };
        let cfg = SimConfig {
            horizon: SimDuration::from_secs(8),
            deadline: Some(SimDuration::from_secs(6)),
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(
            t,
            Workload {
                txns: vec![txn(1_500, 0, 2, xrp(2))],
            },
            Box::new(router),
            cfg,
        )
        .expect("test topology and config are valid");
        sim.set_topology_events(vec![
            TopologyEvent {
                at: SimTime::from_secs(1),
                change: TopologyChange::NodeLeave { node: NodeId(1) },
            },
            TopologyEvent {
                at: SimTime::from_secs(3),
                change: TopologyChange::NodeJoin { node: NodeId(1) },
            },
        ]);
        let r = sim.run();
        sim.check_conservation();
        assert_eq!(r.completed_payments, 1, "completes after the rejoin");
        assert_eq!(r.churn_channels_closed, 2);
        assert_eq!(r.churn_channels_opened, 2);
        let got = updates.borrow();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0.len(), 2, "leave closed both incident channels");
        assert_eq!(got[1].1.len(), 2, "join reopened both");
    }

    #[test]
    fn initial_closes_apply_before_prewarm_without_counting_as_events() {
        // Channel closed at t=0 (a mid-run spawn): traffic fails until the
        // open event, and the t=0 slice is not a mid-run topology event.
        let t = gen::line(2, xrp(10));
        let cfg = SimConfig {
            horizon: SimDuration::from_secs(10),
            deadline: Some(SimDuration::from_secs(4)),
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(
            t,
            Workload {
                txns: vec![txn(100, 0, 1, xrp(2))],
            },
            Box::new(Direct),
            cfg,
        )
        .expect("test topology and config are valid");
        sim.set_topology_events(vec![close_at(0, 0), open_at(2_000, 0)]);
        let r = sim.run();
        sim.check_conservation();
        assert_eq!(r.completed_payments, 1);
        assert_eq!(r.topology_events, 1, "only the open is a mid-run event");
        assert_eq!(r.churn_channels_closed, 1);
        assert_eq!(r.churn_channels_opened, 1);
    }

    #[test]
    fn churn_close_cost_is_indexed_not_slab_scan() {
        // Thousands of pending settles spread across the ISP graph, three
        // mid-run closes: handling them must examine only the closed
        // channels' index entries (plus amortized compaction), far below
        // the old cost of walking the whole event slab once per close.
        let t = gen::isp_topology(xrp(100_000));
        let mut rng = spider_types::DetRng::new(23);
        let w = Workload::generate(
            32,
            &crate::workload::WorkloadConfig::small(4_000, 2_000.0),
            &mut rng,
        );
        let mut cfg = SimConfig {
            horizon: SimDuration::from_secs(10),
            ..SimConfig::default()
        };
        cfg.mtu = xrp(1); // 10 units per payment → many pending settles
        let mut sim = Simulation::new(t, w, Box::new(Direct), cfg)
            .expect("test topology and config are valid");
        sim.set_topology_events(vec![close_at(500, 3), close_at(700, 11), close_at(900, 27)]);
        let r = sim.run();
        sim.check_conservation();
        let stats = sim.slab_stats();
        assert_eq!(r.topology_events, 3);
        assert!(
            stats.events_scheduled > 20_000,
            "needs a busy calendar: {stats:?}"
        );
        // What the pre-index engine paid: one full event-slab walk per
        // close. The indexed cost must be well below it — and nowhere
        // near the O(total events scheduled) the pre-recycling engine
        // paid with every arrival pre-seeded.
        let slab_scan_cost = 3 * stats.event_slots as u64;
        assert!(
            stats.churn_scan_steps * 4 < slab_scan_cost,
            "indexed close cost {} not ≪ slab scan cost {slab_scan_cost}: {stats:?}",
            stats.churn_scan_steps,
        );
        assert!(
            stats.churn_scan_steps < stats.events_scheduled / 8,
            "close cost grew with total events: {stats:?}"
        );
    }

    #[test]
    fn churn_runs_are_deterministic() {
        let mut rng = spider_types::DetRng::new(17);
        let w = Workload::generate(
            32,
            &crate::workload::WorkloadConfig::small(1_500, 400.0),
            &mut rng,
        );
        let events = vec![
            close_at(500, 3),
            close_at(900, 20),
            open_at(1_400, 3),
            TopologyEvent {
                at: SimTime::from_secs(2),
                change: TopologyChange::NodeLeave { node: NodeId(5) },
            },
            open_at(2_600, 20),
            TopologyEvent {
                at: SimTime::from_secs(3),
                change: TopologyChange::NodeJoin { node: NodeId(5) },
            },
        ];
        let run = |w: Workload| {
            let mut cfg = SimConfig {
                horizon: SimDuration::from_secs(6),
                ..SimConfig::default()
            };
            cfg.mtu = xrp(5);
            let mut sim = Simulation::new(gen::isp_topology(xrp(400)), w, Box::new(Direct), cfg)
                .expect("test topology and config are valid");
            sim.set_topology_events(events.clone());
            let r = sim.run();
            sim.check_conservation();
            r
        };
        let r1 = run(w.clone());
        let r2 = run(w);
        assert_eq!(r1.completed_payments, r2.completed_payments);
        assert_eq!(r1.delivered_volume, r2.delivered_volume);
        assert_eq!(r1.units_dropped_churn, r2.units_dropped_churn);
        assert_eq!(r1.payments_failed_churn, r2.payments_failed_churn);
        assert_eq!(r1.topology_event_times_s, r2.topology_event_times_s);
        assert!(r1.units_dropped_churn > 0 || r1.retries > 0);
    }
}

#[cfg(test)]
mod rebalancing_tests {
    use super::*;
    use crate::config::RebalancingConfig;
    use crate::workload::{TxnSpec, Workload};
    use spider_topology::gen;

    struct Direct;
    impl Router for Direct {
        fn name(&self) -> &'static str {
            "direct"
        }
        fn route(
            &mut self,
            req: &RouteRequest,
            view: &NetworkView<'_>,
        ) -> Vec<crate::router::RouteProposal> {
            match view.topo.shortest_path(req.src, req.dst) {
                Some(path) => vec![crate::router::RouteProposal {
                    path: view.intern(&path),
                    amount: req.remaining,
                }],
                None => Vec::new(),
            }
        }
    }

    fn xrp(x: u64) -> Amount {
        Amount::from_xrp(x)
    }

    /// One-way traffic that exceeds the channel's one-side funds: without
    /// rebalancing it stalls at 5 XRP; with rebalancing the chain refills
    /// the sender side and everything ships.
    fn one_way_workload() -> Workload {
        Workload {
            txns: (0..10)
                .map(|i| TxnSpec {
                    time: SimTime::from_secs(1 + 4 * i),
                    src: NodeId(0),
                    dst: NodeId(1),
                    amount: xrp(1),
                })
                .collect(),
        }
    }

    fn config(rebalancing: Option<RebalancingConfig>) -> SimConfig {
        SimConfig {
            horizon: spider_types::SimDuration::from_secs(60),
            deadline: Some(spider_types::SimDuration::from_secs(30)),
            rebalancing,
            ..SimConfig::default()
        }
    }

    #[test]
    fn without_rebalancing_dag_traffic_stalls() {
        let t = gen::line(2, xrp(10)); // 5 XRP per side
        let mut sim = Simulation::new(t, one_way_workload(), Box::new(Direct), config(None))
            .expect("test topology and config are valid");
        let r = sim.run();
        sim.check_conservation();
        assert_eq!(r.delivered_volume, xrp(5));
        assert_eq!(r.rebalance_ops, 0);
        assert_eq!(r.onchain_deposited, Amount::ZERO);
    }

    #[test]
    fn rebalancing_lifts_dag_traffic() {
        let t = gen::line(2, xrp(10));
        let rb = RebalancingConfig {
            check_interval: spider_types::SimDuration::from_millis(500),
            trigger_fraction: 0.2,
            target_fraction: 0.5,
            confirmation_delay: spider_types::SimDuration::from_secs(1),
        };
        let mut sim = Simulation::new(t, one_way_workload(), Box::new(Direct), config(Some(rb)))
            .expect("test topology and config are valid");
        let r = sim.run();
        sim.check_conservation();
        assert_eq!(r.delivered_volume, xrp(10), "all one-way traffic ships");
        assert!(r.rebalance_ops > 0);
        assert!(
            r.onchain_deposited >= xrp(4),
            "deposited {}",
            r.onchain_deposited
        );
    }

    #[test]
    fn deposits_grow_capacity_consistently() {
        let t = gen::line(2, xrp(10));
        let rb = RebalancingConfig::default();
        let mut sim = Simulation::new(
            t,
            one_way_workload(),
            Box::new(Direct),
            config(Some(RebalancingConfig {
                confirmation_delay: spider_types::SimDuration::from_secs(1),
                trigger_fraction: 0.3,
                ..rb
            })),
        )
        .expect("test topology and config are valid");
        let r = sim.run();
        sim.check_conservation();
        let ch = &sim.channel_states()[0];
        assert_eq!(ch.capacity(), xrp(10) + r.onchain_deposited);
    }

    #[test]
    fn no_duplicate_inflight_deposits() {
        // Trigger instantly but confirm slowly: only one deposit per
        // direction may be pending at a time.
        let t = gen::line(2, xrp(10));
        let rb = RebalancingConfig {
            check_interval: spider_types::SimDuration::from_millis(100),
            trigger_fraction: 0.45,
            target_fraction: 0.5,
            confirmation_delay: spider_types::SimDuration::from_secs(50),
        };
        let mut sim = Simulation::new(t, one_way_workload(), Box::new(Direct), config(Some(rb)))
            .expect("test topology and config are valid");
        let r = sim.run();
        sim.check_conservation();
        // At most one settle per direction fits in the horizon.
        assert!(r.rebalance_ops <= 2, "ops {}", r.rebalance_ops);
    }

    #[test]
    fn invalid_rebalancing_config_rejected() {
        let cfg = SimConfig {
            rebalancing: Some(RebalancingConfig {
                trigger_fraction: 0.9,
                target_fraction: 0.5,
                ..RebalancingConfig::default()
            }),
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
