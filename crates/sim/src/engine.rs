//! The discrete-event simulation engine.
//!
//! Event model (matching §6.1's simulator):
//!
//! * **Arrival** — a transaction arrives and is routed immediately; funds
//!   are locked along every hop of each accepted `(path, amount)` unit.
//! * **Settle** — Δ seconds after locking, the hash-lock key has propagated
//!   and each hop's funds move to the downstream party. If the payment's
//!   deadline has passed in the meantime, the sender withholds the key and
//!   the hops are refunded instead (§4.1's non-atomic cancellation).
//! * **Poll** — every `poll_interval`, incomplete non-atomic payments are
//!   re-attempted in scheduling-policy order (SRPT by default).
//!
//! Ties in event time are broken by insertion sequence, so runs are fully
//! deterministic.

use crate::channel::ChannelState;
use crate::config::{SchedulingPolicy, SimConfig};
use crate::metrics::{MetricsCollector, SimReport};
use crate::router::{NetworkView, RouteRequest, Router, UnitOutcome};
use crate::workload::Workload;
use spider_topology::Topology;
use spider_types::{Amount, ChannelId, Direction, NodeId, PaymentId, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Internal payment bookkeeping.
#[derive(Debug, Clone)]
struct PaymentState {
    src: NodeId,
    dst: NodeId,
    total: Amount,
    delivered: Amount,
    inflight: Amount,
    arrival: SimTime,
    deadline: SimTime,
    attempts: u32,
    completed: bool,
    /// Deadline passed with work outstanding; remainder canceled.
    expired: bool,
}

impl PaymentState {
    fn unassigned(&self) -> Amount {
        self.total - self.delivered - self.inflight
    }
    fn active(&self) -> bool {
        !self.completed && !self.expired && !self.unassigned().is_zero()
    }
}

#[derive(Debug)]
enum EventKind {
    Arrival(usize),
    Settle { payment: usize, amount: Amount, hops: Vec<(ChannelId, Direction)> },
    Poll,
    /// Periodic scan for depleted channel directions (on-chain
    /// rebalancing enabled).
    RebalanceScan,
    /// An on-chain deposit confirms after the blockchain delay.
    RebalanceSettle { channel: ChannelId, dir: Direction, amount: Amount },
}

/// The simulator.
pub struct Simulation {
    topo: Topology,
    channels: Vec<ChannelState>,
    config: SimConfig,
    router: Box<dyn Router>,
    workload: Workload,
    payments: Vec<PaymentState>,
    pending: Vec<usize>,
    events: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    event_store: Vec<Option<EventKind>>,
    seq: u64,
    now: SimTime,
    metrics: MetricsCollector,
    /// Per (channel, direction): an on-chain deposit is in flight, so
    /// don't schedule another.
    rebalance_pending: Vec<[bool; 2]>,
    /// Next time an imbalance sample is due (once per simulated second).
    next_imbalance_sample: SimTime,
}

impl Simulation {
    /// Builds a simulation. Channels start equally split
    /// (paper §6.2). Fails on invalid configuration.
    pub fn new(
        topo: Topology,
        workload: Workload,
        router: Box<dyn Router>,
        config: SimConfig,
    ) -> spider_types::Result<Self> {
        config.validate()?;
        let channels: Vec<ChannelState> =
            topo.channels().map(|(_, c)| ChannelState::split_equally(c.capacity)).collect();
        let rebalance_pending = vec![[false; 2]; channels.len()];
        Ok(Simulation {
            topo,
            channels,
            config,
            router,
            workload,
            payments: Vec::new(),
            pending: Vec::new(),
            events: BinaryHeap::new(),
            event_store: Vec::new(),
            seq: 0,
            now: SimTime::ZERO,
            metrics: MetricsCollector::new(),
            rebalance_pending,
            next_imbalance_sample: SimTime::ZERO,
        })
    }

    fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let id = self.event_store.len();
        self.event_store.push(Some(kind));
        self.events.push(Reverse((at, self.seq, id)));
        self.seq += 1;
    }

    /// Runs to the horizon and produces the report. The simulation object
    /// remains inspectable afterwards (channel states, conservation).
    pub fn run(&mut self) -> SimReport {
        let horizon = SimTime::ZERO + self.config.horizon;
        // Seed events: arrivals within the horizon, plus the first poll.
        for i in 0..self.workload.txns.len() {
            let t = self.workload.txns[i].time;
            if t <= horizon {
                self.schedule(t, EventKind::Arrival(i));
            }
        }
        self.schedule(SimTime::ZERO + self.config.poll_interval, EventKind::Poll);
        if let Some(rb) = &self.config.rebalancing {
            self.schedule(SimTime::ZERO + rb.check_interval, EventKind::RebalanceScan);
        }

        {
            let view = NetworkView { topo: &self.topo, channels: &self.channels, now: self.now };
            self.router.initialize(&view);
        }

        while let Some(Reverse((t, _, id))) = self.events.pop() {
            if t > horizon {
                break;
            }
            self.now = t;
            // Canceled events (atomic rollback) leave a `None` behind.
            let Some(kind) = self.event_store[id].take() else { continue };
            match kind {
                EventKind::Arrival(i) => self.on_arrival(i),
                EventKind::Settle { payment, amount, hops } => {
                    self.on_settle(payment, amount, &hops)
                }
                EventKind::Poll => {
                    self.on_poll();
                    let next = self.now + self.config.poll_interval;
                    if next <= horizon {
                        self.schedule(next, EventKind::Poll);
                    }
                }
                EventKind::RebalanceScan => {
                    self.on_rebalance_scan();
                    if let Some(rb) = &self.config.rebalancing {
                        let next = self.now + rb.check_interval;
                        if next <= horizon {
                            self.schedule(next, EventKind::RebalanceScan);
                        }
                    }
                }
                EventKind::RebalanceSettle { channel, dir, amount } => {
                    self.channels[channel.index()].deposit(dir, amount);
                    self.rebalance_pending[channel.index()][dir.index()] = false;
                    self.metrics.rebalanced(amount);
                }
            }
        }
        std::mem::take(&mut self.metrics).finish(self.router.name(), self.config.horizon)
    }

    /// Channel states (for inspection after a run).
    pub fn channel_states(&self) -> &[ChannelState] {
        &self.channels
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    fn on_arrival(&mut self, txn_index: usize) {
        let spec = self.workload.txns[txn_index];
        let deadline = match self.config.deadline {
            Some(d) => spec.time + d,
            None => SimTime::FAR_FUTURE,
        };
        let pid = self.payments.len();
        self.payments.push(PaymentState {
            src: spec.src,
            dst: spec.dst,
            total: spec.amount,
            delivered: Amount::ZERO,
            inflight: Amount::ZERO,
            arrival: spec.time,
            deadline,
            attempts: 0,
            completed: false,
            expired: false,
        });
        self.metrics.payment_arrived(spec.amount);
        self.attempt_payment(pid);
        // Queue the remainder for retries (non-atomic only).
        if !self.router.atomic() && self.payments[pid].active() {
            self.pending.push(pid);
        }
    }

    /// One routing attempt for the payment's currently unassigned amount.
    fn attempt_payment(&mut self, pid: usize) {
        let p = &self.payments[pid];
        if p.completed || p.expired {
            return;
        }
        let unassigned = p.unassigned();
        if unassigned.is_zero() {
            return;
        }
        let req = RouteRequest {
            payment: PaymentId(pid as u64),
            src: p.src,
            dst: p.dst,
            remaining: unassigned,
            total: p.total,
            mtu: self.config.mtu,
            attempt: p.attempts,
        };
        self.payments[pid].attempts += 1;
        let proposals = {
            let view = NetworkView { topo: &self.topo, channels: &self.channels, now: self.now };
            self.router.route(&req, &view)
        };
        let atomic = self.router.atomic();
        let mut budget = unassigned;
        // Units locked in this attempt: (amount, hops, settle event id),
        // kept for atomic rollback.
        let mut locked_units: Vec<(Amount, Vec<(ChannelId, Direction)>, usize)> = Vec::new();
        let mut aborted = false;

        'proposals: for prop in proposals.into_iter().take(self.config.max_proposals_per_poll) {
            if budget.is_zero() {
                break;
            }
            let Ok(hops) = self.topo.path_channels(&prop.path) else {
                // Router produced an off-topology path; treat as failure.
                self.metrics.unit_lock(prop.path.len().saturating_sub(1), false);
                if atomic {
                    aborted = true;
                    break 'proposals;
                }
                continue;
            };
            if hops.is_empty() || prop.path[0] != self.payments[pid].src {
                continue;
            }
            let want = prop.amount.min(budget);
            for unit in want.split_mtu(self.config.mtu) {
                match self.try_lock_unit(pid, unit, &prop.path, &hops) {
                    Some(event_id) => {
                        locked_units.push((unit, hops.clone(), event_id));
                        budget -= unit;
                    }
                    None if atomic => {
                        aborted = true;
                        break 'proposals;
                    }
                    None => {}
                }
            }
        }

        if atomic && (aborted || !budget.is_zero()) {
            // All-or-nothing: roll back every unit locked in this attempt
            // and cancel its scheduled settlement.
            for (amount, hops, event_id) in locked_units {
                self.event_store[event_id] = None;
                for (c, dir) in hops {
                    self.channels[c.index()].refund(dir, amount);
                }
                self.payments[pid].inflight -= amount;
            }
            self.payments[pid].expired = true;
        }
    }

    /// Attempts to lock one unit along `hops`; on success schedules its
    /// settlement (returning the settle event's id) and updates payment
    /// accounting.
    fn try_lock_unit(
        &mut self,
        pid: usize,
        amount: Amount,
        path: &[NodeId],
        hops: &[(ChannelId, Direction)],
    ) -> Option<usize> {
        // Lock hop by hop; roll back on the first failure.
        let mut locked = 0;
        let mut ok = true;
        for (i, &(c, dir)) in hops.iter().enumerate() {
            if self.channels[c.index()].lock(dir, amount) {
                locked = i + 1;
            } else {
                ok = false;
                break;
            }
        }
        if !ok {
            for &(c, dir) in &hops[..locked] {
                self.channels[c.index()].refund(dir, amount);
            }
        }
        self.metrics.unit_lock(hops.len(), ok);
        {
            let outcome = UnitOutcome {
                payment: PaymentId(pid as u64),
                path: path.to_vec(),
                amount,
                locked: ok,
            };
            let view = NetworkView { topo: &self.topo, channels: &self.channels, now: self.now };
            self.router.on_unit_outcome(&outcome, &view);
        }
        if ok {
            self.payments[pid].inflight += amount;
            let event_id = self.event_store.len();
            self.schedule(
                self.now + self.config.confirmation_delay,
                EventKind::Settle { payment: pid, amount, hops: hops.to_vec() },
            );
            Some(event_id)
        } else {
            None
        }
    }

    fn on_settle(&mut self, pid: usize, amount: Amount, hops: &[(ChannelId, Direction)]) {
        let expired_rollback = {
            let p = &self.payments[pid];
            // Atomic rollback flag or key withheld past the deadline.
            p.expired || self.now > p.deadline
        };
        if expired_rollback {
            for &(c, dir) in hops {
                self.channels[c.index()].refund(dir, amount);
            }
            let p = &mut self.payments[pid];
            p.inflight -= amount;
            p.expired = true;
            return;
        }
        for &(c, dir) in hops {
            self.channels[c.index()].settle(dir, amount);
        }
        let p = &mut self.payments[pid];
        p.inflight -= amount;
        p.delivered += amount;
        self.metrics.unit_settled(amount, self.now);
        if p.delivered == p.total {
            p.completed = true;
            let latency = self.now - p.arrival;
            self.metrics.payment_completed(latency);
        }
    }

    fn on_poll(&mut self) {
        // Imbalance telemetry, once per simulated second.
        if self.now >= self.next_imbalance_sample {
            let mut sum = 0.0;
            for ch in &self.channels {
                let cap = ch.capacity().drops().max(1) as f64;
                sum += ch.imbalance().drops().unsigned_abs() as f64 / cap;
            }
            let n = self.channels.len().max(1) as f64;
            self.metrics.imbalance_sample(sum / n);
            self.next_imbalance_sample = self.now + spider_types::SimDuration::from_secs(1);
        }
        // Expire overdue payments and drop finished ones from the queue.
        let now = self.now;
        for &pid in &self.pending {
            let p = &mut self.payments[pid];
            if !p.completed && now > p.deadline && !p.unassigned().is_zero() {
                p.expired = true;
            }
        }
        self.pending.retain(|&pid| self.payments[pid].active());
        // Scheduling order.
        let policy = self.config.scheduling;
        let payments = &self.payments;
        self.pending.sort_by(|&a, &b| {
            let (pa, pb) = (&payments[a], &payments[b]);
            match policy {
                SchedulingPolicy::Srpt => pa
                    .unassigned()
                    .cmp(&pb.unassigned())
                    .then(pa.arrival.cmp(&pb.arrival))
                    .then(a.cmp(&b)),
                SchedulingPolicy::Fifo => pa.arrival.cmp(&pb.arrival).then(a.cmp(&b)),
                SchedulingPolicy::Lifo => pb.arrival.cmp(&pa.arrival).then(a.cmp(&b)),
                SchedulingPolicy::EarliestDeadline => {
                    pa.deadline.cmp(&pb.deadline).then(a.cmp(&b))
                }
                SchedulingPolicy::LargestRemaining => pb
                    .unassigned()
                    .cmp(&pa.unassigned())
                    .then(pa.arrival.cmp(&pb.arrival))
                    .then(a.cmp(&b)),
            }
        });
        let order: Vec<usize> = self.pending.clone();
        for pid in order {
            if self.payments[pid].active() {
                self.metrics.retry();
                self.attempt_payment(pid);
            }
        }
        self.pending.retain(|&pid| self.payments[pid].active());
    }

    /// Periodic depletion scan (§5.2.3): any channel direction whose
    /// available balance fell below the trigger gets an on-chain top-up
    /// back to the target fraction, arriving after the blockchain delay.
    fn on_rebalance_scan(&mut self) {
        let Some(rb) = self.config.rebalancing.clone() else { return };
        for i in 0..self.channels.len() {
            let capacity = self.channels[i].capacity();
            for dir in [Direction::Forward, Direction::Backward] {
                if self.rebalance_pending[i][dir.index()] {
                    continue;
                }
                let avail = self.channels[i].available(dir);
                if avail < capacity.mul_f64(rb.trigger_fraction) {
                    let target = capacity.mul_f64(rb.target_fraction);
                    let amount = target.saturating_sub(avail);
                    if amount.is_zero() {
                        continue;
                    }
                    self.rebalance_pending[i][dir.index()] = true;
                    self.schedule(
                        self.now + rb.confirmation_delay,
                        EventKind::RebalanceSettle {
                            channel: ChannelId::from_index(i),
                            dir,
                            amount,
                        },
                    );
                }
            }
        }
    }

    /// Verifies fund conservation on every channel (available + in-flight
    /// equals escrowed capacity). Panics on violation.
    pub fn check_conservation(&self) {
        for (i, ch) in self.channels.iter().enumerate() {
            assert_eq!(
                ch.total(),
                ch.capacity(),
                "channel {i} violates conservation"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::TxnSpec;
    use spider_topology::gen;

    /// Test router: always proposes the single BFS shortest path for the
    /// full remaining amount.
    struct DirectRouter {
        atomic: bool,
    }

    impl Router for DirectRouter {
        fn name(&self) -> &'static str {
            "direct-test"
        }
        fn route(&mut self, req: &RouteRequest, view: &NetworkView<'_>) -> Vec<crate::router::RouteProposal> {
            match view.topo.shortest_path(req.src, req.dst) {
                Some(path) => vec![crate::router::RouteProposal { path, amount: req.remaining }],
                None => Vec::new(),
            }
        }
        fn atomic(&self) -> bool {
            self.atomic
        }
    }

    fn xrp(x: u64) -> Amount {
        Amount::from_xrp(x)
    }

    fn txn(t_ms: u64, src: u32, dst: u32, amount: Amount) -> TxnSpec {
        TxnSpec {
            time: SimTime::from_micros(t_ms * 1000),
            src: NodeId(src),
            dst: NodeId(dst),
            amount,
        }
    }

    fn base_config() -> SimConfig {
        SimConfig {
            horizon: spider_types::SimDuration::from_secs(30),
            ..SimConfig::default()
        }
    }

    fn run_sim(
        topo: Topology,
        txns: Vec<TxnSpec>,
        atomic: bool,
        config: SimConfig,
    ) -> (SimReport, Simulation) {
        let mut sim = Simulation::new(
            topo,
            Workload { txns },
            Box::new(DirectRouter { atomic }),
            config,
        )
        .unwrap();
        let report = sim.run();
        sim.check_conservation();
        (report, sim)
    }

    #[test]
    fn single_payment_direct_channel() {
        let t = gen::line(2, xrp(10));
        let (r, _) = run_sim(t, vec![txn(100, 0, 1, xrp(3))], false, base_config());
        assert_eq!(r.attempted_payments, 1);
        assert_eq!(r.completed_payments, 1);
        assert_eq!(r.success_ratio(), 1.0);
        assert_eq!(r.success_volume(), 1.0);
        // Latency = confirmation delay.
        assert!((r.avg_completion_time().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn payment_larger_than_balance_fails_atomically() {
        // Channel 10 XRP → 5 XRP per side; an 8 XRP atomic payment fails.
        let t = gen::line(2, xrp(10));
        let (r, sim) = run_sim(t, vec![txn(100, 0, 1, xrp(8))], true, base_config());
        assert_eq!(r.completed_payments, 0);
        assert_eq!(r.delivered_volume, Amount::ZERO);
        // Rollback restored the initial split.
        assert_eq!(sim.channel_states()[0].available(Direction::Forward), xrp(5));
        assert_eq!(sim.channel_states()[0].available(Direction::Backward), xrp(5));
    }

    #[test]
    fn multihop_locks_every_hop() {
        let t = gen::line(3, xrp(10));
        let (r, sim) = run_sim(t, vec![txn(50, 0, 2, xrp(4))], false, base_config());
        assert_eq!(r.completed_payments, 1);
        // Both channels moved 4 XRP downstream.
        for c in sim.channel_states() {
            assert_eq!(c.available(Direction::Forward), xrp(1));
            assert_eq!(c.available(Direction::Backward), xrp(9));
        }
        // Two hops per unit, 4 XRP / 10 MTU = one unit.
        assert_eq!(r.units_locked, 1);
        assert_eq!(r.avg_path_length(), Some(2.0));
    }

    #[test]
    fn mtu_splits_units() {
        let mut cfg = base_config();
        cfg.mtu = xrp(1);
        let t = gen::line(2, xrp(20));
        let (r, _) = run_sim(t, vec![txn(10, 0, 1, xrp(5))], false, cfg);
        assert_eq!(r.units_locked, 5);
        assert_eq!(r.completed_payments, 1);
    }

    #[test]
    fn opposing_payments_rebalance_each_other() {
        // 6 XRP per side. 0→1 5 XRP, then 1→0 5 XRP, then 0→1 5 XRP again:
        // each leg is only possible because the previous one refilled it.
        let t = gen::line(2, xrp(12));
        let txns = vec![
            txn(0, 0, 1, xrp(5)),
            txn(1000, 1, 0, xrp(5)),
            txn(2000, 0, 1, xrp(5)),
        ];
        let (r, _) = run_sim(t, txns, false, base_config());
        assert_eq!(r.completed_payments, 3);
    }

    #[test]
    fn unidirectional_traffic_exhausts_channel() {
        // 5 XRP forward budget; three 2-XRP payments: the third finds only
        // 1 XRP available and completes partially (non-atomic), leaving
        // success ratio 2/3.
        let mut cfg = base_config();
        cfg.mtu = xrp(1);
        cfg.deadline = Some(spider_types::SimDuration::from_secs(2));
        let t = gen::line(2, xrp(10));
        let txns = vec![
            txn(0, 0, 1, xrp(2)),
            txn(100, 0, 1, xrp(2)),
            txn(200, 0, 1, xrp(2)),
        ];
        let (r, _) = run_sim(t, txns, false, cfg);
        assert_eq!(r.completed_payments, 2);
        // 5 of 6 XRP delivered (the stranded 1 XRP was sendable).
        assert_eq!(r.delivered_volume, xrp(5));
        assert!((r.success_volume() - 5.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn pending_queue_retries_after_refill() {
        // 0→1 drains; payment 1→0 then refills; queued remainder completes
        // on a later poll.
        let mut cfg = base_config();
        cfg.mtu = xrp(1);
        cfg.deadline = Some(spider_types::SimDuration::from_secs(10));
        let t = gen::line(2, xrp(10));
        let txns = vec![
            txn(0, 0, 1, xrp(5)),    // drains forward side
            txn(100, 0, 1, xrp(3)),  // queued: nothing available
            txn(2000, 1, 0, xrp(4)), // refills forward side
        ];
        let (r, _) = run_sim(t, txns, false, cfg);
        assert_eq!(r.completed_payments, 3);
        assert!(r.retries > 0);
    }

    #[test]
    fn deadline_cancels_remainder() {
        let mut cfg = base_config();
        cfg.mtu = xrp(1);
        cfg.deadline = Some(spider_types::SimDuration::from_millis(800));
        let t = gen::line(2, xrp(10));
        // 5 available; 8 requested; 5 deliver, 3 can never arrive; after
        // the deadline the payment stops retrying.
        let (r, _) = run_sim(t, vec![txn(0, 0, 1, xrp(8))], false, cfg);
        assert_eq!(r.completed_payments, 0);
        assert_eq!(r.delivered_volume, xrp(5));
    }

    #[test]
    fn disconnected_destination_fails_cleanly() {
        let mut b = Topology::builder(3);
        b.channel(NodeId(0), NodeId(1), xrp(10)).unwrap();
        let t = b.build();
        let (r, _) = run_sim(t, vec![txn(0, 0, 2, xrp(1))], false, base_config());
        assert_eq!(r.completed_payments, 0);
        assert_eq!(r.delivered_volume, Amount::ZERO);
    }

    #[test]
    fn determinism_across_runs() {
        let t = gen::cycle(6, xrp(50));
        let mut rng = spider_types::DetRng::new(42);
        let w = Workload::generate(6, &crate::workload::WorkloadConfig::small(200, 50.0), &mut rng);
        let run = |w: Workload| {
            let mut sim = Simulation::new(
                gen::cycle(6, xrp(50)),
                w,
                Box::new(DirectRouter { atomic: false }),
                base_config(),
            )
            .unwrap();
            sim.run()
        };
        let r1 = run(w.clone());
        let r2 = run(w);
        assert_eq!(r1.completed_payments, r2.completed_payments);
        assert_eq!(r1.delivered_volume, r2.delivered_volume);
        assert_eq!(r1.units_locked, r2.units_locked);
        let _ = t;
    }

    #[test]
    fn horizon_cuts_off_late_arrivals() {
        let mut cfg = base_config();
        cfg.horizon = spider_types::SimDuration::from_secs(1);
        let t = gen::line(2, xrp(100));
        let txns = vec![txn(0, 0, 1, xrp(1)), txn(5_000, 0, 1, xrp(1))];
        let (r, _) = run_sim(t, txns, false, cfg);
        assert_eq!(r.attempted_payments, 1);
    }

    #[test]
    fn conservation_under_random_load() {
        let t = gen::isp_topology(xrp(200));
        let mut rng = spider_types::DetRng::new(7);
        let w = Workload::generate(
            32,
            &crate::workload::WorkloadConfig::small(2_000, 500.0),
            &mut rng,
        );
        let mut cfg = base_config();
        cfg.mtu = xrp(5);
        let mut sim =
            Simulation::new(t, w, Box::new(DirectRouter { atomic: false }), cfg).unwrap();
        let r = sim.run();
        sim.check_conservation();
        assert!(r.attempted_payments == 2_000);
        assert!(r.delivered_volume <= r.attempted_volume);
    }
}

#[cfg(test)]
mod rebalancing_tests {
    use super::*;
    use crate::config::RebalancingConfig;
    use crate::workload::TxnSpec;
    use spider_topology::gen;

    struct Direct;
    impl Router for Direct {
        fn name(&self) -> &'static str {
            "direct"
        }
        fn route(
            &mut self,
            req: &RouteRequest,
            view: &NetworkView<'_>,
        ) -> Vec<crate::router::RouteProposal> {
            match view.topo.shortest_path(req.src, req.dst) {
                Some(path) => vec![crate::router::RouteProposal { path, amount: req.remaining }],
                None => Vec::new(),
            }
        }
    }

    fn xrp(x: u64) -> Amount {
        Amount::from_xrp(x)
    }

    /// One-way traffic that exceeds the channel's one-side funds: without
    /// rebalancing it stalls at 5 XRP; with rebalancing the chain refills
    /// the sender side and everything ships.
    fn one_way_workload() -> Workload {
        Workload {
            txns: (0..10)
                .map(|i| TxnSpec {
                    time: SimTime::from_secs(1 + 4 * i),
                    src: NodeId(0),
                    dst: NodeId(1),
                    amount: xrp(1),
                })
                .collect(),
        }
    }

    fn config(rebalancing: Option<RebalancingConfig>) -> SimConfig {
        SimConfig {
            horizon: spider_types::SimDuration::from_secs(60),
            deadline: Some(spider_types::SimDuration::from_secs(30)),
            rebalancing,
            ..SimConfig::default()
        }
    }

    #[test]
    fn without_rebalancing_dag_traffic_stalls() {
        let t = gen::line(2, xrp(10)); // 5 XRP per side
        let mut sim =
            Simulation::new(t, one_way_workload(), Box::new(Direct), config(None)).unwrap();
        let r = sim.run();
        sim.check_conservation();
        assert_eq!(r.delivered_volume, xrp(5));
        assert_eq!(r.rebalance_ops, 0);
        assert_eq!(r.onchain_deposited, Amount::ZERO);
    }

    #[test]
    fn rebalancing_lifts_dag_traffic() {
        let t = gen::line(2, xrp(10));
        let rb = RebalancingConfig {
            check_interval: spider_types::SimDuration::from_millis(500),
            trigger_fraction: 0.2,
            target_fraction: 0.5,
            confirmation_delay: spider_types::SimDuration::from_secs(1),
        };
        let mut sim =
            Simulation::new(t, one_way_workload(), Box::new(Direct), config(Some(rb))).unwrap();
        let r = sim.run();
        sim.check_conservation();
        assert_eq!(r.delivered_volume, xrp(10), "all one-way traffic ships");
        assert!(r.rebalance_ops > 0);
        assert!(r.onchain_deposited >= xrp(4), "deposited {}", r.onchain_deposited);
    }

    #[test]
    fn deposits_grow_capacity_consistently() {
        let t = gen::line(2, xrp(10));
        let rb = RebalancingConfig::default();
        let mut sim = Simulation::new(
            t,
            one_way_workload(),
            Box::new(Direct),
            config(Some(RebalancingConfig {
                confirmation_delay: spider_types::SimDuration::from_secs(1),
                trigger_fraction: 0.3,
                ..rb
            })),
        )
        .unwrap();
        let r = sim.run();
        sim.check_conservation();
        let ch = &sim.channel_states()[0];
        assert_eq!(ch.capacity(), xrp(10) + r.onchain_deposited);
    }

    #[test]
    fn no_duplicate_inflight_deposits() {
        // Trigger instantly but confirm slowly: only one deposit per
        // direction may be pending at a time.
        let t = gen::line(2, xrp(10));
        let rb = RebalancingConfig {
            check_interval: spider_types::SimDuration::from_millis(100),
            trigger_fraction: 0.45,
            target_fraction: 0.5,
            confirmation_delay: spider_types::SimDuration::from_secs(50),
        };
        let mut sim =
            Simulation::new(t, one_way_workload(), Box::new(Direct), config(Some(rb))).unwrap();
        let r = sim.run();
        sim.check_conservation();
        // At most one settle per direction fits in the horizon.
        assert!(r.rebalance_ops <= 2, "ops {}", r.rebalance_ops);
    }

    #[test]
    fn invalid_rebalancing_config_rejected() {
        let mut cfg = SimConfig::default();
        cfg.rebalancing = Some(RebalancingConfig {
            trigger_fraction: 0.9,
            target_fraction: 0.5,
            ..RebalancingConfig::default()
        });
        assert!(cfg.validate().is_err());
    }
}
